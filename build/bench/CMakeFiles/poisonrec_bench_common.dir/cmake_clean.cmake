file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_bench_common.dir/common.cc.o"
  "CMakeFiles/poisonrec_bench_common.dir/common.cc.o.d"
  "libpoisonrec_bench_common.a"
  "libpoisonrec_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
