// Fleet orchestration harness: runs the same campaign sweep under the
// supervised orchestrator at increasing worker counts and reports
// wall-clock scaling plus the orchestration overhead (journal +
// supervision + per-step durable checkpoints) relative to the summed
// campaign runtimes. Also asserts the orchestrator's core determinism
// property: per-step committed rewards are bit-identical at every
// concurrency level.
//
// Output: results/fleet_scaling.{csv,json} with one row per worker
// count.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "orch/fleet.h"
#include "orch/journal.h"
#include "orch/lease.h"
#include "orch/spec.h"
#include "orch/status.h"

namespace poisonrec::bench {
namespace {

orch::FleetPlan MakePlan(const BenchConfig& config) {
  orch::FleetPlan plan;
  plan.name = "bench-fleet";
  const std::vector<std::string> presets = {"clean", "clean", "flaky",
                                            "flaky"};
  for (std::size_t i = 0; i < presets.size(); ++i) {
    orch::CampaignSpec spec;
    spec.id = "campaign" + std::to_string(i) + "-" + presets[i];
    spec.fault_preset = presets[i];
    spec.fault = *orch::FaultPresetProfile(presets[i]);
    spec.fault.seed = 1234 + i;
    spec.steps = config.training_steps;
    spec.samples_per_step = config.samples_per_step;
    spec.attackers = config.num_attackers;
    spec.trajectory_length = config.trajectory_length;
    spec.num_target_items = config.num_target_items;
    spec.embedding_dim = config.embedding_dim;
    spec.max_eval_users = config.max_eval_users;
    spec.seed = config.seed + i * 101;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

int Run() {
  const BenchConfig config = LoadBenchConfig();
  const data::Dataset log = MakeDataset(config, data::DatasetPreset::kSteam);
  const orch::FleetPlan plan = MakePlan(config);
  std::printf("fleet scaling: %zu campaigns x %zu steps, dataset scale "
              "%.2f\n",
              plan.campaigns.size(), config.training_steps, config.scale);

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "poisonrec_bench_fleet")
          .string();

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workers", "wall_seconds", "campaign_seconds_sum",
                  "overhead_ratio", "speedup", "done", "identical"});
  PrintTableHeader(
      {"workers", "wall s", "sum s", "overhead", "speedup", "identical"});

  double serial_wall = 0.0;
  std::map<std::string, std::map<std::uint64_t, double>> reference;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    std::filesystem::remove_all(work_dir);
    orch::FleetOptions options;
    options.journal_path = work_dir + "/journal.jsonl";
    options.checkpoint_dir = work_dir + "/ckpts";
    options.report_json_path.clear();
    options.report_csv_path.clear();
    options.max_concurrent = workers;
    orch::FleetOrchestrator orchestrator(plan, &log, options);
    const orch::FleetResult result = orchestrator.Run();
    if (result.ExitCode() != 0) {
      std::fprintf(stderr, "fleet run failed at %zu workers: %s\n", workers,
                   result.status.ToString().c_str());
      return 1;
    }
    double campaign_sum = 0.0;
    bool identical = true;
    for (const orch::CampaignOutcome& outcome : result.outcomes) {
      campaign_sum += outcome.wall_seconds;
      if (workers == 1) {
        reference[outcome.id] = outcome.step_rewards;
      } else if (reference[outcome.id] != outcome.step_rewards) {
        identical = false;
      }
    }
    if (workers == 1) serial_wall = result.wall_seconds;
    const double overhead =
        campaign_sum > 0.0 ? result.wall_seconds * workers / campaign_sum
                           : 0.0;
    const double speedup =
        result.wall_seconds > 0.0 ? serial_wall / result.wall_seconds : 0.0;
    const auto seconds = [](double v) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.2f", v);
      return std::string(buffer);
    };
    PrintTableRow({std::to_string(workers), seconds(result.wall_seconds),
                   seconds(campaign_sum), seconds(overhead),
                   seconds(speedup), identical ? "yes" : "NO"});
    rows.push_back({std::to_string(workers),
                    std::to_string(result.wall_seconds),
                    std::to_string(campaign_sum), std::to_string(overhead),
                    std::to_string(speedup), std::to_string(result.done),
                    identical ? "1" : "0"});
    if (!identical) {
      std::fprintf(stderr,
                   "fleet run at %zu workers produced different step "
                   "rewards than the serial run\n",
                   workers);
      return 1;
    }
  }
  WriteCsvOutput(config, "fleet_scaling.csv", rows);
  WriteJsonOutput(config, "fleet_scaling.json", rows);

  std::vector<std::vector<std::string>> robustness_rows;
  robustness_rows.push_back({"metric", "value"});
  const auto seconds = [](double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4f", v);
    return std::string(buffer);
  };

  // -- Shared-mode overhead: the same plan under one --shared worker,
  // which adds leases, heartbeat renewals, token-suffixed checkpoints,
  // a per-worker journal file, and the final merged replay.
  {
    std::filesystem::remove_all(work_dir);
    orch::FleetOptions options;
    options.journal_path = work_dir + "/journal.jsonl";
    options.checkpoint_dir = work_dir + "/ckpts";
    options.report_json_path.clear();
    options.report_csv_path.clear();
    options.max_concurrent = 1;
    options.shared = true;
    options.worker_id = "bench";
    orch::FleetOrchestrator orchestrator(plan, &log, options);
    const orch::FleetResult result = orchestrator.Run();
    if (result.ExitCode() != 0) {
      std::fprintf(stderr, "shared fleet run failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    for (const orch::CampaignOutcome& outcome : result.outcomes) {
      if (reference[outcome.id] != outcome.step_rewards) {
        std::fprintf(stderr,
                     "shared fleet produced different step rewards for %s\n",
                     outcome.id.c_str());
        return 1;
      }
    }
    const double ratio =
        serial_wall > 0.0 ? result.wall_seconds / serial_wall : 0.0;
    std::printf("shared-mode overhead: %.2fs vs %.2fs serial (%.2fx)\n",
                result.wall_seconds, serial_wall, ratio);
    robustness_rows.push_back(
        {"shared_wall_seconds", seconds(result.wall_seconds)});
    robustness_rows.push_back({"shared_overhead_ratio", seconds(ratio)});
  }

  // -- Lease transition throughput: durable (tmp-fsync-rename) renewals
  // under the sidecar flock, the cost every running campaign pays each
  // ttl/3.
  {
    const std::string lease_dir = work_dir + "/lease_bench";
    orch::LeaseManager leases(lease_dir, "bench", 5.0);
    if (!leases.Init().ok()) return 1;
    auto held = leases.Acquire("bench-campaign");
    if (!held.ok()) return 1;
    constexpr int kRenewals = 500;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRenewals; ++i) {
      if (!leases.Renew("bench-campaign", held->token).ok()) return 1;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double per_second = elapsed > 0.0 ? kRenewals / elapsed : 0.0;
    std::printf("lease renewals: %d in %.3fs (%.0f/s)\n", kRenewals, elapsed,
                per_second);
    robustness_rows.push_back(
        {"lease_renewals_per_second", seconds(per_second)});
  }

  // -- Preemption latency: a low-priority campaign is running on the
  // only worker when a high-priority one is submitted; measure submit ->
  // first `running` journal record of the high-priority campaign. The
  // victim checkpoints at its next step boundary, so the latency is one
  // step plus a watchdog poll.
  {
    std::filesystem::remove_all(work_dir);
    orch::FleetPlan preempt_plan;
    preempt_plan.name = "bench-preempt";
    orch::CampaignSpec low = plan.campaigns[0];
    low.id = "low";
    low.fault_preset = "clean";
    low.fault = *orch::FaultPresetProfile("clean");
    low.priority = 0;
    preempt_plan.campaigns.push_back(low);
    orch::FleetOptions options;
    options.journal_path = work_dir + "/journal.jsonl";
    options.checkpoint_dir = work_dir + "/ckpts";
    options.report_json_path.clear();
    options.report_csv_path.clear();
    options.max_concurrent = 1;
    options.watchdog_poll_seconds = 0.005;
    orch::FleetOrchestrator orchestrator(preempt_plan, &log, options);

    double latency = -1.0;
    std::thread submitter([&] {
      // Wait for the victim's first committed step so the submission
      // arrives mid-run.
      for (int i = 0; i < 20000; ++i) {
        auto replay = orch::FleetJournal::ReplayFile(options.journal_path);
        if (replay.ok()) {
          const auto it = replay->find("low");
          if (it != replay->end() && it->second.steps_completed >= 1) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      orch::CampaignSpec high = low;
      high.id = "high";
      high.priority = 10;
      high.steps = 1;
      const auto submit_time = std::chrono::steady_clock::now();
      if (!orchestrator.Submit(high).ok()) return;
      for (int i = 0; i < 60000; ++i) {
        auto replay = orch::FleetJournal::ReplayFile(options.journal_path);
        if (replay.ok()) {
          const auto it = replay->find("high");
          if (it != replay->end() &&
              it->second.state != orch::CampaignState::kPending) {
            latency = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - submit_time)
                          .count();
            return;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    const orch::FleetResult result = orchestrator.Run();
    submitter.join();
    if (result.ExitCode() != 0 || result.preemptions == 0 || latency < 0.0) {
      std::fprintf(stderr,
                   "preemption bench failed: exit=%d preemptions=%zu "
                   "latency=%.3f\n",
                   result.ExitCode(), result.preemptions, latency);
      return 1;
    }
    std::printf("preemption latency (submit -> high running): %.0f ms\n",
                latency * 1e3);
    robustness_rows.push_back({"preemption_latency_seconds",
                               seconds(latency)});
    robustness_rows.push_back(
        {"preemptions", std::to_string(result.preemptions)});
  }

  // -- Status publication overhead: the same plan with the telemetry
  // plane off versus on at an aggressive publish period, gated on
  // bit-identical rewards (publication must never perturb the run) and
  // a lenient wall-clock bound. Also times the read side: one
  // CollectFleetStatus pass over the finished fleet's artefacts.
  {
    const auto run_once = [&](bool publish) -> double {
      std::filesystem::remove_all(work_dir);
      orch::FleetOptions options;
      options.journal_path = work_dir + "/journal.jsonl";
      options.checkpoint_dir = work_dir + "/ckpts";
      options.report_json_path.clear();
      options.report_csv_path.clear();
      options.max_concurrent = 1;
      options.publish_status = publish;
      options.status_publish_seconds = 0.05;
      orch::FleetOrchestrator orchestrator(plan, &log, options);
      const orch::FleetResult result = orchestrator.Run();
      if (result.ExitCode() != 0) return -1.0;
      for (const orch::CampaignOutcome& outcome : result.outcomes) {
        if (reference[outcome.id] != outcome.step_rewards) return -1.0;
      }
      return result.wall_seconds;
    };
    obs::Counter* published = obs::MetricsRegistry::Global().GetCounter(
        "poisonrec_fleet_status_snapshots_total");
    const std::uint64_t published_before = published->Value();
    const double off_wall = run_once(/*publish=*/false);
    const std::uint64_t published_off = published->Value();
    if (published_off != published_before) {
      std::fprintf(stderr, "status publication ran while disabled\n");
      return 1;
    }
    const double on_wall = run_once(/*publish=*/true);
    const std::uint64_t snapshots = published->Value() - published_off;
    if (off_wall < 0.0 || on_wall < 0.0) {
      std::fprintf(stderr,
                   "status-overhead run failed or perturbed rewards "
                   "(off=%.2f on=%.2f)\n",
                   off_wall, on_wall);
      return 1;
    }
    const double ratio = off_wall > 0.0 ? on_wall / off_wall : 0.0;
    std::printf("status publication: %.2fs off vs %.2fs on (%.3fx, %llu "
                "snapshot(s))\n",
                off_wall, on_wall, ratio,
                static_cast<unsigned long long>(snapshots));
    // Publication is a watchdog-thread durable write every 50ms here —
    // it must stay in the noise next to campaign compute.
    if (ratio > 1.5) {
      std::fprintf(stderr,
                   "status publication overhead ratio %.3f exceeds 1.5\n",
                   ratio);
      return 1;
    }

    orch::FleetStatusOptions query;
    query.journal_path = work_dir + "/journal.jsonl";
    query.checkpoint_dir = work_dir + "/ckpts";
    constexpr int kCollects = 50;
    const auto start = std::chrono::steady_clock::now();
    orch::FleetStatus collected;
    for (int i = 0; i < kCollects; ++i) {
      collected = orch::CollectFleetStatus(query);
    }
    const double collect_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() *
        1e3 / kCollects;
    if (collected.ExitCode() != 0) {
      std::fprintf(stderr, "post-run fleet status degraded: %s\n",
                   collected.degraded_reasons.empty()
                       ? "?"
                       : collected.degraded_reasons.front().c_str());
      return 1;
    }
    std::printf("fleet status collection: %.2f ms/query (%zu campaigns)\n",
                collect_ms, collected.campaigns.size());
    robustness_rows.push_back(
        {"status_publish_off_wall_seconds", seconds(off_wall)});
    robustness_rows.push_back(
        {"status_publish_on_wall_seconds", seconds(on_wall)});
    robustness_rows.push_back(
        {"status_publish_overhead_ratio", seconds(ratio)});
    robustness_rows.push_back(
        {"status_snapshots_published", std::to_string(snapshots)});
    robustness_rows.push_back(
        {"status_collect_ms_per_query", seconds(collect_ms)});
  }

  std::filesystem::remove_all(work_dir);
  WriteCsvOutput(config, "fleet_robustness.csv", robustness_rows);
  WriteJsonOutput(config, "fleet_robustness.json", robustness_rows);
  return 0;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Run(); }
