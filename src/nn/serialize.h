// Binary (de)serialization of parameter sets. Modules expose their
// parameters as an ordered Tensor list; saving/loading that list
// checkpoints any model in the library (policy networks, neural rankers).
// Format: magic, version, tensor count, then per tensor rows/cols +
// little-endian float32 payload.
#ifndef POISONREC_NN_SERIALIZE_H_
#define POISONREC_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace poisonrec::nn {

/// Writes the parameter tensors to `path`.
Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path);

/// Loads a checkpoint into existing tensors. Count and shapes must match
/// the checkpoint exactly (the caller constructs the model first, then
/// restores into it).
///
/// `params` is deliberately taken by value: Tensor is a value-semantics
/// handle over shared storage, so the copied handles alias the caller's
/// TensorImpls and mutable_data() writes restore the caller's model in
/// place. This also lets callers pass the temporary returned by
/// `Module::Parameters()` directly. Passing tensors that do NOT alias the
/// model (e.g. detached copies made with Tensor::DeepCopy) restores
/// nothing the model can see.
Status LoadParameters(const std::string& path, std::vector<Tensor> params);

/// Reads just the shapes stored in a checkpoint (for diagnostics).
StatusOr<std::vector<std::pair<std::size_t, std::size_t>>>
PeekCheckpointShapes(const std::string& path);

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_SERIALIZE_H_
