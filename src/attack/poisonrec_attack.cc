#include "attack/poisonrec_attack.h"

namespace poisonrec::attack {

PoisonRecAttack::PoisonRecAttack(const core::PoisonRecConfig& config,
                                 std::size_t training_steps)
    : config_(config), training_steps_(training_steps) {}

std::vector<env::Trajectory> PoisonRecAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  core::PoisonRecConfig config = config_;
  config.seed = seed;
  config.policy.seed = seed ^ 0x6b43a9b5ull;
  core::PoisonRecAttacker attacker(&environment, config);
  last_stats_ = attacker.Train(training_steps_);
  return attacker.BestAttack();
}

}  // namespace poisonrec::attack
