// First-order optimizers over Tensor parameters: SGD and Adam. Parameters
// are registered once; Step() reads their gradient buffers and updates the
// values in place. Callers zero gradients between steps.
#ifndef POISONREC_NN_OPTIMIZER_H_
#define POISONREC_NN_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace poisonrec::nn {

/// Base optimizer interface.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the currently-accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes the gradients of every registered parameter.
  void ZeroGrad();

  const std::vector<Tensor>& parameters() const { return params_; }

 protected:
  explicit Optimizer(std::vector<Tensor> params);

  std::vector<Tensor> params_;
};

/// Plain stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  std::size_t step_count() const { return step_count_; }

  /// Optimizer state, exposed for checkpointing (see
  /// core::PoisonRecAttacker::SaveCheckpoint).
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }

  /// Restores checkpointed state. Moment shapes must match the registered
  /// parameters exactly.
  Status RestoreState(std::size_t step_count,
                      std::vector<std::vector<float>> m,
                      std::vector<std::vector<float>> v);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::size_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Global-norm gradient clipping across a parameter set; returns the norm
/// observed before clipping.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

/// Global gradient norm across a parameter set without modifying any
/// gradient (the observability half of ClipGradNorm; NaN/Inf gradients
/// propagate into the returned norm).
float GradNorm(const std::vector<Tensor>& params);

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_OPTIMIZER_H_
