// Ablation (beyond the paper): poisoning semantics. Algorithm 1 reloads
// the pretrained ranker and fine-tunes it on the poison log; the
// alternative is retraining from scratch on clean + poison. This harness
// runs the same fixed attack under both modes across the rankers: the
// attack should promote targets in both, with fine-tuning usually giving
// the attacker more leverage per click (the poison log is not diluted by
// the full clean log).
#include <cstdio>

#include "attack/heuristics.h"
#include "bench/common.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Ablation: fine-tune vs full-retrain poisoning (Steam, "
      "scale=%.3g) ==\n\n",
      config.scale);
  PrintTableHeader({"Ranker", "baseline", "fine-tune", "retrain"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"ranker", "baseline", "finetune", "full_retrain"});

  attack::PopularAttack method;
  for (const std::string& ranker : config.rankers) {
    double results[2] = {0.0, 0.0};
    double baseline = 0.0;
    for (int mode = 0; mode < 2; ++mode) {
      BenchConfig local = config;
      auto environment =
          MakeEnvironment(local, data::DatasetPreset::kSteam, ranker);
      // Rebuild with the retrain flag: environments are cheap at bench
      // scale and this keeps the pretraining identical.
      env::EnvironmentConfig env_cfg = environment->config();
      env_cfg.full_retrain = mode == 1;
      rec::FitConfig fit;
      fit.embedding_dim = config.embedding_dim;
      fit.epochs = 4;
      fit.update_epochs = 3;
      fit.seed = config.seed ^ 0x51u;
      env::AttackEnvironment env2(
          MakeDataset(local, data::DatasetPreset::kSteam),
          rec::MakeRecommender(ranker, fit).value(), env_cfg);
      baseline = env2.BaselineRecNum();
      results[mode] =
          env2.Evaluate(method.GenerateAttack(env2, config.seed ^ 0x3e8u));
    }
    PrintTableRow({ranker, FormatCount(baseline), FormatCount(results[0]),
                   FormatCount(results[1])});
    csv.push_back({ranker, FormatCount(baseline), FormatCount(results[0]),
                   FormatCount(results[1])});
  }
  WriteCsvOutput(config, "ablation_retrain.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
