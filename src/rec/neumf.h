// NeuMF: Neural Collaborative Filtering (He et al., WWW'17). Fuses a GMF
// branch (elementwise product of user/item embeddings) with an MLP branch
// (concatenated embeddings through ReLU layers); a final linear layer maps
// the fused representation to a preference logit. Trained with binary
// cross-entropy over observed positives and sampled negatives.
#ifndef POISONREC_REC_NEUMF_H_
#define POISONREC_REC_NEUMF_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class NeuMf : public Recommender {
 public:
  explicit NeuMf(const FitConfig& config = FitConfig());
  NeuMf(const NeuMf& other);
  NeuMf& operator=(const NeuMf&) = delete;

  std::string Name() const override { return "NeuMF"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  /// The GMF item embedding table (used for strategy visualization).
  const nn::Tensor& ItemEmbeddings() const;

 private:
  struct Net {
    Net(std::size_t num_users, std::size_t num_items, std::size_t dim,
        Rng* rng);
    std::vector<nn::Tensor> Parameters() const;

    nn::Embedding gmf_user;
    nn::Embedding gmf_item;
    nn::Embedding mlp_user;
    nn::Embedding mlp_item;
    nn::Mlp mlp;       // (2*dim) -> dim -> dim/2
    nn::Linear fuse;   // (dim + dim/2) -> 1
  };

  /// Batch of (user, item) pair logits -> (batch x 1).
  nn::Tensor ForwardLogits(const std::vector<std::size_t>& users,
                           const std::vector<std::size_t>& items) const;

  void TrainEpochs(const std::vector<data::Interaction>& interactions,
                   std::size_t epochs, Rng* rng);

  FitConfig config_;
  std::size_t num_users_ = 0;
  std::size_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  std::vector<std::unordered_set<data::ItemId>> positives_;
  std::vector<data::Interaction> clean_;  // replay pool for Update
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_NEUMF_H_
