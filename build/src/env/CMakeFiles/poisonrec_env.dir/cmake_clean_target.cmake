file(REMOVE_RECURSE
  "libpoisonrec_env.a"
)
