// Crash-durable fleet journal: the orchestrator's write-ahead record of
// every campaign's lifecycle, one JSONL line per transition, backed by
// obs::EventLog (per-line fflush — everything up to the last completed
// append survives kill -9).
//
// State machine per campaign:
//
//   pending ──> running ──> checkpointed ──> ... ──> done
//                  │              │                   (terminal)
//                  │              └──(more steps)──┐
//                  │                               │
//                  ├──> quarantined (terminal: circuit breaker — stalls
//                  │                 past the restart budget, deadline
//                  │                 exceeded, pool exhausted, rollback
//                  │                 budget exhausted)
//                  └──> failed      (terminal: unexpected error)
//
// `checkpointed` records are appended from the attacker's step-commit
// callback, i.e. strictly after the campaign checkpoint for that step
// is durable on disk — the journal never claims progress the checkpoint
// doesn't have. Each carries (step, reward), so replay can reconstruct
// the committed reward sequence and `fleet --resume` can verify
// bit-identical recovery.
//
// Replay folds the log per campaign id: last state wins, step rewards
// dedup by step index (last wins — a kill between a step's journal
// record and an interrupted follow-up re-runs that step
// deterministically), and a torn trailing line (the crash frontier) is
// skipped, not fatal.
#ifndef POISONREC_ORCH_JOURNAL_H_
#define POISONREC_ORCH_JOURNAL_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/event_log.h"
#include "util/status.h"

namespace poisonrec::orch {

enum class CampaignState : std::uint8_t {
  kPending = 0,
  kRunning = 1,
  /// Progress committed: the campaign checkpoint holds `step` steps.
  kCheckpointed = 2,
  /// Terminal: budget completed.
  kDone = 3,
  /// Terminal: the circuit breaker isolated a persistently failing
  /// campaign (stall/deadline/pool exhaustion/rollback budget) so it
  /// cannot sink the rest of the fleet.
  kQuarantined = 4,
  /// Terminal: unexpected error (orchestrator bug, I/O failure).
  kFailed = 5,
};

/// Stable snake_case name used in journal lines and reports.
const char* CampaignStateName(CampaignState state);
StatusOr<CampaignState> ParseCampaignState(const std::string& name);
/// done/quarantined/failed — states a resume must not re-run.
bool IsTerminal(CampaignState state);

/// One journal line.
struct CampaignJournalRecord {
  std::string campaign_id;
  CampaignState state = CampaignState::kPending;
  /// Steps committed to the campaign checkpoint so far.
  std::uint64_t step = 0;
  /// Mean reward of the step being committed (checkpointed records).
  double reward = 0.0;
  double best_reward = 0.0;
  std::uint64_t restarts = 0;
  std::string detail;
};

/// Folded per-campaign view of a replayed journal.
struct CampaignReplay {
  CampaignState state = CampaignState::kPending;
  std::uint64_t steps_completed = 0;
  std::uint64_t restarts = 0;
  double best_reward = 0.0;
  std::string detail;
  /// step index -> committed mean reward, deduped (last record wins).
  std::map<std::uint64_t, double> step_rewards;
};

/// Append side. Thread-safe: concurrent Record calls serialize on the
/// underlying EventLog's per-line mutex.
class FleetJournal {
 public:
  /// Opens the journal. truncate=false (resume) appends to the existing
  /// log so the recovery history stays in one file.
  Status Open(const std::string& path, bool truncate);

  /// Appends one record (no-op returning false when closed).
  bool Record(const CampaignJournalRecord& record);

  void Close() { log_.Close(); }
  bool is_open() const { return log_.is_open(); }
  const std::string& path() const { return log_.path(); }
  std::uint64_t records_written() const { return log_.lines_written(); }

  /// Replays a journal file into per-campaign folded state. A missing
  /// file is an error; a torn/malformed line is skipped (the line under
  /// the crash frontier); unknown record types are ignored.
  static StatusOr<std::map<std::string, CampaignReplay>> ReplayFile(
      const std::string& path);

 private:
  obs::EventLog log_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_JOURNAL_H_
