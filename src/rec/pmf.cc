#include "rec/pmf.h"

#include "util/logging.h"

namespace poisonrec::rec {

Pmf::Pmf(const FitConfig& config) : config_(config) {}

void Pmf::SgdEpochs(const std::vector<data::Interaction>& interactions,
                    std::size_t epochs, Rng* rng) {
  const std::size_t dim = factors_.dim;
  const float lr = config_.learning_rate;
  const float reg = config_.weight_decay;
  std::vector<std::size_t> order(interactions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto sgd_pair = [&](data::UserId u, data::ItemId i, float target) {
    float* pu = factors_.UserRow(u);
    float* qi = factors_.ItemRow(i);
    float pred = 0.0f;
    for (std::size_t k = 0; k < dim; ++k) pred += pu[k] * qi[k];
    const float err = pred - target;
    for (std::size_t k = 0; k < dim; ++k) {
      const float gu = err * qi[k] + reg * pu[k];
      const float gi = err * pu[k] + reg * qi[k];
      pu[k] -= lr * gu;
      qi[k] -= lr * gi;
    }
  };

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t idx : order) {
      const data::Interaction& ev = interactions[idx];
      sgd_pair(ev.user, ev.item, 1.0f);
      for (std::size_t n = 0; n < config_.negatives_per_positive; ++n) {
        const data::ItemId j = SampleNegative(factors_.num_items(),
                                              positives_[ev.user], rng);
        sgd_pair(ev.user, j, 0.0f);
      }
    }
  }
}

void Pmf::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  factors_.Init(dataset.num_users(), dataset.num_items(),
                config_.embedding_dim, 0.1f, &rng);
  positives_ = BuildPositiveSets(dataset);
  clean_ = dataset.AllInteractions();
  SgdEpochs(clean_, config_.epochs, &rng);
  update_seed_ = rng.Fork();
}

void Pmf::Update(const data::Dataset& poison) {
  POISONREC_CHECK_EQ(poison.num_items(), factors_.num_items());
  POISONREC_CHECK_LE(poison.num_users(), factors_.num_users());
  Rng rng(update_seed_ ^ 0x9e3779b97f4a7c15ull);
  MergePositiveSets(poison, &positives_);
  SgdEpochs(MixWithReplay(poison.AllInteractions(), clean_,
                          config_.update_replay_ratio, &rng),
            config_.update_epochs, &rng);
}

std::vector<double> Pmf::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (data::ItemId item : candidates) {
    scores.push_back(factors_.Dot(user, item));
  }
  return scores;
}

std::unique_ptr<Recommender> Pmf::Clone() const {
  return std::make_unique<Pmf>(*this);
}

}  // namespace poisonrec::rec
