#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace poisonrec::nn {

namespace {

constexpr std::uint32_t kMagic = 0x505a4e31;  // "PZN1"
constexpr std::uint32_t kVersion = 1;

void WriteU64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const std::uint32_t header[2] = {kMagic, kVersion};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  WriteU64(out, params.size());
  for (const Tensor& p : params) {
    if (!p.defined()) {
      return Status::InvalidArgument("undefined tensor in parameter list");
    }
    WriteU64(out, p.rows());
    WriteU64(out, p.cols());
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path, std::vector<Tensor> params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::uint32_t header[2] = {0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kMagic) {
    return Status::InvalidArgument(path + " is not a PoisonRec checkpoint");
  }
  if (header[1] != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(header[1]));
  }
  std::uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::IoError("truncated checkpoint");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (Tensor& p : params) {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
      return Status::IoError("truncated checkpoint");
    }
    if (rows != p.rows() || cols != p.cols()) {
      return Status::InvalidArgument(
          "shape mismatch: checkpoint " + std::to_string(rows) + "x" +
          std::to_string(cols) + " vs model " + p.ShapeString());
    }
    in.read(reinterpret_cast<char*>(p.mutable_data().data()),
            static_cast<std::streamsize>(p.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated checkpoint payload");
  }
  return Status::OK();
}

StatusOr<std::vector<std::pair<std::size_t, std::size_t>>>
PeekCheckpointShapes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::uint32_t header[2] = {0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kMagic) {
    return Status::InvalidArgument(path + " is not a PoisonRec checkpoint");
  }
  std::uint64_t count = 0;
  if (!ReadU64(in, &count)) return Status::IoError("truncated checkpoint");
  std::vector<std::pair<std::size_t, std::size_t>> shapes;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
      return Status::IoError("truncated checkpoint");
    }
    shapes.emplace_back(rows, cols);
    in.seekg(static_cast<std::streamoff>(rows * cols * sizeof(float)),
             std::ios::cur);
  }
  return shapes;
}

}  // namespace poisonrec::nn
