// Sampled attack trajectories with the bookkeeping PPO needs: every
// decision's old-policy log-probability and, for tree-structured action
// spaces, the node path that produced each item.
#ifndef POISONREC_CORE_TRAJECTORY_H_
#define POISONREC_CORE_TRAJECTORY_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "env/environment.h"

namespace poisonrec::core {

/// One item selection. Depending on the action space, a step is one
/// categorical draw (Plain), a set draw + in-set draw (BPlain), or a
/// root-to-leaf walk (BCBT).
struct SampledStep {
  data::ItemId item = 0;
  /// BCBT: node ids visited, root first, leaf last (decisions =
  /// path.size()-1). BPlain: {chosen_set} with 0 = targets, 1 = originals.
  /// Plain: empty.
  std::vector<int> path;
  /// Old-policy log-prob of each decision in order.
  std::vector<double> old_log_probs;
};

/// One attacker's T-step trajectory.
struct SampledTrajectory {
  std::size_t attacker_index = 0;
  std::vector<SampledStep> steps;
};

/// One training example m of Algorithm 1: the N trajectories injected
/// together plus the resulting RecNum.
struct Episode {
  std::vector<SampledTrajectory> trajectories;
  double reward = 0.0;
  /// False when the reward query failed even after retries and `reward`
  /// was imputed (batch mean). Imputed episodes are excluded from the
  /// Eq. 8 normalization statistics and from best-episode tracking.
  bool reward_observed = true;
};

/// Strips the RL bookkeeping for injection into the environment.
std::vector<env::Trajectory> ToEnvTrajectories(
    const std::vector<SampledTrajectory>& trajectories);

/// Fraction of clicks that land on target items (>= `first_target_item`)
/// across all trajectories of an episode — the Figure 5 statistic.
double TargetClickRatio(const Episode& episode,
                        data::ItemId first_target_item);

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_TRAJECTORY_H_
