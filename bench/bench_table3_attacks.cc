// Table III: RecNum of all 7 attack methods (Random, Popular, Middle,
// PowerItem, ConsLOP, AppGrad, PoisonRec) against all 8 recommenders on
// all 4 datasets. Absolute values scale with POISONREC_SCALE; the
// reproduction target is the ordering: PoisonRec wins most testbeds,
// ConsLOP is strong only on CoVisitation, AppGrad is competitive on
// ItemPop/NeuMF, and everything scores ~0 on ItemPop/MovieLens (dense
// data defeats fake popularity).
#include <cstdio>
#include <memory>

#include "attack/appgrad.h"
#include "attack/conslop.h"
#include "attack/heuristics.h"
#include "attack/poisonrec_attack.h"
#include "bench/common.h"

namespace poisonrec::bench {
namespace {

std::vector<data::DatasetPreset> Datasets(const BenchConfig& config) {
  if (config.datasets.empty()) {
    return {data::DatasetPreset::kSteam, data::DatasetPreset::kMovieLens,
            data::DatasetPreset::kPhone, data::DatasetPreset::kClothing};
  }
  std::vector<data::DatasetPreset> out;
  for (const std::string& name : config.datasets) {
    out.push_back(data::ParseDatasetPreset(name).value());
  }
  return out;
}

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Table III: RecNum of 7 attack methods x 8 rankers x 4 datasets "
      "(scale=%.3g) ==\n",
      config.scale);

  std::vector<std::unique_ptr<attack::AttackMethod>> methods;
  methods.push_back(std::make_unique<attack::RandomAttack>());
  methods.push_back(std::make_unique<attack::PopularAttack>());
  methods.push_back(std::make_unique<attack::MiddleAttack>());
  methods.push_back(std::make_unique<attack::PowerItemAttack>());
  methods.push_back(std::make_unique<attack::ConsLopAttack>());
  attack::AppGradConfig appgrad;
  appgrad.iterations = config.training_steps * 2;
  methods.push_back(std::make_unique<attack::AppGradAttack>(appgrad));
  methods.push_back(std::make_unique<attack::PoisonRecAttack>(
      MakePoisonRecConfig(config, core::ActionSpaceKind::kBcbtPopular,
                          config.seed ^ 0xab3u),
      config.training_steps));

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"dataset", "method", "ranker", "recnum"});

  for (data::DatasetPreset preset : Datasets(config)) {
    std::printf("\n-- %s --\n", data::DatasetPresetName(preset));
    std::vector<std::string> header = {"Method"};
    for (const std::string& r : config.rankers) header.push_back(r);
    PrintTableHeader(header);
    // One pretrained system per (dataset, ranker), shared by all methods
    // (Evaluate never mutates the environment).
    std::vector<std::vector<double>> results(
        methods.size(), std::vector<double>(config.rankers.size(), 0.0));
    for (std::size_t r = 0; r < config.rankers.size(); ++r) {
      auto environment =
          MakeEnvironment(config, preset, config.rankers[r]);
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const auto trajectories = methods[m]->GenerateAttack(
            *environment, config.seed ^ 0xc4du);
        results[m][r] = environment->Evaluate(trajectories);
        csv.push_back({data::DatasetPresetName(preset), methods[m]->Name(),
                       config.rankers[r], FormatCount(results[m][r])});
      }
    }
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::vector<std::string> row = {methods[m]->Name()};
      for (std::size_t r = 0; r < config.rankers.size(); ++r) {
        row.push_back(FormatCount(results[m][r]));
      }
      PrintTableRow(row);
    }
  }
  WriteCsvOutput(config, "table3_attacks.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
