#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace poisonrec {

namespace {

// True while this thread is executing inside a ParallelFor body —
// either as a pool helper or as the submitting thread participating in
// its own job. Nested ParallelFor calls check it and run inline: the
// submitting thread holds the pool's submit mutex for the duration of
// its job, so a re-entrant submission would self-deadlock.
thread_local bool t_in_parallel_region = false;

// One in-flight ParallelFor. Indices are handed out one at a time from
// `next`; a worker exception flips `cancelled` so remaining indices are
// abandoned, and the first exception is stashed for the submitting
// thread to rethrow.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::size_t max_helpers = 0;  // helper threads allowed to join (caller excluded)
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;  // written once, guarded by `cancelled` CAS
  std::size_t joined = 0;          // helpers that picked up this job (pool mutex)
  std::size_t active = 0;          // helpers still running it (pool mutex)
};

// Lazily grown pool of parked helper threads. Only one job runs at a
// time (`submit_mutex_`); the submitting thread publishes the job, works
// on it itself, then waits for every helper that joined to drain.
// Because helpers register under `mutex_` while the job pointer is still
// published, and the submitter unpublishes it under the same mutex
// before waiting, a helper can never touch the stack-allocated Job after
// ParallelFor returns.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers may outlive exit hooks
    return *pool;
  }

  void Run(std::size_t count, std::size_t num_threads,
           const std::function<void(std::size_t)>& fn) {
    std::lock_guard<std::mutex> submit(submit_mutex_);
    Job job;
    job.fn = &fn;
    job.count = count;
    job.max_helpers = num_threads - 1;  // the caller is the Nth participant
    EnsureHelpers(job.max_helpers);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = &job;
      ++epoch_;
    }
    work_cv_.notify_all();
    Work(&job);  // caller participates; guarantees progress with zero helpers
    std::unique_lock<std::mutex> lock(mutex_);
    current_ = nullptr;  // no new helper may join from here on
    done_cv_.wait(lock, [&job] { return job.active == 0; });
    std::exception_ptr error = job.first_error;
    lock.unlock();
    if (error) std::rethrow_exception(error);
  }

  std::size_t ThreadCount() {
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
  }

 private:
  // Helpers are capped well above any sane num_threads request but low
  // enough that a pathological caller cannot exhaust process limits.
  static constexpr std::size_t kMaxHelpers = 64;

  void EnsureHelpers(std::size_t wanted) {
    std::lock_guard<std::mutex> lock(mutex_);
    wanted = std::min(wanted, kMaxHelpers);
    while (threads_.size() < wanted) {
      threads_.emplace_back([this] { HelperLoop(); });
    }
  }

  void HelperLoop() {
    t_in_parallel_region = true;  // helpers only ever run inside jobs
    std::uint64_t seen_epoch = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return current_ != nullptr && epoch_ != seen_epoch;
        });
        seen_epoch = epoch_;
        job = current_;
        if (job->joined >= job->max_helpers) continue;  // job already fully staffed
        ++job->joined;
        ++job->active;
      }
      Work(job);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --job->active;
      }
      done_cv_.notify_all();
    }
  }

  static void Work(Job* job) {
    for (;;) {
      if (job->cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->count) return;
      try {
        (*job->fn)(i);
      } catch (...) {
        bool expected = false;
        if (job->cancelled.compare_exchange_strong(expected, true)) {
          job->first_error = std::current_exception();
        }
        return;
      }
    }
  }

  std::mutex submit_mutex_;  // serializes whole jobs
  std::mutex mutex_;         // guards current_/epoch_/threads_ and Job counters
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* current_ = nullptr;
  std::uint64_t epoch_ = 0;  // bumped per job so a helper joins each job at most once
  std::vector<std::thread> threads_;
};

}  // namespace

void ParallelFor(std::size_t count, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, count);
  // Nested calls run inline: the enclosing ParallelFor already owns the
  // pool (and, on the submitting thread, its submit mutex), so the
  // inner loop's indices just execute in order on this thread.
  if (num_threads <= 1 || count == 1 || t_in_parallel_region) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  t_in_parallel_region = true;  // the caller participates in the job
  try {
    ThreadPool::Global().Run(count, num_threads, fn);
  } catch (...) {
    t_in_parallel_region = false;
    throw;
  }
  t_in_parallel_region = false;
}

bool InParallelWorker() { return t_in_parallel_region; }

namespace internal {
std::size_t PoolThreadCount() { return ThreadPool::Global().ThreadCount(); }
}  // namespace internal

}  // namespace poisonrec
