#include "nn/sparse.h"

#include <algorithm>
#include <map>

#include "nn/graph.h"
#include "nn/kernels.h"

namespace poisonrec::nn {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  // Coalesce duplicates, then sort by (row, col).
  std::map<std::pair<std::size_t, std::size_t>, float> coalesced;
  for (const Triplet& t : triplets) {
    POISONREC_CHECK_LT(t.row, rows);
    POISONREC_CHECK_LT(t.col, cols);
    coalesced[{t.row, t.col}] += t.value;
  }
  row_offsets_.assign(rows + 1, 0);
  col_indices_.reserve(coalesced.size());
  values_.reserve(coalesced.size());
  for (const auto& [rc, v] : coalesced) {
    ++row_offsets_[rc.first + 1];
    col_indices_.push_back(rc.second);
    values_.push_back(v);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    row_offsets_[r + 1] += row_offsets_[r];
  }

  // Transpose by counting sort. Walking the forward CSR in storage
  // order and appending to each column's bucket keeps every column's
  // entries in ascending original-row order (see t_row_offsets() docs).
  t_row_offsets_.assign(cols + 1, 0);
  for (std::size_t c : col_indices_) ++t_row_offsets_[c + 1];
  for (std::size_t c = 0; c < cols; ++c) {
    t_row_offsets_[c + 1] += t_row_offsets_[c];
  }
  t_col_indices_.resize(values_.size());
  t_values_.resize(values_.size());
  std::vector<std::size_t> cursor(t_row_offsets_.begin(),
                                  t_row_offsets_.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      const std::size_t dst = cursor[col_indices_[p]]++;
      t_col_indices_[dst] = r;
      t_values_[dst] = values_[p];
    }
  }
}

namespace {

// Forward rows are partitioned like the dense kernels: each output row
// is owned by one thread and its entry order (p ascending) never
// depends on the partition, so results are bit-identical at any thread
// count. Zero-fills first so the same helper serves graph replay.
void SpmmForward(const CsrMatrix* am, const internal::TensorImpl* xi,
                 internal::TensorImpl* oi, std::size_t n) {
  std::fill(oi->data.begin(), oi->data.end(), 0.0f);
  float* od = oi->data.data();
  const float* xd = xi->data.data();
  kernels::ParallelRows(
      am->rows(), am->nnz() * n, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          float* orow = od + r * n;
          for (std::size_t p = am->row_offsets()[r];
               p < am->row_offsets()[r + 1]; ++p) {
            const float v = am->values()[p];
            const float* xrow = xd + am->col_indices()[p] * n;
            for (std::size_t c = 0; c < n; ++c) orow[c] += v * xrow[c];
          }
        }
      });
}

}  // namespace

Tensor SparseMatMul(const CsrMatrix& a, const Tensor& x) {
  POISONREC_CHECK_EQ(a.cols(), x.rows());
  const std::size_t n = x.cols();
  Tensor out = Tensor::Zeros(a.rows(), n);
  SpmmForward(&a, x.impl().get(), out.impl().get(), n);
  if (GradEnabled() && x.requires_grad()) {
    auto oi = out.impl();
    oi->requires_grad = true;
    oi->EnsureGrad();
    oi->parents.push_back(x.impl());
    x.impl()->EnsureGrad();
    internal::TensorImpl* xi = x.impl().get();
    internal::TensorImpl* oraw = oi.get();
    const CsrMatrix* am = &a;  // caller must keep the matrix alive
    oi->backward_fn = [am, xi, oraw, n]() {
      // dx = Aᵀ · dout over the transposed CSR: dx row c accumulates
      // its column's entries in ascending original-row order — the
      // exact order the old serial (r, p) scatter used — and each dx
      // row is owned by one thread.
      kernels::ParallelRows(
          am->cols(), am->nnz() * n, [&](std::size_t c0, std::size_t c1) {
            for (std::size_t c = c0; c < c1; ++c) {
              float* xgrow = xi->grad.data() + c * n;
              for (std::size_t p = am->t_row_offsets()[c];
                   p < am->t_row_offsets()[c + 1]; ++p) {
                const float v = am->t_values()[p];
                const float* grow =
                    oraw->grad.data() + am->t_col_indices()[p] * n;
                for (std::size_t j = 0; j < n; ++j) xgrow[j] += v * grow[j];
              }
            }
          });
    };
    if (GraphTape* tape = GraphTape::Current()) {
      oi->forward_fn = [am, xi, oraw, n]() { SpmmForward(am, xi, oraw, n); };
      tape->Register(oi);
    }
  }
  return out;
}

}  // namespace poisonrec::nn
