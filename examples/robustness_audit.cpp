// Using the attack framework defensively: a robustness audit. Given one
// interaction log, train the same fixed-budget PoisonRec attacker against
// every ranker and rank the algorithms by how much target exposure the
// attacker can buy — the number a platform owner needs when choosing a
// model. (The paper's Table III read column-wise.)
//
// Part two flips the question: how much does a *degraded* attack channel
// protect the platform? The same attacker is retrained under increasingly
// hostile conditions (query failures, dropped clicks, shadow bans) and the
// remaining damage is reported per severity level.
//
// Build: cmake --build build && ./build/examples/robustness_audit
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/poisonrec.h"
#include "env/fault.h"

using namespace poisonrec;

int main() {
  data::SyntheticConfig data_config =
      data::PresetConfig(data::DatasetPreset::kPhone, /*scale=*/0.05, 31);
  data::Dataset log = data::GenerateSynthetic(data_config);
  std::printf(
      "robustness audit on synthetic Phone (%zu users, %zu items, %zu "
      "events)\n",
      log.num_users(), log.num_items(), log.num_interactions());
  std::printf("attacker budget: 12 accounts x 12 clicks, 8 target items\n\n");

  struct Row {
    std::string ranker;
    double baseline;
    double poisoned;
  };
  std::vector<Row> rows;
  for (const std::string& name : rec::AllRecommenderNames()) {
    rec::FitConfig fit;
    fit.embedding_dim = 16;
    env::EnvironmentConfig env_config;
    env_config.num_attackers = 12;
    env_config.trajectory_length = 12;
    env_config.num_target_items = 8;
    env_config.num_candidate_originals = 60;
    env_config.max_eval_users = 150;
    env_config.seed = 4;
    env::AttackEnvironment system(
        log, rec::MakeRecommender(name, fit).value(), env_config);

    core::PoisonRecConfig config;
    config.samples_per_step = 6;
    config.batch_size = 6;
    config.policy.embedding_dim = 16;
    core::PoisonRecAttacker attacker(&system, config);
    attacker.Train(8);
    rows.push_back({name, system.BaselineRecNum(),
                    system.Evaluate(attacker.BestAttack())});
    std::printf("audited %s...\n", name.c_str());
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return (a.poisoned - a.baseline) < (b.poisoned - b.baseline);
  });
  std::printf("\n%-14s %10s %10s %10s   (most robust first)\n", "Ranker",
              "baseline", "poisoned", "damage");
  std::printf("---------------------------------------------------\n");
  for (const Row& row : rows) {
    std::printf("%-14s %10.0f %10.0f %10.0f\n", row.ranker.c_str(),
                row.baseline, row.poisoned, row.poisoned - row.baseline);
  }

  // Part two: damage that survives an unreliable attack channel. Severity
  // scales query failures, click drops, and shadow bans together; the
  // attacker retries transient errors and imputes what it never observes.
  std::printf("\nattack-channel degradation sweep (ItemPop target)\n");
  std::printf("%-9s %9s %9s %9s   %s\n", "severity", "failures", "drops",
              "bans", "damage (clean re-eval of learned best attack)");
  std::printf("---------------------------------------------------\n");
  for (const double severity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    rec::FitConfig fit;
    fit.embedding_dim = 16;
    env::EnvironmentConfig env_config;
    env_config.num_attackers = 12;
    env_config.trajectory_length = 12;
    env_config.num_target_items = 8;
    env_config.num_candidate_originals = 60;
    env_config.max_eval_users = 150;
    env_config.seed = 4;
    env::AttackEnvironment system(
        log, rec::MakeRecommender("ItemPop", fit).value(), env_config);

    env::FaultProfile profile;
    profile.query_failure_rate = 0.3 * severity;
    profile.injection_drop_rate = 0.2 * severity;
    profile.shadow_ban_rate = 0.1 * severity;
    profile.seed = 99;
    env::FaultyEnvironment faulty(&system, profile);

    core::PoisonRecConfig config;
    config.samples_per_step = 6;
    config.batch_size = 6;
    config.policy.embedding_dim = 16;
    core::PoisonRecAttacker attacker(&system, config);
    attacker.AttachFaultyEnvironment(&faulty);
    attacker.Train(8);
    const double damage =
        system.Evaluate(attacker.BestAttack()) - system.BaselineRecNum();
    std::printf("%-9.2f %9.2f %9.2f %9.2f   %.0f\n", severity,
                profile.query_failure_rate, profile.injection_drop_rate,
                profile.shadow_ban_rate, damage);
  }
  return 0;
}
