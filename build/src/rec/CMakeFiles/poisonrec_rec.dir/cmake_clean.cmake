file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_rec.dir/autorec.cc.o"
  "CMakeFiles/poisonrec_rec.dir/autorec.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/bpr.cc.o"
  "CMakeFiles/poisonrec_rec.dir/bpr.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/candidates.cc.o"
  "CMakeFiles/poisonrec_rec.dir/candidates.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/covisitation.cc.o"
  "CMakeFiles/poisonrec_rec.dir/covisitation.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/factor_model.cc.o"
  "CMakeFiles/poisonrec_rec.dir/factor_model.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/gru4rec.cc.o"
  "CMakeFiles/poisonrec_rec.dir/gru4rec.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/itemknn.cc.o"
  "CMakeFiles/poisonrec_rec.dir/itemknn.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/itempop.cc.o"
  "CMakeFiles/poisonrec_rec.dir/itempop.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/metrics.cc.o"
  "CMakeFiles/poisonrec_rec.dir/metrics.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/neumf.cc.o"
  "CMakeFiles/poisonrec_rec.dir/neumf.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/ngcf.cc.o"
  "CMakeFiles/poisonrec_rec.dir/ngcf.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/pmf.cc.o"
  "CMakeFiles/poisonrec_rec.dir/pmf.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/recommender.cc.o"
  "CMakeFiles/poisonrec_rec.dir/recommender.cc.o.d"
  "CMakeFiles/poisonrec_rec.dir/registry.cc.o"
  "CMakeFiles/poisonrec_rec.dir/registry.cc.o.d"
  "libpoisonrec_rec.a"
  "libpoisonrec_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
