#include "orch/spec.h"

#include <cmath>
#include <initializer_list>
#include <set>
#include <string_view>

namespace poisonrec::orch {

namespace {

Status KeyError(const char* what, const std::string& key,
                const std::string& detail) {
  return Status::InvalidArgument(std::string(what) + " key \"" + key +
                                 "\": " + detail);
}

/// Unknown keys are plan bugs: a misspelled "stall_timeout_seconds"
/// must not silently run without a watchdog.
Status CheckKeys(const JsonValue& obj,
                 std::initializer_list<std::string_view> allowed,
                 const char* what) {
  for (const auto& member : obj.members) {
    bool known = false;
    for (std::string_view key : allowed) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      return KeyError(what, member.first, "unknown key");
    }
  }
  return Status::OK();
}

Status ReadDouble(const JsonValue& obj, const char* key, double* out,
                  const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return KeyError(what, key, "expected a number");
  *out = v->number_value;
  return Status::OK();
}

Status ReadSize(const JsonValue& obj, const char* key, std::size_t* out,
                const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number() || v->number_value < 0.0 ||
      v->number_value != std::floor(v->number_value)) {
    return KeyError(what, key, "expected a non-negative integer");
  }
  *out = static_cast<std::size_t>(v->number_value);
  return Status::OK();
}

Status ReadU64(const JsonValue& obj, const char* key, std::uint64_t* out,
               const char* what) {
  std::size_t tmp = static_cast<std::size_t>(*out);
  POISONREC_RETURN_NOT_OK(ReadSize(obj, key, &tmp, what));
  *out = tmp;
  return Status::OK();
}

Status ReadU32(const JsonValue& obj, const char* key, std::uint32_t* out,
               const char* what) {
  std::size_t tmp = *out;
  POISONREC_RETURN_NOT_OK(ReadSize(obj, key, &tmp, what));
  *out = static_cast<std::uint32_t>(tmp);
  return Status::OK();
}

Status ReadInt(const JsonValue& obj, const char* key, int* out,
               const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number() || v->number_value != std::floor(v->number_value)) {
    return KeyError(what, key, "expected an integer");
  }
  *out = static_cast<int>(v->number_value);
  return Status::OK();
}

Status ReadBool(const JsonValue& obj, const char* key, bool* out,
                const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_bool()) return KeyError(what, key, "expected true/false");
  *out = v->bool_value;
  return Status::OK();
}

Status ReadString(const JsonValue& obj, const char* key, std::string* out,
                  const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) return KeyError(what, key, "expected a string");
  *out = v->string_value;
  return Status::OK();
}

Status ApplyFaultObject(const JsonValue& obj, env::FaultProfile* fault) {
  static constexpr const char* kWhat = "fault";
  POISONREC_RETURN_NOT_OK(CheckKeys(
      obj,
      {"failure", "throttle", "throttle_cooldown", "drop", "shadow_ban",
       "noise", "stale", "nan", "seed"},
      kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "failure", &fault->query_failure_rate, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "throttle", &fault->throttle_rate, kWhat));
  POISONREC_RETURN_NOT_OK(ReadU32(obj, "throttle_cooldown",
                                  &fault->throttle_cooldown_attempts, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "drop", &fault->injection_drop_rate, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "shadow_ban", &fault->shadow_ban_rate, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "noise", &fault->reward_noise_stddev, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "stale", &fault->stale_reward_rate, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "nan", &fault->nan_reward_rate, kWhat));
  POISONREC_RETURN_NOT_OK(ReadU64(obj, "seed", &fault->seed, kWhat));
  return Status::OK();
}

/// Applies one campaign object's keys onto `spec` (which starts as a
/// copy of the plan defaults). `allow_id` is false for the "defaults"
/// block, where an id would be nonsense.
Status ApplyCampaignKeys(const JsonValue& obj, CampaignSpec* spec,
                         bool allow_id, const char* what) {
  POISONREC_RETURN_NOT_OK(CheckKeys(
      obj,
      {"id", "ranker", "fault_preset", "fault", "defense", "detector",
       "defense_interval", "defense_bans", "defense_threshold",
       "defense_ban_prob", "defense_seed", "pool_reserve", "pool_min_live",
       "steps", "samples_per_step", "attackers", "trajectory_length",
       "targets", "embedding_dim", "eval_users", "seed", "retry_attempts",
       "retry_deadline_seconds", "priority", "deadline_seconds",
       "stall_timeout_seconds", "max_restarts", "restart_backoff_seconds",
       "max_preemptions"},
      what));
  if (!allow_id && obj.Find("id") != nullptr) {
    return KeyError(what, "id", "not allowed in the defaults block");
  }
  POISONREC_RETURN_NOT_OK(ReadString(obj, "id", &spec->id, what));
  POISONREC_RETURN_NOT_OK(ReadString(obj, "ranker", &spec->ranker, what));
  // The preset resets the whole profile; an explicit fault object then
  // overrides individual rates on top of it.
  if (const JsonValue* preset = obj.Find("fault_preset")) {
    if (!preset->is_string()) {
      return KeyError(what, "fault_preset", "expected a string");
    }
    spec->fault_preset = preset->string_value;
    POISONREC_ASSIGN_OR_RETURN(spec->fault,
                               FaultPresetProfile(spec->fault_preset));
  }
  if (const JsonValue* fault = obj.Find("fault")) {
    if (!fault->is_object()) {
      return KeyError(what, "fault", "expected an object");
    }
    POISONREC_RETURN_NOT_OK(ApplyFaultObject(*fault, &spec->fault));
  }
  POISONREC_RETURN_NOT_OK(ReadBool(obj, "defense", &spec->defense, what));
  POISONREC_RETURN_NOT_OK(ReadString(obj, "detector", &spec->detector, what));
  POISONREC_RETURN_NOT_OK(ReadSize(
      obj, "defense_interval", &spec->defense_profile.detection_interval,
      what));
  POISONREC_RETURN_NOT_OK(ReadSize(
      obj, "defense_bans", &spec->defense_profile.bans_per_sweep, what));
  POISONREC_RETURN_NOT_OK(ReadDouble(
      obj, "defense_threshold", &spec->defense_profile.suspicion_threshold,
      what));
  POISONREC_RETURN_NOT_OK(ReadDouble(
      obj, "defense_ban_prob", &spec->defense_profile.ban_probability, what));
  POISONREC_RETURN_NOT_OK(
      ReadU64(obj, "defense_seed", &spec->defense_profile.seed, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "pool_reserve", &spec->pool_reserve, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "pool_min_live", &spec->pool_min_live, what));
  POISONREC_RETURN_NOT_OK(ReadSize(obj, "steps", &spec->steps, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "samples_per_step", &spec->samples_per_step, what));
  POISONREC_RETURN_NOT_OK(ReadSize(obj, "attackers", &spec->attackers, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "trajectory_length", &spec->trajectory_length, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "targets", &spec->num_target_items, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "embedding_dim", &spec->embedding_dim, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "eval_users", &spec->max_eval_users, what));
  POISONREC_RETURN_NOT_OK(ReadU64(obj, "seed", &spec->seed, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "retry_attempts", &spec->retry_attempts, what));
  POISONREC_RETURN_NOT_OK(ReadDouble(
      obj, "retry_deadline_seconds", &spec->retry_deadline_seconds, what));
  POISONREC_RETURN_NOT_OK(ReadInt(obj, "priority", &spec->priority, what));
  POISONREC_RETURN_NOT_OK(
      ReadDouble(obj, "deadline_seconds", &spec->deadline_seconds, what));
  POISONREC_RETURN_NOT_OK(ReadDouble(
      obj, "stall_timeout_seconds", &spec->stall_timeout_seconds, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "max_restarts", &spec->max_restarts, what));
  POISONREC_RETURN_NOT_OK(ReadDouble(
      obj, "restart_backoff_seconds", &spec->restart_backoff_seconds, what));
  POISONREC_RETURN_NOT_OK(
      ReadSize(obj, "max_preemptions", &spec->max_preemptions, what));
  return Status::OK();
}

bool ValidId(const std::string& id) {
  if (id.empty()) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Status ExpandSweep(const JsonValue& sweep, const CampaignSpec& base,
                   FleetPlan* plan) {
  static constexpr const char* kWhat = "sweep";
  POISONREC_RETURN_NOT_OK(CheckKeys(
      sweep, {"rankers", "fault_presets", "defenses", "budgets"}, kWhat));
  const auto strings = [&sweep](const char* key, const std::string& fallback,
                                std::vector<std::string>* out) -> Status {
    const JsonValue* v = sweep.Find(key);
    if (v == nullptr) {
      out->push_back(fallback);
      return Status::OK();
    }
    if (!v->is_array() || v->array.empty()) {
      return KeyError(kWhat, key, "expected a non-empty array");
    }
    for (const JsonValue& item : v->array) {
      if (!item.is_string()) {
        return KeyError(kWhat, key, "expected strings");
      }
      out->push_back(item.string_value);
    }
    return Status::OK();
  };
  std::vector<std::string> rankers;
  std::vector<std::string> presets;
  POISONREC_RETURN_NOT_OK(strings("rankers", base.ranker, &rankers));
  POISONREC_RETURN_NOT_OK(
      strings("fault_presets", base.fault_preset, &presets));
  std::vector<bool> defenses;
  if (const JsonValue* v = sweep.Find("defenses")) {
    if (!v->is_array() || v->array.empty()) {
      return KeyError(kWhat, "defenses", "expected a non-empty array");
    }
    for (const JsonValue& item : v->array) {
      if (!item.is_bool()) {
        return KeyError(kWhat, "defenses", "expected booleans");
      }
      defenses.push_back(item.bool_value);
    }
  } else {
    defenses.push_back(base.defense);
  }
  std::vector<std::size_t> budgets;
  if (const JsonValue* v = sweep.Find("budgets")) {
    if (!v->is_array() || v->array.empty()) {
      return KeyError(kWhat, "budgets", "expected a non-empty array");
    }
    for (const JsonValue& item : v->array) {
      if (!item.is_number() || item.number_value < 1.0 ||
          item.number_value != std::floor(item.number_value)) {
        return KeyError(kWhat, "budgets", "expected positive integers");
      }
      budgets.push_back(static_cast<std::size_t>(item.number_value));
    }
  } else {
    budgets.push_back(base.steps);
  }

  std::size_t index = 0;
  for (const std::string& ranker : rankers) {
    for (const std::string& preset : presets) {
      for (const bool defense : defenses) {
        for (const std::size_t budget : budgets) {
          CampaignSpec spec = base;
          spec.ranker = ranker;
          spec.fault_preset = preset;
          POISONREC_ASSIGN_OR_RETURN(spec.fault, FaultPresetProfile(preset));
          spec.defense = defense;
          spec.steps = budget;
          spec.id = ranker + "-" + preset + (defense ? "-def" : "-nodef") +
                    "-s" + std::to_string(budget);
          // Distinct policy/fault streams per sweep cell, derived from
          // the shared base seed so the plan stays one-number seedable.
          spec.seed = base.seed + index;
          spec.fault.seed = base.fault.seed + index;
          plan->campaigns.push_back(std::move(spec));
          ++index;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<env::FaultProfile> FaultPresetProfile(const std::string& name) {
  env::FaultProfile profile;  // "clean": every rate 0
  if (name == "clean") return profile;
  if (name == "flaky") {
    profile.query_failure_rate = 0.15;
    profile.throttle_rate = 0.10;
    profile.throttle_cooldown_attempts = 2;
    profile.injection_drop_rate = 0.05;
    return profile;
  }
  if (name == "blackout") {
    profile.query_failure_rate = 0.5;
    profile.throttle_rate = 0.3;
    profile.throttle_cooldown_attempts = 4;
    profile.injection_drop_rate = 0.1;
    return profile;
  }
  return Status::InvalidArgument("unknown fault preset \"" + name +
                                 "\" (want clean|flaky|blackout)");
}

StatusOr<FleetPlan> ParseFleetPlan(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("fleet plan must be a JSON object");
  }
  static constexpr const char* kWhat = "plan";
  POISONREC_RETURN_NOT_OK(CheckKeys(root,
                                    {"name", "dataset", "scale",
                                     "dataset_seed", "defaults", "campaigns",
                                     "sweep"},
                                    kWhat));
  FleetPlan plan;
  POISONREC_RETURN_NOT_OK(ReadString(root, "name", &plan.name, kWhat));
  POISONREC_RETURN_NOT_OK(ReadString(root, "dataset", &plan.dataset, kWhat));
  POISONREC_RETURN_NOT_OK(ReadDouble(root, "scale", &plan.scale, kWhat));
  POISONREC_RETURN_NOT_OK(
      ReadU64(root, "dataset_seed", &plan.dataset_seed, kWhat));

  CampaignSpec base;
  if (const JsonValue* defaults = root.Find("defaults")) {
    if (!defaults->is_object()) {
      return KeyError(kWhat, "defaults", "expected an object");
    }
    POISONREC_RETURN_NOT_OK(
        ApplyCampaignKeys(*defaults, &base, /*allow_id=*/false, "defaults"));
  }

  if (const JsonValue* campaigns = root.Find("campaigns")) {
    if (!campaigns->is_array()) {
      return KeyError(kWhat, "campaigns", "expected an array");
    }
    for (const JsonValue& entry : campaigns->array) {
      if (!entry.is_object()) {
        return KeyError(kWhat, "campaigns", "expected objects");
      }
      CampaignSpec spec = base;
      POISONREC_RETURN_NOT_OK(
          ApplyCampaignKeys(entry, &spec, /*allow_id=*/true, "campaign"));
      if (spec.id.empty()) {
        return KeyError("campaign", "id", "required for explicit campaigns");
      }
      plan.campaigns.push_back(std::move(spec));
    }
  }
  if (const JsonValue* sweep = root.Find("sweep")) {
    if (!sweep->is_object()) {
      return KeyError(kWhat, "sweep", "expected an object");
    }
    POISONREC_RETURN_NOT_OK(ExpandSweep(*sweep, base, &plan));
  }
  POISONREC_RETURN_NOT_OK(ValidatePlan(plan));
  return plan;
}

StatusOr<FleetPlan> ParseFleetPlanText(std::string_view json_text) {
  POISONREC_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json_text));
  return ParseFleetPlan(root);
}

StatusOr<FleetPlan> LoadFleetPlan(const std::string& path) {
  POISONREC_ASSIGN_OR_RETURN(const JsonValue root, ParseJsonFile(path));
  StatusOr<FleetPlan> plan = ParseFleetPlan(root);
  if (!plan.ok()) {
    return Status(plan.status().code(),
                  path + ": " + plan.status().message());
  }
  return plan;
}

Status ValidatePlan(const FleetPlan& plan) {
  if (plan.campaigns.empty()) {
    return Status::InvalidArgument(
        "fleet plan has no campaigns (add a campaigns array or a sweep "
        "block)");
  }
  if (plan.scale <= 0.0) {
    return Status::InvalidArgument("plan scale must be > 0");
  }
  std::set<std::string> ids;
  for (const CampaignSpec& spec : plan.campaigns) {
    POISONREC_RETURN_NOT_OK(ValidateCampaignSpec(spec));
    if (!ids.insert(spec.id).second) {
      return Status::InvalidArgument("duplicate campaign id \"" + spec.id +
                                     "\"");
    }
  }
  return Status::OK();
}

Status ValidateCampaignSpec(const CampaignSpec& spec) {
  if (!ValidId(spec.id)) {
    return Status::InvalidArgument(
        "campaign id \"" + spec.id +
        "\" must be non-empty [A-Za-z0-9._-] (it names journal keys and "
        "checkpoint files)");
  }
  const std::string where = "campaign \"" + spec.id + "\": ";
  if (spec.steps == 0) {
    return Status::InvalidArgument(where + "steps must be >= 1");
  }
  if (spec.samples_per_step < 2) {
    return Status::InvalidArgument(
        where + "samples_per_step must be >= 2 (Eq. 8 normalization)");
  }
  if (spec.attackers == 0 || spec.trajectory_length == 0 ||
      spec.num_target_items == 0) {
    return Status::InvalidArgument(
        where + "attackers, trajectory_length and targets must be >= 1");
  }
  if (spec.fault.stale_reward_rate > 0.0) {
    return Status::InvalidArgument(
        where +
        "stale reward faults are process-local runtime state and break "
        "bit-identical crash recovery; the orchestrator refuses them");
  }
  if (spec.defense && spec.pool_reserve > 0 &&
      spec.pool_min_live > spec.attackers) {
    return Status::InvalidArgument(
        where + "pool_min_live exceeds the attacker fleet size");
  }
  if (spec.retry_attempts == 0) {
    return Status::InvalidArgument(where + "retry_attempts must be >= 1");
  }
  return Status::OK();
}

StatusOr<CampaignSpec> ParseCampaignSpecText(std::string_view json_text) {
  POISONREC_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(json_text));
  if (!root.is_object()) {
    return Status::InvalidArgument("campaign spec must be a JSON object");
  }
  CampaignSpec spec;
  POISONREC_RETURN_NOT_OK(
      ApplyCampaignKeys(root, &spec, /*allow_id=*/true, "campaign"));
  if (spec.id.empty()) {
    return KeyError("campaign", "id", "required for submitted campaigns");
  }
  POISONREC_RETURN_NOT_OK(ValidateCampaignSpec(spec));
  return spec;
}

core::PoisonRecConfig MakeAttackerConfig(const CampaignSpec& spec) {
  core::PoisonRecConfig config;
  config.samples_per_step = spec.samples_per_step;
  config.batch_size = spec.samples_per_step;
  config.policy.embedding_dim = spec.embedding_dim;
  config.seed = spec.seed;
  config.retry.max_attempts = spec.retry_attempts;
  config.retry.max_elapsed_seconds = spec.retry_deadline_seconds;
  // Fleet concurrency lives one level up (orch/fleet.h): each campaign
  // runs its inner loops inline on its worker thread, which also keeps
  // a single-campaign child process fork-safe for crash-recovery tests.
  config.num_threads = 1;
  config.parallel_rewards = false;
  // TrainGuarded requires the guardrails; the supervisor depends on its
  // checkpoint-after-every-clean-step contract.
  config.guard.enabled = true;
  if (spec.defense && spec.pool_reserve > 0) {
    config.pool.enabled = true;
    config.pool.reserve_accounts = spec.pool_reserve;
    config.pool.min_live_attackers = spec.pool_min_live;
  }
  return config;
}

env::EnvironmentConfig MakeEnvironmentConfig(const CampaignSpec& spec) {
  env::EnvironmentConfig config;
  config.num_attackers =
      spec.attackers + (spec.defense ? spec.pool_reserve : 0);
  config.trajectory_length = spec.trajectory_length;
  config.num_target_items = spec.num_target_items;
  config.max_eval_users = spec.max_eval_users;
  config.seed = spec.seed ^ 0x7u;
  return config;
}

}  // namespace poisonrec::orch
