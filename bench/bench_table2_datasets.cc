// Table II: statistics of the 4 evaluation datasets. Generates the
// synthetic stand-ins at the configured scale, prints the measured
// statistics next to the paper's full-scale counts, and sanity-checks the
// long-tail shape the attacks depend on.
#include <cstdio>

#include "bench/common.h"
#include "data/synthetic.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf("== Table II: dataset statistics (scale=%.3g) ==\n\n",
              config.scale);
  PrintTableHeader({"Dataset", "Users", "Items", "Samples", "Paper:U",
                    "Paper:I", "Paper:S", "Gini"});

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"dataset", "users", "items", "samples", "paper_users",
                 "paper_items", "paper_samples", "gini"});
  for (data::DatasetPreset preset :
       {data::DatasetPreset::kSteam, data::DatasetPreset::kMovieLens,
        data::DatasetPreset::kPhone, data::DatasetPreset::kClothing}) {
    const data::SyntheticConfig paper =
        data::PresetConfig(preset, 1.0, config.seed);
    data::Dataset d = MakeDataset(config, preset);

    // Gini coefficient of item popularity (long-tail check).
    std::vector<data::ItemId> order = d.ItemsByPopularity();
    const auto& pop = d.ItemPopularity();
    double cum = 0.0;
    double weighted = 0.0;
    for (std::size_t r = 0; r < order.size(); ++r) {
      weighted += static_cast<double>(r + 1) * pop[order[r]];
      cum += pop[order[r]];
    }
    const double n = static_cast<double>(order.size());
    const double gini =
        cum == 0.0 ? 0.0 : (2.0 * weighted) / (n * cum) - (n + 1.0) / n;

    PrintTableRow({data::DatasetPresetName(preset),
                   std::to_string(d.num_users()),
                   std::to_string(d.num_items()),
                   std::to_string(d.num_interactions()),
                   std::to_string(paper.num_users),
                   std::to_string(paper.num_items),
                   std::to_string(paper.num_interactions),
                   FormatCount(gini * 100.0) + "%"});
    csv.push_back({data::DatasetPresetName(preset),
                   std::to_string(d.num_users()),
                   std::to_string(d.num_items()),
                   std::to_string(d.num_interactions()),
                   std::to_string(paper.num_users),
                   std::to_string(paper.num_items),
                   std::to_string(paper.num_interactions),
                   std::to_string(gini)});
  }
  std::printf(
      "\nAvg events/item at paper scale: MovieLens %.0f (dense; the paper "
      "notes attacks on ItemPop fail there), Steam %.0f, Phone %.0f, "
      "Clothing %.0f\n",
      943317.0 / 3706, 180721.0 / 5134, 166560.0 / 10429, 239290.0 / 23033);
  WriteCsvOutput(config, "table2_datasets.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
