# Empty compiler generated dependencies file for bench_fig5_target_ratio.
# This may be replaced when dependencies are built.
