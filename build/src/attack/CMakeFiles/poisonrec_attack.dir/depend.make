# Empty dependencies file for poisonrec_attack.
# This may be replaced when dependencies are built.
