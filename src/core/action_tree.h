// Biased Complete Binary Tree (paper §III-E). Two complete binary trees —
// one over the target items I_t, one over the original items I — merged
// under a fresh root. The root decision encodes the priori knowledge
// (~0.5 probability of entering the target subtree at initialization);
// the complete-binary-tree shape gives O(log |I|) sampling and the
// popularity-ordered leaf assignment implements Assumption 1 (items with
// close popularity share ancestors).
#ifndef POISONREC_CORE_ACTION_TREE_H_
#define POISONREC_CORE_ACTION_TREE_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace poisonrec::core {

/// Static tree structure. Node features live in the Policy (internal
/// nodes have trainable embeddings; leaves reuse item embeddings).
class ActionTree {
 public:
  struct Node {
    int left = -1;
    int right = -1;
    int parent = -1;
    /// >= 0 for leaves: the real item id.
    long item = -1;
  };

  /// `target_leaves` / `original_leaves`: items assigned to the leaves of
  /// each subtree in left-to-right order. Both must be non-empty.
  ActionTree(const std::vector<data::ItemId>& target_leaves,
             const std::vector<data::ItemId>& original_leaves);

  /// Unbiased variant (ablation): one complete binary tree over all
  /// items, without the target/original root split.
  explicit ActionTree(const std::vector<data::ItemId>& leaves);

  int root() const { return root_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  bool IsLeaf(int id) const { return node(id).item >= 0; }
  data::ItemId LeafItem(int id) const {
    return static_cast<data::ItemId>(node(id).item);
  }
  /// The sibling of `id` (its parent's other child). Root has none.
  int Sibling(int id) const;

  /// Longest root-to-leaf node count (#decisions = MaxDepth()-1).
  std::size_t MaxDepth() const { return max_depth_; }

  /// Leaf node id holding `item`, or -1 when absent.
  int LeafOf(data::ItemId item) const;

  /// Items in left-to-right leaf order (testing aid).
  std::vector<data::ItemId> LeavesInOrder() const;

 private:
  /// Builds a complete binary tree over leaves [begin, begin+count) of
  /// `leaves`; returns the subtree root id.
  int BuildComplete(const std::vector<data::ItemId>& leaves,
                    std::size_t begin, std::size_t count);
  void CollectLeaves(int id, std::vector<data::ItemId>* out) const;
  std::size_t ComputeDepth(int id) const;

  std::vector<Node> nodes_;
  std::vector<int> leaf_of_item_;
  int root_ = -1;
  std::size_t max_depth_ = 0;
};

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_ACTION_TREE_H_
