#include "obs/event_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

#include "obs/crc32c.h"

namespace poisonrec::obs {

namespace {

/// kOnClose batches up to this many bytes before spilling to the fd.
constexpr std::size_t kBatchBytes = 256 * 1024;

/// Process-wide append fault hook (nullptr = no faults armed).
std::atomic<EventLog::AppendFaultHook> g_append_fault_hook{nullptr};

/// write(2) the whole buffer, retrying EINTR and partial writes (which
/// only occur on regular files under ENOSPC/RLIMIT_FSIZE — by then the
/// single-write atomicity guarantee is moot and completing the record
/// beats leaving a torn prefix mid-file).
bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void EventLog::SetAppendFaultHook(AppendFaultHook hook) {
  g_append_fault_hook.store(hook, std::memory_order_release);
}

bool EventLog::Open(const std::string& path, bool truncate,
                    FlushPolicy flush, bool checksum) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!buffer_.empty()) FlushBufferLocked();
    ::close(fd_);
    fd_ = -1;
  }
  // O_APPEND makes every write() an atomic seek-to-end+write in the
  // kernel, which is what lets multiple processes share one journal
  // file without interleaving lines (see the header contract).
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return false;
  path_ = path;
  flush_ = flush;
  checksum_ = checksum;
  buffer_.clear();
  lines_written_ = 0;
  return true;
}

bool EventLog::FlushBufferLocked() {
  if (buffer_.empty()) return true;
  const bool ok = WriteAll(fd_, buffer_.data(), buffer_.size());
  buffer_.clear();
  if (!ok) {
    ::close(fd_);
    fd_ = -1;
  }
  return ok;
}

bool EventLog::Append(std::string_view line) {
  // Copy the line outside the lock so the critical section is the
  // checksum splice (cheap: one CRC pass over a short line) plus one
  // write(2) (or one buffer append under kOnClose). checksum_ and
  // path_ are guarded by mu_, so the splice and fault-hook consult
  // stay inside it.
  std::string record;
  record.reserve(line.size() + 1);
  record.append(line);

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return false;
  if (checksum_) record = WithLineChecksum(std::move(record));
  record.push_back('\n');
  if (AppendFaultHook hook =
          g_append_fault_hook.load(std::memory_order_acquire);
      hook != nullptr && !hook(path_, &record)) {
    return false;
  }
  if (flush_ == FlushPolicy::kOnClose) {
    buffer_ += record;
    if (buffer_.size() >= kBatchBytes && !FlushBufferLocked()) return false;
    ++lines_written_;
    return true;
  }
  if (!WriteAll(fd_, record.data(), record.size())) return false;
  ++lines_written_;
  return true;
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    FlushBufferLocked();
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
}

bool EventLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

std::uint64_t EventLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

}  // namespace poisonrec::obs
