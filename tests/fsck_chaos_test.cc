// Storage-integrity chaos tests: sweep deterministic single-fault
// schedules (util/fsio.h FaultyFs) over a small fleet run and check the
// recovery contract end to end:
//
//   1. Every fsio fault class injected into the checkpoint path —
//      ENOSPC, EIO, short write, fsync failure, torn rename, bit flip —
//      is either survived transparently (retry loops, bounded restarts)
//      or surfaces as a classified failure; after the run, `fsck`
//      audits the state directory and a `--resume` pass reproduces the
//      fault-free reference bit-identically.
//   2. Offline corruption of the resume frontier (bit rot, torn
//      publish) is detected by fsck, quarantined by the resuming
//      supervisor into `<ckpt-dir>/corrupt/`, and recovered — from an
//      older token-suffixed epoch when one exists, from scratch
//      otherwise — with bit-identical final rewards either way.
//   3. Faults on the journal's O_APPEND path drop or tear whole
//      records; replay counts and skips the damage instead of trusting
//      it, and fsck flags interior corruption as unrepairable.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "orch/fleet.h"
#include "orch/fsck.h"
#include "orch/journal.h"
#include "orch/spec.h"
#include "util/fsio.h"

namespace poisonrec::orch {
namespace {

namespace fs = std::filesystem;

data::Dataset MakeLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 110;
  cfg.num_interactions = 1800;
  cfg.seed = 5;
  return data::GenerateSynthetic(cfg);
}

FleetPlan OnePlan(std::size_t steps) {
  FleetPlan plan;
  plan.name = "chaos";
  CampaignSpec spec;
  spec.id = "c0";
  spec.steps = steps;
  spec.samples_per_step = 4;
  spec.attackers = 8;
  spec.trajectory_length = 10;
  spec.num_target_items = 4;
  spec.embedding_dim = 8;
  spec.max_eval_users = 96;
  spec.seed = 77;
  plan.campaigns.push_back(std::move(spec));
  return plan;
}

FleetOptions DirOptions(const std::string& dir) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = "";
  options.report_csv_path = "";
  options.max_concurrent = 1;
  // Restart backoffs must not really sleep: fault-induced restarts are
  // part of the happy path here.
  options.restart_sleep = [](double) {};
  options.retry_sleep = [](double) {};
  return options;
}

FsckOptions FsckFor(const FleetOptions& options) {
  FsckOptions fsck;
  fsck.journal_path = options.journal_path;
  fsck.checkpoint_dir = options.checkpoint_dir;
  return fsck;
}

/// Disarms the process-wide fault shim even when an ASSERT bails out.
struct DisarmGuard {
  ~DisarmGuard() { FaultyFs::Instance().Disarm(); }
};

std::uint64_t CommittedSteps(const std::string& journal_base) {
  const std::vector<std::string> files =
      FleetJournal::ListJournalFiles(journal_base);
  if (files.empty()) return 0;
  auto replay = FleetJournal::Replay(files);
  if (!replay.ok()) return 0;
  std::uint64_t total = 0;
  for (const auto& [id, entry] : replay->campaigns) {
    total += entry.steps_completed;
  }
  return total;
}

void ExpectBitIdentical(const FleetResult& reference,
                        const FleetResult& merged) {
  ASSERT_EQ(reference.outcomes.size(), merged.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    const CampaignOutcome& ref = reference.outcomes[i];
    const CampaignOutcome& got = merged.outcomes[i];
    EXPECT_EQ(ref.id, got.id);
    EXPECT_EQ(got.steps_completed, ref.steps_completed) << ref.id;
    ASSERT_EQ(ref.step_rewards.size(), got.step_rewards.size()) << ref.id;
    for (const auto& [step, reward] : ref.step_rewards) {
      ASSERT_TRUE(got.step_rewards.count(step))
          << ref.id << " lost step " << step;
      EXPECT_DOUBLE_EQ(reward, got.step_rewards.at(step))
          << ref.id << " step " << step;
    }
    EXPECT_DOUBLE_EQ(ref.best_reward, got.best_reward) << ref.id;
  }
}

FleetResult RunFleet(const FleetPlan& plan, const data::Dataset& log,
                     const FleetOptions& options) {
  FleetOrchestrator orchestrator(plan, &log, options);
  return orchestrator.Run();
}

/// Runs the fleet until `min_steps` are durably committed, then
/// soft-stops it (checkpointed, resumable).
FleetResult RunInterrupted(const FleetPlan& plan, const data::Dataset& log,
                           const FleetOptions& options,
                           std::uint64_t min_steps) {
  FleetOrchestrator orchestrator(plan, &log, options);
  FleetResult result;
  std::thread runner([&] { result = orchestrator.Run(); });
  for (int i = 0; i < 4000; ++i) {
    if (CommittedSteps(options.journal_path) >= min_steps) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  orchestrator.RequestShutdown();
  runner.join();
  return result;
}

void FlipMiddleByte(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  ASSERT_GT(bytes.size(), 0u) << path;
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

void TruncateFile(const std::string& path, std::uint64_t keep_bytes) {
  std::error_code ec;
  fs::resize_file(path, keep_bytes, ec);
  ASSERT_FALSE(ec) << path << ": " << ec.message();
}

/// First artifact whose path ends with `suffix`; nullptr when absent.
const FsckArtifact* FindArtifact(const FsckReport& report,
                                 const std::string& suffix) {
  for (const FsckArtifact& artifact : report.artifacts) {
    if (artifact.path.size() >= suffix.size() &&
        artifact.path.compare(artifact.path.size() - suffix.size(),
                              suffix.size(), suffix) == 0) {
      return &artifact;
    }
  }
  return nullptr;
}

TEST(FsckChaosTest, EveryFsioFaultClassIsSurvivedOrClassified) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_sweep";
  fs::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  fs::create_directories(ref_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/8);

  const FleetResult reference = RunFleet(plan, log, DirOptions(ref_dir));
  ASSERT_EQ(reference.ExitCode(), 0) << reference.status;

  const FsFaultKind kinds[] = {
      FsFaultKind::kEnospc,    FsFaultKind::kEio,
      FsFaultKind::kShortWrite, FsFaultKind::kFsyncFail,
      FsFaultKind::kTornRename, FsFaultKind::kBitFlip,
  };
  for (const FsFaultKind kind : kinds) {
    SCOPED_TRACE(FsFaultKindName(kind));
    const std::string fault_dir =
        (base / ("fault_" + std::string(FsFaultKindName(kind)))).string();
    fs::create_directories(fault_dir);
    const FleetOptions options = DirOptions(fault_dir);

    // One fault on the second checkpoint-path operation of the run,
    // bit-deterministic under the fixed seed.
    DisarmGuard guard;
    FsFaultRule rule;
    rule.kind = kind;
    rule.path_substring = fault_dir + "/ckpts/";
    rule.nth = 2;
    FaultyFs::Instance().Arm(0x5eed0000u + static_cast<std::uint64_t>(kind),
                             {rule});
    const FleetResult faulted = RunFleet(plan, log, options);
    const FsFaultStats stats = FaultyFs::Instance().stats();
    FaultyFs::Instance().Disarm();
    EXPECT_EQ(stats.faults_injected, 1u)
        << "the scheduled fault never fired (writes_seen="
        << stats.writes_seen << ", fsyncs_seen=" << stats.fsyncs_seen
        << ", renames_seen=" << stats.renames_seen << ")";

    // fsck must classify whatever the fault left behind, never crash.
    auto audit = RunFsck(FsckFor(options));
    ASSERT_TRUE(audit.ok()) << audit.status();

    if (faulted.ExitCode() == 0) {
      // Survived (retried, restarted, or benign): a resume pass must
      // recover the terminal outcomes bit-identically.
      FleetOptions resume = options;
      resume.resume = true;
      const FleetResult resumed = RunFleet(plan, log, resume);
      ASSERT_EQ(resumed.ExitCode(), 0) << resumed.status;
      ExpectBitIdentical(reference, resumed);
    } else {
      // Not survived: the failure must be classified, not silent.
      ASSERT_EQ(faulted.outcomes.size(), 1u);
      const CampaignOutcome& outcome = faulted.outcomes[0];
      EXPECT_TRUE(outcome.state == CampaignState::kFailed ||
                  outcome.state == CampaignState::kQuarantined)
          << CampaignStateName(outcome.state);
      EXPECT_FALSE(outcome.detail.empty());
    }
  }
  fs::remove_all(base);
}

TEST(FsckChaosTest, CorruptFrontierCheckpointQuarantinedAndRecovered) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_bitrot";
  fs::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string run_dir = (base / "run").string();
  fs::create_directories(ref_dir);
  fs::create_directories(run_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/12);
  const FleetResult reference = RunFleet(plan, log, DirOptions(ref_dir));
  ASSERT_EQ(reference.ExitCode(), 0) << reference.status;

  const FleetOptions options = DirOptions(run_dir);
  const FleetResult interrupted =
      RunInterrupted(plan, log, options, /*min_steps=*/3);
  ASSERT_EQ(interrupted.interrupted, 1u)
      << "fleet finished before the shutdown - grow the plan";

  // Bit rot on the resume frontier: structurally the file still starts
  // with a valid header, only the whole-file checksum can tell.
  const std::string checkpoint = run_dir + "/ckpts/c0.ckpt";
  ASSERT_TRUE(fs::exists(checkpoint));
  FlipMiddleByte(checkpoint);

  // fsck: detected, and unrepairable (no sibling epoch to fall back to).
  auto audit = RunFsck(FsckFor(options));
  ASSERT_TRUE(audit.ok()) << audit.status();
  const FsckArtifact* damaged = FindArtifact(*audit, "c0.ckpt");
  ASSERT_NE(damaged, nullptr);
  EXPECT_EQ(damaged->verdict, FsckVerdict::kCorrupt) << damaged->detail;
  EXPECT_FALSE(damaged->repairable);
  EXPECT_EQ(audit->ExitCode(), 1);

  // Resume: the supervisor quarantines the rotten checkpoint and
  // replays the campaign from scratch — the deterministic sampling
  // streams reproduce the exact same committed rewards.
  FleetOptions resume = options;
  resume.resume = true;
  const FleetResult resumed = RunFleet(plan, log, resume);
  ASSERT_EQ(resumed.ExitCode(), 0) << resumed.status;
  EXPECT_EQ(resumed.checkpoints_quarantined, 1u);
  ASSERT_EQ(resumed.outcomes.size(), 1u);
  EXPECT_EQ(resumed.outcomes[0].checkpoints_quarantined, 1u);
  EXPECT_TRUE(fs::exists(run_dir + "/ckpts/corrupt/c0.ckpt"));
  ExpectBitIdentical(reference, resumed);

  // A final audit is clean: the quarantined file is informational, the
  // rewritten checkpoint and the journal family verify.
  auto after = RunFsck(FsckFor(options));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->ExitCode(), 0) << FormatFsckReport(*after);
  const FsckArtifact* quarantined =
      FindArtifact(*after, "corrupt/c0.ckpt");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(quarantined->kind, FsckArtifactKind::kQuarantined);
  fs::remove_all(base);
}

TEST(FsckChaosTest, TornFrontierCheckpointDetectedAndRecovered) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_torn";
  fs::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string run_dir = (base / "run").string();
  fs::create_directories(ref_dir);
  fs::create_directories(run_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/12);
  const FleetResult reference = RunFleet(plan, log, DirOptions(ref_dir));
  ASSERT_EQ(reference.ExitCode(), 0) << reference.status;

  const FleetOptions options = DirOptions(run_dir);
  const FleetResult interrupted =
      RunInterrupted(plan, log, options, /*min_steps=*/3);
  ASSERT_EQ(interrupted.interrupted, 1u)
      << "fleet finished before the shutdown - grow the plan";

  // A torn publish: the header landed, the integrity footer did not.
  const std::string checkpoint = run_dir + "/ckpts/c0.ckpt";
  ASSERT_TRUE(fs::exists(checkpoint));
  TruncateFile(checkpoint, 16);

  auto audit = RunFsck(FsckFor(options));
  ASSERT_TRUE(audit.ok()) << audit.status();
  const FsckArtifact* damaged = FindArtifact(*audit, "c0.ckpt");
  ASSERT_NE(damaged, nullptr);
  EXPECT_EQ(damaged->verdict, FsckVerdict::kTorn) << damaged->detail;
  EXPECT_EQ(audit->ExitCode(), 1);

  FleetOptions resume = options;
  resume.resume = true;
  const FleetResult resumed = RunFleet(plan, log, resume);
  ASSERT_EQ(resumed.ExitCode(), 0) << resumed.status;
  EXPECT_EQ(resumed.checkpoints_quarantined, 1u);
  EXPECT_TRUE(fs::exists(run_dir + "/ckpts/corrupt/c0.ckpt"));
  ExpectBitIdentical(reference, resumed);
  fs::remove_all(base);
}

TEST(FsckChaosTest, DamagedFrontierFallsBackToOlderTokenCheckpoint) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_fallback";
  fs::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string run_dir = (base / "run").string();
  fs::create_directories(ref_dir);
  fs::create_directories(run_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/12);
  const FleetResult reference = RunFleet(plan, log, DirOptions(ref_dir));
  ASSERT_EQ(reference.ExitCode(), 0) << reference.status;

  // Shared-mode worker A: checkpoints go to the token-suffixed
  // `c0.t1.ckpt`. Interrupt it mid-campaign.
  FleetOptions a_options = DirOptions(run_dir);
  a_options.shared = true;
  a_options.worker_id = "wA";
  a_options.lease_ttl_seconds = 0.5;
  const FleetResult interrupted =
      RunInterrupted(plan, log, a_options, /*min_steps=*/3);
  ASSERT_EQ(interrupted.interrupted, 1u)
      << "worker A finished before the shutdown - grow the plan";
  const std::string epoch1 = run_dir + "/ckpts/c0.t1.ckpt";
  ASSERT_TRUE(fs::exists(epoch1));

  // Fabricate a rotten next-epoch frontier: a bit-flipped copy at the
  // token the resuming worker will try first.
  const std::string epoch2 = run_dir + "/ckpts/c0.t2.ckpt";
  fs::copy_file(epoch1, epoch2);
  FlipMiddleByte(epoch2);

  // fsck knows this one IS repairable: an intact older epoch exists.
  auto audit = RunFsck(FsckFor(a_options));
  ASSERT_TRUE(audit.ok()) << audit.status();
  const FsckArtifact* damaged = FindArtifact(*audit, "c0.t2.ckpt");
  ASSERT_NE(damaged, nullptr);
  EXPECT_EQ(damaged->verdict, FsckVerdict::kCorrupt) << damaged->detail;
  EXPECT_TRUE(damaged->repairable) << damaged->detail;
  EXPECT_EQ(audit->ExitCode(), 2) << FormatFsckReport(*audit);

  // Worker B acquires token 2, tries c0.t2.ckpt first, quarantines it,
  // and falls back to worker A's intact epoch-1 checkpoint instead of
  // replaying the campaign from scratch.
  FleetOptions b_options = DirOptions(run_dir);
  b_options.shared = true;
  b_options.worker_id = "wB";
  b_options.lease_ttl_seconds = 0.5;
  b_options.resume = true;
  const FleetResult resumed = RunFleet(plan, log, b_options);
  ASSERT_EQ(resumed.ExitCode(), 0) << resumed.status;
  EXPECT_EQ(resumed.checkpoints_quarantined, 1u);
  EXPECT_TRUE(fs::exists(run_dir + "/ckpts/corrupt/c0.t2.ckpt"));
  ExpectBitIdentical(reference, resumed);
  fs::remove_all(base);
}

TEST(FsckChaosTest, JournalAppendDropLeavesFamilyStructurallyIntact) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_jdrop";
  fs::remove_all(base);
  const std::string run_dir = (base / "run").string();
  fs::create_directories(run_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/8);
  const FleetOptions options = DirOptions(run_dir);

  // EIO on the third journal append: the O_APPEND single-write contract
  // means the record is dropped WHOLE — the family never tears
  // mid-line from a failed write.
  DisarmGuard guard;
  FsFaultRule rule;
  rule.kind = FsFaultKind::kEio;
  rule.path_substring = run_dir + "/journal";
  rule.nth = 3;
  FaultyFs::Instance().Arm(0xd407, {rule});
  const FleetResult faulted = RunFleet(plan, log, options);
  const FsFaultStats stats = FaultyFs::Instance().stats();
  FaultyFs::Instance().Disarm();
  ASSERT_EQ(stats.faults_injected, 1u)
      << "appends_seen=" << stats.appends_seen;
  EXPECT_EQ(faulted.ExitCode(), 0) << faulted.status;

  // The surviving lines all verify: no interior corruption, no torn
  // tail, just one missing record.
  auto replay =
      FleetJournal::Replay(FleetJournal::ListJournalFiles(options.journal_path));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->malformed_lines, 0u);
  EXPECT_EQ(replay->corrupt_lines, 0u);
  auto audit = RunFsck(FsckFor(options));
  ASSERT_TRUE(audit.ok()) << audit.status();
  EXPECT_EQ(audit->ExitCode(), 0) << FormatFsckReport(*audit);
  fs::remove_all(base);
}

TEST(FsckChaosTest, JournalShortWriteTearsInteriorRecordWhichIsCounted) {
  const auto base = fs::temp_directory_path() / "poisonrec_chaos_jtear";
  fs::remove_all(base);
  const std::string run_dir = (base / "run").string();
  fs::create_directories(run_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = OnePlan(/*steps=*/8);
  const FleetOptions options = DirOptions(run_dir);

  // A short append tears record 3 mid-line; the next append glues onto
  // the torn prefix, producing one interior line whose checksum cannot
  // verify.
  DisarmGuard guard;
  FsFaultRule rule;
  rule.kind = FsFaultKind::kShortWrite;
  rule.path_substring = run_dir + "/journal";
  rule.nth = 3;
  FaultyFs::Instance().Arm(0x7ea8, {rule});
  const FleetResult faulted = RunFleet(plan, log, options);
  const FsFaultStats stats = FaultyFs::Instance().stats();
  FaultyFs::Instance().Disarm();
  ASSERT_EQ(stats.faults_injected, 1u)
      << "appends_seen=" << stats.appends_seen;
  // The live run is unaffected (outcomes are in-memory) ...
  EXPECT_EQ(faulted.ExitCode(), 0) << faulted.status;

  // ... but the torn interior record is real damage: counted by replay,
  // flagged unrepairable by fsck.
  auto replay =
      FleetJournal::Replay(FleetJournal::ListJournalFiles(options.journal_path));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_GE(replay->corrupt_lines + replay->malformed_lines, 1u);
  auto audit = RunFsck(FsckFor(options));
  ASSERT_TRUE(audit.ok()) << audit.status();
  const FsckArtifact* journal = FindArtifact(*audit, "journal.jsonl");
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->verdict, FsckVerdict::kCorrupt) << journal->detail;
  EXPECT_FALSE(journal->repairable);
  EXPECT_EQ(audit->ExitCode(), 1);

  // Resume still completes — the campaign's terminal state survived —
  // and the fleet report surfaces the corruption counters instead of
  // pretending the journal was clean.
  FleetOptions resume = options;
  resume.resume = true;
  const FleetResult resumed = RunFleet(plan, log, resume);
  ASSERT_EQ(resumed.ExitCode(), 0) << resumed.status;
  EXPECT_GE(resumed.journal_corrupt_lines + resumed.journal_malformed_lines,
            1u);
  fs::remove_all(base);
}

}  // namespace
}  // namespace poisonrec::orch
