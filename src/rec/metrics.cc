#include "rec/metrics.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/topk.h"

namespace poisonrec::rec {

RankingQuality EvaluateRanking(
    const Recommender& ranker, const data::Dataset& full,
    const std::vector<data::Interaction>& heldout,
    const EvalProtocol& protocol) {
  POISONREC_CHECK_GT(protocol.top_k, 0u);
  Rng rng(protocol.seed);
  RankingQuality quality;
  for (const data::Interaction& ev : heldout) {
    // Negatives: unseen items for this user.
    std::unordered_set<data::ItemId> seen;
    for (data::ItemId item : full.Sequence(ev.user)) seen.insert(item);
    std::vector<data::ItemId> candidates = {ev.item};
    while (candidates.size() < protocol.num_negatives + 1) {
      const data::ItemId j = rng.Index(full.num_items());
      if (j == ev.item || seen.count(j) > 0) continue;
      candidates.push_back(j);
    }
    const std::vector<double> scores = ranker.Score(ev.user, candidates);
    // Rank of the held-out item (index 0); ties break against it so a
    // constant scorer gets no credit.
    std::size_t rank = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (scores[i] >= scores[0]) ++rank;
    }
    if (rank < protocol.top_k) {
      quality.hit_rate += 1.0;
      quality.ndcg +=
          1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }
    ++quality.num_evaluated;
  }
  if (quality.num_evaluated > 0) {
    quality.hit_rate /= static_cast<double>(quality.num_evaluated);
    quality.ndcg /= static_cast<double>(quality.num_evaluated);
  }
  return quality;
}

double RandomHitRate(const EvalProtocol& protocol) {
  return static_cast<double>(protocol.top_k) /
         static_cast<double>(protocol.num_negatives + 1);
}

}  // namespace poisonrec::rec
