// Offline storage-integrity audit for a fleet state directory:
// `poisonrec fsck` walks the journal family, the campaign checkpoints
// and the lease files without running (or needing) any campaign, and
// classifies every artifact against the integrity framing that the
// write paths produce (obs/crc32c.h line checksums on JSONL records,
// util/fsio.h whole-file footers on checkpoints):
//
//   ok         intact (checksums verify; legacy unframed-but-parseable
//              artifacts also count as ok, with a note)
//   torn_tail  journal only: the final line of a file is damaged — the
//              expected kill -9 crash frontier; replay already tolerates
//              it, so this is repairable damage
//   torn       checkpoint published partially (footer absent or payload
//              length disagrees): an interrupted rename/write
//   corrupt    checksum mismatch with intact structure — bit rot — or a
//              foreign/incompatible file at the path
//   missing    the configured artifact does not exist at all
//
// Repairability is judged the way a resuming fleet would: a damaged
// checkpoint is repairable when an intact sibling checkpoint for the
// same campaign exists (the supervisor quarantines the bad file and
// falls back — orch/supervisor.h); a damaged lease is always repairable
// (the next acquire rewrites it); a torn journal tail is repairable
// (replay skips the frontier line); interior journal corruption is
// UNREPAIRABLE — those records are gone and replay can only count them.
//
// Exit-code contract (FsckReport::ExitCode): 0 = everything intact,
// 2 = damage found but every damaged artifact is repairable,
// 1 = at least one unrepairable artifact.
#ifndef POISONREC_ORCH_FSCK_H_
#define POISONREC_ORCH_FSCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace poisonrec::orch {

struct FsckOptions {
  /// Base journal path; the whole sibling family `<stem>*<ext>` is
  /// audited (orch/journal.h ListJournalFiles). Empty skips journals.
  std::string journal_path;
  /// Directory of `<id>.ckpt` / `<id>.t<token>.ckpt` checkpoints; its
  /// `corrupt/` subdirectory (prior quarantines) is listed as
  /// informational. Empty skips checkpoints.
  std::string checkpoint_dir;
  /// Lease directory; defaults to `<checkpoint_dir>/leases` (the fleet
  /// layout) when empty and checkpoint_dir is set.
  std::string lease_dir;
};

enum class FsckArtifactKind : std::uint8_t {
  kJournal = 0,
  kCheckpoint = 1,
  kLease = 2,
  /// A previously quarantined checkpoint in `<ckpt-dir>/corrupt/`;
  /// reported for forensics, never counted as damage (it is already
  /// out of the resume path).
  kQuarantined = 3,
};
const char* FsckArtifactKindName(FsckArtifactKind kind);

enum class FsckVerdict : std::uint8_t {
  kOk = 0,
  kTornTail = 1,
  kTorn = 2,
  kCorrupt = 3,
  kMissing = 4,
};
const char* FsckVerdictName(FsckVerdict verdict);

/// One audited file (or one configured-but-absent artifact).
struct FsckArtifact {
  FsckArtifactKind kind = FsckArtifactKind::kJournal;
  std::string path;
  FsckVerdict verdict = FsckVerdict::kOk;
  /// Meaningful only when verdict != kOk/kMissing: whether the damage
  /// is survivable without data loss beyond what replay already skips.
  bool repairable = false;
  /// Human-readable classification ("checksum mismatch (corrupt file)",
  /// "2 interior records corrupt", ...).
  std::string detail;
};

struct FsckReport {
  std::vector<FsckArtifact> artifacts;
  std::size_t intact = 0;
  std::size_t damaged_repairable = 0;
  std::size_t damaged_unrepairable = 0;
  /// 0 clean, 2 only repairable damage, 1 unrepairable damage.
  int ExitCode() const;
};

/// Audits the state directory offline. Only orchestrator-level failures
/// (e.g. an unreadable directory) are non-OK; damaged artifacts are
/// verdicts in the report, not errors.
StatusOr<FsckReport> RunFsck(const FsckOptions& options);

/// Renders the per-artifact verdict table plus a one-line summary, the
/// way `poisonrec fsck` prints it.
std::string FormatFsckReport(const FsckReport& report);

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_FSCK_H_
