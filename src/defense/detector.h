// Poisoning-account detection — the defensive counterpart of the attack
// framework (the paper's future-work direction). A detector reads the
// (possibly poisoned) interaction log and assigns every user a suspicion
// score; higher = more likely a fake account. Detectors are unsupervised:
// they exploit the statistical fingerprints injection attacks leave
// behind (clicking brand-new items, low-entropy repeat clicking,
// near-duplicate trajectories across the attacker fleet).
#ifndef POISONREC_DEFENSE_DETECTOR_H_
#define POISONREC_DEFENSE_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace poisonrec::defense {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string Name() const = 0;

  /// Suspicion score per user id (size = log.num_users()); users with no
  /// interactions score 0.
  virtual std::vector<double> Score(const data::Dataset& log) const = 0;
};

/// Flags users whose clicks concentrate on globally unpopular items.
/// Item promotion attacks must click the (cold) targets heavily, pulling
/// the user's mean popularity-rank far below the population's.
class ColdItemAffinityDetector : public Detector {
 public:
  std::string Name() const override { return "ColdItemAffinity"; }
  std::vector<double> Score(const data::Dataset& log) const override;
};

/// Flags users with abnormally low click entropy (few distinct items
/// clicked over and over — e.g., the target-only strategies PoisonRec
/// learns against popularity rankers).
class ClickEntropyDetector : public Detector {
 public:
  std::string Name() const override { return "ClickEntropy"; }
  std::vector<double> Score(const data::Dataset& log) const override;
};

/// Flags fleets: users whose item multisets are near-duplicates of other
/// users'. Attack trajectories sampled from one shared policy are far
/// more similar to each other than organic sessions.
class FleetSimilarityDetector : public Detector {
 public:
  /// Only users with at least `min_length` events are compared.
  explicit FleetSimilarityDetector(std::size_t min_length = 3);

  std::string Name() const override { return "FleetSimilarity"; }
  std::vector<double> Score(const data::Dataset& log) const override;

 private:
  std::size_t min_length_;
};

/// Rank-averages the scores of several detectors.
class EnsembleDetector : public Detector {
 public:
  explicit EnsembleDetector(std::vector<std::unique_ptr<Detector>> parts);

  std::string Name() const override { return "Ensemble"; }
  std::vector<double> Score(const data::Dataset& log) const override;

 private:
  std::vector<std::unique_ptr<Detector>> parts_;
};

/// Builds the default ensemble (all three detectors above).
std::unique_ptr<Detector> MakeDefaultEnsemble();

/// Area under the ROC curve of `scores` against the ground-truth fake
/// user ids: 1.0 = perfect separation, 0.5 = chance. Ties contribute 0.5.
/// Degenerate inputs (no fake users, all users fake, fake ids outside the
/// score vector, constant scores) return the chance value 0.5.
double DetectionAuc(const std::vector<double>& scores,
                    const std::vector<data::UserId>& fake_users);

/// Mitigation: returns a copy of `log` with the `fraction` most
/// suspicious users' interactions removed (capacities preserved, so the
/// filtered log can retrain the same ranker). Ties at the cutoff break
/// by user id.
data::Dataset RemoveSuspiciousUsers(const data::Dataset& log,
                                    const std::vector<double>& scores,
                                    double fraction);

}  // namespace poisonrec::defense

#endif  // POISONREC_DEFENSE_DETECTOR_H_
