#include "orch/supervisor.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "defense/detector.h"
#include "obs/metrics.h"
#include "rec/registry.h"
#include "util/logging.h"

namespace poisonrec::orch {

namespace {

bool AnyFaults(const env::FaultProfile& fault) {
  return fault.query_failure_rate > 0.0 || fault.throttle_rate > 0.0 ||
         fault.injection_drop_rate > 0.0 || fault.shadow_ban_rate > 0.0 ||
         fault.reward_noise_stddev > 0.0 || fault.stale_reward_rate > 0.0 ||
         fault.nan_reward_rate > 0.0;
}

StatusOr<std::unique_ptr<defense::Detector>> MakeDetector(
    const std::string& name) {
  if (name == "cold") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::ColdItemAffinityDetector>());
  }
  if (name == "entropy") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::ClickEntropyDetector>());
  }
  if (name == "fleet") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::FleetSimilarityDetector>());
  }
  if (name == "ensemble") {
    return std::unique_ptr<defense::Detector>(
        defense::MakeDefaultEnsemble());
  }
  return Status::InvalidArgument("unknown detector \"" + name +
                                 "\" (want ensemble|cold|entropy|fleet)");
}

obs::Counter* FleetCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

CampaignSupervisor::CampaignSupervisor(const CampaignSpec& spec,
                                       const data::Dataset* dataset,
                                       SupervisorOptions options)
    : spec_(spec), dataset_(dataset), options_(std::move(options)) {
  POISONREC_CHECK(dataset_ != nullptr);
}

std::string CampaignSupervisor::CheckpointPath() const {
  return (std::filesystem::path(options_.checkpoint_dir) /
          (spec_.id + ".ckpt"))
      .string();
}

void CampaignSupervisor::Journal(CampaignState state, std::uint64_t step,
                                 double reward, double best_reward,
                                 std::uint64_t restarts,
                                 const std::string& detail) {
  if (options_.journal == nullptr) return;
  CampaignJournalRecord record;
  record.campaign_id = spec_.id;
  record.state = state;
  record.step = step;
  record.reward = reward;
  record.best_reward = best_reward;
  record.restarts = restarts;
  record.detail = detail;
  options_.journal->Record(record);
}

void CampaignSupervisor::Abort(const std::string& reason,
                               bool allow_restart) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_reason_ = reason;
  }
  abort_allow_restart_.store(allow_restart, std::memory_order_release);
  cancel_.Cancel();
}

std::string CampaignSupervisor::TakeAbortReason() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string reason = abort_reason_.empty() ? "cancelled" : abort_reason_;
  abort_reason_.clear();
  return reason;
}

double CampaignSupervisor::SecondsSinceHeartbeat() const {
  const std::uint64_t ticks =
      heartbeat_ticks_.load(std::memory_order_acquire);
  if (ticks == 0) return 0.0;
  return internal::ElapsedSecondsSince(ticks);
}

double CampaignSupervisor::SecondsSinceStart() const {
  const std::uint64_t ticks = start_ticks_.load(std::memory_order_acquire);
  if (ticks == 0) return 0.0;
  return internal::ElapsedSecondsSince(ticks);
}

void CampaignSupervisor::SleepForRestart(double seconds) {
  if (options_.restart_sleep) {
    options_.restart_sleep(seconds);
    return;
  }
  // Real sleep in small slices so a fleet shutdown request does not
  // have to wait out the whole backoff.
  double remaining = seconds;
  while (remaining > 0.0) {
    if (options_.fleet_stop != nullptr &&
        options_.fleet_stop->load(std::memory_order_acquire)) {
      return;
    }
    const double slice = std::min(remaining, 0.02);
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
    remaining -= slice;
  }
}

Status CampaignSupervisor::RunAttempt(CampaignOutcome* outcome) {
  // A fresh environment stack per attempt: whatever state the previous
  // attempt corrupted is discarded wholesale. Determinism across
  // attempts comes from the checkpoint (policy, RNG, pool, defender
  // state) plus the derived per-episode and per-query streams.
  heartbeat_ticks_.store(internal::NowTicks(), std::memory_order_release);
  rec::FitConfig fit;
  fit.embedding_dim = spec_.embedding_dim;
  fit.seed = spec_.seed ^ 0x5u;
  auto ranker = rec::MakeRecommender(spec_.ranker, fit);
  if (!ranker.ok()) return ranker.status();
  env::AttackEnvironment environment(*dataset_, std::move(ranker).value(),
                                     MakeEnvironmentConfig(spec_));

  std::optional<env::FaultyEnvironment> faulty;
  if (AnyFaults(spec_.fault)) faulty.emplace(&environment, spec_.fault);
  std::unique_ptr<env::DefendedEnvironment> defended;
  if (spec_.defense) {
    auto detector = MakeDetector(spec_.detector);
    if (!detector.ok()) return detector.status();
    if (faulty.has_value()) {
      defended = std::make_unique<env::DefendedEnvironment>(
          &*faulty, std::move(detector).value(), spec_.defense_profile);
    } else {
      defended = std::make_unique<env::DefendedEnvironment>(
          &environment, std::move(detector).value(), spec_.defense_profile);
    }
  }

  core::PoisonRecAttacker attacker(&environment, MakeAttackerConfig(spec_));
  if (defended != nullptr) {
    attacker.AttachDefendedEnvironment(defended.get(), options_.retry_sleep);
  } else if (faulty.has_value()) {
    attacker.AttachFaultyEnvironment(&*faulty, options_.retry_sleep);
  }
  attacker.SetStopFlag(options_.fleet_stop);
  attacker.SetCancelToken(&cancel_);
  attacker.SetHeartbeat([this] {
    heartbeat_ticks_.store(internal::NowTicks(), std::memory_order_release);
  });
  static obs::Counter* const steps_committed =
      FleetCounter("poisonrec_fleet_steps_committed_total");
  attacker.SetStepCommittedCallback(
      [this, outcome](const core::TrainStepStats& stats) {
        outcome->step_rewards[stats.step] = stats.mean_reward;
        outcome->steps_completed = stats.step;
        outcome->best_reward =
            std::max(outcome->best_reward, stats.best_reward_so_far);
        steps_committed->Increment();
        Journal(CampaignState::kCheckpointed, stats.step, stats.mean_reward,
                stats.best_reward_so_far, outcome->restarts, "");
      });

  const std::string checkpoint = CheckpointPath();
  if (std::filesystem::exists(checkpoint)) {
    const Status loaded = attacker.LoadCheckpoint(checkpoint);
    if (loaded.ok()) {
      heartbeat_ticks_.store(internal::NowTicks(),
                             std::memory_order_release);
    } else if (loaded.code() == StatusCode::kDataLoss ||
               loaded.code() == StatusCode::kInvalidArgument) {
      // A torn or incompatible checkpoint is lost state, not a fatal
      // error: discard it and replay the campaign from scratch (the
      // deterministic streams make the replay reproduce the same steps).
      POISONREC_LOG(Warning) << "campaign " << spec_.id
                             << ": discarding checkpoint " << checkpoint
                             << ": " << loaded.ToString();
      Journal(CampaignState::kRunning, 0, 0.0, outcome->best_reward,
              outcome->restarts,
              "checkpoint discarded: " + loaded.ToString());
      std::error_code ec;
      std::filesystem::remove(checkpoint, ec);
    } else {
      return loaded;
    }
  }
  if (attacker.steps_taken() >= spec_.steps) {
    outcome->steps_completed = attacker.steps_taken();
    outcome->best_reward =
        std::max(outcome->best_reward, attacker.best_episode().reward);
    return Status::OK();
  }

  core::GuardedTrainResult result =
      attacker.TrainGuarded(spec_.steps - attacker.steps_taken(), checkpoint);
  outcome->rollbacks += result.rollbacks;
  outcome->best_reward =
      std::max(outcome->best_reward, attacker.best_episode().reward);
  return result.status;
}

CampaignOutcome CampaignSupervisor::Run() {
  CampaignOutcome outcome;
  outcome.id = spec_.id;
  const std::uint64_t run_start = internal::NowTicks();
  start_ticks_.store(run_start, std::memory_order_release);
  heartbeat_ticks_.store(run_start, std::memory_order_release);

  // Journal recovery: terminal campaigns are never re-run; unfinished
  // ones inherit their committed rewards and restart count.
  if (options_.replay.has_value()) {
    const CampaignReplay& replay = *options_.replay;
    outcome.steps_completed = replay.steps_completed;
    outcome.restarts = replay.restarts;
    outcome.best_reward = replay.best_reward;
    outcome.step_rewards = replay.step_rewards;
    if (IsTerminal(replay.state)) {
      outcome.state = replay.state;
      outcome.detail = replay.detail.empty()
                           ? "recovered from journal"
                           : replay.detail;
      outcome.recovered_from_journal = true;
      return outcome;
    }
  }
  if (options_.fleet_stop != nullptr &&
      options_.fleet_stop->load(std::memory_order_acquire)) {
    outcome.state = outcome.steps_completed > 0
                        ? CampaignState::kCheckpointed
                        : CampaignState::kPending;
    outcome.interrupted = true;
    outcome.detail = "not started: fleet shutdown requested";
    return outcome;
  }

  static obs::Counter* const campaigns_total =
      FleetCounter("poisonrec_fleet_campaigns_total");
  static obs::Counter* const restarts_total =
      FleetCounter("poisonrec_fleet_restarts_total");
  static obs::Counter* const quarantined_total =
      FleetCounter("poisonrec_fleet_quarantined_total");
  static obs::Counter* const interrupted_total =
      FleetCounter("poisonrec_fleet_interrupted_total");
  campaigns_total->Increment();

  running_.store(true, std::memory_order_release);
  Journal(CampaignState::kRunning, outcome.steps_completed, 0.0,
          outcome.best_reward, outcome.restarts,
          outcome.steps_completed > 0 ? "resumed from checkpoint" : "");

  // Restart delays follow the same decorrelated-jitter schedule as query
  // retries, seeded per campaign so fleets do not restart in lockstep.
  RetryPolicy restart_policy;
  restart_policy.initial_backoff_seconds = spec_.restart_backoff_seconds;
  restart_policy.max_backoff_seconds =
      std::max(1.0, 8.0 * spec_.restart_backoff_seconds);
  RetryBackoff restart_backoff(restart_policy,
                               spec_.seed ^ 0x9e3779b97f4a7c15ull);

  const auto reward_at = [&outcome](std::uint64_t step) {
    const auto it = outcome.step_rewards.find(step);
    return it == outcome.step_rewards.end() ? 0.0 : it->second;
  };
  const auto finish = [&](CampaignState state, const std::string& detail) {
    outcome.state = state;
    outcome.detail = detail;
    Journal(state, outcome.steps_completed,
            reward_at(outcome.steps_completed), outcome.best_reward,
            outcome.restarts, detail);
    running_.store(false, std::memory_order_release);
    outcome.wall_seconds = internal::ElapsedSecondsSince(run_start);
  };

  for (std::size_t attempt = 0;; ++attempt) {
    const Status status = RunAttempt(&outcome);
    if (status.ok()) {
      finish(CampaignState::kDone, "");
      return outcome;
    }
    if (status.code() == StatusCode::kCancelled &&
        options_.fleet_stop != nullptr &&
        options_.fleet_stop->load(std::memory_order_acquire)) {
      // Graceful shutdown: the last clean step is already checkpointed
      // and journaled; `fleet --resume` picks the campaign back up.
      outcome.interrupted = true;
      interrupted_total->Increment();
      finish(CampaignState::kCheckpointed,
             "interrupted: fleet shutdown (" + status.message() + ")");
      return outcome;
    }

    std::string reason;
    bool restartable;
    if (status.code() == StatusCode::kCancelled) {
      // Watchdog abort (stall or deadline).
      reason = TakeAbortReason();
      restartable = abort_allow_restart_.load(std::memory_order_acquire);
      cancel_.Reset();
    } else if (status.code() == StatusCode::kResourceExhausted ||
               status.code() == StatusCode::kFailedPrecondition) {
      // Deterministic persistent failures: the pool drained or the
      // rollback budget was spent, and a restart replays the exact same
      // ban/anomaly stream. The circuit breaker quarantines instead of
      // burning restarts on a lost cause.
      reason = status.ToString();
      restartable = false;
    } else {
      // I/O and unexpected errors: possibly transient, restart-worthy.
      reason = status.ToString();
      restartable = true;
    }

    if (!restartable) {
      quarantined_total->Increment();
      finish(CampaignState::kQuarantined, reason);
      return outcome;
    }
    if (attempt >= spec_.max_restarts) {
      if (status.code() == StatusCode::kCancelled) {
        quarantined_total->Increment();
        finish(CampaignState::kQuarantined,
               "restart budget exhausted (" +
                   std::to_string(spec_.max_restarts) + "); last abort: " +
                   reason);
      } else {
        finish(CampaignState::kFailed,
               "restart budget exhausted (" +
                   std::to_string(spec_.max_restarts) +
                   "); last error: " + reason);
      }
      return outcome;
    }

    ++outcome.restarts;
    restarts_total->Increment();
    POISONREC_LOG(Warning) << "campaign " << spec_.id << ": restart "
                           << outcome.restarts << "/" << spec_.max_restarts
                           << " after: " << reason;
    Journal(CampaignState::kRunning, outcome.steps_completed, 0.0,
            outcome.best_reward, outcome.restarts,
            "restart " + std::to_string(outcome.restarts) + ": " + reason);
    SleepForRestart(restart_backoff.NextDelaySeconds());
    if (options_.fleet_stop != nullptr &&
        options_.fleet_stop->load(std::memory_order_acquire)) {
      outcome.interrupted = true;
      interrupted_total->Increment();
      finish(CampaignState::kCheckpointed,
             "interrupted during restart backoff");
      return outcome;
    }
  }
}

}  // namespace poisonrec::orch
