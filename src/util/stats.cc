#include "util/stats.h"

namespace poisonrec {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

void NormalizeRewards(std::vector<double>* values) {
  if (values->empty()) return;
  // A NaN/Inf reward would otherwise poison the mean/stddev and spread
  // into every normalized value; a single-observation or constant batch
  // would divide by (near-)zero. Both degrade to zero advantage instead.
  std::vector<double> finite;
  finite.reserve(values->size());
  for (double v : *values) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  const double mean = Mean(finite);
  const double sd = StdDev(finite);
  if (finite.size() < 2 || sd <= 1e-12) {
    for (double& v : *values) v = 0.0;
    return;
  }
  for (double& v : *values) {
    v = std::isfinite(v) ? (v - mean) / sd : 0.0;
  }
}

void NormalizeRewards(std::vector<double>* values,
                      const std::vector<char>& valid) {
  // Non-finite entries are treated as invalid even when masked valid:
  // they must contribute neither to the statistics nor to the gradient.
  std::vector<double> observed;
  observed.reserve(values->size());
  for (std::size_t i = 0; i < values->size(); ++i) {
    if (i < valid.size() && valid[i] && std::isfinite((*values)[i])) {
      observed.push_back((*values)[i]);
    }
  }
  if (observed.size() < 2) {
    for (double& v : *values) v = 0.0;
    return;
  }
  const double mean = Mean(observed);
  const double sd = StdDev(observed);
  for (std::size_t i = 0; i < values->size(); ++i) {
    if (i >= valid.size() || !valid[i] || !std::isfinite((*values)[i]) ||
        sd <= 1e-12) {
      (*values)[i] = 0.0;
    } else {
      (*values)[i] = ((*values)[i] - mean) / sd;
    }
  }
}

}  // namespace poisonrec
