# Empty dependencies file for bench_defense_detection.
# This may be replaced when dependencies are built.
