# Empty compiler generated dependencies file for poisonrec_core.
# This may be replaced when dependencies are built.
