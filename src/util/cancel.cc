#include "util/cancel.h"

#include <chrono>

namespace poisonrec {

void CancelToken::Cancel() {
  {
    // The store happens under the mutex so a SleepFor that just checked
    // the predicate cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

void CancelToken::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_.store(false, std::memory_order_release);
}

bool CancelToken::SleepFor(double seconds) const {
  if (cancelled()) return false;
  if (seconds <= 0.0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  const bool interrupted = cv_.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [this] { return cancelled_.load(std::memory_order_acquire); });
  return !interrupted;
}

}  // namespace poisonrec
