#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace poisonrec::obs {

namespace internal {

struct TraceEvent {
  const char* name;
  /// Copied (truncated) argument string; empty when the span had none.
  char arg[kTraceArgCapacity];
  std::chrono::steady_clock::time_point begin;
  std::chrono::steady_clock::time_point end;
};

struct ThreadTraceRing {
  explicit ThreadTraceRing(std::uint64_t tid, std::size_t capacity)
      : tid(tid), events(capacity) {}

  const std::uint64_t tid;
  std::vector<TraceEvent> events;
  std::size_t next = 0;     // write cursor
  std::size_t size = 0;     // retained events, <= events.size()
  std::size_t dropped = 0;  // overwritten events
};

}  // namespace internal

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<std::size_t> g_ring_capacity{std::size_t{1} << 16};

struct TraceRegistry {
  std::mutex mu;
  // unique_ptr keeps ring addresses stable across vector growth, which
  // is what makes the thread_local raw-pointer cache safe.
  std::vector<std::unique_ptr<internal::ThreadTraceRing>> rings;
};

TraceRegistry& Registry() {
  static TraceRegistry* registry = new TraceRegistry();  // never freed
  return *registry;
}

}  // namespace

namespace internal {

ThreadTraceRing* ThisThreadRing() {
  thread_local ThreadTraceRing* ring = [] {
    TraceRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    const std::uint64_t tid =
        static_cast<std::uint64_t>(registry.rings.size()) + 1;
    registry.rings.push_back(std::make_unique<ThreadTraceRing>(
        tid, std::max<std::size_t>(16, g_ring_capacity.load(
                                           std::memory_order_relaxed))));
    return registry.rings.back().get();
  }();
  return ring;
}

void RecordSpan(ThreadTraceRing* ring, const char* name, const char* arg,
                std::chrono::steady_clock::time_point begin,
                std::chrono::steady_clock::time_point end) {
  // Single-writer per ring (the owning thread); the registry mutex is
  // only taken by readers (export/clear), which briefly lock around the
  // whole ring list. Recording races with export are acceptable — a
  // torn read yields at worst one garbled span in a diagnostic export —
  // but ClearTrace() is documented as quiescent-only.
  TraceEvent& slot = ring->events[ring->next];
  slot.name = name;
  if (arg == nullptr) {
    slot.arg[0] = '\0';
  } else {
    std::size_t n = 0;
    for (; n + 1 < kTraceArgCapacity && arg[n] != '\0'; ++n) {
      slot.arg[n] = arg[n];
    }
    slot.arg[n] = '\0';
  }
  slot.begin = begin;
  slot.end = end;
  ring->next = (ring->next + 1) % ring->events.size();
  if (ring->size < ring->events.size()) {
    ++ring->size;
  } else {
    ++ring->dropped;
  }
}

}  // namespace internal

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTraceRingCapacity(std::size_t capacity) {
  g_ring_capacity.store(std::max<std::size_t>(16, capacity),
                        std::memory_order_relaxed);
}

void ClearTrace() {
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

std::size_t TraceEventCount() {
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::size_t total = 0;
  for (const auto& ring : registry.rings) total += ring->size;
  return total;
}

std::size_t TraceDroppedCount() {
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::size_t total = 0;
  for (const auto& ring : registry.rings) total += ring->dropped;
  return total;
}

std::string ChromeTraceJson() {
  struct FlatEvent {
    const char* name;
    std::string arg;
    std::uint64_t tid;
    std::int64_t ts_us;   // relative to the earliest span in the export
    std::int64_t dur_us;
  };

  std::vector<FlatEvent> flat;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::time_point::max();
  {
    TraceRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& ring : registry.rings) {
      const std::size_t capacity = ring->events.size();
      // Oldest retained event sits at `next` once the ring has wrapped.
      const std::size_t start =
          ring->size == capacity ? ring->next : 0;
      for (std::size_t i = 0; i < ring->size; ++i) {
        const internal::TraceEvent& e =
            ring->events[(start + i) % capacity];
        flat.push_back(FlatEvent{e.name, e.arg, ring->tid, 0, 0});
        epoch = std::min(epoch, e.begin);
        auto& back = flat.back();
        back.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         e.begin.time_since_epoch())
                         .count();
        back.dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          e.end - e.begin)
                          .count();
      }
    }
  }
  if (!flat.empty()) {
    const std::int64_t epoch_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            epoch.time_since_epoch())
            .count();
    for (auto& e : flat) e.ts_us -= epoch_us;
  }
  // Chrome's complete-event ("ph":"X") nesting rule: enclosing spans
  // must come first, so order by start ascending then duration
  // descending (a parent starting at the same ts as its child is wider).
  std::sort(flat.begin(), flat.end(),
            [](const FlatEvent& a, const FlatEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.tid < b.tid;
            });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const FlatEvent& e : flat) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, e.name);
    out += ",\"ph\":\"X\",\"ts\":";
    AppendJsonNumber(&out, static_cast<std::uint64_t>(e.ts_us));
    out += ",\"dur\":";
    AppendJsonNumber(&out, static_cast<std::uint64_t>(e.dur_us));
    out += ",\"pid\":1,\"tid\":";
    AppendJsonNumber(&out, e.tid);
    if (!e.arg.empty()) {
      out += ",\"args\":{\"campaign\":";
      AppendJsonString(&out, e.arg);
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace poisonrec::obs
