// FaultyEnvironment tests: deterministic seeded faults, corruption
// semantics (drops, bans, noise), and throttle cool-down behavior.
#include "env/fault.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec::env {
namespace {

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 60;
    cfg.num_interactions = 800;
    cfg.seed = 5;
    return data::GenerateSynthetic(cfg);
  }

  static EnvironmentConfig MakeEnvConfig() {
    EnvironmentConfig cfg;
    cfg.num_attackers = 6;
    cfg.trajectory_length = 8;
    cfg.num_target_items = 3;
    cfg.num_candidate_originals = 20;
    cfg.seed = 13;
    return cfg;
  }

  /// A fixed attack hitting the targets (so corruption is measurable).
  std::vector<Trajectory> MakeAttack() const {
    std::vector<Trajectory> trajs(environment.num_attackers());
    for (std::size_t a = 0; a < trajs.size(); ++a) {
      trajs[a].attacker_index = a;
      for (std::size_t t = 0; t < environment.trajectory_length(); ++t) {
        trajs[a].items.push_back(
            environment.target_items()[t % environment.target_items().size()]);
      }
    }
    return trajs;
  }

  AttackEnvironment environment;
};

TEST(FaultyEnvironmentTest, NoFaultsMatchesBaseEnvironment) {
  Fixture f;
  FaultProfile profile;  // all rates zero
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  auto result = faulty.TryEvaluate(attack, /*query_id=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, f.environment.Evaluate(attack));
}

TEST(FaultyEnvironmentTest, SameSeedSameFaults) {
  Fixture f;
  FaultProfile profile;
  profile.query_failure_rate = 0.3;
  profile.throttle_rate = 0.2;
  profile.injection_drop_rate = 0.2;
  profile.shadow_ban_rate = 0.1;
  profile.reward_noise_stddev = 2.0;
  profile.seed = 77;
  FaultyEnvironment a(&f.environment, profile);
  FaultyEnvironment b(&f.environment, profile);
  const auto attack = f.MakeAttack();
  for (std::uint64_t q = 0; q < 20; ++q) {
    auto ra = a.TryEvaluate(attack, q);
    auto rb = b.TryEvaluate(attack, q);
    ASSERT_EQ(ra.ok(), rb.ok()) << "query " << q;
    if (ra.ok()) {
      EXPECT_DOUBLE_EQ(*ra, *rb) << "query " << q;
    } else {
      EXPECT_EQ(ra.status().code(), rb.status().code()) << "query " << q;
    }
  }
}

TEST(FaultyEnvironmentTest, DifferentSeedDifferentFaults) {
  Fixture f;
  FaultProfile profile;
  profile.query_failure_rate = 0.5;
  profile.seed = 1;
  FaultyEnvironment a(&f.environment, profile);
  profile.seed = 2;
  FaultyEnvironment b(&f.environment, profile);
  const auto attack = f.MakeAttack();
  int disagreements = 0;
  for (std::uint64_t q = 0; q < 40; ++q) {
    if (a.TryEvaluate(attack, q).ok() != b.TryEvaluate(attack, q).ok()) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultyEnvironmentTest, TransientFailureIsUnavailableAndRetriable) {
  Fixture f;
  FaultProfile profile;
  profile.query_failure_rate = 0.5;
  profile.seed = 3;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  // Find a failing (query, attempt 0); a later attempt of the same query
  // redraws independently, so some failing query succeeds on retry.
  bool saw_failure = false;
  bool saw_recovery = false;
  for (std::uint64_t q = 0; q < 50 && !(saw_failure && saw_recovery); ++q) {
    auto first = faulty.TryEvaluate(attack, q, /*attempt=*/0);
    if (first.ok()) continue;
    saw_failure = true;
    EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
    for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
      if (faulty.TryEvaluate(attack, q, attempt).ok()) {
        saw_recovery = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_recovery);
}

TEST(FaultyEnvironmentTest, ThrottleClearsAfterCooldown) {
  Fixture f;
  FaultProfile profile;
  profile.throttle_rate = 0.5;
  profile.throttle_cooldown_attempts = 3;
  profile.seed = 4;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  bool saw_throttle = false;
  for (std::uint64_t q = 0; q < 30 && !saw_throttle; ++q) {
    auto first = faulty.TryEvaluate(attack, q, /*attempt=*/0);
    if (first.ok()) continue;
    saw_throttle = true;
    ASSERT_EQ(first.status().code(), StatusCode::kResourceExhausted);
    // Still throttled through the cool-down window...
    for (std::uint32_t attempt = 1; attempt < 3; ++attempt) {
      auto again = faulty.TryEvaluate(attack, q, attempt);
      ASSERT_FALSE(again.ok());
      EXPECT_EQ(again.status().code(), StatusCode::kResourceExhausted);
    }
    // ...and forgiven afterwards.
    EXPECT_TRUE(faulty.TryEvaluate(attack, q, /*attempt=*/3).ok());
  }
  EXPECT_TRUE(saw_throttle);
}

TEST(FaultyEnvironmentTest, FullDropRateSilencesTheAttack) {
  Fixture f;
  FaultProfile profile;
  profile.injection_drop_rate = 1.0;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  auto result = faulty.TryEvaluate(attack, 0);
  ASSERT_TRUE(result.ok());
  // Every click dropped == evaluating the empty attack.
  EXPECT_DOUBLE_EQ(*result, f.environment.BaselineRecNum());
  EXPECT_EQ(faulty.stats().dropped_clicks,
            f.environment.num_attackers() * f.environment.trajectory_length());
}

TEST(FaultyEnvironmentTest, FullBanRateSilencesTheAttack) {
  Fixture f;
  FaultProfile profile;
  profile.shadow_ban_rate = 1.0;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  auto result = faulty.TryEvaluate(attack, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, f.environment.BaselineRecNum());
  EXPECT_EQ(faulty.stats().banned_trajectories, f.environment.num_attackers());
}

TEST(FaultyEnvironmentTest, PartialDropWeakensButDoesNotKillTheAttack) {
  Fixture f;
  FaultProfile profile;
  profile.injection_drop_rate = 0.3;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  auto result = faulty.TryEvaluate(attack, 0);
  ASSERT_TRUE(result.ok());
  const double clean = f.environment.Evaluate(attack);
  const double baseline = f.environment.BaselineRecNum();
  EXPECT_GE(*result, baseline);
  EXPECT_LE(*result, clean);
  auto stats = faulty.stats();
  EXPECT_GT(stats.dropped_clicks, 0u);
  EXPECT_LT(stats.dropped_clicks,
            f.environment.num_attackers() * f.environment.trajectory_length());
}

TEST(FaultyEnvironmentTest, RewardNoiseIsZeroMeanish) {
  Fixture f;
  FaultProfile profile;
  profile.reward_noise_stddev = 3.0;
  profile.seed = 6;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  const double clean = f.environment.Evaluate(attack);
  double sum = 0.0;
  int differs = 0;
  const int kQueries = 50;
  for (std::uint64_t q = 0; q < kQueries; ++q) {
    auto result = faulty.TryEvaluate(attack, q);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(*result, 0.0);
    if (*result != clean) ++differs;
    sum += *result;
  }
  EXPECT_GT(differs, kQueries / 2);
  EXPECT_NEAR(sum / kQueries, clean, 3.0);  // ~3 sigma/sqrt(50) << 3
}

TEST(FaultyEnvironmentTest, StaleRewardRepeatsPreviousObservation) {
  Fixture f;
  FaultProfile profile;
  profile.stale_reward_rate = 1.0;  // every query after the first is stale
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  auto first = faulty.TryEvaluate(attack, 0);
  ASSERT_TRUE(first.ok());
  // A very different attack still reports the first (stale) reward.
  auto second = faulty.TryEvaluate({}, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(*second, *first);
  EXPECT_EQ(faulty.stats().stale_rewards, 1u);
}

TEST(FaultyEnvironmentTest, AutoQueryIdsAdvance) {
  Fixture f;
  FaultProfile profile;
  profile.query_failure_rate = 0.5;
  profile.seed = 8;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  // Sequential convenience overload walks query ids 0,1,2,... — matching
  // explicit-id calls on a fresh decorator.
  std::vector<bool> implicit;
  for (int q = 0; q < 12; ++q) {
    implicit.push_back(faulty.TryEvaluate(attack).ok());
  }
  FaultyEnvironment fresh(&f.environment, profile);
  for (std::uint64_t q = 0; q < 12; ++q) {
    EXPECT_EQ(fresh.TryEvaluate(attack, q).ok(), implicit[q]) << q;
  }
}

TEST(FaultyEnvironmentTest, StatsCountEveryAttempt) {
  Fixture f;
  FaultProfile profile;
  profile.query_failure_rate = 0.4;
  profile.seed = 9;
  FaultyEnvironment faulty(&f.environment, profile);
  const auto attack = f.MakeAttack();
  for (std::uint64_t q = 0; q < 10; ++q) {
    faulty.TryEvaluate(attack, q);
  }
  auto stats = faulty.stats();
  EXPECT_EQ(stats.attempts, 10u);
  EXPECT_EQ(stats.attempts, stats.successes + stats.transient_failures +
                                stats.throttled);
  faulty.ResetStats();
  EXPECT_EQ(faulty.stats().attempts, 0u);
}

}  // namespace
}  // namespace poisonrec::env
