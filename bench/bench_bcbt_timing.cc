// §IV-B timing study: seconds per PoisonRec training step, Plain vs BCBT,
// as the item-set size grows from 3,000 to 30,000. The paper reports that
// Plain degrades linearly in |I| (1.93s -> 15.69s) while BCBT stays nearly
// flat (1.41s -> 2.33s) thanks to O(log|I|) sampling; the reproduction
// target is that shape, not the absolute seconds (which depend on |e|, N,
// T and the machine).
//
// The step here is sampling M episodes + K PPO epochs with synthetic
// rewards — the policy-side work the optimization targets; environment
// evaluation cost is identical across action spaces and is excluded.
#include <benchmark/benchmark.h>

#include "core/poisonrec.h"
#include "util/stats.h"

namespace poisonrec::bench {
namespace {

constexpr std::size_t kAttackers = 8;
constexpr std::size_t kTrajectoryLength = 8;
constexpr std::size_t kTargets = 8;
constexpr std::size_t kEpisodes = 2;  // M
constexpr std::size_t kEpochs = 3;    // K
constexpr std::size_t kDim = 16;

std::unique_ptr<core::Policy> MakePolicy(std::size_t num_original,
                                         core::ActionSpaceKind kind) {
  std::vector<data::ItemId> originals(num_original);
  for (std::size_t i = 0; i < num_original; ++i) originals[i] = i;
  std::vector<data::ItemId> targets(kTargets);
  for (std::size_t i = 0; i < kTargets; ++i) targets[i] = num_original + i;
  core::PolicyConfig config;
  config.embedding_dim = kDim;
  config.action_space = kind;
  config.seed = 11;
  return std::make_unique<core::Policy>(kAttackers,
                                        num_original + kTargets, originals,
                                        targets, config);
}

// One full policy-side training step (Algorithm 1 minus the black-box
// queries): sample M episodes, then K clipped-surrogate epochs.
void TrainingStep(core::Policy& policy, nn::Adam& optimizer, Rng& rng) {
  std::vector<std::vector<core::SampledTrajectory>> episodes;
  std::vector<double> rewards;
  for (std::size_t m = 0; m < kEpisodes; ++m) {
    episodes.push_back(policy.SampleEpisode(kTrajectoryLength, &rng));
    rewards.push_back(rng.Uniform(0.0, 100.0));  // synthetic RecNum
  }
  NormalizeRewards(&rewards);
  for (std::size_t k = 0; k < kEpochs; ++k) {
    std::vector<const core::SampledTrajectory*> trajs;
    std::vector<double> advantages;
    for (std::size_t m = 0; m < episodes.size(); ++m) {
      for (const auto& t : episodes[m]) {
        trajs.push_back(&t);
        advantages.push_back(rewards[m]);
      }
    }
    auto batches = policy.RecomputeLogProbs(trajs);
    nn::Tensor loss;
    for (const auto& batch : batches) {
      std::vector<float> adv(batch.new_log_probs.rows());
      std::vector<float> old_vals(batch.new_log_probs.rows());
      for (std::size_t i = 0; i < adv.size(); ++i) {
        adv[i] = static_cast<float>(advantages[batch.traj_index[i]]);
        old_vals[i] = static_cast<float>(batch.old_log_probs[i]);
      }
      const std::size_t rows = adv.size();
      nn::Tensor a = nn::Tensor::FromData(rows, 1, std::move(adv));
      nn::Tensor o = nn::Tensor::FromData(rows, 1, std::move(old_vals));
      nn::Tensor obj =
          nn::Sum(nn::Mul(nn::Exp(nn::Sub(batch.new_log_probs, o)), a));
      loss = loss.defined() ? nn::Add(loss, obj) : obj;
    }
    loss = nn::Scale(loss, -1.0f);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
}

void BM_TrainingStep(benchmark::State& state) {
  const std::size_t num_items = static_cast<std::size_t>(state.range(0));
  const auto kind = static_cast<core::ActionSpaceKind>(state.range(1));
  auto policy = MakePolicy(num_items, kind);
  nn::Adam optimizer(policy->Parameters(), 2e-3f);
  Rng rng(7);
  for (auto _ : state) {
    TrainingStep(*policy, optimizer, rng);
  }
  state.SetLabel(core::ActionSpaceKindName(kind));
}

}  // namespace
}  // namespace poisonrec::bench

BENCHMARK(poisonrec::bench::BM_TrainingStep)
    ->ArgsProduct({{3000, 10000, 30000},
                   {static_cast<int>(
                        poisonrec::core::ActionSpaceKind::kPlain),
                    static_cast<int>(
                        poisonrec::core::ActionSpaceKind::kBcbtPopular)}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
