#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace poisonrec {

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::DeserializeState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("malformed Rng state blob");
  }
  engine_ = restored;
  return Status::OK();
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  POISONREC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    POISONREC_CHECK_GE(w, 0.0);
    total += w;
  }
  POISONREC_CHECK_GT(total, 0.0) << "all categorical weights are zero";
  double r = Uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numerical tail
}

std::size_t Rng::CategoricalFromLogits(const std::vector<double>& logits) {
  POISONREC_CHECK(!logits.empty());
  double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> weights(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    weights[i] = std::exp(logits[i] - max_logit);
  }
  return Categorical(weights);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  POISONREC_CHECK_LE(k, n);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(
        UniformInt(0, static_cast<std::int64_t>(j)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

std::size_t Rng::Zipf(std::size_t n, double exponent) {
  POISONREC_CHECK_GT(n, 0u);
  // Direct inverse-CDF on the fly; fine for occasional draws.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
  }
  double target = Uniform() * total;
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -exponent);
    if (target < acc) return r;
  }
  return n - 1;
}

ZipfTable::ZipfTable(std::size_t n, double exponent) {
  POISONREC_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfTable::Pmf(std::size_t r) const {
  POISONREC_CHECK_LT(r, cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace poisonrec
