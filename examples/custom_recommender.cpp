// Plugging a custom recommender into the framework. Because PoisonRec is
// model-free, any class implementing the Recommender interface becomes an
// attackable black box — here a hybrid that blends popularity with
// co-visitation evidence (a common production fallback stack).
//
// Build: cmake --build build && ./build/examples/custom_recommender
#include <cstdio>
#include <memory>

#include "core/poisonrec.h"
#include "rec/covisitation.h"
#include "rec/itempop.h"

using namespace poisonrec;

namespace {

// score(u, i) = covisitation score + alpha * log(1 + popularity).
// Composition of two library rankers: the framework's Clone/Update
// contract composes naturally.
class HybridRecommender : public rec::Recommender {
 public:
  explicit HybridRecommender(double alpha = 0.5) : alpha_(alpha) {}

  std::string Name() const override { return "Hybrid"; }

  void Fit(const data::Dataset& dataset) override {
    pop_.Fit(dataset);
    covis_.Fit(dataset);
  }

  void Update(const data::Dataset& poison) override {
    pop_.Update(poison);
    covis_.Update(poison);
  }

  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override {
    std::vector<double> s = covis_.Score(user, candidates);
    std::vector<double> p = pop_.Score(user, candidates);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] += alpha_ * std::log1p(p[i]);
    }
    return s;
  }

  std::unique_ptr<rec::Recommender> Clone() const override {
    return std::make_unique<HybridRecommender>(*this);
  }

 private:
  double alpha_;
  rec::ItemPop pop_;
  rec::CoVisitation covis_;
};

}  // namespace

int main() {
  data::SyntheticConfig data_config;
  data_config.num_users = 400;
  data_config.num_items = 300;
  data_config.num_interactions = 8000;
  data_config.seed = 13;
  data::Dataset log = data::GenerateSynthetic(data_config);

  env::EnvironmentConfig env_config;
  env_config.num_attackers = 15;
  env_config.trajectory_length = 15;
  env_config.num_target_items = 4;
  env_config.num_candidate_originals = 60;
  env_config.seed = 21;
  env::AttackEnvironment system(
      log, std::make_unique<HybridRecommender>(), env_config);
  std::printf("attacking custom ranker '%s'; baseline RecNum %.0f\n",
              system.pretrained_ranker().Name().c_str(),
              system.BaselineRecNum());

  core::PoisonRecConfig config;
  config.samples_per_step = 8;
  config.batch_size = 8;
  config.policy.embedding_dim = 16;
  core::PoisonRecAttacker attacker(&system, config);
  for (int step = 0; step < 12; ++step) {
    core::TrainStepStats stats = attacker.TrainStep();
    if (stats.step % 3 == 0) {
      std::printf("step %2zu  mean RecNum %7.1f  best %6.0f\n", stats.step,
                  stats.mean_reward, stats.best_reward_so_far);
    }
  }
  std::printf("best attack RecNum: %.0f\n",
              system.Evaluate(attacker.BestAttack()));
  return 0;
}
