// Cooperative cancellation: a thread-safe token that long-running work
// polls at natural boundaries (between retry attempts, between training
// steps) and that turns blocking sleeps into interruptible waits.
//
// The token exists for the campaign orchestrator (src/orch): a watchdog
// that detects a stalled campaign cannot kill the thread running it —
// the campaign may be parked inside a retry backoff sleep waiting out a
// fault blackout — so instead it fires the campaign's CancelToken, which
// wakes the sleep immediately and makes the next poll observe the
// cancellation. Work interrupted this way returns StatusCode::kCancelled
// and the supervisor decides what happens next (restart from checkpoint,
// quarantine, or shut down).
#ifndef POISONREC_UTIL_CANCEL_H_
#define POISONREC_UTIL_CANCEL_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace poisonrec {

/// One-shot (but resettable) cancellation flag shared between the thread
/// doing the work and the threads that may interrupt it. All methods are
/// thread-safe; Reset must only race with nothing that still believes
/// the previous cancellation is pending (the supervisor resets between
/// restart attempts, after the cancelled attempt has fully unwound).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Marks the token cancelled and wakes every SleepFor in progress.
  /// Idempotent.
  void Cancel();

  /// True once Cancel has been called (and not Reset since).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Clears a previous cancellation so the token can guard the next
  /// attempt.
  void Reset();

  /// Sleeps up to `seconds`, waking early if cancelled. Returns true when
  /// the full duration elapsed, false when the sleep was interrupted (or
  /// the token was already cancelled on entry). Non-positive durations
  /// return immediately with !cancelled().
  bool SleepFor(double seconds) const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace poisonrec

#endif  // POISONREC_UTIL_CANCEL_H_
