
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rec/autorec.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/autorec.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/autorec.cc.o.d"
  "/root/repo/src/rec/bpr.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/bpr.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/bpr.cc.o.d"
  "/root/repo/src/rec/candidates.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/candidates.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/candidates.cc.o.d"
  "/root/repo/src/rec/covisitation.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/covisitation.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/covisitation.cc.o.d"
  "/root/repo/src/rec/factor_model.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/factor_model.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/factor_model.cc.o.d"
  "/root/repo/src/rec/gru4rec.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/gru4rec.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/gru4rec.cc.o.d"
  "/root/repo/src/rec/itemknn.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/itemknn.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/itemknn.cc.o.d"
  "/root/repo/src/rec/itempop.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/itempop.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/itempop.cc.o.d"
  "/root/repo/src/rec/metrics.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/metrics.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/metrics.cc.o.d"
  "/root/repo/src/rec/neumf.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/neumf.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/neumf.cc.o.d"
  "/root/repo/src/rec/ngcf.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/ngcf.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/ngcf.cc.o.d"
  "/root/repo/src/rec/pmf.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/pmf.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/pmf.cc.o.d"
  "/root/repo/src/rec/recommender.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/recommender.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/recommender.cc.o.d"
  "/root/repo/src/rec/registry.cc" "src/rec/CMakeFiles/poisonrec_rec.dir/registry.cc.o" "gcc" "src/rec/CMakeFiles/poisonrec_rec.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/poisonrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/poisonrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poisonrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
