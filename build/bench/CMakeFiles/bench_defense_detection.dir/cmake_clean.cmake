file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_detection.dir/bench_defense_detection.cc.o"
  "CMakeFiles/bench_defense_detection.dir/bench_defense_detection.cc.o.d"
  "bench_defense_detection"
  "bench_defense_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
