// Small statistics helpers: running mean/variance (Welford) and batch
// normalization of reward vectors (paper Eq. 8).
#ifndef POISONREC_UTIL_STATS_H_
#define POISONREC_UTIL_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace poisonrec {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  void AddTracked(double x) {
    if (count_ == 0 || x < min_) min_ = x;
    if (count_ == 0 || x > max_) max_ = x;
    Add(x);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Normalizes `values` in place to zero mean / unit standard deviation
/// (paper Eq. 8). Degenerate batches degrade to all-zero advantages
/// instead of dividing by zero: constant batches, single-observation
/// batches, and batches whose finite subset is smaller than 2. NaN/Inf
/// entries are excluded from the statistics and forced to 0.
void NormalizeRewards(std::vector<double>* values);

/// Masked variant for degraded batches: mean/stddev are computed over
/// entries with valid[i] != 0 only, and invalid entries are forced to 0
/// (zero advantage) so imputed rewards cannot skew the Eq. 8 statistics.
/// Non-finite entries count as invalid even when masked valid. With
/// fewer than 2 valid entries every value becomes 0.
void NormalizeRewards(std::vector<double>* values,
                      const std::vector<char>& valid);

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than 2 entries.
double StdDev(const std::vector<double>& values);

}  // namespace poisonrec

#endif  // POISONREC_UTIL_STATS_H_
