#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace poisonrec {

namespace {

Status FsyncPath(const std::string& path, int open_flags,
                 const char* what) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IoError(std::string("cannot open ") + what + " " + path +
                           " for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int sync_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(std::string("fsync failed for ") + what + " " +
                           path + ": " + std::strerror(sync_errno));
  }
  return Status::OK();
}

}  // namespace

Status FsyncFile(const std::string& path) {
  return FsyncPath(path, O_RDONLY, "file");
}

Status FsyncParentDirectory(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  return FsyncPath(dir.string(), O_RDONLY | O_DIRECTORY, "directory");
}

Status WriteFileDurable(const std::string& path, std::string_view contents,
                        const std::string& tmp_suffix) {
  const std::string tmp = path + tmp_suffix;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + " for durable write: " +
                           std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int write_errno = errno;
      ::close(fd);
      return Status::IoError("failed writing " + tmp + ": " +
                             std::strerror(write_errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int sync_errno = errno;
    ::close(fd);
    return Status::IoError("fsync failed for " + tmp + ": " +
                           std::strerror(sync_errno));
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return FsyncParentDirectory(path);
}

}  // namespace poisonrec
