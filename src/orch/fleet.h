// Fleet orchestrator: runs a FleetPlan's campaigns under supervision
// with bounded concurrency, a stall/deadline watchdog, a crash-durable
// journal, and a consolidated report.
//
// Lifecycle of one `poisonrec fleet` run:
//
//   1. Validate the plan and create the checkpoint directory.
//   2. On --resume, replay the journal: campaigns already in a terminal
//      state (done/quarantined/failed) are reported as recovered without
//      re-running; unfinished ones are re-scheduled from their last
//      durable checkpoint.
//   3. Pop campaigns off a priority queue (priority desc, plan order as
//      tiebreak) onto `max_concurrent` workers. Each campaign runs inside
//      a CampaignSupervisor (orch/supervisor.h).
//   4. A watchdog thread polls every running supervisor: a heartbeat gap
//      past `stall_timeout_seconds` hard-cancels the attempt with the
//      restart budget available; a wall-clock overrun past
//      `deadline_seconds` hard-cancels with restarts disallowed
//      (quarantine).
//   5. RequestShutdown (wired to SIGINT/SIGTERM by the CLI) soft-stops
//      the fleet: running campaigns checkpoint at the next step boundary
//      and journal `checkpointed`; queued campaigns are left pending.
//      Both are picked up by a later `fleet --resume`.
//   6. Write results/fleet_report.{json,csv} summarising every campaign.
//
// Exit-code contract (FleetResult::ExitCode): 0 = every campaign done;
// 2 = partial (quarantined, failed, or interrupted campaigns remain);
// 1 = fatal orchestrator error (bad plan, journal/report I/O failure).
#ifndef POISONREC_ORCH_FLEET_H_
#define POISONREC_ORCH_FLEET_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "orch/journal.h"
#include "orch/spec.h"
#include "orch/supervisor.h"
#include "util/retry.h"
#include "util/status.h"

namespace poisonrec::orch {

struct FleetOptions {
  /// JSONL write-ahead journal; replayed by --resume after a crash.
  std::string journal_path = "results/fleet_journal.jsonl";
  /// Directory of per-campaign v3 checkpoints (`<id>.ckpt`).
  std::string checkpoint_dir = "results/fleet_checkpoints";
  /// Consolidated report paths; empty skips that format.
  std::string report_json_path = "results/fleet_report.json";
  std::string report_csv_path = "results/fleet_report.csv";
  /// Replay the journal and re-schedule only unfinished campaigns.
  bool resume = false;
  /// Campaigns running at once. Campaign internals are single-threaded
  /// (orch/spec.h MakeAttackerConfig), so this is the fleet's only
  /// parallelism knob.
  std::size_t max_concurrent = 2;
  /// Watchdog poll cadence. Small enough that sub-second stall timeouts
  /// in tests fire promptly.
  double watchdog_poll_seconds = 0.02;
  /// Test seams forwarded to every supervisor ({} = really sleep).
  SleepFn retry_sleep;
  SleepFn restart_sleep;
};

struct FleetResult {
  std::string plan_name;
  /// One outcome per plan campaign, in plan order.
  std::vector<CampaignOutcome> outcomes;
  std::size_t done = 0;
  std::size_t quarantined = 0;
  std::size_t failed = 0;
  /// Interrupted by shutdown (resumable: checkpointed or still pending).
  std::size_t interrupted = 0;
  /// Terminal outcomes recovered from the journal without re-running.
  std::size_t recovered = 0;
  double wall_seconds = 0.0;
  /// Orchestrator-level status (plan validation, journal/report I/O).
  /// Individual campaign failures do NOT make this non-OK.
  Status status;
  /// 1 fatal, 2 partial fleet, 0 all campaigns done.
  int ExitCode() const;
};

class FleetOrchestrator {
 public:
  /// `dataset` must outlive the orchestrator; the plan is copied.
  FleetOrchestrator(FleetPlan plan, const data::Dataset* dataset,
                    FleetOptions options);

  /// Runs the fleet to completion (or to shutdown). Call once.
  FleetResult Run();

  /// Async-signal-safe graceful shutdown: a single atomic store. Running
  /// campaigns stop at the next step boundary, already checkpointed.
  void RequestShutdown() { stop_.store(true, std::memory_order_release); }

  bool shutdown_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  Status WriteJsonReport(const FleetResult& result) const;
  Status WriteCsvReport(const FleetResult& result) const;

  FleetPlan plan_;
  const data::Dataset* dataset_;
  FleetOptions options_;
  std::atomic<bool> stop_{false};
  FleetJournal journal_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_FLEET_H_
