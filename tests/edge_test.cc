// Edge-case and failure-injection tests: degenerate sizes, minimal
// budgets, and boundary configurations across the stack.
#include <gtest/gtest.h>

#include "core/poisonrec.h"
#include "attack/conslop.h"

namespace poisonrec {
namespace {

TEST(EdgeDataset, SingleUserSingleItem) {
  data::Dataset d(1, 1);
  d.Add(0, 0);
  EXPECT_EQ(d.num_interactions(), 1u);
  EXPECT_EQ(d.ItemsByPopularity(), (std::vector<data::ItemId>{0}));
  auto split = data::SplitLeaveOneOut(d);
  EXPECT_EQ(split.train.num_interactions(), 1u);  // < 3 events: all train
  EXPECT_TRUE(split.test.empty());
}

TEST(EdgeDataset, EmptyDatasetQueries) {
  data::Dataset d(3, 3);
  EXPECT_EQ(d.num_interactions(), 0u);
  EXPECT_TRUE(d.AllInteractions().empty());
  EXPECT_TRUE(d.UsersWithMinLength(1).empty());
}

TEST(EdgeTree, SingleOriginalItem) {
  core::ActionTree tree({5}, {0});
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.MaxDepth(), 2u);
}

TEST(EdgeTree, TwoLevelForTwoItems) {
  core::ActionTree tree({10, 11}, {0, 1});
  // Each subtree: 3 nodes; +1 root.
  EXPECT_EQ(tree.num_nodes(), 7u);
  auto leaves = tree.LeavesInOrder();
  EXPECT_EQ(leaves, (std::vector<data::ItemId>{10, 11, 0, 1}));
}

TEST(EdgePolicy, TrajectoryLengthOne) {
  core::PolicyConfig config;
  config.embedding_dim = 4;
  config.action_space = core::ActionSpaceKind::kBcbtPopular;
  core::Policy policy(2, 5, {0, 1, 2}, {3, 4}, config);
  Rng rng(1);
  auto trajs = policy.SampleEpisode(1, &rng);
  ASSERT_EQ(trajs.size(), 2u);
  EXPECT_EQ(trajs[0].steps.size(), 1u);
  std::vector<const core::SampledTrajectory*> ptrs = {&trajs[0], &trajs[1]};
  auto batches = policy.RecomputeLogProbs(ptrs);
  EXPECT_FALSE(batches.empty());
}

TEST(EdgePolicy, SingleAttacker) {
  core::PolicyConfig config;
  config.embedding_dim = 4;
  config.action_space = core::ActionSpaceKind::kPlain;
  core::Policy policy(1, 4, {0, 1, 2}, {3}, config);
  Rng rng(2);
  auto trajs = policy.SampleEpisode(3, &rng);
  ASSERT_EQ(trajs.size(), 1u);
}

TEST(EdgePolicy, SingleTargetBcbt) {
  core::PolicyConfig config;
  config.embedding_dim = 4;
  config.action_space = core::ActionSpaceKind::kBcbtPopular;
  core::Policy policy(2, 6, {0, 1, 2, 3, 4}, {5}, config);
  Rng rng(3);
  auto trajs = policy.SampleEpisode(4, &rng);
  for (const auto& t : trajs) {
    for (const auto& s : t.steps) {
      EXPECT_LT(s.item, 6u);
    }
  }
}

TEST(EdgeEnvironment, SingleTargetItem) {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_interactions = 200;
  dcfg.seed = 2;
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 2;
  cfg.trajectory_length = 4;
  cfg.num_target_items = 1;
  cfg.num_candidate_originals = 10;
  cfg.top_k = 3;
  env::AttackEnvironment env(data::GenerateSynthetic(dcfg),
                             rec::MakeRecommender("ItemPop").value(), cfg);
  EXPECT_EQ(env.target_items().size(), 1u);
  std::vector<env::Trajectory> attack = {{0, {20, 20, 20, 20}},
                                         {1, {20, 20, 20, 20}}};
  EXPECT_GT(env.Evaluate(attack), 0.0);
}

TEST(EdgeEnvironment, EmptyAttackEqualsBaseline) {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_interactions = 200;
  dcfg.seed = 3;
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 2;
  cfg.trajectory_length = 4;
  cfg.num_target_items = 2;
  env::AttackEnvironment env(data::GenerateSynthetic(dcfg),
                             rec::MakeRecommender("CoVisitation").value(),
                             cfg);
  EXPECT_DOUBLE_EQ(env.Evaluate({}), env.BaselineRecNum());
}

TEST(EdgeEnvironment, PartialFleetAccepted) {
  // Fewer trajectories than N is a legal (cheaper) attack.
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_interactions = 200;
  dcfg.seed = 4;
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 5;
  cfg.trajectory_length = 4;
  cfg.num_target_items = 2;
  env::AttackEnvironment env(data::GenerateSynthetic(dcfg),
                             rec::MakeRecommender("ItemPop").value(), cfg);
  std::vector<env::Trajectory> attack = {{3, {20, 21, 20, 21}}};
  EXPECT_GE(env.Evaluate(attack), 0.0);
}

TEST(EdgeRecommender, ScoreEmptyCandidateList) {
  data::Dataset d(2, 3);
  d.AddSequence(0, {0, 1});
  auto ranker = rec::MakeRecommender("ItemPop").value();
  ranker->Fit(d);
  EXPECT_TRUE(ranker->Score(0, {}).empty());
}

TEST(EdgeRecommender, TopKLargerThanCandidates) {
  data::Dataset d(2, 5);
  d.AddSequence(0, {0, 1, 2});
  auto ranker = rec::MakeRecommender("ItemPop").value();
  ranker->Fit(d);
  auto top = ranker->RecommendTopK(0, {1, 2}, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(EdgeRecommender, UpdateWithEmptyPoisonIsNoop) {
  data::Dataset d(3, 4);
  d.AddSequence(0, {0, 1, 2, 1});
  d.AddSequence(1, {2, 3});
  for (const std::string& name : rec::AllRecommenderNames()) {
    rec::FitConfig fit;
    fit.embedding_dim = 4;
    fit.epochs = 1;
    auto ranker = rec::MakeRecommender(name, fit).value();
    ranker->Fit(d);
    auto before = ranker->Score(0, {0, 1, 2, 3});
    ranker->Update(data::Dataset(3, 4));
    auto after = ranker->Score(0, {0, 1, 2, 3});
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_DOUBLE_EQ(before[i], after[i]) << name;
    }
  }
}

TEST(EdgeTensor, OneByOneOps) {
  nn::Tensor a = nn::Tensor::FromData(1, 1, {2.0f}, true);
  nn::Tensor out = nn::Mean(nn::Square(nn::Tanh(a)));
  out.Backward();
  EXPECT_EQ(a.grad().size(), 1u);
}

TEST(EdgeTensor, EmptyRowsGather) {
  nn::Tensor table = nn::Tensor::FromData(2, 2, {1, 2, 3, 4});
  nn::Tensor out = nn::Rows(table, {});
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(EdgeSynthetic, MinimalConfig) {
  data::SyntheticConfig cfg;
  cfg.num_users = 1;
  cfg.num_items = 1;
  cfg.num_interactions = 3;
  cfg.min_user_length = 3;
  cfg.seed = 1;
  data::Dataset d = data::GenerateSynthetic(cfg);
  EXPECT_EQ(d.num_users(), 1u);
  EXPECT_GE(d.Sequence(0).size(), 3u);
}

TEST(EdgeAttack, TrajectoryLengthTwoConsLop) {
  // Smallest even budget still produces valid pairs.
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 20;
  dcfg.num_interactions = 200;
  dcfg.seed = 5;
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 1;
  cfg.trajectory_length = 2;
  cfg.num_target_items = 1;
  env::AttackEnvironment env(data::GenerateSynthetic(dcfg),
                             rec::MakeRecommender("CoVisitation").value(),
                             cfg);
  attack::ConsLopAttack conslop;
  auto trajs = conslop.GenerateAttack(env, 1);
  ASSERT_EQ(trajs.size(), 1u);
  EXPECT_EQ(trajs[0].items.size(), 2u);
}

}  // namespace
}  // namespace poisonrec
