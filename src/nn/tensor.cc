#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/kernels.h"

namespace poisonrec::nn {

using internal::TensorImpl;

namespace {

thread_local bool g_grad_enabled = true;

std::shared_ptr<TensorImpl> NewNode(std::size_t rows, std::size_t cols) {
  auto node = std::make_shared<TensorImpl>();
  node->rows = rows;
  node->cols = cols;
  node->data.assign(rows * cols, 0.0f);
  return node;
}

bool TrackGrad(std::initializer_list<const Tensor*> inputs) {
  if (!GradMode::Enabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->requires_grad()) return true;
  }
  return false;
}

// Registers parents + backward closure on `out` when tracking is on.
void Attach(const std::shared_ptr<TensorImpl>& out,
            std::initializer_list<const Tensor*> inputs,
            std::function<void()> backward_fn) {
  out->requires_grad = true;
  out->EnsureGrad();
  for (const Tensor* t : inputs) {
    out->parents.push_back(t->impl());
    if (t->requires_grad()) t->impl()->EnsureGrad();
  }
  out->backward_fn = std::move(backward_fn);
}

}  // namespace

bool GradMode::Enabled() { return g_grad_enabled; }

void GradMode::SetEnabled(bool enabled) { g_grad_enabled = enabled; }

bool GradEnabled() { return GradMode::Enabled(); }

NoGradGuard::NoGradGuard() : previous_(GradMode::Enabled()) {
  GradMode::SetEnabled(false);
}

NoGradGuard::~NoGradGuard() { GradMode::SetEnabled(previous_); }

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Tensor Tensor::Zeros(std::size_t rows, std::size_t cols, bool requires_grad) {
  auto node = NewNode(rows, cols);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Ones(std::size_t rows, std::size_t cols, bool requires_grad) {
  return Full(rows, cols, 1.0f, requires_grad);
}

Tensor Tensor::Full(std::size_t rows, std::size_t cols, float value,
                    bool requires_grad) {
  auto node = NewNode(rows, cols);
  std::fill(node->data.begin(), node->data.end(), value);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::FromData(std::size_t rows, std::size_t cols,
                        std::vector<float> data, bool requires_grad) {
  POISONREC_CHECK_EQ(rows * cols, data.size());
  auto node = std::make_shared<TensorImpl>();
  node->rows = rows;
  node->cols = cols;
  node->data = std::move(data);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Randn(std::size_t rows, std::size_t cols, float stddev,
                     Rng* rng, bool requires_grad) {
  POISONREC_CHECK(rng != nullptr);
  auto node = NewNode(rows, cols);
  for (float& v : node->data) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Rand(std::size_t rows, std::size_t cols, float lo, float hi,
                    Rng* rng, bool requires_grad) {
  POISONREC_CHECK(rng != nullptr);
  auto node = NewNode(rows, cols);
  for (float& v : node->data) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

float Tensor::item() const {
  POISONREC_CHECK(is_scalar()) << "item() on tensor of shape "
                               << ShapeString();
  return impl_->data[0];
}

void Tensor::ZeroGrad() {
  if (defined() && !impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::DeepCopy(bool requires_grad) const {
  POISONREC_CHECK(defined());
  return FromData(rows(), cols(), impl_->data, requires_grad);
}

void Tensor::CopyDataFrom(const Tensor& other) {
  POISONREC_CHECK(defined() && other.defined());
  POISONREC_CHECK_EQ(rows(), other.rows());
  POISONREC_CHECK_EQ(cols(), other.cols());
  impl_->data = other.impl_->data;
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "(undefined)";
  return "(" + std::to_string(rows()) + "x" + std::to_string(cols()) + ")";
}

void Tensor::Backward() {
  POISONREC_CHECK(defined());
  POISONREC_CHECK(is_scalar()) << "Backward() requires a scalar loss, got "
                               << ShapeString();
  POISONREC_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";

  // Iterative post-order DFS to build reverse topological order.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// Ops
// ---------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.cols(), b.rows())
      << "MatMul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = NewNode(m, n);
  kernels::GemmNN(m, k, n, a.data().data(), b.data().data(),
                  out->data.data());
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi, m, k, n]() {
      if (ai->requires_grad) {
        // dA(m×k) += dC(m×n) · Bᵀ (B stored k×n).
        kernels::GemmNT(m, n, k, oi->grad.data(), bi->data.data(),
                        ai->grad.data());
      }
      if (bi->requires_grad) {
        // dB(k×n) += Aᵀ · dC (A stored m×k).
        kernels::GemmTN(k, m, n, ai->data.data(), oi->grad.data(),
                        bi->grad.data());
      }
    });
  }
  return result;
}

namespace {

enum class AddKind { kSame, kBroadcastRow };

AddKind CheckAddShapes(const Tensor& a, const Tensor& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) return AddKind::kSame;
  POISONREC_CHECK(b.rows() == 1 && b.cols() == a.cols())
      << "Add/Sub shape mismatch " << a.ShapeString() << " vs "
      << b.ShapeString();
  return AddKind::kBroadcastRow;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const AddKind kind = CheckAddShapes(a, b);
  auto out = NewNode(a.rows(), a.cols());
  const std::size_t n = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const float bv =
          kind == AddKind::kSame ? b.at(r, c) : b.at(0, c);
      out->at(r, c) = a.at(r, c) + bv;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi, kind]() {
      if (ai->requires_grad) {
        for (std::size_t i = 0; i < ai->grad.size(); ++i) {
          ai->grad[i] += oi->grad[i];
        }
      }
      if (bi->requires_grad) {
        if (kind == AddKind::kSame) {
          for (std::size_t i = 0; i < bi->grad.size(); ++i) {
            bi->grad[i] += oi->grad[i];
          }
        } else {
          for (std::size_t r = 0; r < oi->rows; ++r) {
            for (std::size_t c = 0; c < oi->cols; ++c) {
              bi->grad[c] += oi->gat(r, c);
            }
          }
        }
      }
    });
  }
  return result;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const AddKind kind = CheckAddShapes(a, b);
  auto out = NewNode(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float bv =
          kind == AddKind::kSame ? b.at(r, c) : b.at(0, c);
      out->at(r, c) = a.at(r, c) - bv;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi, kind]() {
      if (ai->requires_grad) {
        for (std::size_t i = 0; i < ai->grad.size(); ++i) {
          ai->grad[i] += oi->grad[i];
        }
      }
      if (bi->requires_grad) {
        if (kind == AddKind::kSame) {
          for (std::size_t i = 0; i < bi->grad.size(); ++i) {
            bi->grad[i] -= oi->grad[i];
          }
        } else {
          for (std::size_t r = 0; r < oi->rows; ++r) {
            for (std::size_t c = 0; c < oi->cols; ++c) {
              bi->grad[c] -= oi->gat(r, c);
            }
          }
        }
      }
    });
  }
  return result;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const bool broadcast_col = (b.cols() == 1 && b.rows() == a.rows() &&
                              a.cols() != 1);
  if (!broadcast_col) {
    POISONREC_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
        << "Mul shape mismatch " << a.ShapeString() << " vs "
        << b.ShapeString();
  }
  auto out = NewNode(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float bv = broadcast_col ? b.at(r, 0) : b.at(r, c);
      out->at(r, c) = a.at(r, c) * bv;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi, broadcast_col]() {
      for (std::size_t r = 0; r < oi->rows; ++r) {
        for (std::size_t c = 0; c < oi->cols; ++c) {
          const float g = oi->gat(r, c);
          const float bv =
              broadcast_col ? bi->data[r] : bi->at(r, c);
          if (ai->requires_grad) ai->gat(r, c) += g * bv;
          if (bi->requires_grad) {
            if (broadcast_col) {
              bi->grad[r] += g * ai->at(r, c);
            } else {
              bi->gat(r, c) += g * ai->at(r, c);
            }
          }
        }
      }
    });
  }
  return result;
}

namespace {

// Shared scaffolding for elementwise unary ops:
// out = fwd(x), dx += dout * dfn(x, y).
template <typename Fwd, typename Dfn>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Dfn dfn) {
  auto out = NewNode(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out->data[i] = fwd(a.data()[i]);
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi, dfn]() {
      if (!ai->requires_grad) return;
      for (std::size_t i = 0; i < ai->grad.size(); ++i) {
        ai->grad[i] += oi->grad[i] * dfn(ai->data[i], oi->data[i]);
      }
    });
  }
  return result;
}

}  // namespace

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Stable logistic.
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        POISONREC_CHECK_GT(x, 0.0f) << "Log of non-positive value";
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x > 0.0f ? x + std::log1p(std::exp(-x))
                        : std::log1p(std::exp(x));
      },
      [](float x, float) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Softmax(const Tensor& a) {
  auto out = NewNode(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float maxv = a.at(r, 0);
    for (std::size_t c = 1; c < a.cols(); ++c) {
      maxv = std::max(maxv, a.at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float e = std::exp(a.at(r, c) - maxv);
      out->at(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < a.cols(); ++c) out->at(r, c) /= denom;
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi]() {
      if (!ai->requires_grad) return;
      for (std::size_t r = 0; r < oi->rows; ++r) {
        float dot = 0.0f;
        for (std::size_t c = 0; c < oi->cols; ++c) {
          dot += oi->gat(r, c) * oi->at(r, c);
        }
        for (std::size_t c = 0; c < oi->cols; ++c) {
          ai->gat(r, c) += oi->at(r, c) * (oi->gat(r, c) - dot);
        }
      }
    });
  }
  return result;
}

Tensor LogSoftmax(const Tensor& a) {
  auto out = NewNode(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float maxv = a.at(r, 0);
    for (std::size_t c = 1; c < a.cols(); ++c) {
      maxv = std::max(maxv, a.at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      denom += std::exp(a.at(r, c) - maxv);
    }
    const float lse = maxv + std::log(denom);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out->at(r, c) = a.at(r, c) - lse;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi]() {
      if (!ai->requires_grad) return;
      for (std::size_t r = 0; r < oi->rows; ++r) {
        float gsum = 0.0f;
        for (std::size_t c = 0; c < oi->cols; ++c) gsum += oi->gat(r, c);
        for (std::size_t c = 0; c < oi->cols; ++c) {
          ai->gat(r, c) +=
              oi->gat(r, c) - std::exp(oi->at(r, c)) * gsum;
        }
      }
    });
  }
  return result;
}

Tensor Sum(const Tensor& a) {
  auto out = NewNode(1, 1);
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->data[0] = acc;
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi]() {
      if (!ai->requires_grad) return;
      const float g = oi->grad[0];
      for (float& gv : ai->grad) gv += g;
    });
  }
  return result;
}

Tensor Mean(const Tensor& a) {
  POISONREC_CHECK_GT(a.size(), 0u);
  auto out = NewNode(1, 1);
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->data[0] = acc / static_cast<float>(a.size());
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    const float inv = 1.0f / static_cast<float>(a.size());
    Attach(out, {&a}, [ai, oi, inv]() {
      if (!ai->requires_grad) return;
      const float g = oi->grad[0] * inv;
      for (float& gv : ai->grad) gv += g;
    });
  }
  return result;
}

Tensor RowSum(const Tensor& a) {
  auto out = NewNode(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a.at(r, c);
    out->data[r] = acc;
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi]() {
      if (!ai->requires_grad) return;
      for (std::size_t r = 0; r < ai->rows; ++r) {
        const float g = oi->grad[r];
        for (std::size_t c = 0; c < ai->cols; ++c) ai->gat(r, c) += g;
      }
    });
  }
  return result;
}

Tensor Transpose(const Tensor& a) {
  auto out = NewNode(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out->at(c, r) = a.at(r, c);
    }
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi]() {
      if (!ai->requires_grad) return;
      for (std::size_t r = 0; r < ai->rows; ++r) {
        for (std::size_t c = 0; c < ai->cols; ++c) {
          ai->gat(r, c) += oi->gat(c, r);
        }
      }
    });
  }
  return result;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.rows(), b.rows());
  auto out = NewNode(a.rows(), a.cols() + b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out->at(r, c) = a.at(r, c);
    for (std::size_t c = 0; c < b.cols(); ++c) {
      out->at(r, a.cols() + c) = b.at(r, c);
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi]() {
      for (std::size_t r = 0; r < oi->rows; ++r) {
        if (ai->requires_grad) {
          for (std::size_t c = 0; c < ai->cols; ++c) {
            ai->gat(r, c) += oi->gat(r, c);
          }
        }
        if (bi->requires_grad) {
          for (std::size_t c = 0; c < bi->cols; ++c) {
            bi->gat(r, c) += oi->gat(r, ai->cols + c);
          }
        }
      }
    });
  }
  return result;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.cols(), b.cols());
  auto out = NewNode(a.rows() + b.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), out->data.begin());
  std::copy(b.data().begin(), b.data().end(),
            out->data.begin() + static_cast<std::ptrdiff_t>(a.size()));
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi]() {
      if (ai->requires_grad) {
        for (std::size_t i = 0; i < ai->grad.size(); ++i) {
          ai->grad[i] += oi->grad[i];
        }
      }
      if (bi->requires_grad) {
        const std::size_t offset = ai->data.size();
        for (std::size_t i = 0; i < bi->grad.size(); ++i) {
          bi->grad[i] += oi->grad[offset + i];
        }
      }
    });
  }
  return result;
}

Tensor Cols(const Tensor& a, std::size_t start, std::size_t len) {
  POISONREC_CHECK_LE(start + len, a.cols());
  auto out = NewNode(a.rows(), len);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < len; ++c) {
      out->at(r, c) = a.at(r, start + c);
    }
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a}, [ai, oi, start, len]() {
      if (!ai->requires_grad) return;
      for (std::size_t r = 0; r < ai->rows; ++r) {
        for (std::size_t c = 0; c < len; ++c) {
          ai->gat(r, start + c) += oi->gat(r, c);
        }
      }
    });
  }
  return result;
}

Tensor Rows(const Tensor& table, const std::vector<std::size_t>& indices) {
  const std::size_t dim = table.cols();
  auto out = NewNode(indices.size(), dim);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    POISONREC_CHECK_LT(indices[i], table.rows());
    std::copy(table.data().begin() +
                  static_cast<std::ptrdiff_t>(indices[i] * dim),
              table.data().begin() +
                  static_cast<std::ptrdiff_t>((indices[i] + 1) * dim),
              out->data.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  Tensor result(out);
  if (TrackGrad({&table})) {
    TensorImpl* ti = table.impl().get();
    TensorImpl* oi = out.get();
    std::vector<std::size_t> idx = indices;
    Attach(out, {&table}, [ti, oi, idx = std::move(idx), dim]() {
      if (!ti->requires_grad) return;
      for (std::size_t i = 0; i < idx.size(); ++i) {
        float* dst = ti->grad.data() + idx[i] * dim;
        const float* src = oi->grad.data() + i * dim;
        for (std::size_t c = 0; c < dim; ++c) dst[c] += src[c];
      }
    });
  }
  return result;
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.rows(), b.rows());
  POISONREC_CHECK_EQ(a.cols(), b.cols());
  auto out = NewNode(a.rows(), 1);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      acc += a.at(r, c) * b.at(r, c);
    }
    out->data[r] = acc;
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    TensorImpl* ai = a.impl().get();
    TensorImpl* bi = b.impl().get();
    TensorImpl* oi = out.get();
    Attach(out, {&a, &b}, [ai, bi, oi]() {
      for (std::size_t r = 0; r < ai->rows; ++r) {
        const float g = oi->grad[r];
        for (std::size_t c = 0; c < ai->cols; ++c) {
          if (ai->requires_grad) ai->gat(r, c) += g * bi->at(r, c);
          if (bi->requires_grad) bi->gat(r, c) += g * ai->at(r, c);
        }
      }
    });
  }
  return result;
}

std::vector<float> NumericalGradient(
    const std::function<float(const Tensor&)>& f, Tensor x, float eps) {
  std::vector<float> grad(x.size());
  std::vector<float>& data = x.mutable_data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float saved = data[i];
    data[i] = saved + eps;
    const float fp = f(x);
    data[i] = saved - eps;
    const float fm = f(x);
    data[i] = saved;
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

}  // namespace poisonrec::nn
