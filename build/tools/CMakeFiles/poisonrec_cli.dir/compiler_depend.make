# Empty compiler generated dependencies file for poisonrec_cli.
# This may be replaced when dependencies are built.
