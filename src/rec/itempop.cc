#include "rec/itempop.h"

#include "util/logging.h"

namespace poisonrec::rec {

ItemPop::ItemPop(const FitConfig& config) { (void)config; }

void ItemPop::Fit(const data::Dataset& dataset) {
  counts_.assign(dataset.num_items(), 0.0);
  const std::vector<std::size_t>& pop = dataset.ItemPopularity();
  for (std::size_t i = 0; i < pop.size(); ++i) {
    counts_[i] = static_cast<double>(pop[i]);
  }
}

void ItemPop::Update(const data::Dataset& poison) {
  POISONREC_CHECK_EQ(poison.num_items(), counts_.size())
      << "poison log capacity mismatch";
  const std::vector<std::size_t>& pop = poison.ItemPopularity();
  for (std::size_t i = 0; i < pop.size(); ++i) {
    counts_[i] += static_cast<double>(pop[i]);
  }
}

std::vector<double> ItemPop::Score(
    data::UserId /*user*/, const std::vector<data::ItemId>& candidates) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (data::ItemId item : candidates) {
    POISONREC_CHECK_LT(item, counts_.size());
    scores.push_back(counts_[item]);
  }
  return scores;
}

std::unique_ptr<Recommender> ItemPop::Clone() const {
  return std::make_unique<ItemPop>(*this);
}

}  // namespace poisonrec::rec
