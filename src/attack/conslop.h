// ConsLOP (Yang et al., NDSS'17): single-target co-visitation injection
// modeled as a constrained linear optimization. Our solver is the greedy
// gain/cost relaxation: for every original item i, entering i's top-k
// co-visited list requires pushing covis(i, t*) past the k-th largest
// co-visitation count of i (threshold θ_i); the payoff is i's audience
// (its popularity). With a budget of N·T/2 co-visits, greedily buy the
// best gain-per-cost items. The resulting plan is emitted as alternating
// (t*, i) click pairs, the paper's redefinition of co-visits as click
// sequences.
#ifndef POISONREC_ATTACK_CONSLOP_H_
#define POISONREC_ATTACK_CONSLOP_H_

#include "attack/attack.h"

namespace poisonrec::attack {

class ConsLopAttack : public AttackMethod {
 public:
  /// `top_k`: size of the co-visitation recommendation list to break into
  /// (defaults to the environment's top_k at attack time when 0).
  explicit ConsLopAttack(std::size_t top_k = 0);

  std::string Name() const override { return "ConsLOP"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

  /// The per-item injection plan: how many (target, item) co-visits to
  /// inject into each original item (exposed for tests).
  struct PlanEntry {
    data::ItemId item;
    std::size_t covisit_count;
  };
  std::vector<PlanEntry> Solve(const env::AttackEnvironment& environment)
      const;

 private:
  std::size_t top_k_;
};

}  // namespace poisonrec::attack

#endif  // POISONREC_ATTACK_CONSLOP_H_
