// Batched-engine identity tests: every fast path the EngineConfig turns
// on (batched episode sampling, recorded-graph reuse across PPO epochs,
// the node-recycling arena) and every kernel-layer change underneath
// them (fused LSTM gates, threaded SparseMatMul, small-GEMM dispatch)
// must be bit-identical to the reference path it replaces — same
// trajectories, same rewards, same post-update parameters — at every
// thread count, and across checkpoint/resume.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy.h"
#include "core/ppo.h"
#include "data/synthetic.h"
#include "nn/arena.h"
#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/sparse.h"
#include "rec/registry.h"
#include "util/random.h"

namespace poisonrec::core {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Restores the process-global kernel thread budget on scope exit so a
/// test can't leak its override into the rest of the binary.
struct ThreadGuard {
  ~ThreadGuard() { nn::SetNumThreads(0); }
};

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 120;
    cfg.num_items = 100;
    cfg.num_interactions = 1200;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig() {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = 10;
    cfg.trajectory_length = 8;
    cfg.num_target_items = 4;
    cfg.num_candidate_originals = 30;
    cfg.top_k = 5;
    cfg.seed = 11;
    return cfg;
  }

  static PoisonRecConfig MakeAttackerConfig() {
    PoisonRecConfig cfg;
    cfg.samples_per_step = 6;
    cfg.batch_size = 6;
    cfg.update_epochs = 3;
    cfg.policy.embedding_dim = 8;
    cfg.policy.action_space = ActionSpaceKind::kBcbtPopular;
    cfg.seed = 7;
    return cfg;
  }

  static PoisonRecConfig MakeReferenceConfig() {
    PoisonRecConfig cfg = MakeAttackerConfig();
    cfg.engine.batched_sampling = false;
    cfg.engine.reuse_update_graph = false;
    cfg.engine.tensor_arena = false;
    return cfg;
  }

  env::AttackEnvironment environment;
};

void ExpectTrajectoriesBitwiseEqual(
    const std::vector<SampledTrajectory>& a,
    const std::vector<SampledTrajectory>& b, const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].attacker_index, b[i].attacker_index) << context;
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size()) << context;
    for (std::size_t t = 0; t < a[i].steps.size(); ++t) {
      const SampledStep& sa = a[i].steps[t];
      const SampledStep& sb = b[i].steps[t];
      ASSERT_EQ(sa.item, sb.item)
          << context << " traj " << i << " step " << t;
      ASSERT_EQ(sa.path, sb.path)
          << context << " traj " << i << " step " << t;
      ASSERT_EQ(sa.old_log_probs.size(), sb.old_log_probs.size()) << context;
      for (std::size_t d = 0; d < sa.old_log_probs.size(); ++d) {
        // Bitwise: the batched recurrence must reproduce the per-episode
        // recurrence exactly, not approximately.
        ASSERT_EQ(sa.old_log_probs[d], sb.old_log_probs[d])
            << context << " traj " << i << " step " << t << " decision " << d;
      }
    }
  }
}

std::unique_ptr<Policy> MakeStandalonePolicy(std::size_t num_attackers,
                                             ActionSpaceKind kind) {
  const std::size_t num_original = 40;
  std::vector<data::ItemId> originals(num_original);
  for (std::size_t i = 0; i < num_original; ++i) originals[i] = i;
  std::vector<data::ItemId> targets = {40, 41, 42};
  PolicyConfig cfg;
  cfg.embedding_dim = 8;
  cfg.action_space = kind;
  cfg.seed = 123;
  return std::make_unique<Policy>(num_attackers, num_original + targets.size(),
                                  originals, targets, cfg);
}

// -- Batched sampler -------------------------------------------------------

TEST(BatchedSamplerTest, MatchesPerEpisodeSamplingBitwise) {
  ThreadGuard guard;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    nn::SetNumThreads(threads);
    for (const std::size_t n : {std::size_t{1}, std::size_t{20},
                                std::size_t{200}}) {
      auto policy = MakeStandalonePolicy(n, ActionSpaceKind::kBcbtPopular);
      const std::size_t episodes = 3;
      const std::size_t length = 6;

      std::vector<std::vector<SampledTrajectory>> reference(episodes);
      for (std::size_t e = 0; e < episodes; ++e) {
        Rng rng(DeriveStreamSeed(99, 1, e));
        reference[e] = policy->SampleEpisode(length, &rng);
      }

      std::vector<Rng> rngs;
      for (std::size_t e = 0; e < episodes; ++e) {
        rngs.emplace_back(DeriveStreamSeed(99, 1, e));
      }
      const auto batched = policy->SampleEpisodesBatched(episodes, length,
                                                         &rngs);
      ASSERT_EQ(batched.size(), episodes);
      for (std::size_t e = 0; e < episodes; ++e) {
        ExpectTrajectoriesBitwiseEqual(
            reference[e], batched[e],
            "N=" + std::to_string(n) + " threads=" + std::to_string(threads) +
                " episode " + std::to_string(e));
      }
    }
  }
}

TEST(BatchedSamplerTest, MatchesPerEpisodeAcrossActionSpaces) {
  for (const ActionSpaceKind kind :
       {ActionSpaceKind::kPlain, ActionSpaceKind::kBPlain,
        ActionSpaceKind::kBcbtRandom, ActionSpaceKind::kCbtUnbiased}) {
    auto policy = MakeStandalonePolicy(10, kind);
    std::vector<std::vector<SampledTrajectory>> reference(2);
    for (std::size_t e = 0; e < 2; ++e) {
      Rng rng(DeriveStreamSeed(5, 2, e));
      reference[e] = policy->SampleEpisode(5, &rng);
    }
    std::vector<Rng> rngs;
    for (std::size_t e = 0; e < 2; ++e) {
      rngs.emplace_back(DeriveStreamSeed(5, 2, e));
    }
    const auto batched = policy->SampleEpisodesBatched(2, 5, &rngs);
    for (std::size_t e = 0; e < 2; ++e) {
      ExpectTrajectoriesBitwiseEqual(
          reference[e], batched[e],
          std::string(ActionSpaceKindName(kind)) + " episode " +
              std::to_string(e));
    }
  }
}

// -- Per-row baseline ------------------------------------------------------

TEST(PerRowBaselineTest, SamplingMatchesBatchedBitwise) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{20}}) {
    auto policy = MakeStandalonePolicy(n, ActionSpaceKind::kBcbtPopular);
    Rng batched_rng(DeriveStreamSeed(17, 3, 0));
    Rng per_row_rng(DeriveStreamSeed(17, 3, 0));
    const auto batched = policy->SampleEpisode(6, &batched_rng);
    const auto per_row = policy->SampleEpisodePerRow(6, &per_row_rng);
    ExpectTrajectoriesBitwiseEqual(batched, per_row,
                                   "per-row N=" + std::to_string(n));
  }
}

TEST(PerRowBaselineTest, SamplingMatchesAcrossActionSpaces) {
  for (const ActionSpaceKind kind :
       {ActionSpaceKind::kPlain, ActionSpaceKind::kBPlain,
        ActionSpaceKind::kBcbtRandom, ActionSpaceKind::kCbtUnbiased}) {
    auto policy = MakeStandalonePolicy(8, kind);
    Rng batched_rng(DeriveStreamSeed(21, 4, 0));
    Rng per_row_rng(DeriveStreamSeed(21, 4, 0));
    const auto batched = policy->SampleEpisode(5, &batched_rng);
    const auto per_row = policy->SampleEpisodePerRow(5, &per_row_rng);
    ExpectTrajectoriesBitwiseEqual(batched, per_row,
                                   ActionSpaceKindName(kind));
  }
}

TEST(StackRowsTest, ForwardLayoutAndScatteredGradients) {
  Rng rng(31);
  std::vector<nn::Tensor> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(nn::Tensor::Randn(1, 4, 1.0f, &rng, true));
  }
  nn::Tensor stacked = nn::StackRows(parts);
  ASSERT_EQ(stacked.rows(), 3u);
  ASSERT_EQ(stacked.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(stacked.at(r, c), parts[r].at(0, c)) << r << "," << c;
    }
  }
  // d/dx sum(stacked * stacked) = 2*stacked, sliced back to each part.
  nn::Tensor loss = nn::Sum(nn::Mul(stacked, stacked));
  loss.Backward();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(parts[r].grad()[c], 2.0f * parts[r].at(0, c));
    }
  }
}

// -- Full engine vs reference engine ---------------------------------------

void ExpectStepStatsBitwiseEqual(const TrainStepStats& a,
                                 const TrainStepStats& b,
                                 const std::string& context) {
  EXPECT_EQ(a.step, b.step) << context;
  EXPECT_EQ(a.mean_reward, b.mean_reward) << context;
  EXPECT_EQ(a.max_reward, b.max_reward) << context;
  EXPECT_EQ(a.min_reward, b.min_reward) << context;
  EXPECT_EQ(a.best_reward_so_far, b.best_reward_so_far) << context;
  EXPECT_EQ(a.loss, b.loss) << context;
  EXPECT_EQ(a.entropy, b.entropy) << context;
  EXPECT_EQ(a.approx_kl, b.approx_kl) << context;
  EXPECT_EQ(a.pre_clip_grad_norm, b.pre_clip_grad_norm) << context;
  EXPECT_EQ(a.target_click_ratio, b.target_click_ratio) << context;
}

void ExpectParametersBitwiseEqual(const Policy& a, const Policy& b,
                                  const std::string& context) {
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size()) << context;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].data(), pb[i].data())
        << context << " parameter " << i;
  }
}

TEST(BatchedEngineTest, MatchesReferenceEngineBitwise) {
  ThreadGuard guard;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    nn::SetNumThreads(threads);
    Fixture f_ref;
    Fixture f_fast;
    PoisonRecAttacker reference(&f_ref.environment,
                                Fixture::MakeReferenceConfig());
    PoisonRecAttacker fast(&f_fast.environment, Fixture::MakeAttackerConfig());
    const auto ref_stats = reference.Train(3);
    const auto fast_stats = fast.Train(3);
    ASSERT_EQ(ref_stats.size(), fast_stats.size());
    for (std::size_t s = 0; s < ref_stats.size(); ++s) {
      ExpectStepStatsBitwiseEqual(
          ref_stats[s], fast_stats[s],
          "threads=" + std::to_string(threads) + " step " + std::to_string(s));
    }
    ExpectParametersBitwiseEqual(reference.policy(), fast.policy(),
                                 "threads=" + std::to_string(threads));
  }
}

TEST(BatchedEngineTest, PerRowBaselineMatchesBatchedEngineBitwise) {
  // The speedup denominator of bench_train_step_timing must also be its
  // identity oracle: the per-row baseline (1×d recurrence chains, per-row
  // tape nodes, fresh tapes) has to produce the same trajectories,
  // rewards, and post-update parameters as the fully batched engine.
  // This exercises the StackRows parent-ordering contract: per-row
  // backward chains must accumulate into the shared LSTM/embedding
  // weights in the batched GemmTN's ascending-row order.
  Fixture f_base;
  Fixture f_fast;
  PoisonRecConfig base_cfg = Fixture::MakeReferenceConfig();
  base_cfg.engine.per_row_recurrence = true;
  PoisonRecAttacker baseline(&f_base.environment, base_cfg);
  PoisonRecAttacker fast(&f_fast.environment, Fixture::MakeAttackerConfig());
  const auto base_stats = baseline.Train(3);
  const auto fast_stats = fast.Train(3);
  ASSERT_EQ(base_stats.size(), fast_stats.size());
  for (std::size_t s = 0; s < base_stats.size(); ++s) {
    ExpectStepStatsBitwiseEqual(base_stats[s], fast_stats[s],
                                "per-row step " + std::to_string(s));
  }
  ExpectParametersBitwiseEqual(baseline.policy(), fast.policy(), "per-row");
}

TEST(BatchedEngineTest, EachFastPathAloneMatchesReference) {
  // Isolate every engine flag so a regression names its culprit.
  struct Case {
    const char* name;
    bool batched;
    bool reuse;
    bool arena;
  };
  const Case cases[] = {{"batched_sampling", true, false, false},
                        {"reuse_update_graph", false, true, false},
                        {"tensor_arena", false, false, true}};
  Fixture f_ref;
  PoisonRecAttacker reference(&f_ref.environment,
                              Fixture::MakeReferenceConfig());
  const auto ref_stats = reference.Train(2);
  for (const Case& c : cases) {
    Fixture f;
    PoisonRecConfig cfg = Fixture::MakeReferenceConfig();
    cfg.engine.batched_sampling = c.batched;
    cfg.engine.reuse_update_graph = c.reuse;
    cfg.engine.tensor_arena = c.arena;
    PoisonRecAttacker attacker(&f.environment, cfg);
    const auto stats = attacker.Train(2);
    ASSERT_EQ(stats.size(), ref_stats.size()) << c.name;
    for (std::size_t s = 0; s < stats.size(); ++s) {
      ExpectStepStatsBitwiseEqual(ref_stats[s], stats[s],
                                  std::string(c.name) + " step " +
                                      std::to_string(s));
    }
    ExpectParametersBitwiseEqual(reference.policy(), attacker.policy(),
                                 c.name);
  }
}

TEST(BatchedEngineTest, GraphReuseDisabledForSubsampledBatches) {
  // batch_size < samples_per_step resamples the batch each epoch, so the
  // recorded-graph path must quietly stand down; the run still works and
  // matches the reference engine (the batch draw consumes the same
  // shared-RNG sequence either way).
  Fixture f_ref;
  Fixture f_fast;
  PoisonRecConfig ref_cfg = Fixture::MakeReferenceConfig();
  ref_cfg.samples_per_step = 6;
  ref_cfg.batch_size = 4;
  PoisonRecConfig fast_cfg = Fixture::MakeAttackerConfig();
  fast_cfg.samples_per_step = 6;
  fast_cfg.batch_size = 4;
  PoisonRecAttacker reference(&f_ref.environment, ref_cfg);
  PoisonRecAttacker fast(&f_fast.environment, fast_cfg);
  const auto ref_stats = reference.Train(2);
  const auto fast_stats = fast.Train(2);
  for (std::size_t s = 0; s < ref_stats.size(); ++s) {
    ExpectStepStatsBitwiseEqual(ref_stats[s], fast_stats[s],
                                "subsampled step " + std::to_string(s));
  }
  ExpectParametersBitwiseEqual(reference.policy(), fast.policy(),
                               "subsampled");
}

TEST(BatchedEngineTest, CheckpointResumeCrossesEnginesBitwise) {
  // The strongest compatibility claim: a reference-engine run that never
  // stopped, vs a batched-engine run killed at step 2 and resumed from
  // its checkpoint. Same checkpoint format, same RNG streams, same
  // arithmetic — the tails must agree bitwise.
  Fixture f_full;
  Fixture f_killed;
  PoisonRecAttacker uninterrupted(&f_full.environment,
                                  Fixture::MakeReferenceConfig());
  const auto reference = uninterrupted.Train(4);

  const std::string path = TempPath("poisonrec_batched_engine_ckpt.bin");
  {
    PoisonRecAttacker first(&f_killed.environment,
                            Fixture::MakeAttackerConfig());
    first.Train(2);
    ASSERT_TRUE(first.SaveCheckpoint(path).ok());
  }
  PoisonRecAttacker resumed(&f_killed.environment,
                            Fixture::MakeAttackerConfig());
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed.steps_taken(), 2u);
  const auto tail = resumed.Train(2);
  ASSERT_EQ(tail.size(), 2u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    ExpectStepStatsBitwiseEqual(reference[2 + i], tail[i],
                                "resumed step " + std::to_string(i));
  }
  std::remove(path.c_str());
}

// -- Graph record/replay ----------------------------------------------------

TEST(GraphTapeTest, ReplayRecomputesWithFreshLeafData) {
  Rng rng(17);
  nn::Tensor w = nn::Tensor::Randn(4, 3, 0.5f, &rng, /*requires_grad=*/true);
  nn::Tensor x = nn::Tensor::Randn(5, 4, 0.5f, &rng);

  nn::GraphTape tape;
  nn::Tensor loss;
  {
    nn::GraphTape::RecordScope record(&tape);
    loss = nn::Sum(nn::Tanh(nn::MatMul(x, w)));
  }
  EXPECT_GT(tape.size(), 0u);

  // Mutate both leaves, replay, and compare against a fresh build.
  for (float& v : w.mutable_data()) v += 0.25f;
  for (float& v : x.mutable_data()) v -= 0.125f;
  tape.ReplayForward();
  nn::Tensor fresh = nn::Sum(nn::Tanh(nn::MatMul(x, w)));
  ASSERT_EQ(loss.item(), fresh.item());
}

TEST(RecordedBackwardTest, MatchesFreshBackwardBitwise) {
  Rng rng(31);
  nn::Tensor w = nn::Tensor::Randn(6, 4, 0.5f, &rng, /*requires_grad=*/true);
  nn::Tensor x = nn::Tensor::Randn(3, 6, 0.5f, &rng);

  // Reference: fresh graph + Tensor::Backward. The graph reuses w twice
  // so gradient accumulation order into a shared parent is exercised.
  auto build = [&]() {
    nn::Tensor h = nn::Tanh(nn::MatMul(x, w));
    nn::Tensor g = nn::Sigmoid(nn::MatMul(x, w));
    return nn::Sum(nn::Mul(h, g));
  };
  nn::Tensor fresh_loss = build();
  fresh_loss.Backward();
  const std::vector<float> want = w.grad();

  // Recorded: capture once, run twice (second run must match after a
  // zero-grad, proving replays don't depend on first-run state).
  w.ZeroGrad();
  nn::GraphTape tape;
  nn::Tensor loss;
  {
    nn::GraphTape::RecordScope record(&tape);
    loss = build();
  }
  nn::RecordedBackward backward;
  backward.Capture(loss);
  backward.Run(loss);
  ASSERT_EQ(w.grad(), want);

  w.ZeroGrad();
  tape.ZeroGrads();
  tape.ReplayForward();
  backward.Run(loss);
  ASSERT_EQ(w.grad(), want);
}

// -- Arena ------------------------------------------------------------------

TEST(TensorArenaTest, RecyclesNodesAcrossScopesWithoutChangingResults) {
  Rng rng(7);
  nn::Tensor w = nn::Tensor::Randn(8, 8, 0.5f, &rng, /*requires_grad=*/true);
  nn::Tensor x = nn::Tensor::Randn(8, 8, 0.5f, &rng);

  auto run = [&]() {
    nn::Tensor loss = nn::Sum(nn::Relu(nn::MatMul(x, w)));
    const float value = loss.item();
    w.ZeroGrad();
    loss.Backward();
    return std::make_pair(value, w.grad());
  };

  const auto want = run();  // no arena

  nn::TensorArena arena;
  std::pair<float, std::vector<float>> first, second;
  {
    nn::TensorArena::Scope scope(&arena);
    first = run();
  }
  EXPECT_EQ(arena.free_count(), arena.total_acquired())
      << "all step-local nodes should recycle once their handles die";
  {
    nn::TensorArena::Scope scope(&arena);
    second = run();
  }
  EXPECT_GT(arena.total_recycled(), 0u)
      << "second scope should reuse the first scope's buffers";
  EXPECT_EQ(first.first, want.first);
  EXPECT_EQ(first.second, want.second);
  EXPECT_EQ(second.first, want.first);
  EXPECT_EQ(second.second, want.second);
}

TEST(TensorArenaTest, EscapedTensorsSurviveReset) {
  nn::TensorArena arena;
  nn::Tensor kept;
  {
    nn::TensorArena::Scope scope(&arena);
    kept = nn::AddScalar(nn::Tensor::Full(2, 2, 1.5f), 0.5f);
  }
  // The handle outlives the scope: the node must escape recycling and
  // keep its values.
  for (float v : kept.data()) EXPECT_EQ(v, 2.0f);
}

// -- Fused LSTM gates -------------------------------------------------------

TEST(LstmGatesTest, MatchesComposedGateFormulas) {
  // The fused kernel contracts multiply-adds the composed chain spelled
  // out, so compare with a tolerance (FMA may differ in the last ulp);
  // engine-level identity is covered by the bitwise tests above, where
  // both sides run the same fused path.
  Rng rng(11);
  const std::size_t b = 5, h = 4;
  nn::Tensor preact = nn::Tensor::Randn(b, 4 * h, 1.0f, &rng);
  nn::Tensor c_prev = nn::Tensor::Randn(b, h, 1.0f, &rng);
  const nn::LstmGatesResult out = nn::LstmGates(preact, c_prev);
  auto sigmoid = [](float x) {
    return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                     : std::exp(x) / (1.0f + std::exp(x));
  };
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < h; ++j) {
      const float i = sigmoid(preact.at(r, j));
      const float f = sigmoid(preact.at(r, h + j));
      const float g = std::tanh(preact.at(r, 2 * h + j));
      const float o = sigmoid(preact.at(r, 3 * h + j));
      const float c = f * c_prev.at(r, j) + i * g;
      EXPECT_NEAR(out.c.at(r, j), c, 1e-6f);
      EXPECT_NEAR(out.h.at(r, j), o * std::tanh(c), 1e-6f);
    }
  }
}

TEST(LstmGatesTest, GradientsMatchNumerical) {
  Rng rng(13);
  const std::size_t b = 3, h = 3;
  nn::Tensor preact =
      nn::Tensor::Randn(b, 4 * h, 0.8f, &rng, /*requires_grad=*/true);
  nn::Tensor c_prev =
      nn::Tensor::Randn(b, h, 0.8f, &rng, /*requires_grad=*/true);

  auto loss_of = [&](const nn::Tensor& pa, const nn::Tensor& cp) {
    const nn::LstmGatesResult out = nn::LstmGates(pa, cp);
    return nn::Sum(nn::Add(out.h, out.c));
  };
  nn::Tensor loss = loss_of(preact, c_prev);
  loss.Backward();

  const std::vector<float> num_pre = nn::NumericalGradient(
      [&](const nn::Tensor& t) { return loss_of(t, c_prev).item(); }, preact);
  for (std::size_t i = 0; i < num_pre.size(); ++i) {
    EXPECT_NEAR(preact.grad()[i], num_pre[i], 2e-2f) << "preact grad " << i;
  }
  const std::vector<float> num_c = nn::NumericalGradient(
      [&](const nn::Tensor& t) { return loss_of(preact, t).item(); }, c_prev);
  for (std::size_t i = 0; i < num_c.size(); ++i) {
    EXPECT_NEAR(c_prev.grad()[i], num_c[i], 2e-2f) << "c_prev grad " << i;
  }
}

// -- Threaded SparseMatMul --------------------------------------------------

TEST(SparseMatMulTest, ForwardAndBackwardBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(23);
  const std::size_t m = 64, k = 48, n = 16;
  std::vector<nn::CsrMatrix::Triplet> triplets;
  for (std::size_t i = 0; i < 600; ++i) {
    triplets.push_back({rng.Index(m), rng.Index(k),
                        static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  const nn::CsrMatrix a(m, k, triplets);

  std::vector<float> out_1t, grad_1t;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    nn::SetNumThreads(threads);
    Rng xr(29);
    nn::Tensor x = nn::Tensor::Randn(k, n, 1.0f, &xr, /*requires_grad=*/true);
    nn::Tensor y = nn::SparseMatMul(a, x);
    nn::Tensor loss = nn::Sum(nn::Mul(y, y));
    loss.Backward();
    if (threads == 1) {
      out_1t = y.data();
      grad_1t = x.grad();
    } else {
      ASSERT_EQ(y.data(), out_1t);
      ASSERT_EQ(x.grad(), grad_1t);
    }
  }
}

}  // namespace
}  // namespace poisonrec::core
