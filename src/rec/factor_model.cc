#include "rec/factor_model.h"

namespace poisonrec::rec {

std::vector<std::unordered_set<data::ItemId>> BuildPositiveSets(
    const data::Dataset& dataset) {
  std::vector<std::unordered_set<data::ItemId>> sets(dataset.num_users());
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    for (data::ItemId item : dataset.Sequence(u)) sets[u].insert(item);
  }
  return sets;
}

void MergePositiveSets(const data::Dataset& extra,
                       std::vector<std::unordered_set<data::ItemId>>* sets) {
  if (extra.num_users() > sets->size()) sets->resize(extra.num_users());
  for (data::UserId u = 0; u < extra.num_users(); ++u) {
    for (data::ItemId item : extra.Sequence(u)) (*sets)[u].insert(item);
  }
}

data::ItemId SampleNegative(std::size_t num_items,
                            const std::unordered_set<data::ItemId>& positives,
                            Rng* rng) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const data::ItemId j = rng->Index(num_items);
    if (positives.find(j) == positives.end()) return j;
  }
  return rng->Index(num_items);
}

std::vector<data::Interaction> MixWithReplay(
    std::vector<data::Interaction> poison_events,
    const std::vector<data::Interaction>& clean, double ratio, Rng* rng) {
  if (!clean.empty() && ratio > 0.0) {
    const std::size_t extra = static_cast<std::size_t>(
        ratio * static_cast<double>(poison_events.size()));
    poison_events.reserve(poison_events.size() + extra);
    for (std::size_t i = 0; i < extra; ++i) {
      poison_events.push_back(clean[rng->Index(clean.size())]);
    }
  }
  return poison_events;
}

}  // namespace poisonrec::rec
