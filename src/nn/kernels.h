// Dense GEMM kernel layer beneath the tensor API (the torch-style
// split: tensor.cc owns autograd bookkeeping, kernels.cc owns the
// floating-point loops). All three transpose variants used by MatMul
// and its backward pass are explicit, so callers never re-derive
// transposed access patterns inline:
//
//   forward   C  = A · B      -> GemmNN
//   backward  dA = dC · Bᵀ    -> GemmNT
//   backward  dB = Aᵀ · dC    -> GemmTN
//
// All kernels ACCUMULATE into C (C += ...), matching what the backward
// pass needs; zero-fill C first for a plain product.
//
// Determinism contract: kernels are row-partitioned across the
// persistent pool in util/parallel. Each output row is owned by exactly
// one thread and the per-row accumulation order is independent of the
// partitioning, so results are bit-identical for every thread count.
#ifndef POISONREC_NN_KERNELS_H_
#define POISONREC_NN_KERNELS_H_

#include <cstddef>
#include <functional>

namespace poisonrec::nn {

/// Process-wide kernel thread budget (mirrors torch::set_num_threads).
/// 0 (the default) resolves to std::thread::hardware_concurrency().
/// Thread-safe; takes effect on the next kernel call.
void SetNumThreads(std::size_t num_threads);

/// Resolved thread budget (never 0).
std::size_t GetNumThreads();

namespace kernels {

/// C(m×n) += A(m×k) · B(k×n). All matrices row-major and dense.
void GemmNN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c);

/// C(m×n) += Aᵀ · B with A stored (k×m), B stored (k×n). This is the
/// dB = Aᵀ·dC accumulation of the MatMul backward pass.
void GemmTN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c);

/// C(m×n) += A · Bᵀ with A stored (m×k), B stored (n×k). This is the
/// dA = dC·Bᵀ accumulation of the MatMul backward pass.
void GemmNT(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c);

/// Row-partitions [0, m) across the kernel thread budget and invokes
/// `rows(i0, i1)` for each block — the same partitioner the dense GEMMs
/// use, exported so fused elementwise ops and sparse kernels share the
/// row-ownership determinism contract: every row is owned by exactly
/// one thread, so any per-row computation that never reduces across
/// rows is bit-identical at every thread count. `work` is the total
/// multiply-accumulate (or equivalent) count; below the same threshold
/// the GEMMs use, the call runs inline as rows(0, m).
void ParallelRows(std::size_t m, std::size_t work,
                  const std::function<void(std::size_t, std::size_t)>& rows);

}  // namespace kernels

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_KERNELS_H_
