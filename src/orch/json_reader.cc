#include "orch/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace poisonrec::orch {

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    POISONREC_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      POISONREC_RETURN_NOT_OK(ParseString(&key));
      for (const auto& member : out->members) {
        if (member.first == key) {
          return Error("duplicate object key \"" + key + "\"");
        }
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      POISONREC_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      POISONREC_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape digit");
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate pairs are not supported");
          }
          // UTF-8 encode the code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("invalid number \"" + token + "\"");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  StatusOr<JsonValue> parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace poisonrec::orch
