// Training-stability guardrail tests: finite-ness sweeps and the incident
// log (util/guard.h), the Eq. 8 degenerate-batch hardening, the monitors
// wired into TrainStep, and the self-healing TrainGuarded rollback driver
// (NaN rewards injected mid-campaign must be detected, logged, rolled
// back, and healed — or the campaign must abort with a clear status).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "nn/optimizer.h"
#include "rec/registry.h"
#include "util/guard.h"
#include "util/stats.h"

namespace poisonrec {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr float kNanF = std::numeric_limits<float>::quiet_NaN();
constexpr float kInfF = std::numeric_limits<float>::infinity();

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// -- SweepFinite --------------------------------------------------------------

TEST(SweepFiniteTest, CleanBufferReportsClean) {
  const std::vector<float> clean = {0.0f, -1.5f, 3e30f};
  const FiniteSweep sweep = SweepFinite(clean);
  EXPECT_TRUE(sweep.clean());
  EXPECT_EQ(sweep.checked, 3u);
  EXPECT_EQ(sweep.bad(), 0u);
}

TEST(SweepFiniteTest, CountsNanInfAndFirstBadIndex) {
  const std::vector<float> dirty = {1.0f, kNanF, kInfF, -kInfF, 2.0f};
  const FiniteSweep sweep = SweepFinite(dirty);
  EXPECT_FALSE(sweep.clean());
  EXPECT_EQ(sweep.checked, 5u);
  EXPECT_EQ(sweep.nan, 1u);
  EXPECT_EQ(sweep.inf, 2u);
  EXPECT_EQ(sweep.bad(), 3u);
  EXPECT_EQ(sweep.first_bad, 1u);
}

TEST(SweepFiniteTest, DoubleOverloadMatchesFloat) {
  const std::vector<double> dirty = {kInf, 0.0, kNan};
  const FiniteSweep sweep = SweepFinite(dirty);
  EXPECT_EQ(sweep.nan, 1u);
  EXPECT_EQ(sweep.inf, 1u);
  EXPECT_EQ(sweep.first_bad, 0u);
}

// -- IncidentLog --------------------------------------------------------------

TEST(IncidentLogTest, RingIsBoundedAndTotalKeepsCounting) {
  IncidentLog log(4);
  for (std::size_t step = 1; step <= 10; ++step) {
    log.Record(step, {GuardEventKind::kNonFiniteLoss, kNan, 0.0, "x"});
  }
  EXPECT_EQ(log.incidents().size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.incidents().front().step, 7u);  // oldest surviving
  EXPECT_EQ(log.incidents().back().step, 10u);
  log.Clear();
  EXPECT_TRUE(log.incidents().empty());
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(IncidentLogTest, JsonlEncodesNonFiniteValuesAsStrings) {
  IncidentLog log;
  log.Record(12, {GuardEventKind::kNonFiniteReward, kNan, 0.0, "episode 3"});
  log.Record(13, {GuardEventKind::kGradNormExplosion, 512.0, 100.0, "epoch 1"});
  const std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"step\":12"), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"non_finite_reward\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":\"nan\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"detail\":\"episode 3\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"grad_norm_explosion\""), std::string::npos);
  // Two lines, one object each.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(IncidentLogTest, SinkAppendsEachIncidentImmediately) {
  const std::string path = TempPath("poisonrec_guard_sink.jsonl");
  std::remove(path.c_str());
  IncidentLog log;
  log.set_sink_path(path);
  log.Record(1, {GuardEventKind::kNonFiniteGradient, kInf, 0.0, "g"});
  // One line on disk already, before any explicit flush call.
  const std::string first = ReadFile(path);
  EXPECT_NE(first.find("non_finite_gradient"), std::string::npos);
  log.Record(2, {GuardEventKind::kKlDivergence, 9.0, 5.0, "k"});
  const std::string both = ReadFile(path);
  EXPECT_EQ(std::count(both.begin(), both.end(), '\n'), 2);
  std::remove(path.c_str());
}

TEST(IncidentLogTest, WriteJsonlDumpsTheRing) {
  IncidentLog log;
  log.Record(5, {GuardEventKind::kEntropyCollapse, 0.0, 1e-5, "e"});
  const std::string path = TempPath("poisonrec_guard_dump.jsonl");
  ASSERT_TRUE(log.WriteJsonl(path).ok());
  EXPECT_NE(ReadFile(path).find("entropy_collapse"), std::string::npos);
  std::remove(path.c_str());
}

// -- Eq. 8 degenerate batches (satellite: zero-variance guards) ---------------

TEST(NormalizeRewardsTest, ConstantBatchDegradesToZeroAdvantages) {
  std::vector<double> values = {5.0, 5.0, 5.0};
  NormalizeRewards(&values);
  for (double v : values) EXPECT_EQ(v, 0.0);
}

TEST(NormalizeRewardsTest, SingleObservationBatchIsZero) {
  std::vector<double> one = {42.0};
  NormalizeRewards(&one);
  EXPECT_EQ(one[0], 0.0);

  std::vector<double> masked = {42.0, 7.0};
  NormalizeRewards(&masked, {1, 0});  // only one valid entry
  EXPECT_EQ(masked[0], 0.0);
  EXPECT_EQ(masked[1], 0.0);
}

TEST(NormalizeRewardsTest, NonFiniteEntriesAreExcludedAndZeroed) {
  std::vector<double> values = {1.0, kNan, 3.0};
  NormalizeRewards(&values);
  // Statistics over {1, 3}: mean 2, population sd 1.
  EXPECT_DOUBLE_EQ(values[0], -1.0);
  EXPECT_EQ(values[1], 0.0);
  EXPECT_DOUBLE_EQ(values[2], 1.0);

  // Masked variant: a non-finite entry is invalid even when masked valid.
  std::vector<double> masked = {1.0, kInf, 3.0};
  NormalizeRewards(&masked, {1, 1, 1});
  EXPECT_DOUBLE_EQ(masked[0], -1.0);
  EXPECT_EQ(masked[1], 0.0);
  EXPECT_DOUBLE_EQ(masked[2], 1.0);
  for (double v : masked) EXPECT_TRUE(std::isfinite(v));
}

// -- GradNorm / configurable clipping -----------------------------------------

TEST(GradNormTest, MeasuresWithoutClippingAndPropagatesNan) {
  nn::Tensor t = nn::Tensor::FromData(1, 2, {0.0f, 0.0f});
  t.mutable_grad() = {3.0f, 4.0f};
  const std::vector<nn::Tensor> params = {t};
  EXPECT_FLOAT_EQ(nn::GradNorm(params), 5.0f);
  EXPECT_FLOAT_EQ(t.grad()[0], 3.0f);  // untouched

  // ClipGradNorm returns the same pre-clip norm, then rescales.
  EXPECT_FLOAT_EQ(nn::ClipGradNorm(params, 1.0f), 5.0f);
  EXPECT_FLOAT_EQ(t.grad()[0], 3.0f / 5.0f);

  t.mutable_grad() = {1.0f, kNanF};
  EXPECT_TRUE(std::isnan(nn::GradNorm(params)));
}

// -- Attacker-level monitors --------------------------------------------------

struct Fixture {
  Fixture()
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig()) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 100;
    cfg.num_items = 80;
    cfg.num_interactions = 1000;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig() {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = 6;
    cfg.trajectory_length = 6;
    cfg.num_target_items = 3;
    cfg.num_candidate_originals = 20;
    cfg.seed = 11;
    return cfg;
  }

  static core::PoisonRecConfig MakeAttackerConfig() {
    core::PoisonRecConfig cfg;
    cfg.samples_per_step = 6;
    cfg.batch_size = 6;
    cfg.update_epochs = 2;
    cfg.policy.embedding_dim = 8;
    cfg.seed = 7;
    cfg.guard.enabled = true;
    return cfg;
  }

  env::AttackEnvironment environment;
};

TEST(GuardMonitorTest, CleanStepReportsTelemetryAndNoEvents) {
  Fixture f;
  core::PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  const core::TrainStepStats stats = attacker.TrainStep();
  EXPECT_FALSE(stats.guard.tripped());
  EXPECT_GT(stats.pre_clip_grad_norm, 0.0);
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_TRUE(std::isfinite(stats.approx_kl));
  EXPECT_EQ(attacker.incident_log().total_recorded(), 0u);
}

TEST(GuardMonitorTest, GuardOffMatchesGuardOnWhenNothingTrips) {
  Fixture f_off;
  Fixture f_on;
  auto cfg_off = Fixture::MakeAttackerConfig();
  cfg_off.guard.enabled = false;
  core::PoisonRecAttacker off(&f_off.environment, cfg_off);
  core::PoisonRecAttacker on(&f_on.environment, Fixture::MakeAttackerConfig());
  const auto s_off = off.Train(3);
  const auto s_on = on.Train(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(s_off[i].loss, s_on[i].loss);
    EXPECT_DOUBLE_EQ(s_off[i].mean_reward, s_on[i].mean_reward);
  }
  EXPECT_DOUBLE_EQ(off.best_episode().reward, on.best_episode().reward);
}

TEST(GuardMonitorTest, PreStepSweepCatchesPlantedNanParameter) {
  Fixture f;
  core::PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.TrainStep();
  attacker.policy().Parameters()[0].mutable_data()[0] = kNanF;
  const core::TrainStepStats stats = attacker.TrainStep();
  ASSERT_TRUE(stats.guard.tripped());
  EXPECT_EQ(stats.guard.events[0].kind, GuardEventKind::kNonFiniteParameter);
  EXPECT_EQ(attacker.incident_log().total_recorded(), 1u);
}

TEST(GuardMonitorTest, LogitMonitorCatchesNanParamsWhenPreSweepDisabled) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.pre_step_param_sweep = false;
  core::PoisonRecAttacker attacker(&f.environment, cfg);
  // NaN parameters propagate through the LSTM/DNN into the recomputed
  // decision log-probs (the Eq. 7/9 logits). Sampling itself survives
  // (NaN comparisons just bias the tree walk), so the logit monitor is
  // the first line of defense with the pre-step sweep off.
  for (nn::Tensor& p : attacker.policy().Parameters()) {
    p.mutable_data()[0] = kNanF;
  }
  const core::TrainStepStats stats = attacker.TrainStep();
  ASSERT_TRUE(stats.guard.tripped());
  EXPECT_EQ(stats.guard.events[0].kind, GuardEventKind::kNonFiniteLogit);
}

TEST(GuardMonitorTest, EntropyFloorTripsWhenSetImpossiblyHigh) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.entropy_floor = 1e9;  // sampled entropy is a few nats at most
  core::PoisonRecAttacker attacker(&f.environment, cfg);
  const core::TrainStepStats stats = attacker.TrainStep();
  ASSERT_TRUE(stats.guard.tripped());
  EXPECT_EQ(stats.guard.events[0].kind, GuardEventKind::kEntropyCollapse);
  // The trip happened before any backward pass.
  EXPECT_EQ(stats.pre_clip_grad_norm, 0.0);
}

TEST(GuardMonitorTest, PostStepSweepCatchesInfAdamMoment) {
  Fixture f;
  core::PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.TrainStep();
  // An Inf second moment keeps the parameter update finite (m / sqrt(inf)
  // is 0), so only the optimizer-state sweep can catch it.
  nn::Adam& adam = attacker.optimizer();
  std::vector<std::vector<float>> m = adam.first_moments();
  std::vector<std::vector<float>> v = adam.second_moments();
  v[0][0] = kInfF;
  ASSERT_TRUE(adam.RestoreState(adam.step_count(), m, v).ok());
  const core::TrainStepStats stats = attacker.TrainStep();
  ASSERT_TRUE(stats.guard.tripped());
  EXPECT_EQ(stats.guard.events[0].kind,
            GuardEventKind::kNonFiniteOptimizerState);
}

TEST(GuardMonitorTest, KlThresholdTripsOnObservedDivergence) {
  // The k1 approx-KL estimate can legitimately be negative, so derive a
  // threshold from an unguarded reference run: find the first step whose
  // mean approx-KL is positive, then re-run guarded with the threshold
  // set below that step's per-epoch KL. Both runs are identically seeded
  // and the guard changes no math until it trips, so the guarded run
  // must trip at exactly that step.
  Fixture f_ref;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.enabled = false;
  core::PoisonRecAttacker reference(&f_ref.environment, cfg);
  const auto ref_stats = reference.Train(8);
  std::size_t trip_step = 0;
  double threshold = 0.0;
  for (const auto& s : ref_stats) {
    if (s.approx_kl > 0.0) {
      trip_step = s.step;
      // Epoch 0 recomputes the sampled log-probs exactly (KL = 0), so
      // with K=2 the positive epoch-1 KL is twice the reported mean;
      // the mean itself is a strictly smaller, safe threshold.
      threshold = s.approx_kl;
      break;
    }
  }
  ASSERT_GT(trip_step, 0u) << "no positive approx-KL in 8 steps";

  Fixture f_guard;
  cfg.guard.enabled = true;
  cfg.guard.approx_kl_threshold = threshold;
  core::PoisonRecAttacker guarded(&f_guard.environment, cfg);
  core::TrainStepStats tripped;
  for (std::size_t s = 0; s < trip_step; ++s) tripped = guarded.TrainStep();
  ASSERT_TRUE(tripped.guard.tripped());
  EXPECT_EQ(tripped.guard.events[0].kind, GuardEventKind::kKlDivergence);
  EXPECT_GT(tripped.guard.events[0].value, threshold);
}

TEST(GuardMonitorTest, ConfigurableGradClipReplacesHardcodedConstant) {
  Fixture f_a;
  Fixture f_b;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.enabled = false;
  cfg.update_epochs = 1;  // so step 1 has no post-update epoch to diverge
  cfg.max_grad_norm = 0.0f;  // disabled
  core::PoisonRecAttacker unclipped(&f_a.environment, cfg);
  cfg.max_grad_norm = 1e-4f;  // aggressive clip
  core::PoisonRecAttacker clipped(&f_b.environment, cfg);
  const auto s_a = unclipped.Train(3);
  const auto s_b = clipped.Train(3);
  // Identical seeds, so step 1 (same initial params) observes the same
  // pre-clip norm; by step 3 the aggressively clipped run has diverged.
  EXPECT_DOUBLE_EQ(s_a[0].pre_clip_grad_norm, s_b[0].pre_clip_grad_norm);
  EXPECT_GT(s_a[0].pre_clip_grad_norm, 0.0);
  bool diverged = false;
  for (std::size_t i = 1; i < 3; ++i) {
    diverged = diverged ||
               s_a[i].pre_clip_grad_norm != s_b[i].pre_clip_grad_norm ||
               s_a[i].loss != s_b[i].loss;
  }
  EXPECT_TRUE(diverged);
}

// -- Rollback + self-healing --------------------------------------------------

TEST(GuardRollbackTest, LoadCheckpointRestoresPoisonedPolicyBitIdentically) {
  Fixture f;
  core::PoisonRecAttacker attacker(&f.environment, Fixture::MakeAttackerConfig());
  attacker.Train(2);
  const std::string path = TempPath("poisonrec_guard_rollback_ckpt.bin");
  ASSERT_TRUE(attacker.SaveCheckpoint(path).ok());

  std::vector<std::vector<float>> before;
  for (const nn::Tensor& p : attacker.policy().Parameters()) {
    before.push_back(p.data());
  }
  // Poison everything, then roll back.
  for (nn::Tensor& p : attacker.policy().Parameters()) {
    p.mutable_data().assign(p.size(), kNanF);
  }
  EXPECT_FALSE(attacker.policy().SweepParametersFinite().clean());
  ASSERT_TRUE(attacker.LoadCheckpoint(path).ok());

  const std::vector<nn::Tensor> after = attacker.policy().Parameters();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i].data().size(), before[i].size());
    EXPECT_EQ(std::memcmp(after[i].data().data(), before[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << "parameter " << i << " not restored bit-identically";
  }
  std::remove(path.c_str());
}

TEST(GuardRollbackTest, TrainGuardedHealsNanRewardFaultsMidCampaign) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.max_rollbacks = 10;
  core::PoisonRecAttacker attacker(&f.environment, cfg);

  env::FaultProfile profile;
  profile.nan_reward_rate = 0.1;
  profile.seed = 77;
  env::FaultyEnvironment faulty(&f.environment, profile);
  attacker.AttachFaultyEnvironment(&faulty, [](double) {});

  const std::string path = TempPath("poisonrec_guard_heal_ckpt.bin");
  const core::GuardedTrainResult result = attacker.TrainGuarded(10, path);

  EXPECT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(attacker.steps_taken(), 10u);
  EXPECT_GT(result.rollbacks, 0u) << "fault rate produced no NaN rewards; "
                                     "pick a different seed";
  EXPECT_GT(result.incidents, 0u);
  EXPECT_GT(faulty.stats().nan_rewards, 0u);
  // A rollback burns its step index, so attempted steps == requested
  // steps and the clean (applied) updates are what remains.
  EXPECT_EQ(result.stats.size(), 10u);
  EXPECT_LT(result.rollbacks, 10u);
  std::size_t clean_steps = 0;
  for (const auto& s : result.stats) {
    if (!s.guard.tripped()) ++clean_steps;
  }
  EXPECT_EQ(clean_steps, 10u - result.rollbacks);
  // The healed policy is fully finite and the best episode is usable.
  EXPECT_TRUE(attacker.policy().SweepParametersFinite().clean());
  EXPECT_TRUE(std::isfinite(attacker.best_episode().reward));
  std::remove(path.c_str());
}

TEST(GuardRollbackTest, TrainGuardedAbortsAfterRollbackBudget) {
  Fixture f;
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.guard.max_rollbacks = 2;
  cfg.guard.incident_log_path = TempPath("poisonrec_guard_abort.jsonl");
  std::remove(cfg.guard.incident_log_path.c_str());
  core::PoisonRecAttacker attacker(&f.environment, cfg);

  env::FaultProfile profile;
  profile.nan_reward_rate = 1.0;  // every reward is NaN: unhealable
  profile.seed = 5;
  env::FaultyEnvironment faulty(&f.environment, profile);
  attacker.AttachFaultyEnvironment(&faulty, [](double) {});

  const std::string path = TempPath("poisonrec_guard_abort_ckpt.bin");
  const float lr_before = attacker.optimizer().lr();
  const core::GuardedTrainResult result = attacker.TrainGuarded(6, path);

  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(result.rollbacks, 3u);  // budget of 2 + the final straw
  EXPECT_GT(result.incidents, 0u);
  // The backoff ran before the abort.
  EXPECT_LT(attacker.optimizer().lr(), lr_before);
  EXPECT_LT(attacker.config().clip_epsilon, 0.1f);
  // The incident sink has the post-mortem on disk.
  const std::string jsonl = ReadFile(cfg.guard.incident_log_path);
  EXPECT_NE(jsonl.find("non_finite_reward"), std::string::npos);
  // The rollback left the policy itself clean despite the abort.
  EXPECT_TRUE(attacker.policy().SweepParametersFinite().clean());
  std::remove(path.c_str());
  std::remove(cfg.guard.incident_log_path.c_str());
}

}  // namespace
}  // namespace poisonrec
