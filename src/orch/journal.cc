#include "orch/journal.h"

#include <fstream>

#include "obs/json.h"
#include "orch/json_reader.h"

namespace poisonrec::orch {

const char* CampaignStateName(CampaignState state) {
  switch (state) {
    case CampaignState::kPending: return "pending";
    case CampaignState::kRunning: return "running";
    case CampaignState::kCheckpointed: return "checkpointed";
    case CampaignState::kDone: return "done";
    case CampaignState::kQuarantined: return "quarantined";
    case CampaignState::kFailed: return "failed";
  }
  return "unknown";
}

StatusOr<CampaignState> ParseCampaignState(const std::string& name) {
  for (const CampaignState state :
       {CampaignState::kPending, CampaignState::kRunning,
        CampaignState::kCheckpointed, CampaignState::kDone,
        CampaignState::kQuarantined, CampaignState::kFailed}) {
    if (name == CampaignStateName(state)) return state;
  }
  return Status::InvalidArgument("unknown campaign state \"" + name + "\"");
}

bool IsTerminal(CampaignState state) {
  return state == CampaignState::kDone ||
         state == CampaignState::kQuarantined ||
         state == CampaignState::kFailed;
}

Status FleetJournal::Open(const std::string& path, bool truncate) {
  if (!log_.Open(path, truncate)) {
    return Status::IoError("cannot open fleet journal " + path);
  }
  return Status::OK();
}

bool FleetJournal::Record(const CampaignJournalRecord& record) {
  obs::JsonObjectBuilder b;
  b.Str("type", "campaign")
      .Str("id", record.campaign_id)
      .Str("state", CampaignStateName(record.state))
      .Int("step", record.step)
      .Num("reward", record.reward)
      .Num("best_reward", record.best_reward)
      .Int("restarts", record.restarts);
  if (!record.detail.empty()) b.Str("detail", record.detail);
  return log_.Append(std::move(b).Finish());
}

StatusOr<std::map<std::string, CampaignReplay>> FleetJournal::ReplayFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open fleet journal " + path);
  std::map<std::string, CampaignReplay> replay;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A torn trailing line (kill mid-append) parses as garbage; skip it
    // rather than refusing recovery — everything before it is intact.
    StatusOr<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) continue;
    const JsonValue& record = *parsed;
    const JsonValue* type = record.Find("type");
    if (type == nullptr || !type->is_string() ||
        type->string_value != "campaign") {
      continue;
    }
    const JsonValue* id = record.Find("id");
    const JsonValue* state = record.Find("state");
    if (id == nullptr || !id->is_string() || state == nullptr ||
        !state->is_string()) {
      continue;
    }
    StatusOr<CampaignState> parsed_state =
        ParseCampaignState(state->string_value);
    if (!parsed_state.ok()) continue;
    CampaignReplay& entry = replay[id->string_value];
    entry.state = *parsed_state;
    const JsonValue* step = record.Find("step");
    const JsonValue* reward = record.Find("reward");
    const JsonValue* best = record.Find("best_reward");
    const JsonValue* restarts = record.Find("restarts");
    const JsonValue* detail = record.Find("detail");
    const std::uint64_t step_index =
        (step != nullptr && step->is_number())
            ? static_cast<std::uint64_t>(step->number_value)
            : 0;
    if (*parsed_state == CampaignState::kCheckpointed && step_index > 0 &&
        reward != nullptr && reward->is_number()) {
      entry.step_rewards[step_index] = reward->number_value;
    }
    if (step_index > entry.steps_completed &&
        (*parsed_state == CampaignState::kCheckpointed ||
         IsTerminal(*parsed_state))) {
      entry.steps_completed = step_index;
    }
    if (best != nullptr && best->is_number() &&
        best->number_value > entry.best_reward) {
      entry.best_reward = best->number_value;
    }
    if (restarts != nullptr && restarts->is_number()) {
      const auto r = static_cast<std::uint64_t>(restarts->number_value);
      if (r > entry.restarts) entry.restarts = r;
    }
    if (detail != nullptr && detail->is_string()) {
      entry.detail = detail->string_value;
    }
  }
  return replay;
}

}  // namespace poisonrec::orch
