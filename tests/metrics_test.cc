// Ranking-quality metric tests + the testbed-sanity property: every
// fitted ranker beats the random-scorer floor on held-out data.
#include "rec/metrics.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec::rec {
namespace {

// A scorer that always prefers lower item ids (deterministic, cheap).
class LowIdFirst : public Recommender {
 public:
  std::string Name() const override { return "LowIdFirst"; }
  void Fit(const data::Dataset&) override {}
  void Update(const data::Dataset&) override {}
  std::vector<double> Score(
      data::UserId, const std::vector<data::ItemId>& cands) const override {
    std::vector<double> s;
    for (data::ItemId i : cands) s.push_back(-static_cast<double>(i));
    return s;
  }
  std::unique_ptr<Recommender> Clone() const override {
    return std::make_unique<LowIdFirst>(*this);
  }
};

TEST(MetricsTest, RandomFloorValue) {
  EvalProtocol protocol;
  protocol.top_k = 10;
  protocol.num_negatives = 50;
  EXPECT_NEAR(RandomHitRate(protocol), 10.0 / 51.0, 1e-12);
}

TEST(MetricsTest, PerfectOracleGetsFullMarks) {
  // Oracle: the held-out item always has the lowest id among candidates
  // because negatives are drawn from unseen items; construct a dataset
  // where the held-out item is item 0 for everyone.
  data::Dataset d(5, 50);
  for (data::UserId u = 0; u < 5; ++u) {
    d.AddSequence(u, {10 + u, 20 + u, 0});
  }
  auto split = data::SplitLeaveOneOut(d);
  LowIdFirst oracle;
  RankingQuality q = EvaluateRanking(oracle, d, split.test);
  EXPECT_EQ(q.num_evaluated, 5u);
  EXPECT_DOUBLE_EQ(q.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(q.ndcg, 1.0);  // rank 0 -> 1/log2(2) = 1
}

TEST(MetricsTest, EmptyHeldoutIsZero) {
  data::Dataset d(2, 10);
  d.AddSequence(0, {1, 2});
  LowIdFirst oracle;
  RankingQuality q = EvaluateRanking(oracle, d, {});
  EXPECT_EQ(q.num_evaluated, 0u);
  EXPECT_EQ(q.hit_rate, 0.0);
}

TEST(MetricsTest, ConstantScorerGetsNoCredit) {
  // Ties count against the held-out item, so a constant scorer misses.
  class Constant : public LowIdFirst {
   public:
    std::vector<double> Score(
        data::UserId,
        const std::vector<data::ItemId>& cands) const override {
      return std::vector<double>(cands.size(), 1.0);
    }
  };
  data::Dataset d(4, 100);
  for (data::UserId u = 0; u < 4; ++u) {
    d.AddSequence(u, {u + 1, u + 2, u + 3});
  }
  auto split = data::SplitLeaveOneOut(d);
  Constant scorer;
  EvalProtocol protocol;
  protocol.top_k = 5;
  RankingQuality q = EvaluateRanking(scorer, d, split.test, protocol);
  EXPECT_DOUBLE_EQ(q.hit_rate, 0.0);
}

// Testbed sanity: every algorithm, fitted on a structured log, must beat
// the random floor on held-out next items — the precondition for the
// attack experiments to be meaningful.
class RankerQualityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RankerQualityTest, BeatsRandomFloor) {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 80;
  cfg.num_interactions = 3500;
  cfg.num_clusters = 8;
  cfg.cluster_affinity = 0.75;
  cfg.seed = 77;
  data::Dataset full = data::GenerateSynthetic(cfg);
  auto split = data::SplitLeaveOneOut(full);

  FitConfig fit;
  fit.embedding_dim = 12;
  fit.epochs = 10;
  fit.seed = 5;
  auto ranker = MakeRecommender(GetParam(), fit).value();
  ranker->Fit(split.train);

  EvalProtocol protocol;
  protocol.top_k = 10;
  protocol.num_negatives = 40;
  RankingQuality q = EvaluateRanking(*ranker, full, split.test, protocol);
  EXPECT_GT(q.num_evaluated, 100u);
  EXPECT_GT(q.hit_rate, 1.3 * RandomHitRate(protocol))
      << GetParam() << " HR@10 = " << q.hit_rate << " vs random "
      << RandomHitRate(protocol);
  EXPECT_GT(q.ndcg, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RankerQualityTest,
                         ::testing::ValuesIn(AllRecommenderNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace poisonrec::rec
