// Ablation (beyond the paper): RecNum vs attack budget. Sweeps the number
// of attackers N and the trajectory length T for the best learned
// PoisonRec strategy on Steam (first ranker of POISONREC_RANKERS;
// ItemPop by default). Expected: near-zero until the budget crosses the
// candidate-set popularity threshold, then steep growth with
// diminishing returns — the cost/benefit curve a defender would study.
#include <cstdio>

#include "bench/common.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  const std::string ranker =
      config.rankers.empty() ? "BPR" : config.rankers.front();
  std::printf(
      "== Ablation: RecNum vs attack budget (%s on Steam, scale=%.3g) "
      "==\n\n",
      ranker.c_str(), config.scale);

  PrintTableHeader({"N", "T", "budget", "RecNum"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"attackers", "trajectory_length", "budget", "recnum"});
  for (std::size_t n : {4, 8, 16}) {
    for (std::size_t t : {6, 12, 24}) {
      BenchConfig local = config;
      local.num_attackers = n;
      local.trajectory_length = t;
      auto environment =
          MakeEnvironment(local, data::DatasetPreset::kSteam, ranker);
      core::PoisonRecAttacker attacker(
          environment.get(),
          MakePoisonRecConfig(local, core::ActionSpaceKind::kBcbtPopular,
                              local.seed ^ (n * 131 + t)));
      attacker.Train(local.training_steps);
      const double rec_num = attacker.best_episode().reward;
      PrintTableRow({std::to_string(n), std::to_string(t),
                     std::to_string(n * t), FormatCount(rec_num)});
      csv.push_back({std::to_string(n), std::to_string(t),
                     std::to_string(n * t), FormatCount(rec_num)});
    }
  }
  WriteCsvOutput(config, "ablation_budget.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
