
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/poisonrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/poisonrec_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/poisonrec_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/poisonrec_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/poisonrec_env.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/poisonrec_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/poisonrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/poisonrec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poisonrec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
