// Ablation (beyond the paper): Candidate Generation surface. The paper
// evaluates with random candidates "for evaluation efficiency"; a real
// system's Candidate Generation is personalized, which changes the bar a
// promoted item must clear (it competes against each user's *strongest*
// items instead of a random long-tail draw). This harness runs the same
// fixed attack under both candidate modes across the rankers.
#include <cstdio>

#include "attack/heuristics.h"
#include "bench/common.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Ablation: random vs personalized Candidate Generation (Steam, "
      "scale=%.3g) ==\n\n",
      config.scale);
  PrintTableHeader({"Ranker", "random-CG", "personal-CG"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"ranker", "random_cg_recnum", "personalized_cg_recnum"});

  attack::PopularAttack method;
  for (const std::string& ranker : config.rankers) {
    double results[2] = {0.0, 0.0};
    for (int mode = 0; mode < 2; ++mode) {
      rec::FitConfig fit;
      fit.embedding_dim = config.embedding_dim;
      fit.epochs = 4;
      fit.update_epochs = 3;
      fit.seed = config.seed ^ 0x51u;
      env::EnvironmentConfig env_cfg;
      env_cfg.num_attackers = config.num_attackers;
      env_cfg.trajectory_length = config.trajectory_length;
      env_cfg.num_target_items = config.num_target_items;
      env_cfg.num_candidate_originals = config.candidate_originals;
      env_cfg.top_k = config.top_k;
      env_cfg.max_eval_users = config.max_eval_users;
      env_cfg.personalized_candidates = mode == 1;
      env_cfg.seed = config.seed ^ 0x77u;
      env::AttackEnvironment environment(
          MakeDataset(config, data::DatasetPreset::kSteam),
          rec::MakeRecommender(ranker, fit).value(), env_cfg);
      results[mode] = environment.Evaluate(
          method.GenerateAttack(environment, config.seed ^ 0x811u));
    }
    PrintTableRow({ranker, FormatCount(results[0]),
                   FormatCount(results[1])});
    csv.push_back({ranker, FormatCount(results[0]),
                   FormatCount(results[1])});
  }
  WriteCsvOutput(config, "ablation_candidates.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
