#include "rec/recommender.h"

#include "util/topk.h"

namespace poisonrec::rec {

std::vector<data::ItemId> Recommender::RecommendTopK(
    data::UserId user, const std::vector<data::ItemId>& candidates,
    std::size_t k) const {
  std::vector<double> scores = Score(user, candidates);
  return TopKByScore(candidates, scores, k);
}

}  // namespace poisonrec::rec
