#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace poisonrec::nn {

namespace {

// 0 = resolve to hardware concurrency at call time.
std::atomic<std::size_t> g_num_threads{0};

// Shared-dimension block: a kBlockK×n panel of B (256 floats wide at
// n=64) stays resident in L1/L2 while every row of the current range
// streams through it.
constexpr std::size_t kBlockK = 64;

// Below this many multiply-accumulates a GEMM runs single-threaded; the
// pool handoff costs more than it saves on the tiny per-step matmuls
// (e.g. the 1×d policy step).
constexpr std::size_t kParallelMinWork = std::size_t{1} << 15;

// Below this many multiply-accumulates a GEMM takes the lean unblocked
// path: no row partitioner, no lambda indirection, no k-blocking. At
// these sizes every operand fits in L1 anyway, and the fixed overhead
// of the blocked dispatch is a measurable fraction of the whole call
// (the 1×16×64 policy step runs in ~200ns). The k loop still visits kk
// in ascending order for every output element — the same accumulation
// order the blocked path produces — so the dispatch never changes a
// bit. Threshold measured with bench_kernels on the small policy
// shapes; anything under the threading cutoff gains nothing from
// blocking (k ≤ 64 is a single block there regardless).
constexpr std::size_t kSmallGemmWork = kParallelMinWork;

// axpy: crow += av * brow. Elementwise — each c[j] receives exactly one
// add per call, with no cross-element reduction — so the compiler is
// free to vectorize at any width without changing a single bit. The
// __restrict qualifiers license that vectorization without runtime
// alias checks (kernel outputs never alias their inputs).
inline void AxpyRow(float av, const float* __restrict brow,
                    float* __restrict crow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
}

// Four consecutive shared-dimension steps fused over one pass of crow:
// each element receives the same four in-order adds the four single
// AxpyRow calls would issue, but crow streams through registers once
// instead of four times. The per-element operation sequence is
// unchanged, so this is bit-identical to the unfused loop — it only
// cuts the dominant cost of skinny GEMMs (k ~ 16–64), the repeated
// load/store of the output row.
inline void Axpy4Row(float a0, float a1, float a2, float a3,
                     const float* __restrict b0, const float* __restrict b1,
                     const float* __restrict b2, const float* __restrict b3,
                     float* __restrict crow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    float t = crow[j] + a0 * b0[j];
    t = t + a1 * b1[j];
    t = t + a2 * b2[j];
    crow[j] = t + a3 * b3[j];
  }
}

// Runs steps [k0, k1) of the shared dimension for one output row, in
// ascending order, four at a time where possible. `a_at(kk)` supplies
// the A operand for step kk (contiguous for NN, strided for TN).
template <typename AFn>
inline void AxpyRange(std::size_t k0, std::size_t k1, const AFn& a_at,
                      const float* b, std::size_t n, float* crow) {
  std::size_t kk = k0;
  for (; kk + 4 <= k1; kk += 4) {
    Axpy4Row(a_at(kk), a_at(kk + 1), a_at(kk + 2), a_at(kk + 3),
             b + kk * n, b + (kk + 1) * n, b + (kk + 2) * n,
             b + (kk + 3) * n, crow, n);
  }
  for (; kk < k1; ++kk) AxpyRow(a_at(kk), b + kk * n, crow, n);
}

// The *Rows workers compute rows [i0, i1) of C. Each kernel's
// accumulation order for a given output element is a pure function of
// that element's indices (never of the row range), which is what makes
// row-partitioned execution bit-identical to single-threaded.

void GemmNNRows(std::size_t i0, std::size_t i1, std::size_t k, std::size_t n,
                const float* a, const float* b, float* c) {
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      AxpyRange(k0, k1, [arow](std::size_t kk) { return arow[kk]; }, b, n,
                crow);
    }
  }
}

void GemmTNRows(std::size_t i0, std::size_t i1, std::size_t m, std::size_t k,
                std::size_t n, const float* a, const float* b, float* c) {
  // A stored (k×m): column i of A is the strided sequence a[p*m + i].
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = std::min(k, p0 + kBlockK);
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      AxpyRange(p0, p1, [a, m, i](std::size_t p) { return a[p * m + i]; }, b,
                n, crow);
    }
  }
}

void GemmNTRows(std::size_t i0, std::size_t i1, std::size_t k, std::size_t n,
                const float* a, const float* b, float* c) {
  // B stored (n×k): C[i][j] is a contiguous dot of A row i with B row j.
  // Four partial sums for instruction-level parallelism; the combine
  // order is fixed, so results are identical for every row partition.
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        s0 += arow[kk] * brow[kk];
        s1 += arow[kk + 1] * brow[kk + 1];
        s2 += arow[kk + 2] * brow[kk + 2];
        s3 += arow[kk + 3] * brow[kk + 3];
      }
      float tail = 0.0f;
      for (; kk < k; ++kk) tail += arow[kk] * brow[kk];
      crow[j] += ((s0 + s1) + (s2 + s3)) + tail;
    }
  }
}

// Row-partitions [0, m) across the kernel thread budget and runs
// `rows(i0, i1)` for each block. Rows are handed out in blocks of
// roughly m / (threads * 4) so the atomic index counter stays cold
// while load still balances when rows have uneven cost.
template <typename RowsFn>
void ForEachRowBlock(std::size_t m, std::size_t work, const RowsFn& rows) {
  if (work < kParallelMinWork) {  // skip even the thread-budget lookup
    rows(0, m);
    return;
  }
  const std::size_t threads = std::min(GetNumThreads(), m);
  if (threads <= 1) {
    rows(0, m);
    return;
  }
  const std::size_t block =
      std::max<std::size_t>(1, m / (threads * 4));
  const std::size_t num_blocks = (m + block - 1) / block;
  // Span only around the threaded branch: these are the regions the
  // perf backlog (ROADMAP.md) needs to see, and the tiny single-threaded
  // matmuls are far too frequent to trace individually.
  POISONREC_TRACE_SPAN("gemm/threaded");
  ParallelFor(num_blocks, threads, [&](std::size_t bi) {
    const std::size_t i0 = bi * block;
    rows(i0, std::min(m, i0 + block));
  });
}

// Call/flop accounting shared by the three variants. The counters are
// sharded (obs::Counter), so the two relaxed adds here stay off any
// contended cache line even when every pool worker issues GEMMs.
inline void CountGemm(obs::Counter* calls, std::size_t m, std::size_t k,
                      std::size_t n) {
  static obs::Counter* const flops =
      obs::MetricsRegistry::Global().GetCounter("poisonrec_gemm_flops_total");
  calls->Increment();
  flops->Increment(static_cast<std::uint64_t>(2) * m * k * n);
}

}  // namespace

void SetNumThreads(std::size_t num_threads) {
  g_num_threads.store(num_threads, std::memory_order_relaxed);
}

std::size_t GetNumThreads() {
  const std::size_t n = g_num_threads.load(std::memory_order_relaxed);
  if (n != 0) return n;
  static const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return hardware;
}

namespace kernels {

void GemmNN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_nn_calls_total");
  CountGemm(calls, m, k, n);
  if (m * k * n < kSmallGemmWork) {
    // Lean path: straight i-kk loops, same per-element accumulation
    // order as the blocked kernel (kk ascending), zero dispatch cost.
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      AxpyRange(0, k, [arow](std::size_t kk) { return arow[kk]; }, b, n,
                crow);
    }
    return;
  }
  ForEachRowBlock(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    GemmNNRows(i0, i1, k, n, a, b, c);
  });
}

void GemmTN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_tn_calls_total");
  CountGemm(calls, m, k, n);
  if (m * k * n < kSmallGemmWork) {
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      AxpyRange(0, k, [a, m, i](std::size_t p) { return a[p * m + i]; }, b, n,
                crow);
    }
    return;
  }
  ForEachRowBlock(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    GemmTNRows(i0, i1, m, k, n, a, b, c);
  });
}

void GemmNT(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_nt_calls_total");
  CountGemm(calls, m, k, n);
  if (m * k * n < kSmallGemmWork) {
    GemmNTRows(0, m, k, n, a, b, c);  // already unblocked per-row dots
    return;
  }
  ForEachRowBlock(m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    GemmNTRows(i0, i1, k, n, a, b, c);
  });
}

void ParallelRows(std::size_t m, std::size_t work,
                  const std::function<void(std::size_t, std::size_t)>& rows) {
  ForEachRowBlock(m, work, rows);
}

}  // namespace kernels

}  // namespace poisonrec::nn
