// Figure 6: 2-D t-SNE maps of the learned item embeddings per
// recommendation algorithm, with the items clicked by the learned
// PoisonRec strategy marked. Emits one CSV per ranker with columns
// (item, x, y, popularity, is_target, clicks) — the plotting-ready data
// behind the figure. For ItemPop, CoVisitation and AutoRec the paper uses
// the PMF embeddings (those models have no item id embedding); we do the
// same.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "rec/bpr.h"
#include "rec/gru4rec.h"
#include "rec/neumf.h"
#include "rec/ngcf.h"
#include "rec/pmf.h"
#include "viz/tsne.h"

namespace poisonrec::bench {
namespace {

// Row-major item embedding matrix (num_total_items x dim) for the fitted
// ranker; falls back to PMF when the algorithm has no item embedding.
std::vector<double> ItemEmbeddingMatrix(
    const env::AttackEnvironment& environment, const BenchConfig& config,
    std::size_t* dim_out) {
  const rec::Recommender& ranker = environment.pretrained_ranker();
  const std::size_t n = environment.num_total_items();

  auto from_tensor = [&](const nn::Tensor& table, std::size_t offset) {
    const std::size_t dim = table.cols();
    *dim_out = dim;
    std::vector<double> out(n * dim);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < dim; ++k) {
        out[i * dim + k] = table.at(offset + i, k);
      }
    }
    return out;
  };
  auto from_factors = [&](const rec::FactorTables& factors) {
    const std::size_t dim = factors.dim;
    *dim_out = dim;
    std::vector<double> out(n * dim);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = factors.ItemRow(i);
      for (std::size_t k = 0; k < dim; ++k) out[i * dim + k] = row[k];
    }
    return out;
  };

  if (const auto* pmf = dynamic_cast<const rec::Pmf*>(&ranker)) {
    return from_factors(pmf->factors());
  }
  if (const auto* bpr = dynamic_cast<const rec::Bpr*>(&ranker)) {
    return from_factors(bpr->factors());
  }
  if (const auto* neumf = dynamic_cast<const rec::NeuMf*>(&ranker)) {
    return from_tensor(neumf->ItemEmbeddings(), 0);
  }
  if (const auto* gru = dynamic_cast<const rec::Gru4Rec*>(&ranker)) {
    return from_tensor(gru->ItemEmbeddings(), 0);
  }
  if (const auto* ngcf = dynamic_cast<const rec::Ngcf*>(&ranker)) {
    return from_tensor(ngcf->NodeEmbeddings(), ngcf->item_offset());
  }
  // ItemPop / CoVisitation / AutoRec: learn PMF embeddings on the same
  // log (the paper's convention for Figure 6).
  rec::FitConfig fit;
  fit.embedding_dim = config.embedding_dim;
  fit.epochs = 6;
  fit.seed = config.seed ^ 0x41u;
  rec::Pmf pmf(fit);
  pmf.Fit(environment.dataset());
  return from_factors(pmf.factors());
}

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Figure 6: t-SNE of item embeddings + learned attack strategies "
      "(Steam, scale=%.3g) ==\n\n",
      config.scale);

  for (const std::string& ranker : config.rankers) {
    auto environment =
        MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
    core::PoisonRecAttacker attacker(
        environment.get(),
        MakePoisonRecConfig(config, core::ActionSpaceKind::kBcbtPopular,
                            config.seed ^ 0x6f2u));
    attacker.Train(config.training_steps);

    // Click histogram of the learned strategy (click order ignored, as in
    // the figure).
    std::map<data::ItemId, std::size_t> clicks;
    for (const auto& traj : attacker.BestAttack()) {
      for (data::ItemId item : traj.items) ++clicks[item];
    }

    std::size_t dim = 0;
    std::vector<double> emb =
        ItemEmbeddingMatrix(*environment, config, &dim);
    viz::TsneConfig tsne;
    tsne.iterations = 250;
    tsne.seed = config.seed ^ 0x31u;
    std::vector<double> xy =
        viz::TsneEmbed(emb, environment->num_total_items(), dim, tsne);

    std::vector<std::vector<std::string>> csv;
    csv.push_back({"item", "x", "y", "popularity", "is_target", "clicks"});
    std::size_t clicked_items = 0;
    for (data::ItemId i = 0; i < environment->num_total_items(); ++i) {
      const bool is_target = i >= environment->num_original_items();
      const auto it = clicks.find(i);
      const std::size_t c = it == clicks.end() ? 0 : it->second;
      if (c > 0) ++clicked_items;
      csv.push_back({std::to_string(i), std::to_string(xy[i * 2]),
                     std::to_string(xy[i * 2 + 1]),
                     std::to_string(environment->item_popularity()[i]),
                     is_target ? "1" : "0", std::to_string(c)});
    }
    std::printf("%-14s distinct clicked items: %zu, RecNum %.0f\n",
                ranker.c_str(), clicked_items,
                attacker.best_episode().reward);
    WriteCsvOutput(config, "fig6_tsne_" + ranker + ".csv", csv);
  }
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
