file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_env.dir/environment.cc.o"
  "CMakeFiles/poisonrec_env.dir/environment.cc.o.d"
  "libpoisonrec_env.a"
  "libpoisonrec_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
