// End-to-end TrainStep wall-clock comparison: the full Algorithm 1 step
// (episode rollouts -> black-box reward queries -> K PPO epochs) at
// num_threads=1 versus num_threads=T, same seed. Because episode
// sampling draws from per-episode (seed, step, m) streams and the GEMM
// kernels are row-partition deterministic, the two runs must produce
// identical reward sequences — the bench checks that while timing.
//
// Emits per-phase seconds (sample/query/update) for both settings and
// the overall speedup; JSON lands in results/train_step_timing.json.
//
//   POISONREC_THREADS  threaded run's thread count (default 4)
//   POISONREC_STEPS    timed steps per setting (default 25; CI uses 2)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "nn/kernels.h"
#include "util/timer.h"

namespace poisonrec::bench {
namespace {

struct RunResult {
  double total_seconds = 0.0;
  double sample_seconds = 0.0;
  double query_seconds = 0.0;
  double update_seconds = 0.0;
  std::vector<double> mean_rewards;
};

RunResult RunCampaign(const BenchConfig& config, std::size_t num_threads) {
  // Kernel threading and sampling/eval threading follow the same knob,
  // mirroring what `poisonrec campaign --num-threads` does.
  nn::SetNumThreads(num_threads);
  auto env = MakeEnvironment(config, data::DatasetPreset::kSteam, "ItemPop");
  core::PoisonRecConfig pr = MakePoisonRecConfig(
      config, core::ActionSpaceKind::kBcbtPopular, config.seed);
  pr.num_threads = num_threads;
  pr.parallel_sampling = true;
  pr.parallel_rewards = num_threads > 1;
  core::PoisonRecAttacker attacker(env.get(), pr);

  RunResult result;
  for (std::size_t s = 0; s < config.training_steps; ++s) {
    const core::TrainStepStats stats = attacker.TrainStep();
    result.total_seconds += stats.seconds;
    result.sample_seconds += stats.sample_seconds;
    result.query_seconds += stats.query_seconds;
    result.update_seconds += stats.update_seconds;
    result.mean_rewards.push_back(stats.mean_reward);
  }
  nn::SetNumThreads(0);
  return result;
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

int Main() {
  const BenchConfig config = LoadBenchConfig();
  const std::size_t threads = EnvSize("POISONREC_THREADS", 4);

  const RunResult single = RunCampaign(config, 1);
  const RunResult threaded = RunCampaign(config, threads);

  // Determinism gate: threading must not change a single reward.
  std::size_t mismatches = 0;
  for (std::size_t s = 0; s < single.mean_rewards.size(); ++s) {
    if (single.mean_rewards[s] != threaded.mean_rewards[s]) ++mismatches;
  }
  const double speedup = threaded.total_seconds > 0.0
                             ? single.total_seconds / threaded.total_seconds
                             : 0.0;

  PrintTableHeader({"setting", "total_s", "sample_s", "query_s", "update_s"});
  PrintTableRow({"threads=1", Fmt(single.total_seconds),
                 Fmt(single.sample_seconds), Fmt(single.query_seconds),
                 Fmt(single.update_seconds)});
  PrintTableRow({"threads=" + std::to_string(threads),
                 Fmt(threaded.total_seconds), Fmt(threaded.sample_seconds),
                 Fmt(threaded.query_seconds), Fmt(threaded.update_seconds)});
  std::printf("speedup %.2fx over %zu steps, reward mismatches %zu\n", speedup,
              config.training_steps, mismatches);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"threads", "steps", "total_s", "sample_s", "query_s",
                  "update_s", "speedup", "reward_mismatches"});
  rows.push_back({"1", std::to_string(config.training_steps),
                  Fmt(single.total_seconds), Fmt(single.sample_seconds),
                  Fmt(single.query_seconds), Fmt(single.update_seconds), "1.0",
                  "0"});
  rows.push_back({std::to_string(threads),
                  std::to_string(config.training_steps),
                  Fmt(threaded.total_seconds), Fmt(threaded.sample_seconds),
                  Fmt(threaded.query_seconds), Fmt(threaded.update_seconds),
                  Fmt(speedup), std::to_string(mismatches)});
  WriteCsvOutput(config, "train_step_timing.csv", rows);
  WriteJsonOutput(config, "train_step_timing.json", rows);

  // A thread-count-dependent reward sequence is a correctness bug, not a
  // perf regression — fail loudly.
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Main(); }
