#include "util/topk.h"

namespace poisonrec {

std::vector<std::size_t> TopKIndices(const std::vector<double>& scores,
                                     std::size_t k) {
  std::vector<std::size_t> idx(scores.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto better = [&scores](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), better);
    return idx;
  }
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), better);
  idx.resize(k);
  return idx;
}

}  // namespace poisonrec
