#include "env/fault.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::env {

namespace {

/// Process-global mirrors of the per-instance fault counters, so a
/// metrics snapshot shows platform unreliability without having to
/// reach into every decorator instance. Fetched once, then each bump is
/// a relaxed sharded add alongside the member atomic's.
struct FaultCounters {
  obs::Counter* attempts;
  obs::Counter* transient_failures;
  obs::Counter* throttled;
  obs::Counter* dropped_clicks;
  obs::Counter* banned_trajectories;
  obs::Counter* stale_rewards;
  obs::Counter* nan_rewards;
  obs::Counter* successes;
};

const FaultCounters& Counters() {
  static const FaultCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    FaultCounters c;
    c.attempts = reg.GetCounter("poisonrec_fault_attempts_total");
    c.transient_failures =
        reg.GetCounter("poisonrec_fault_transient_failures_total");
    c.throttled = reg.GetCounter("poisonrec_fault_throttled_total");
    c.dropped_clicks = reg.GetCounter("poisonrec_fault_dropped_clicks_total");
    c.banned_trajectories =
        reg.GetCounter("poisonrec_fault_banned_trajectories_total");
    c.stale_rewards = reg.GetCounter("poisonrec_fault_stale_rewards_total");
    c.nan_rewards = reg.GetCounter("poisonrec_fault_nan_rewards_total");
    c.successes = reg.GetCounter("poisonrec_fault_successes_total");
    return c;
  }();
  return counters;
}

/// SplitMix64 finalizer: decorrelates structured (seed, id, attempt)
/// tuples into independent-looking Rng seeds.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t query_id,
                      std::uint64_t attempt) {
  return Mix(Mix(seed ^ Mix(query_id)) ^ Mix(attempt + 1));
}

void CheckRate(double rate, const char* name) {
  POISONREC_CHECK(rate >= 0.0 && rate <= 1.0)
      << name << " must be a probability, got " << rate;
}

}  // namespace

FaultyEnvironment::FaultyEnvironment(const AttackEnvironment* base,
                                     const FaultProfile& profile)
    : base_(base), profile_(profile) {
  POISONREC_CHECK(base_ != nullptr);
  CheckRate(profile_.query_failure_rate, "query_failure_rate");
  CheckRate(profile_.throttle_rate, "throttle_rate");
  CheckRate(profile_.injection_drop_rate, "injection_drop_rate");
  CheckRate(profile_.shadow_ban_rate, "shadow_ban_rate");
  CheckRate(profile_.stale_reward_rate, "stale_reward_rate");
  CheckRate(profile_.nan_reward_rate, "nan_reward_rate");
  POISONREC_CHECK_GE(profile_.reward_noise_stddev, 0.0);
}

StatusOr<double> FaultyEnvironment::TryEvaluate(
    const std::vector<Trajectory>& trajectories, std::uint64_t query_id,
    std::uint32_t attempt) const {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  Counters().attempts->Increment();

  // Attempt-level fault: transient failure, independent across attempts.
  Rng attempt_rng(MixSeed(profile_.seed, query_id, attempt + 1));
  if (profile_.query_failure_rate > 0.0 &&
      attempt_rng.Bernoulli(profile_.query_failure_rate)) {
    transient_failures_.fetch_add(1, std::memory_order_relaxed);
    Counters().transient_failures->Increment();
    return Status::Unavailable("transient query failure (query " +
                               std::to_string(query_id) + ", attempt " +
                               std::to_string(attempt) + ")");
  }

  // Query-level draws: one Rng per query id, so which trajectories are
  // banned / which clicks are dropped does not depend on the attempt that
  // finally succeeds.
  Rng query_rng(MixSeed(profile_.seed, query_id, 0));
  const bool throttled = profile_.throttle_rate > 0.0 &&
                         query_rng.Bernoulli(profile_.throttle_rate);
  if (throttled && attempt < profile_.throttle_cooldown_attempts) {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    Counters().throttled->Increment();
    return Status::ResourceExhausted(
        "throttled (query " + std::to_string(query_id) + "; cool-down " +
        std::to_string(profile_.throttle_cooldown_attempts) + " attempts)");
  }

  // Corrupt the injection: shadow-banned attackers lose their whole
  // trajectory; surviving trajectories lose a fraction of their clicks.
  // One Uniform() draw per trajectory + per click, unconditionally, keeps
  // the draw stream aligned across profiles that differ only in rates.
  std::vector<Trajectory> delivered;
  delivered.reserve(trajectories.size());
  std::uint64_t dropped = 0;
  std::uint64_t banned = 0;
  for (const Trajectory& traj : trajectories) {
    const bool ban = query_rng.Uniform() < profile_.shadow_ban_rate;
    Trajectory kept;
    kept.attacker_index = traj.attacker_index;
    kept.items.reserve(traj.items.size());
    for (data::ItemId item : traj.items) {
      const bool drop = query_rng.Uniform() < profile_.injection_drop_rate;
      if (ban) continue;
      if (drop) {
        ++dropped;
      } else {
        kept.items.push_back(item);
      }
    }
    if (ban) {
      ++banned;
      continue;
    }
    if (!kept.items.empty()) delivered.push_back(std::move(kept));
  }
  dropped_clicks_.fetch_add(dropped, std::memory_order_relaxed);
  banned_trajectories_.fetch_add(banned, std::memory_order_relaxed);
  Counters().dropped_clicks->Increment(dropped);
  Counters().banned_trajectories->Increment(banned);

  double reward = base_->Evaluate(delivered);

  // Observation noise on the feedback channel.
  if (profile_.reward_noise_stddev > 0.0) {
    reward += query_rng.Normal(0.0, profile_.reward_noise_stddev);
    reward = std::max(reward, 0.0);
  }

  // Stale feedback: sometimes the crawled metric has not refreshed yet.
  if (profile_.stale_reward_rate > 0.0) {
    const bool stale = query_rng.Uniform() < profile_.stale_reward_rate;
    std::lock_guard<std::mutex> lock(stale_mutex_);
    if (stale && has_last_reward_) {
      stale_rewards_.fetch_add(1, std::memory_order_relaxed);
      Counters().stale_rewards->Increment();
      reward = last_reward_;
    } else {
      last_reward_ = reward;
      has_last_reward_ = true;
    }
  }

  // Corrupted feedback channel: the query "succeeds" but the returned
  // RecNum is NaN. Drawn after every other fault so enabling it leaves
  // the rest of the fault stream untouched. The stale cache above keeps
  // the clean value — staleness models an unrefreshed metric, not a
  // re-served corruption.
  if (profile_.nan_reward_rate > 0.0 &&
      query_rng.Uniform() < profile_.nan_reward_rate) {
    nan_rewards_.fetch_add(1, std::memory_order_relaxed);
    Counters().nan_rewards->Increment();
    reward = std::numeric_limits<double>::quiet_NaN();
  }

  successes_.fetch_add(1, std::memory_order_relaxed);
  Counters().successes->Increment();
  return reward;
}

StatusOr<double> FaultyEnvironment::TryEvaluate(
    const std::vector<Trajectory>& trajectories) const {
  return TryEvaluate(trajectories,
                     next_query_id_.fetch_add(1, std::memory_order_relaxed),
                     /*attempt=*/0);
}

FaultStats FaultyEnvironment::stats() const {
  FaultStats s;
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.transient_failures = transient_failures_.load(std::memory_order_relaxed);
  s.throttled = throttled_.load(std::memory_order_relaxed);
  s.successes = successes_.load(std::memory_order_relaxed);
  s.dropped_clicks = dropped_clicks_.load(std::memory_order_relaxed);
  s.banned_trajectories = banned_trajectories_.load(std::memory_order_relaxed);
  s.stale_rewards = stale_rewards_.load(std::memory_order_relaxed);
  s.nan_rewards = nan_rewards_.load(std::memory_order_relaxed);
  return s;
}

void FaultyEnvironment::ResetStats() {
  attempts_.store(0, std::memory_order_relaxed);
  transient_failures_.store(0, std::memory_order_relaxed);
  throttled_.store(0, std::memory_order_relaxed);
  successes_.store(0, std::memory_order_relaxed);
  dropped_clicks_.store(0, std::memory_order_relaxed);
  banned_trajectories_.store(0, std::memory_order_relaxed);
  stale_rewards_.store(0, std::memory_order_relaxed);
  nan_rewards_.store(0, std::memory_order_relaxed);
}

}  // namespace poisonrec::env
