// AccountPool unit tests: slot -> account mapping, deterministic
// replacement from a finite reserve, graceful slot death when the
// reserve drains, and snapshot/restore for checkpoints.
#include <gtest/gtest.h>

#include "core/account_pool.h"

namespace poisonrec::core {
namespace {

TEST(AccountPoolTest, SeedsIdentityMappingAndFullReserve) {
  AccountPool pool(/*num_slots=*/4, /*total_accounts=*/10);
  EXPECT_EQ(pool.num_slots(), 4u);
  EXPECT_EQ(pool.total_accounts(), 10u);
  for (std::size_t slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(pool.account(slot), slot);
    EXPECT_TRUE(pool.IsLive(slot));
  }
  EXPECT_EQ(pool.live_slots(), 4u);
  EXPECT_EQ(pool.reserve_remaining(), 6u);
  EXPECT_EQ(pool.retired_accounts(), 0u);
}

TEST(AccountPoolTest, BanRemapsToLowestUnusedReserveAccount) {
  AccountPool pool(3, 6);
  EXPECT_TRUE(pool.OnBanned(1));
  EXPECT_EQ(pool.account(1), 3u);  // first reserve account
  EXPECT_TRUE(pool.OnBanned(3));
  EXPECT_EQ(pool.account(1), 4u);  // same slot, next reserve account
  EXPECT_TRUE(pool.OnBanned(0));
  EXPECT_EQ(pool.account(0), 5u);
  EXPECT_EQ(pool.live_slots(), 3u);
  EXPECT_EQ(pool.reserve_remaining(), 0u);
  EXPECT_EQ(pool.retired_accounts(), 3u);
}

TEST(AccountPoolTest, BanningUnusedAccountIsIdempotentNoOp) {
  AccountPool pool(2, 4);
  ASSERT_TRUE(pool.OnBanned(0));  // slot 0 -> account 2
  EXPECT_FALSE(pool.OnBanned(0));  // already retired: no-op
  EXPECT_FALSE(pool.OnBanned(3));  // fresh reserve account, never mapped
  EXPECT_EQ(pool.account(0), 2u);
  EXPECT_EQ(pool.retired_accounts(), 1u);
}

TEST(AccountPoolTest, DrainedReserveKillsSlotsForGood) {
  AccountPool pool(2, 3);  // one replacement only
  EXPECT_TRUE(pool.OnBanned(0));  // slot 0 -> account 2
  EXPECT_TRUE(pool.OnBanned(1));  // reserve dry: slot 1 dies
  EXPECT_FALSE(pool.IsLive(1));
  EXPECT_EQ(pool.account(1), AccountPool::kDeadSlot);
  EXPECT_EQ(pool.live_slots(), 1u);
  EXPECT_TRUE(pool.OnBanned(2));  // last live account: slot 0 dies too
  EXPECT_EQ(pool.live_slots(), 0u);
  EXPECT_EQ(pool.retired_accounts(), 3u);
}

TEST(AccountPoolTest, ReplacementOrderIsDeterministic) {
  AccountPool a(3, 8);
  AccountPool b(3, 8);
  for (std::size_t banned : {2u, 0u, 3u, 4u}) {
    a.OnBanned(banned);
    b.OnBanned(banned);
  }
  for (std::size_t slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(a.account(slot), b.account(slot)) << "slot " << slot;
  }
}

TEST(AccountPoolTest, RestoreRoundTripsSnapshot) {
  AccountPool pool(3, 6);
  pool.OnBanned(1);
  pool.OnBanned(3);
  const auto slots = pool.slot_accounts();
  const std::size_t next = pool.next_account();
  const std::size_t retired = pool.retired_accounts();

  AccountPool restored(3, 6);
  restored.Restore(slots, next, retired);
  EXPECT_EQ(restored.account(0), pool.account(0));
  EXPECT_EQ(restored.account(1), pool.account(1));
  EXPECT_EQ(restored.account(2), pool.account(2));
  EXPECT_EQ(restored.reserve_remaining(), pool.reserve_remaining());
  EXPECT_EQ(restored.retired_accounts(), pool.retired_accounts());
  // The restored pool continues exactly where the original would.
  restored.OnBanned(restored.account(2));
  pool.OnBanned(pool.account(2));
  EXPECT_EQ(restored.account(2), pool.account(2));
}

}  // namespace
}  // namespace poisonrec::core
