// Per-step recycling arena for autograd nodes (the impl/handle split's
// payoff): a PPO TrainStep allocates thousands of small TensorImpl
// buffers with identical shapes every step, and the general-purpose
// allocator pays for each one. TensorArena intercepts node creation
// (tensor.cc's NewNode asks the active arena first) and hands back
// recycled impls whose data/grad vectors keep their heap capacity, so
// steady-state steps run with near-zero allocator traffic.
//
// Safety contract: Reset() only recycles nodes whose handle count has
// dropped to the arena's own reference (use_count() == 1). Any node
// still reachable from outside — model parameters never come from the
// arena, but e.g. a Tensor the caller kept — simply escapes to the
// normal shared_ptr lifetime. That makes the arena an optimization, not
// a new ownership rule: forgetting to reset leaks capacity, never
// correctness.
#ifndef POISONREC_NN_ARENA_H_
#define POISONREC_NN_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace poisonrec::nn {

class TensorArena {
 public:
  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Returns a zero-filled (rows x cols) impl, reusing a recycled one
  /// when available. Called by tensor.cc's NewNode when this arena is
  /// active on the current thread.
  std::shared_ptr<internal::TensorImpl> Acquire(std::size_t rows,
                                                std::size_t cols);

  /// Sweeps everything handed out since the last Reset: nodes whose only
  /// remaining reference is the arena's go back on the free list (data
  /// capacity retained, parents/closures dropped); nodes still held
  /// elsewhere escape. Sweeps in reverse creation order so a child's
  /// release drops its parents' refcounts before the parents are
  /// examined — a whole dead graph recycles in one pass.
  void Reset();

  /// The arena active on this thread (nullptr when none).
  static TensorArena* Current();

  /// RAII activation: makes `arena` the thread's current arena for the
  /// scope's lifetime and calls Reset() on exit. Nesting restores the
  /// previous arena.
  class Scope {
   public:
    explicit Scope(TensorArena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TensorArena* arena_;
    TensorArena* previous_;
  };

  // Telemetry for tests/benches.
  std::size_t live_count() const { return live_.size(); }
  std::size_t free_count() const { return free_.size(); }
  std::size_t total_acquired() const { return total_acquired_; }
  std::size_t total_recycled() const { return total_recycled_; }

 private:
  std::vector<std::shared_ptr<internal::TensorImpl>> live_;
  std::vector<std::shared_ptr<internal::TensorImpl>> free_;
  std::size_t total_acquired_ = 0;
  std::size_t total_recycled_ = 0;
};

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_ARENA_H_
