// PoisonRec training loop (paper Algorithm 1). Each training step samples
// M episodes (N trajectories each) from the current policy, injects them
// into the black-box environment for RecNum rewards, then runs K epochs of
// PPO updates with the clipped surrogate objective (Eq. 7/9) on
// batch-normalized rewards (Eq. 8).
#ifndef POISONREC_CORE_PPO_H_
#define POISONREC_CORE_PPO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/account_pool.h"
#include "core/policy.h"
#include "core/trajectory.h"
#include "env/defended.h"
#include "env/environment.h"
#include "env/fault.h"
#include "nn/arena.h"
#include "nn/optimizer.h"
#include "obs/event_log.h"
#include "util/cancel.h"
#include "util/guard.h"
#include "util/retry.h"
#include "util/status.h"

namespace poisonrec::core {

/// Execution-engine knobs (docs/performance.md). Every fast path here is
/// bit-identical to the reference path it replaces — same trajectories,
/// same rewards, same post-update parameters, same checkpoint bytes — so
/// they default on and exist as flags only so tests and benches can pin
/// the reference engine for identity/regression comparisons.
struct EngineConfig {
  /// Roll out all M episodes of a step as one stacked (M·N x dim)
  /// recurrence (Policy::SampleEpisodesBatched): one LSTM/DNN forward
  /// per timestep instead of M·N tiny ones. Per-episode RNG streams are
  /// preserved, so sampling stays bit-identical and parallel_sampling
  /// becomes irrelevant while this is on.
  bool batched_sampling = true;
  /// Record the PPO update graph (recompute + surrogate) on epoch 0 and
  /// replay it for epochs 1..K-1 instead of re-taping: forward closures
  /// recompute the same nodes in creation order, and the captured
  /// backward schedule re-runs Tensor::Backward()'s exact closure order,
  /// so gradients accumulate in the same float order every epoch.
  /// Applies only when the batch covers all M episodes (batch_size >=
  /// samples_per_step) — a resampled batch changes the graph.
  bool reuse_update_graph = true;
  /// Recycle autograd nodes through a per-step TensorArena: steady-state
  /// steps reuse the previous step's node/activation buffers instead of
  /// hitting the allocator (nn/arena.h).
  bool tensor_arena = true;
  /// Historical per-row baseline: advance every attacker row with its own
  /// 1×d matmuls in sampling (Policy::SampleEpisodePerRow) and in the PPO
  /// recompute (Policy::HiddenStatesPerRow), ~6N tiny tape nodes per
  /// timestep instead of 6. Bit-identical to both the reference and the
  /// batched engines (trajectories, rewards, post-update parameters) —
  /// kept purely as the identity oracle and speedup denominator for
  /// bench_train_step_timing; never enable it for real campaigns. Forces
  /// the fresh-tape update path (graph reuse is skipped).
  bool per_row_recurrence = false;
};

struct PoisonRecConfig {
  /// M: episodes sampled per training step (paper: 32).
  std::size_t samples_per_step = 32;
  /// B: update batch size, B <= M (paper: 32).
  std::size_t batch_size = 32;
  /// K: PPO epochs per training step (paper: 3).
  std::size_t update_epochs = 3;
  /// Adam learning rate (paper: 2e-3).
  float learning_rate = 2e-3f;
  /// PPO clip ratio ε (paper: 0.1).
  float clip_epsilon = 0.1f;
  /// Global gradient-norm clip applied after backward (0 = disabled).
  float max_grad_norm = 5.0f;
  /// Training-stability guardrails: numerical anomaly monitors and the
  /// self-healing rollback policy of TrainGuarded (util/guard.h).
  GuardConfig guard;
  /// Evaluate the M independent reward queries of each step concurrently.
  /// Results are identical either way.
  bool parallel_rewards = false;
  /// Roll out the M episodes of each step concurrently. Each episode m
  /// of step s samples from its own Rng stream derived as a pure
  /// function of (seed, s, m) — never from the shared generator — so
  /// results are bit-identical for every thread count and across
  /// checkpoint/resume.
  bool parallel_sampling = true;
  /// Worker threads for parallel sampling/evaluation (0 = hardware
  /// concurrency). Kernel-level GEMM threading is a separate process
  /// knob: nn::SetNumThreads.
  std::size_t num_threads = 0;
  /// Per-query retry schedule, used when a FaultyEnvironment is attached
  /// (each of the M reward queries retries independently).
  RetryPolicy retry;
  /// Replacement-account reserve for campaigns against an adaptive
  /// defender (env::DefendedEnvironment). When enabled, the environment
  /// must be built with num_attackers = policy slots + reserve_accounts;
  /// the policy keeps its N slots and the pool remaps banned slots onto
  /// fresh reserve accounts (core/account_pool.h).
  AccountPoolConfig pool;
  /// Batched-engine fast paths (all bit-identical to the reference).
  EngineConfig engine;
  PolicyConfig policy;
  std::uint64_t seed = 99;
};

/// Per-training-step telemetry (drives Figure 4/5 and the timing study).
struct TrainStepStats {
  std::size_t step = 0;
  double mean_reward = 0.0;
  double max_reward = 0.0;
  double min_reward = 0.0;
  double best_reward_so_far = 0.0;
  /// Mean clipped-surrogate loss over the K update epochs.
  double loss = 0.0;
  /// Wall-clock seconds for the full training step.
  double seconds = 0.0;
  /// Phase breakdown of `seconds`: episode rollouts (policy forward),
  /// black-box reward queries (ranker clone + retrain + top-k), and the
  /// K PPO update epochs (recompute + backward + Adam). Each phase is
  /// measured by its obs::TraceSpan, so the per-step trace and these
  /// numbers are one measurement. The bookkeeping between phases
  /// (imputation, defender sync, best-episode tracking) is accounted
  /// explicitly as `other_seconds`; the four always sum to `seconds`.
  double sample_seconds = 0.0;
  double query_seconds = 0.0;
  double update_seconds = 0.0;
  double other_seconds = 0.0;
  /// Fraction of sampled clicks on target items (Figure 5 statistic).
  double target_click_ratio = 0.0;
  /// Reward queries that still failed after exhausting the retry budget.
  std::size_t failed_queries = 0;
  /// Re-queries issued across all M reward queries of the step.
  std::size_t retries = 0;
  /// Failed queries whose reward was imputed with the batch mean (0 when
  /// the whole batch failed — nothing to impute from).
  std::size_t imputed_rewards = 0;
  /// Largest global gradient norm observed across the K update epochs,
  /// measured before clipping (PoisonRecConfig::max_grad_norm).
  double pre_clip_grad_norm = 0.0;
  /// Mean sampled policy entropy over the epochs: -log pi(a|s) averaged
  /// over the batch's decisions (0 when the update was skipped).
  double entropy = 0.0;
  /// Mean approx-KL(old || new) over the epochs: log pi_old - log pi_new
  /// averaged over the batch's decisions.
  double approx_kl = 0.0;
  /// What the stability guardrails tripped on this step (empty = clean;
  /// always empty when PoisonRecConfig::guard.enabled is false).
  GuardVerdict guard;
  /// Accounts the adaptive defender has permanently banned so far
  /// (cumulative; 0 when no DefendedEnvironment is attached).
  std::size_t banned_accounts = 0;
  /// Fresh replacement accounts left in the reserve (0 without a pool).
  std::size_t pool_remaining = 0;
  /// Trajectory slots still mapped to live accounts at the end of the
  /// step (equals N for an undefended campaign; 0 without defense/pool).
  std::size_t effective_attackers = 0;
};

/// Outcome of a self-healing TrainGuarded campaign.
struct GuardedTrainResult {
  /// Every attempted step, including the ones a rollback later discarded
  /// (those carry a tripped `TrainStepStats::guard`).
  std::vector<TrainStepStats> stats;
  /// Rollbacks performed (tripped steps whose update was discarded).
  std::size_t rollbacks = 0;
  /// Guard incidents recorded across the campaign.
  std::size_t incidents = 0;
  /// OK when the campaign ran to completion; kFailedPrecondition when
  /// the consecutive-rollback budget was exhausted; an I/O error when
  /// checkpointing itself failed.
  Status status;
};

/// Recorded update graph shared by the K epochs of one TrainStep
/// (defined in ppo.cc; built on epoch 0, replayed afterwards).
struct PpoUpdateGraph;

/// The PoisonRec attack agent: ties a Policy to an AttackEnvironment and
/// runs Algorithm 1.
class PoisonRecAttacker {
 public:
  /// The environment must outlive the attacker.
  PoisonRecAttacker(const env::AttackEnvironment* environment,
                    const PoisonRecConfig& config);

  /// One outer iteration of Algorithm 1 (sample M episodes, K PPO epochs).
  TrainStepStats TrainStep();

  /// Runs `steps` iterations; returns per-step stats.
  std::vector<TrainStepStats> Train(std::size_t steps);

  /// Self-healing variant of Train for unattended campaigns (requires
  /// config().guard.enabled). A last-good checkpoint is kept at
  /// `checkpoint_path` (saved before the first step and after every
  /// clean one). When a step trips a guard, the poisoned update is
  /// discarded by restoring that checkpoint (bit-identical: parameters,
  /// Adam moments, RNG), the learning rate and clip epsilon back off
  /// multiplicatively, and the step index is burned so the retry samples
  /// fresh reward queries instead of deterministically replaying the
  /// same fault stream. Burning the index means a rollback consumes one
  /// step of the campaign budget — the campaign always attempts exactly
  /// `steps` steps, so it cannot livelock. After `guard.max_rollbacks` consecutive
  /// rollbacks the campaign aborts with kFailedPrecondition; the
  /// incident log holds the full post-mortem either way.
  GuardedTrainResult TrainGuarded(std::size_t steps,
                                  const std::string& checkpoint_path);

  /// Incidents recorded by the stability guardrails (util/guard.h).
  const IncidentLog& incident_log() const { return incidents_; }

  // -- Supervision hooks (src/orch) -----------------------------------------
  // A campaign supervisor wires these before Train/TrainGuarded so a
  // fleet watchdog can observe and interrupt the campaign from another
  // thread. All hooks are optional; nullptr/empty detaches.

  /// Hard-abort token. Polled at every step boundary and passed into the
  /// per-query retry loops, so a campaign parked in a fault-blackout
  /// backoff sleep unblocks the moment the token fires. TrainGuarded
  /// returns kCancelled and does NOT checkpoint the interrupted step —
  /// the on-disk checkpoint stays at the last clean boundary, which is
  /// exactly what a restart resumes from. Not owned.
  void SetCancelToken(const CancelToken* cancel) { cancel_ = cancel; }

  /// Soft-stop flag (graceful fleet shutdown). Checked only between
  /// steps: the in-flight step completes and — under TrainGuarded — is
  /// checkpointed before the loop returns kCancelled. Not owned.
  void SetStopFlag(const std::atomic<bool>* stop) { stop_flag_ = stop; }

  /// Liveness beacon for stall watchdogs: invoked at the start of every
  /// step and after each phase (sample, query, update). Must be cheap
  /// and thread-safe against concurrent readers of whatever it updates.
  void SetHeartbeat(std::function<void()> heartbeat) {
    heartbeat_ = std::move(heartbeat);
  }

  /// Invoked by TrainGuarded after a clean step has been checkpointed —
  /// i.e. once the step is durable and will not be rolled back. The
  /// fleet journal records step progress from exactly this point, so a
  /// journal record never claims progress the checkpoint doesn't have.
  void SetStepCommittedCallback(
      std::function<void(const TrainStepStats&)> callback) {
    step_committed_ = std::move(callback);
  }

  /// True when a supervisor has requested interruption (soft stop flag
  /// or hard cancel token).
  bool InterruptRequested() const {
    return (stop_flag_ != nullptr &&
            stop_flag_->load(std::memory_order_acquire)) ||
           (cancel_ != nullptr && cancel_->cancelled());
  }

  /// Attaches the unified campaign event stream (docs/observability.md).
  /// Every TrainStep then appends one {"type":"step",...} record, guard
  /// incidents mirror in as {"type":"guard",...}, defender bans as
  /// {"type":"ban",...}, and checkpoint saves/loads and TrainGuarded
  /// rollbacks as {"type":"checkpoint"/"rollback",...}. Not owned;
  /// nullptr detaches. The registry metrics (poisonrec_ppo_*) are
  /// updated regardless — they are process-global.
  void SetEventLog(obs::EventLog* event_log) {
    event_log_ = event_log;
    incidents_.set_event_log(event_log);
  }

  /// Highest-reward episode observed so far.
  const Episode& best_episode() const { return best_episode_; }

  /// The best attack found, as environment trajectories.
  std::vector<env::Trajectory> BestAttack() const {
    return ToEnvTrajectories(best_episode_.trajectories);
  }

  /// Samples a fresh episode from the current policy and evaluates it.
  Episode SampleAndEvaluate();

  /// Routes all subsequent reward queries through the fault-injecting
  /// decorator: each query retries per `config().retry`, and queries that
  /// still fail degrade gracefully (batch-mean imputation, excluded from
  /// Eq. 8 statistics). `faulty->base()` must be the environment this
  /// attacker was constructed with. `retry_sleep` overrides how backoff
  /// waits are spent ({} = really sleep); tests pass a fake clock.
  void AttachFaultyEnvironment(const env::FaultyEnvironment* faulty,
                               SleepFn retry_sleep = {});

  /// Routes all subsequent reward queries through the adaptive-defender
  /// decorator (which may itself wrap a FaultyEnvironment — attach only
  /// the outermost decorator). `defended->base()` must be the environment
  /// this attacker was constructed with. Reward queries are evaluated
  /// sequentially while a defender is attached (its ban state is
  /// order-dependent), so runs stay bit-identical regardless of
  /// `parallel_rewards`. Mutually exclusive with
  /// AttachFaultyEnvironment. Non-const: LoadCheckpoint restores the
  /// defender's ban/history state alongside the attacker's.
  void AttachDefendedEnvironment(env::DefendedEnvironment* defended,
                                 SleepFn retry_sleep = {});

  /// OK while the campaign can continue; kResourceExhausted once the
  /// account pool drained below pool.min_live_attackers. Train and
  /// TrainGuarded stop stepping when this is not OK.
  const Status& campaign_status() const { return campaign_status_; }

  /// The account pool (nullptr unless config().pool.enabled).
  const AccountPool* account_pool() const { return pool_.get(); }

  /// Trajectory slots the policy controls (N of the paper; smaller than
  /// the environment's account space when a reserve pool is configured).
  std::size_t num_slots() const { return num_slots_; }

  /// Persists everything TrainStep depends on — policy parameters, Adam
  /// moments, RNG state, steps taken, best episode — so a crashed run can
  /// resume bit-identically. The write is atomic (tmp file + rename): a
  /// crash mid-write never corrupts an existing checkpoint.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores a SaveCheckpoint file into this attacker. The attacker must
  /// have been constructed with the same configuration and environment
  /// shape (parameter shapes are validated).
  Status LoadCheckpoint(const std::string& path);

  Policy& policy() { return *policy_; }
  const Policy& policy() const { return *policy_; }
  /// Exposed so tools and tests can inspect or corrupt optimizer state
  /// (the guardrails sweep its moments after every step).
  nn::Adam& optimizer() { return *optimizer_; }
  const PoisonRecConfig& config() const { return config_; }
  std::size_t steps_taken() const { return steps_taken_; }

 private:
  /// Cheap per-epoch telemetry computed alongside the surrogate loss;
  /// feeds the divergence monitors and TrainStepStats.
  struct PpoDiagnostics {
    double entropy = 0.0;
    double approx_kl = 0.0;
    std::size_t non_finite_log_probs = 0;
  };

  /// PPO surrogate loss over one batch of episodes; differentiable.
  /// With `graph` non-null the first call records the whole forward
  /// (recompute + surrogate) into it and later calls replay it against
  /// current parameters — numerically identical to rebuilding from
  /// scratch, since replay recomputes the same nodes in the same order.
  /// Pass nullptr for the fresh-tape reference path.
  nn::Tensor PpoLoss(const std::vector<const Episode*>& batch,
                     double* loss_value, PpoDiagnostics* diagnostics,
                     PpoUpdateGraph* graph);

  /// Records a tripped guard into both the step verdict and the
  /// incident ring (and its JSONL sink, when configured).
  void RecordGuardEvent(TrainStepStats* stats, GuardEventKind kind,
                        double value, double threshold, std::string detail);

  /// Post-update sweep: gradients were already checked; this validates
  /// parameters and Adam moments after the step's last update epoch.
  /// Returns true if clean.
  bool SweepPostStep(TrainStepStats* stats);

  /// Maps sampled trajectory slots onto live platform accounts for
  /// injection (identity without a pool); dead slots are not injected.
  std::vector<env::Trajectory> MapToAccounts(
      const std::vector<SampledTrajectory>& trajectories) const;

  /// Pulls the defender's ban list into the pool (remapping banned slots
  /// onto reserve accounts), fills the attrition fields of `stats`, and
  /// aborts the campaign (kResourceExhausted + incident post-mortem)
  /// when fewer than pool.min_live_attackers slots survive.
  void SyncDefenderState(TrainStepStats* stats);

  /// End-of-step telemetry fan-out: updates the process-global metrics
  /// registry, appends the {"type":"step",...} record, and emits one
  /// {"type":"ban",...} record per defender ban not yet streamed
  /// (rollback-safe: a restored defender shrinks ban_events(), and the
  /// emission cursor follows it down).
  void EmitStepTelemetry(const TrainStepStats& stats);

  /// Appends a {"type":"checkpoint","op":...} record (no-op when no
  /// event log is attached).
  void EmitCheckpointEvent(const char* op, const std::string& path,
                           bool ok) const;

  const env::AttackEnvironment* env_;
  const env::FaultyEnvironment* faulty_ = nullptr;
  env::DefendedEnvironment* defended_ = nullptr;
  std::size_t num_slots_ = 0;
  std::unique_ptr<AccountPool> pool_;
  Status campaign_status_;
  SleepFn retry_sleep_;
  PoisonRecConfig config_;
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// Node-recycling arena for TrainStep (config_.engine.tensor_arena):
  /// activated for the span of each step, reset at its end, free list
  /// persisting across steps so step s+1 reuses step s's buffers.
  nn::TensorArena step_arena_;
  Rng rng_;
  Episode best_episode_;
  std::size_t steps_taken_ = 0;
  IncidentLog incidents_;
  const CancelToken* cancel_ = nullptr;
  const std::atomic<bool>* stop_flag_ = nullptr;
  std::function<void()> heartbeat_;
  std::function<void(const TrainStepStats&)> step_committed_;
  obs::EventLog* event_log_ = nullptr;
  /// How many of defended_->ban_events() have been streamed already.
  std::size_t ban_events_emitted_ = 0;
};

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_PPO_H_
