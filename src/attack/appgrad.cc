#include "attack/appgrad.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::attack {

namespace {

/// Clamps to >= 0 and rescales each row to sum to `budget`.
void ProjectRows(std::vector<std::vector<double>>* m, double budget) {
  for (std::vector<double>& row : *m) {
    double sum = 0.0;
    for (double& v : row) {
      if (v < 0.0) v = 0.0;
      sum += v;
    }
    if (sum <= 0.0) continue;  // degenerate; re-seeded by caller
    const double scale = budget / sum;
    for (double& v : row) v *= scale;
  }
}

}  // namespace

AppGradAttack::AppGradAttack(const AppGradConfig& config)
    : config_(config) {}

std::vector<data::ItemId> AppGradAttack::RowToClicks(
    const std::vector<double>& row, std::size_t budget, Rng* rng) {
  // Largest-remainder rounding to integers summing to `budget`.
  std::vector<std::size_t> counts(row.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    const double floor_v = std::floor(row[j]);
    counts[j] = static_cast<std::size_t>(std::max(0.0, floor_v));
    assigned += counts[j];
    remainders.emplace_back(row[j] - floor_v, j);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t r = 0; assigned < budget && r < remainders.size(); ++r) {
    ++counts[remainders[r].second];
    ++assigned;
  }
  // Over-assignment (all-floor sums above budget cannot happen; equality
  // handled) — trim from the largest counts if rounding overshot.
  while (assigned > budget) {
    auto it = std::max_element(counts.begin(), counts.end());
    POISONREC_CHECK_GT(*it, 0u);
    --(*it);
    --assigned;
  }
  std::vector<data::ItemId> clicks;
  clicks.reserve(budget);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    for (std::size_t c = 0; c < counts[j]; ++c) {
      clicks.push_back(static_cast<data::ItemId>(j));
    }
  }
  // AppGrad does not model order; randomize it (paper's third change).
  rng->Shuffle(&clicks);
  return clicks;
}

std::vector<env::Trajectory> AppGradAttack::ToTrajectories(
    const std::vector<std::vector<double>>& m, std::size_t budget,
    Rng* rng) {
  std::vector<env::Trajectory> out;
  out.reserve(m.size());
  for (std::size_t n = 0; n < m.size(); ++n) {
    env::Trajectory traj;
    traj.attacker_index = n;
    traj.items = RowToClicks(m[n], budget, rng);
    out.push_back(std::move(traj));
  }
  return out;
}

std::vector<env::Trajectory> AppGradAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = environment.num_attackers();
  const std::size_t t = environment.trajectory_length();
  const std::size_t items = environment.num_total_items();
  const std::vector<data::ItemId>& targets = environment.target_items();

  // Priori-knowledge initialization: ~half of the clicks on targets.
  std::vector<std::vector<double>> m(n, std::vector<double>(items, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < t; ++c) {
      if (rng.Bernoulli(0.5)) {
        m[i][targets[rng.Index(targets.size())]] += 1.0;
      } else {
        m[i][rng.Index(environment.num_original_items())] += 1.0;
      }
    }
  }

  auto evaluate = [&](const std::vector<std::vector<double>>& matrix,
                      std::uint64_t eval_seed) {
    Rng eval_rng(eval_seed);
    return environment.Evaluate(ToTrajectories(matrix, t, &eval_rng));
  };

  std::vector<std::vector<double>> best = m;
  double best_reward = evaluate(m, rng.Fork());

  const double c = config_.perturbation;
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    // SPSA direction.
    std::vector<std::vector<double>> delta(
        n, std::vector<double>(items, 0.0));
    for (auto& row : delta) {
      for (double& v : row) v = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    }
    std::vector<std::vector<double>> plus = m;
    std::vector<std::vector<double>> minus = m;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < items; ++j) {
        plus[i][j] += c * delta[i][j];
        minus[i][j] -= c * delta[i][j];
      }
    }
    ProjectRows(&plus, static_cast<double>(t));
    ProjectRows(&minus, static_cast<double>(t));
    const std::uint64_t pair_seed = rng.Fork();
    const double r_plus = evaluate(plus, pair_seed);
    const double r_minus = evaluate(minus, pair_seed);
    if (r_plus == r_minus) continue;
    const double direction = r_plus > r_minus ? 1.0 : -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < items; ++j) {
        m[i][j] += config_.step_size * direction * delta[i][j];
      }
    }
    ProjectRows(&m, static_cast<double>(t));
    const double reward = evaluate(m, rng.Fork());
    if (reward > best_reward) {
      best_reward = reward;
      best = m;
    }
  }
  Rng final_rng(seed ^ 0xf00dull);
  return ToTrajectories(best, t, &final_rng);
}

}  // namespace poisonrec::attack
