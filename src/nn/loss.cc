#include "nn/loss.h"

namespace poisonrec::nn {

Tensor BceWithLogits(const Tensor& logits, const Tensor& targets) {
  POISONREC_CHECK_EQ(logits.rows(), targets.rows());
  POISONREC_CHECK_EQ(logits.cols(), targets.cols());
  // loss = mean( log(1 + e^x) - x*t ), with the softplus computed stably.
  return Mean(Sub(Softplus(logits), Mul(logits, targets)));
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  POISONREC_CHECK_EQ(pred.rows(), target.rows());
  POISONREC_CHECK_EQ(pred.cols(), target.cols());
  return Mean(Square(Sub(pred, target)));
}

Tensor MaskedMseLoss(const Tensor& pred, const Tensor& target,
                     const Tensor& mask) {
  POISONREC_CHECK_EQ(pred.rows(), mask.rows());
  POISONREC_CHECK_EQ(pred.cols(), mask.cols());
  float mask_sum = 0.0f;
  for (float m : mask.data()) mask_sum += m;
  POISONREC_CHECK_GT(mask_sum, 0.0f) << "empty mask";
  Tensor masked = Mul(Square(Sub(pred, target)), mask);
  return Scale(Sum(masked), 1.0f / mask_sum);
}

Tensor BprLoss(const Tensor& pos, const Tensor& neg) {
  POISONREC_CHECK_EQ(pos.rows(), neg.rows());
  POISONREC_CHECK_EQ(pos.cols(), 1u);
  POISONREC_CHECK_EQ(neg.cols(), 1u);
  // -log sigmoid(pos - neg) == softplus(neg - pos)
  return Mean(Softplus(Sub(neg, pos)));
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<std::size_t>& targets) {
  POISONREC_CHECK_EQ(logits.rows(), targets.size());
  Tensor logp = LogSoftmax(logits);
  Tensor onehot = Tensor::Zeros(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < targets.size(); ++r) {
    POISONREC_CHECK_LT(targets[r], logits.cols());
    onehot.set(r, targets[r], 1.0f);
  }
  // RowSum picks the target log-prob per row; negate the mean for NLL.
  return Scale(Mean(RowSum(Mul(logp, onehot))), -1.0f);
}

}  // namespace poisonrec::nn
