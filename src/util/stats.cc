#include "util/stats.h"

namespace poisonrec {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

void NormalizeRewards(std::vector<double>* values) {
  if (values->empty()) return;
  double mean = Mean(*values);
  double sd = StdDev(*values);
  if (sd <= 1e-12) {
    for (double& v : *values) v = 0.0;
    return;
  }
  for (double& v : *values) v = (v - mean) / sd;
}

void NormalizeRewards(std::vector<double>* values,
                      const std::vector<char>& valid) {
  std::vector<double> observed;
  observed.reserve(values->size());
  for (std::size_t i = 0; i < values->size(); ++i) {
    if (i < valid.size() && valid[i]) observed.push_back((*values)[i]);
  }
  if (observed.size() < 2) {
    for (double& v : *values) v = 0.0;
    return;
  }
  const double mean = Mean(observed);
  const double sd = StdDev(observed);
  for (std::size_t i = 0; i < values->size(); ++i) {
    if (i >= valid.size() || !valid[i] || sd <= 1e-12) {
      (*values)[i] = 0.0;
    } else {
      (*values)[i] = ((*values)[i] - mean) / sd;
    }
  }
}

}  // namespace poisonrec
