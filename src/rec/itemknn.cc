#include "rec/itemknn.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::rec {

ItemKnn::ItemKnn(const FitConfig& config) : config_(config) {}

void ItemKnn::AccumulateUser(data::UserId user,
                             const std::vector<data::ItemId>& seq) {
  if (seq.empty()) return;
  std::unordered_set<data::ItemId> distinct(seq.begin(), seq.end());
  std::vector<data::ItemId> items(distinct.begin(), distinct.end());
  std::sort(items.begin(), items.end());
  if (items.size() > kMaxItemsPerUser) {
    // Deterministic subsample of heavy users.
    Rng rng(config_.seed ^ (user * 0x9e3779b97f4a7c15ull));
    rng.Shuffle(&items);
    items.resize(kMaxItemsPerUser);
    std::sort(items.begin(), items.end());
  }
  for (data::ItemId item : items) item_users_[item] += 1.0;
  for (std::size_t a = 0; a < items.size(); ++a) {
    for (std::size_t b = a + 1; b < items.size(); ++b) {
      cooccur_[items[a]][items[b]] += 1.0;
      cooccur_[items[b]][items[a]] += 1.0;
    }
  }
}

void ItemKnn::Fit(const data::Dataset& dataset) {
  cooccur_.assign(dataset.num_items(), {});
  item_users_.assign(dataset.num_items(), 0.0);
  history_.assign(dataset.num_users(), {});
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = dataset.Sequence(u);
    history_[u] = seq;
    AccumulateUser(u, seq);
  }
}

void ItemKnn::Update(const data::Dataset& poison) {
  POISONREC_CHECK_EQ(poison.num_items(), cooccur_.size());
  if (poison.num_users() > history_.size()) {
    history_.resize(poison.num_users());
  }
  for (data::UserId u = 0; u < poison.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = poison.Sequence(u);
    if (seq.empty()) continue;
    history_[u].insert(history_[u].end(), seq.begin(), seq.end());
    AccumulateUser(u, seq);
  }
}

double ItemKnn::CoOccurrences(data::ItemId a, data::ItemId b) const {
  POISONREC_CHECK_LT(a, cooccur_.size());
  auto it = cooccur_[a].find(b);
  return it == cooccur_[a].end() ? 0.0 : it->second;
}

std::vector<double> ItemKnn::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  if (user >= history_.size()) return scores;
  std::unordered_set<data::ItemId> hist(history_[user].begin(),
                                        history_[user].end());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const data::ItemId j = candidates[c];
    const double nj = item_users_[j];
    if (nj <= 0.0) continue;
    double acc = 0.0;
    for (data::ItemId i : hist) {
      auto it = cooccur_[i].find(j);
      if (it == cooccur_[i].end()) continue;
      // Cosine over user-incidence vectors.
      acc += it->second / std::sqrt(std::max(1.0, item_users_[i]) * nj);
    }
    scores[c] = acc;
  }
  return scores;
}

std::unique_ptr<Recommender> ItemKnn::Clone() const {
  return std::make_unique<ItemKnn>(*this);
}

}  // namespace poisonrec::rec
