#include "util/guard.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace poisonrec {

namespace {

/// JSON string escaping for the detail field (quotes, backslashes,
/// control characters).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// JSON has no NaN/Inf literals; emit those as strings so the log stays
/// parseable by any JSON reader.
void AppendJsonNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "\"nan\"";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "\"inf\"" : "\"-inf\"";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

}  // namespace

const char* GuardEventKindName(GuardEventKind kind) {
  switch (kind) {
    case GuardEventKind::kNonFiniteReward:
      return "non_finite_reward";
    case GuardEventKind::kNonFiniteLogit:
      return "non_finite_logit";
    case GuardEventKind::kNonFiniteLoss:
      return "non_finite_loss";
    case GuardEventKind::kNonFiniteGradient:
      return "non_finite_gradient";
    case GuardEventKind::kNonFiniteParameter:
      return "non_finite_parameter";
    case GuardEventKind::kNonFiniteOptimizerState:
      return "non_finite_optimizer_state";
    case GuardEventKind::kGradNormExplosion:
      return "grad_norm_explosion";
    case GuardEventKind::kEntropyCollapse:
      return "entropy_collapse";
    case GuardEventKind::kKlDivergence:
      return "kl_divergence";
    case GuardEventKind::kAccountPoolExhausted:
      return "account_pool_exhausted";
  }
  return "?";
}

void GuardVerdict::Add(GuardEventKind kind, double value, double threshold,
                       std::string detail) {
  events.push_back(GuardEvent{kind, value, threshold, std::move(detail)});
}

std::string GuardVerdict::Summary() const {
  if (events.empty()) return "clean";
  std::string out;
  for (const GuardEvent& e : events) {
    if (!out.empty()) out += ", ";
    out += GuardEventKindName(e.kind);
    if (!e.detail.empty()) {
      out += "(";
      out += e.detail;
      out += ")";
    }
  }
  return out;
}

FiniteSweep SweepFinite(const float* data, std::size_t n) {
  FiniteSweep sweep;
  sweep.checked = n;
  // Fast path: a running double sum is finite iff every element is (a
  // NaN/Inf element propagates, and finite floats cannot overflow the
  // double accumulator). Branchless, so the clean case vectorizes.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += data[i];
  if (std::isfinite(sum)) return sweep;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = data[i];
    if (std::isfinite(v)) continue;
    if (sweep.bad() == 0) sweep.first_bad = i;
    if (std::isnan(v)) {
      ++sweep.nan;
    } else {
      ++sweep.inf;
    }
  }
  return sweep;
}

FiniteSweep SweepFinite(const std::vector<float>& values) {
  return SweepFinite(values.data(), values.size());
}

FiniteSweep SweepFinite(const std::vector<double>& values) {
  FiniteSweep sweep;
  sweep.checked = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (std::isfinite(v)) continue;
    if (sweep.bad() == 0) sweep.first_bad = i;
    if (std::isnan(v)) {
      ++sweep.nan;
    } else {
      ++sweep.inf;
    }
  }
  return sweep;
}

IncidentLog::IncidentLog(std::size_t capacity) : capacity_(capacity) {
  POISONREC_CHECK_GT(capacity_, 0u);
}

void IncidentLog::set_capacity(std::size_t capacity) {
  POISONREC_CHECK_GT(capacity, 0u);
  capacity_ = capacity;
  while (incidents_.size() > capacity_) incidents_.pop_front();
}

void IncidentLog::Record(std::size_t step, const GuardEvent& event) {
  GuardIncident incident{step, event};
  if (!sink_path_.empty()) {
    std::ofstream out(sink_path_, std::ios::app);
    if (out) {
      out << IncidentToJson(incident) << "\n";
    } else if (!sink_warned_) {
      sink_warned_ = true;
      POISONREC_LOG(Warning) << "incident log sink " << sink_path_
                             << " is not writable; keeping incidents "
                                "in memory only";
    }
  }
  incidents_.push_back(std::move(incident));
  ++total_recorded_;
  while (incidents_.size() > capacity_) incidents_.pop_front();
}

void IncidentLog::Clear() {
  incidents_.clear();
  total_recorded_ = 0;
}

std::string IncidentToJson(const GuardIncident& incident) {
  std::string out = "{\"step\":";
  out += std::to_string(incident.step);
  out += ",\"kind\":";
  AppendJsonString(&out, GuardEventKindName(incident.event.kind));
  out += ",\"value\":";
  AppendJsonNumber(&out, incident.event.value);
  out += ",\"threshold\":";
  AppendJsonNumber(&out, incident.event.threshold);
  out += ",\"detail\":";
  AppendJsonString(&out, incident.event.detail);
  out += "}";
  return out;
}

std::string IncidentLog::ToJsonl() const {
  std::string out;
  for (const GuardIncident& incident : incidents_) {
    out += IncidentToJson(incident);
    out += "\n";
  }
  return out;
}

Status IncidentLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToJsonl();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace poisonrec
