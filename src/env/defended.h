// Adaptive-defender simulation: a stateful decorator modeling a
// recommender platform that runs the defense ensemble (src/defense) *in
// production* and permanently bans the accounts it flags.
//
// The paper names detection-aware poisoning as its open future-work
// direction; this is the environment side of that setting. Unlike
// FaultyEnvironment's shadow bans — per-query, identity-less, forgotten
// as soon as the query returns — a DefendedEnvironment remembers every
// click each attacker account ever landed, periodically audits all users
// with a configurable defense::Detector, and *permanently* bans the most
// suspicious fake accounts: their accumulated history is expunged from
// the audit log and every future submission from them is filtered out of
// the poison log before retraining. See docs/robustness.md ("Adaptive
// defender").
//
// Stacking: the decorators compose as
//   DefendedEnvironment  (stateful: history, audits, permanent bans)
//     -> FaultyEnvironment  (stateless per query: transient faults)
//       -> AttackEnvironment (the clean black box)
// by constructing the defended layer with an inner FaultyEnvironment.
// Ban-filtered trajectories are forwarded to the inner layer, which may
// further drop clicks or shadow-ban, so one query can fail transiently
// (retriable) while the permanent ban state stays consistent: history is
// recorded once per query id, on the first successful attempt.
//
// Determinism: all ban decisions are pure functions of (profile.seed,
// sweep query id) *given the accumulated history*, and history accrues in
// query-id order when queries arrive in query-id order. The PPO driver
// serializes reward queries whenever a DefendedEnvironment is attached,
// so two runs with the same seed produce bit-identical ban sequences —
// including across a crash + LoadCheckpoint resume (SerializeState /
// RestoreState round-trip the full defender state).
#ifndef POISONREC_ENV_DEFENDED_H_
#define POISONREC_ENV_DEFENDED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "defense/detector.h"
#include "env/environment.h"
#include "env/fault.h"
#include "util/status.h"

namespace poisonrec::env {

/// How aggressively the simulated platform hunts fake accounts.
struct DefenseProfile {
  /// Queries between detection sweeps. A sweep fires on the first query
  /// whose id reaches the next multiple of this interval and audits all
  /// history accumulated before it.
  std::size_t detection_interval = 64;
  /// Accounts banned per sweep (the top-suspicion candidates). 0 turns
  /// the defender into a pure observer (sweeps run, nobody is banned).
  std::size_t bans_per_sweep = 2;
  /// Only accounts scoring strictly above this suspicion are ban
  /// candidates (the detector's scores are scale-dependent; the default
  /// accepts anything positive).
  double suspicion_threshold = 0.0;
  /// Per-candidate probability that the ops team actually executes the
  /// ban (models an imperfect defender; drawn deterministically from
  /// (seed, sweep query id, account)).
  double ban_probability = 1.0;
  std::uint64_t seed = 4321;
};

/// One permanent ban, reported in the order it was executed.
struct BanEvent {
  /// Query id of the sweep boundary that triggered the ban.
  std::uint64_t query_id = 0;
  /// Which attacker account (environment attacker index) was banned.
  std::size_t attacker_index = 0;
  /// The platform user id of that account.
  data::UserId user_id = 0;
  /// The detector score that condemned it.
  double suspicion = 0.0;
};

/// Counters of the defender's activity (copyable snapshot).
struct DefenseStats {
  std::uint64_t queries = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t bans = 0;
  /// Submissions from already-banned accounts, silently filtered.
  std::uint64_t filtered_trajectories = 0;
  /// Clicks recorded into the persistent attacker history.
  std::uint64_t recorded_clicks = 0;
};

/// The defended recommender platform. Thread-safe, but bit-identical
/// reproduction additionally requires queries to arrive in query-id
/// order (see the file comment); concurrent callers serialize on an
/// internal mutex either way because the defender state is shared.
class DefendedEnvironment {
 public:
  /// Defends the bare black box. `base` must outlive this decorator.
  DefendedEnvironment(const AttackEnvironment* base,
                      std::unique_ptr<defense::Detector> detector,
                      const DefenseProfile& profile);

  /// Stacked form: defends an unreliable black box. Ban-filtered
  /// trajectories are forwarded to `faulty` (whose transient faults and
  /// shadow bans apply on top). Both decorated objects must outlive this.
  DefendedEnvironment(const FaultyEnvironment* faulty,
                      std::unique_ptr<defense::Detector> detector,
                      const DefenseProfile& profile);

  const AttackEnvironment& base() const { return *base_; }
  const DefenseProfile& profile() const { return profile_; }

  /// One query against the defended system: runs any due detection
  /// sweeps, filters banned accounts' trajectories, forwards the rest to
  /// the inner layer, and (on success) records the delivered submissions
  /// into the persistent attacker history. Returns the inner layer's
  /// reward or transient error; a ban never fails the query — banned
  /// submissions just stop landing.
  StatusOr<double> TryEvaluate(const std::vector<Trajectory>& trajectories,
                               std::uint64_t query_id,
                               std::uint32_t attempt = 0);

  /// Whether `attacker_index` has been permanently banned.
  bool IsBanned(std::size_t attacker_index) const;
  /// All banned accounts, ascending.
  std::vector<std::size_t> BannedAccounts() const;
  /// Every ban in execution order.
  std::vector<BanEvent> ban_events() const;

  DefenseStats stats() const;

  /// Full defender state (history, bans, sweep cursor) as a binary blob
  /// for crash-safe checkpoints. Restoring it reproduces the exact ban
  /// sequence of an uninterrupted run.
  std::string SerializeState() const;
  /// Restores a SerializeState blob. The decorator must wrap an
  /// environment with the same number of attacker accounts.
  Status RestoreState(const std::string& blob);

 private:
  void Init();
  /// Runs every sweep due at or before `query_id` (caller holds mu_).
  void RunDueSweeps(std::uint64_t query_id);
  /// One detection sweep at boundary `sweep_query` (caller holds mu_).
  void Sweep(std::uint64_t sweep_query);

  const AttackEnvironment* base_;
  const FaultyEnvironment* faulty_ = nullptr;  // optional inner layer
  std::unique_ptr<defense::Detector> detector_;
  DefenseProfile profile_;

  mutable std::mutex mu_;
  /// Accumulated clicks per attacker account, in landing order.
  std::vector<std::vector<data::ItemId>> history_;
  std::vector<char> banned_;
  std::vector<BanEvent> events_;
  /// Query ids whose submission already landed (dedupes retry attempts).
  std::set<std::uint64_t> recorded_queries_;
  /// Next sweep boundary (a query with id >= this triggers the sweep).
  std::uint64_t next_sweep_ = 0;
  DefenseStats stats_;
};

}  // namespace poisonrec::env

#endif  // POISONREC_ENV_DEFENDED_H_
