// ItemKNN (Sarwar et al., WWW'01): classic item-based collaborative
// filtering, cited by the paper as the historical baseline family
// (§II-A). Items are similar when the same users interact with both;
// similarity is cosine over the user-incidence vectors, and a user's
// score for item j aggregates the similarity between j and the user's
// history. Unlike CoVisitation it uses set co-occurrence (any two items
// of the same user), not adjacency, so click *order* is irrelevant.
#ifndef POISONREC_REC_ITEMKNN_H_
#define POISONREC_REC_ITEMKNN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "rec/recommender.h"

namespace poisonrec::rec {

class ItemKnn : public Recommender {
 public:
  explicit ItemKnn(const FitConfig& config = FitConfig());

  std::string Name() const override { return "ItemKNN"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  /// Raw co-occurrence count (number of users having interacted with
  /// both items); exposed for tests.
  double CoOccurrences(data::ItemId a, data::ItemId b) const;

  /// Pairs per user are capped to bound the quadratic blowup of heavy
  /// users (the cap samples the user's distinct items).
  static constexpr std::size_t kMaxItemsPerUser = 64;

 private:
  void AccumulateUser(data::UserId user,
                      const std::vector<data::ItemId>& seq);

  FitConfig config_;
  // cooccur_[i][j] = #users with both i and j.
  std::vector<std::unordered_map<data::ItemId, double>> cooccur_;
  std::vector<double> item_users_;  // #users per item (cosine norm)
  std::vector<std::vector<data::ItemId>> history_;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_ITEMKNN_H_
