// Sparse CSR matrix + SparseMatMul tests, including the backward pass.
#include "nn/sparse.h"

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/random.h"

namespace poisonrec::nn {
namespace {

TEST(CsrTest, BuildsFromTriplets) {
  CsrMatrix m(2, 3, {{0, 1, 2.0f}, {1, 0, 3.0f}, {1, 2, 4.0f}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_offsets()[0], 0u);
  EXPECT_EQ(m.row_offsets()[1], 1u);
  EXPECT_EQ(m.row_offsets()[2], 3u);
}

TEST(CsrTest, CoalescesDuplicates) {
  CsrMatrix m(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.values()[0], 3.5f);
}

TEST(SparseMatMulTest, MatchesDense) {
  // A = [[0, 2], [3, 0]], x = [[1, 1], [2, 2]] -> Ax = [[4, 4], [3, 3]]
  CsrMatrix a(2, 2, {{0, 1, 2.0f}, {1, 0, 3.0f}});
  Tensor x = Tensor::FromData(2, 2, {1, 1, 2, 2});
  Tensor y = SparseMatMul(a, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 3.0f);
}

TEST(SparseMatMulTest, GradientMatchesNumerical) {
  Rng rng(1);
  CsrMatrix a(3, 3,
              {{0, 1, 1.5f}, {1, 2, -2.0f}, {2, 0, 0.5f}, {2, 2, 1.0f}});
  Tensor x = Tensor::Randn(3, 2, 0.5f, &rng, true);
  Tensor loss = Sum(Square(SparseMatMul(a, x)));
  loss.Backward();
  std::vector<float> numeric = NumericalGradient(
      [&a](const Tensor& t) {
        NoGradGuard guard;
        return Sum(Square(SparseMatMul(a, t))).item();
      },
      x, 1e-2f);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_NEAR(x.grad()[i], numeric[i], 0.02f + 0.05f * std::abs(numeric[i]));
  }
}

TEST(SparseMatMulTest, AgreesWithDenseMatMulRandomized) {
  Rng rng(2);
  const std::size_t n = 6;
  std::vector<CsrMatrix::Triplet> triplets;
  Tensor dense = Tensor::Zeros(n, n);
  for (int e = 0; e < 12; ++e) {
    const std::size_t r = rng.Index(n);
    const std::size_t c = rng.Index(n);
    const float v = static_cast<float>(rng.Normal());
    triplets.push_back({r, c, v});
    dense.set(r, c, dense.at(r, c) + v);
  }
  CsrMatrix sparse(n, n, triplets);
  Tensor x = Tensor::Randn(n, 3, 1.0f, &rng);
  Tensor ys = SparseMatMul(sparse, x);
  Tensor yd = MatMul(dense, x);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_NEAR(ys.data()[i], yd.data()[i], 1e-4f);
  }
}

}  // namespace
}  // namespace poisonrec::nn
