#!/usr/bin/env python3
"""Validate the three telemetry artifacts a campaign run emits.

Usage:
  tools/validate_telemetry.py --metrics m.json --trace t.json --events e.jsonl \
      [--require-event-types step,guard,ban] [--require-spans ppo/sample,...] \
      [--fleet-report results/fleet_report.json] \
      [--fleet-journal results/fleet_journal.jsonl] \
      [--fleet-status results/fleet_status.json]

Checks (any failure exits 1 with a message naming the file and reason):
  * metrics JSON: top-level {"counters","gauges","histograms"}; counters are
    non-negative integers; histograms carry count/sum/min/max and bucket
    entries with ge < lt; the required PPO series are present.
  * trace JSON: Chrome trace_event format — {"traceEvents":[...]}, every
    event a complete ("ph":"X") event with name/ts/dur/pid/tid; required
    span names present.
  * events JSONL: every line parses as a JSON object with a "type" key;
    required event types present; "step" events carry the stats schema.
  * fleet report JSON: {"type":"fleet_report"} with a summary whose state
    counts match the campaigns array, valid per-campaign states, ordered
    step_rewards, an exit_code consistent with the counts, shared-fleet
    counters (preemptions/fenced/sibling) that aggregate the per-campaign
    fields, and a journal hygiene object with zero interior corruption.
  * fleet journal JSONL: every complete line across the journal family
    (the base file plus per-worker `stem.<worker>.jsonl` siblings) is a
    campaign record with a valid state and well-formed lease token/owner
    fields (a torn final line per file — crash frontier — is tolerated).
  * fleet status JSON: {"type":"fleet_status"} whose summary rollups match
    the workers/campaigns arrays, whose hygiene counters are non-negative
    ints, and whose degraded/exit_code fields agree with degraded_reasons;
    when --fleet-journal is also given, every campaign the journal names
    must appear in the status.

Used by tools/ci_check.sh after the instrumented campaign smoke run; also
handy interactively after any --metrics-out/--trace-out/--events-out run.
"""

import argparse
import collections
import json
import os
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


# Metric series the PPO loop always exports (docs/observability.md).
REQUIRED_COUNTERS = [
    "poisonrec_ppo_steps_total",
    "poisonrec_ppo_retries_total",
    "poisonrec_ppo_failed_queries_total",
]
REQUIRED_GAUGES = [
    "poisonrec_ppo_reward_mean",
    "poisonrec_ppo_reward_best",
    "poisonrec_ppo_entropy",
    "poisonrec_ppo_grad_norm",
    "poisonrec_defense_banned_accounts",
]
REQUIRED_HISTOGRAMS = [
    "poisonrec_ppo_reward",
    "poisonrec_ppo_entropy",
    "poisonrec_ppo_grad_norm",
    "poisonrec_ppo_step_seconds",
]

# Keys every {"type":"step"} event record carries (core/ppo.cc).
STEP_EVENT_KEYS = [
    "step", "reward_mean", "reward_max", "reward_best", "loss", "entropy",
    "approx_kl", "grad_norm", "seconds", "sample_seconds", "query_seconds",
    "update_seconds", "other_seconds", "retries", "failed_queries",
]


def check_metrics(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing object section {section!r}")
            return
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a non-negative int: {value!r}")
    for name in REQUIRED_COUNTERS:
        if name not in doc["counters"]:
            fail(f"{path}: required counter {name!r} missing")
    for name in REQUIRED_GAUGES:
        if name not in doc["gauges"]:
            fail(f"{path}: required gauge {name!r} missing")
    for name in REQUIRED_HISTOGRAMS:
        if name not in doc["histograms"]:
            fail(f"{path}: required histogram {name!r} missing")
    for name, hist in doc["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in hist:
                fail(f"{path}: histogram {name!r} missing {key!r}")
                break
        else:
            total = 0
            for bucket in hist["buckets"]:
                ge, lt = bucket.get("ge"), bucket.get("lt")
                if not (isinstance(ge, (int, float)) and
                        (lt == "inf" or isinstance(lt, (int, float)))):
                    fail(f"{path}: histogram {name!r} has malformed bucket "
                         f"{bucket!r}")
                elif lt != "inf" and not ge < lt:
                    fail(f"{path}: histogram {name!r} bucket bounds not "
                         f"ordered: {bucket!r}")
                total += bucket.get("count", 0)
            if total != hist["count"]:
                fail(f"{path}: histogram {name!r} bucket counts sum to "
                     f"{total}, expected count={hist['count']}")
    print(f"{path}: {len(doc['counters'])} counters, {len(doc['gauges'])} "
          f"gauges, {len(doc['histograms'])} histograms")


def check_trace(path, require_spans):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing traceEvents array")
        return
    names = collections.Counter()
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event #{i} missing {key!r}: {e!r}")
                return
        if e["ph"] != "X":
            fail(f"{path}: event #{i} is not a complete event: ph={e['ph']!r}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: event #{i} has negative ts/dur: {e!r}")
        names[e["name"]] += 1
    for span in require_spans:
        if names[span] == 0:
            fail(f"{path}: required span {span!r} absent "
                 f"(have: {sorted(names)})")
    print(f"{path}: {len(events)} spans across "
          f"{len(set(e['tid'] for e in events))} thread(s): "
          f"{dict(sorted(names.items()))}")


def check_events(path, require_types):
    types = collections.Counter()
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: not readable: {e}")
        return
    if not lines:
        fail(f"{path}: empty event stream")
        return
    for lineno, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: unparseable line: {e}")
            continue
        if not isinstance(record, dict) or "type" not in record:
            fail(f"{path}:{lineno}: record has no 'type' key")
            continue
        types[record["type"]] += 1
        if record["type"] == "step":
            missing = [k for k in STEP_EVENT_KEYS if k not in record]
            if missing:
                fail(f"{path}:{lineno}: step event missing keys {missing}")
    for t in require_types:
        if types[t] == 0:
            fail(f"{path}: required event type {t!r} absent "
                 f"(have: {dict(sorted(types.items()))})")
    print(f"{path}: {len(lines)} events: {dict(sorted(types.items()))}")


# States the fleet journal / report may record (orch/journal.h).
FLEET_STATES = {
    "pending", "running", "checkpointed", "done", "quarantined", "failed",
    "preempted",
}
FLEET_TERMINAL_STATES = {"done", "quarantined", "failed"}
FLEET_CAMPAIGN_KEYS = [
    "id", "state", "steps_completed", "restarts", "rollbacks", "best_reward",
    "wall_seconds", "interrupted", "recovered", "step_rewards",
    "preemptions", "fenced", "sibling", "token",
]
FLEET_JOURNAL_COUNTER_KEYS = [
    "files_merged", "malformed_lines", "torn_tail_lines", "stale_records",
    "corrupt_lines", "skipped_records", "checkpoints_quarantined",
]


def check_fleet_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    if doc.get("type") != "fleet_report":
        fail(f"{path}: type is {doc.get('type')!r}, expected 'fleet_report'")
        return
    summary = doc.get("summary")
    campaigns = doc.get("campaigns")
    if not isinstance(summary, dict) or not isinstance(campaigns, list):
        fail(f"{path}: missing summary object / campaigns array")
        return
    counts = collections.Counter()
    for i, c in enumerate(campaigns):
        missing = [k for k in FLEET_CAMPAIGN_KEYS if k not in c]
        if missing:
            fail(f"{path}: campaign #{i} missing keys {missing}")
            continue
        if c["state"] not in FLEET_STATES:
            fail(f"{path}: campaign {c['id']!r} has unknown state "
                 f"{c['state']!r}")
        counts[c["state"]] += 1
        if c["interrupted"]:
            counts["interrupted"] += 1
        if c["recovered"]:
            counts["recovered"] += 1
        if not isinstance(c["token"], int) or c["token"] < 0:
            fail(f"{path}: campaign {c['id']!r} has a non-integer lease "
                 f"token: {c['token']!r}")
        if not isinstance(c["preemptions"], int) or c["preemptions"] < 0:
            fail(f"{path}: campaign {c['id']!r} preemptions is not a "
                 f"non-negative int: {c['preemptions']!r}")
        counts["preemption_total"] += c["preemptions"] \
            if isinstance(c["preemptions"], int) else 0
        if c["fenced"]:
            counts["fenced"] += 1
        if c["sibling"]:
            counts["sibling"] += 1
        rewards = c["step_rewards"]
        steps = [entry[0] for entry in rewards]
        if any(len(entry) != 2 for entry in rewards):
            fail(f"{path}: campaign {c['id']!r} has a malformed "
                 f"step_rewards entry (want [step, reward] pairs)")
        elif steps != sorted(steps) or len(set(steps)) != len(steps):
            fail(f"{path}: campaign {c['id']!r} step_rewards not strictly "
                 f"increasing in step: {steps}")
        if len(rewards) != c["steps_completed"]:
            fail(f"{path}: campaign {c['id']!r} has {len(rewards)} "
                 f"step_rewards but steps_completed={c['steps_completed']}")
    if summary.get("campaigns") != len(campaigns):
        fail(f"{path}: summary.campaigns={summary.get('campaigns')!r} but "
             f"campaigns array has {len(campaigns)} entries")
    # The summary counts interrupted campaigns separately from their
    # journal state: a checkpointed/interrupted campaign contributes to
    # `interrupted`, never to done/quarantined/failed.
    for key in ("done", "quarantined", "failed"):
        expected = sum(1 for c in campaigns
                       if c.get("state") == key and not c.get("interrupted"))
        if summary.get(key) != expected:
            fail(f"{path}: summary.{key}={summary.get(key)!r}, expected "
                 f"{expected} from the campaigns array")
    expected_interrupted = sum(
        1 for c in campaigns
        if c.get("interrupted") or c.get("state") in
        ("pending", "running", "checkpointed", "preempted"))
    if summary.get("interrupted") != expected_interrupted:
        fail(f"{path}: summary.interrupted={summary.get('interrupted')!r}, "
             f"expected {expected_interrupted}")
    if summary.get("recovered") != counts["recovered"]:
        fail(f"{path}: summary.recovered={summary.get('recovered')!r}, "
             f"expected {counts['recovered']}")
    # Shared-fleet counters: the summary totals must match the per-campaign
    # fields they aggregate (orch/fleet.cc folds them the same way).
    for key, expected in (("preemptions", counts["preemption_total"]),
                          ("fenced", counts["fenced"]),
                          ("sibling", counts["sibling"])):
        if summary.get(key) != expected:
            fail(f"{path}: summary.{key}={summary.get(key)!r}, expected "
                 f"{expected} from the campaigns array")
    journal = doc.get("journal")
    if not isinstance(journal, dict):
        fail(f"{path}: missing journal hygiene object")
    else:
        for key in FLEET_JOURNAL_COUNTER_KEYS:
            value = journal.get(key)
            if not isinstance(value, int) or value < 0:
                fail(f"{path}: journal.{key} is not a non-negative int: "
                     f"{value!r}")
        if isinstance(journal.get("malformed_lines"), int) \
                and journal["malformed_lines"] > 0:
            fail(f"{path}: journal.malformed_lines="
                 f"{journal['malformed_lines']} — interior journal "
                 f"corruption (a torn tail would be torn_tail_lines)")
        if isinstance(journal.get("corrupt_lines"), int) \
                and journal["corrupt_lines"] > 0:
            fail(f"{path}: journal.corrupt_lines="
                 f"{journal['corrupt_lines']} — interior line-checksum "
                 f"mismatch (bit rot in an append-only journal)")
        malformed = journal.get("malformed_lines")
        corrupt = journal.get("corrupt_lines")
        skipped = journal.get("skipped_records")
        if all(isinstance(v, int) for v in (malformed, corrupt, skipped)) \
                and skipped != malformed + corrupt:
            fail(f"{path}: journal.skipped_records={skipped!r}, expected "
                 f"malformed_lines+corrupt_lines={malformed + corrupt}")
    exit_code = summary.get("exit_code")
    partial = (summary.get("quarantined", 0) + summary.get("failed", 0) +
               summary.get("interrupted", 0))
    expected_exit = 2 if partial > 0 else 0
    if exit_code != expected_exit:
        fail(f"{path}: summary.exit_code={exit_code!r}, expected "
             f"{expected_exit} (quarantined+failed+interrupted={partial})")
    print(f"{path}: {len(campaigns)} campaigns "
          f"({dict(sorted(counts.items()))}), exit_code={exit_code}")


def list_journal_files(base):
    """The journal family for a base path: the base file itself plus the
    per-worker sibling files shared fleets append (`stem.<worker>.ext`,
    e.g. journal.w812-3f.jsonl). Mirrors FleetJournal::ListJournalFiles."""
    directory = os.path.dirname(base) or "."
    name = os.path.basename(base)
    stem, ext = os.path.splitext(name)
    files = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return [base]
    for entry in entries:
        if entry == name or (entry.startswith(stem + ".") and
                             entry.endswith(ext) and
                             len(entry) > len(stem) + len(ext) + 1):
            files.append(os.path.join(directory, entry))
    return sorted(files) or [base]


def check_fleet_journal(path):
    """Validates the journal family; returns the set of campaign ids it
    names (for the --fleet-status cross-check)."""
    files = list_journal_files(path)
    states = collections.Counter()
    campaign_ids = set()
    total_lines = 0
    for journal_path in files:
        try:
            with open(journal_path) as f:
                lines = f.read().splitlines()
        except OSError as e:
            fail(f"{journal_path}: not readable: {e}")
            continue
        total_lines += len(lines)
        for lineno, line in enumerate(lines, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                # A torn final line is the expected crash frontier (one per
                # file — a killed worker tears at most its own tail);
                # anything earlier means append-only discipline was
                # violated.
                if lineno == len(lines):
                    print(f"{journal_path}:{lineno}: torn trailing record "
                          f"(tolerated)")
                    continue
                fail(f"{journal_path}:{lineno}: unparseable non-final "
                     f"line: {e}")
                continue
            if not isinstance(record, dict) \
                    or record.get("type") != "campaign" \
                    or "id" not in record or "state" not in record:
                fail(f"{journal_path}:{lineno}: record lacks type/id/state "
                     f"keys")
                continue
            if record["state"] not in FLEET_STATES:
                fail(f"{journal_path}:{lineno}: unknown state "
                     f"{record['state']!r}")
            token = record.get("token")
            if token is not None and (not isinstance(token, int)
                                      or token < 0):
                fail(f"{journal_path}:{lineno}: lease token is not a "
                     f"non-negative int: {token!r}")
            owner = record.get("owner")
            if owner is not None and (not isinstance(owner, str)
                                      or not owner):
                fail(f"{journal_path}:{lineno}: owner is not a non-empty "
                     f"string: {owner!r}")
            states[record["state"]] += 1
            if isinstance(record.get("id"), str):
                campaign_ids.add(record["id"])
    if total_lines == 0:
        fail(f"{path}: empty journal family ({len(files)} file(s))")
        return campaign_ids
    print(f"{path}: {total_lines} records across {len(files)} file(s): "
          f"{dict(sorted(states.items()))}")
    return campaign_ids


# Health classes a fleet status worker row may carry (orch/status.h).
STATUS_WORKER_HEALTH = {"live", "stale", "exited"}
STATUS_WORKER_KEYS = [
    "worker", "health", "pid", "host", "seq", "wall_unix", "uptime_seconds",
    "age_seconds", "publish_period_seconds", "shared", "shutdown", "snapshot",
]
STATUS_CAMPAIGN_KEYS = [
    "id", "state", "owner", "token", "step", "total", "last_reward",
    "best_reward", "restarts", "preemptions", "step_rate", "eta_seconds",
    "running", "lease_held", "lease_expired", "stalled",
]
STATUS_HYGIENE_KEYS = [
    "snapshots_ok", "snapshots_torn", "snapshots_corrupt",
    "snapshots_invalid", "leases_ok", "leases_damaged",
    "journal_files_merged", "journal_malformed_lines",
    "journal_torn_tail_lines", "journal_corrupt_lines",
    "journal_stale_records",
]
STATUS_SUMMARY_KEYS = [
    "workers", "workers_live", "workers_stale", "workers_exited",
    "campaigns", "campaigns_by_state", "aggregate_step_rate",
]


def check_fleet_status(path, journal_campaign_ids=None):
    """Validates a `poisonrec fleet --status --status-json` export; when
    the journal family was also validated, cross-checks that the status
    names every campaign the journal knows about."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
        return
    if doc.get("type") != "fleet_status":
        fail(f"{path}: type is {doc.get('type')!r}, expected 'fleet_status'")
        return
    summary = doc.get("summary")
    hygiene = doc.get("hygiene")
    workers = doc.get("workers")
    campaigns = doc.get("campaigns")
    reasons = doc.get("degraded_reasons")
    if not isinstance(summary, dict) or not isinstance(hygiene, dict) \
            or not isinstance(workers, list) \
            or not isinstance(campaigns, list) \
            or not isinstance(reasons, list):
        fail(f"{path}: missing summary/hygiene objects or "
             f"workers/campaigns/degraded_reasons arrays")
        return
    for key in STATUS_SUMMARY_KEYS:
        if key not in summary:
            fail(f"{path}: summary missing {key!r}")
    for key in STATUS_HYGIENE_KEYS:
        value = hygiene.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: hygiene.{key} is not a non-negative int: "
                 f"{value!r}")

    health = collections.Counter()
    for i, w in enumerate(workers):
        missing = [k for k in STATUS_WORKER_KEYS if k not in w]
        if missing:
            fail(f"{path}: worker #{i} missing keys {missing}")
            continue
        if w["health"] not in STATUS_WORKER_HEALTH:
            fail(f"{path}: worker {w['worker']!r} has unknown health "
                 f"{w['health']!r}")
            continue
        health[w["health"]] += 1
        if w["health"] != "exited" and w["shutdown"]:
            fail(f"{path}: worker {w['worker']!r} says shutdown but is "
                 f"classified {w['health']!r}")
    for key, cls in (("workers_live", "live"), ("workers_stale", "stale"),
                     ("workers_exited", "exited")):
        if summary.get(key) != health[cls]:
            fail(f"{path}: summary.{key}={summary.get(key)!r}, expected "
                 f"{health[cls]} from the workers array")
    if summary.get("workers") != len(workers):
        fail(f"{path}: summary.workers={summary.get('workers')!r} but "
             f"workers array has {len(workers)} entries")

    by_state = collections.Counter()
    status_ids = set()
    for i, c in enumerate(campaigns):
        missing = [k for k in STATUS_CAMPAIGN_KEYS if k not in c]
        if missing:
            fail(f"{path}: campaign #{i} missing keys {missing}")
            continue
        if c["state"] not in FLEET_STATES:
            fail(f"{path}: campaign {c['id']!r} has unknown state "
                 f"{c['state']!r}")
            continue
        by_state[c["state"]] += 1
        status_ids.add(c["id"])
        if c["running"] and not c["owner"]:
            fail(f"{path}: campaign {c['id']!r} is running but has no owner")
        if c["lease_expired"] and not c["lease_held"]:
            fail(f"{path}: campaign {c['id']!r} lease_expired without "
                 f"lease_held")
        if isinstance(c.get("total"), int) and isinstance(c.get("step"), int) \
                and 0 < c["total"] < c["step"]:
            fail(f"{path}: campaign {c['id']!r} step={c['step']} exceeds "
                 f"total={c['total']}")
    if summary.get("campaigns") != len(campaigns):
        fail(f"{path}: summary.campaigns={summary.get('campaigns')!r} but "
             f"campaigns array has {len(campaigns)} entries")
    if isinstance(summary.get("campaigns_by_state"), dict) \
            and summary["campaigns_by_state"] != dict(by_state):
        fail(f"{path}: summary.campaigns_by_state="
             f"{summary['campaigns_by_state']!r}, expected "
             f"{dict(by_state)} from the campaigns array")

    degraded = doc.get("degraded")
    exit_code = doc.get("exit_code")
    if degraded != bool(reasons):
        fail(f"{path}: degraded={degraded!r} but degraded_reasons has "
             f"{len(reasons)} entries")
    if exit_code != (2 if reasons else 0):
        fail(f"{path}: exit_code={exit_code!r} inconsistent with "
             f"{len(reasons)} degraded reason(s)")

    if journal_campaign_ids is not None:
        missing = sorted(journal_campaign_ids - status_ids)
        if missing:
            fail(f"{path}: journal names campaigns absent from the status: "
                 f"{missing}")
    print(f"{path}: {len(workers)} worker(s) ({dict(sorted(health.items()))}),"
          f" {len(campaigns)} campaign(s) ({dict(sorted(by_state.items()))}),"
          f" exit_code={exit_code}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics snapshot JSON (m.json)")
    parser.add_argument("--trace", help="Chrome trace JSON (t.json)")
    parser.add_argument("--events", help="structured event JSONL (e.jsonl)")
    parser.add_argument("--require-event-types", default="step",
                        help="comma-separated event types that must appear")
    parser.add_argument("--require-spans",
                        default="ppo/step,ppo/sample,ppo/query,ppo/update",
                        help="comma-separated span names that must appear")
    parser.add_argument("--fleet-report",
                        help="fleet orchestrator report JSON")
    parser.add_argument("--fleet-journal",
                        help="fleet orchestrator journal JSONL")
    parser.add_argument("--fleet-status",
                        help="fleet --status --status-json export")
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.events or args.fleet_report
            or args.fleet_journal or args.fleet_status):
        parser.error("nothing to validate: pass --metrics/--trace/--events/"
                     "--fleet-report/--fleet-journal/--fleet-status")

    if args.metrics:
        check_metrics(args.metrics)
    if args.trace:
        spans = [s for s in args.require_spans.split(",") if s]
        check_trace(args.trace, spans)
    if args.events:
        types = [t for t in args.require_event_types.split(",") if t]
        check_events(args.events, types)
    if args.fleet_report:
        check_fleet_report(args.fleet_report)
    journal_ids = None
    if args.fleet_journal:
        journal_ids = check_fleet_journal(args.fleet_journal)
    if args.fleet_status:
        check_fleet_status(args.fleet_status, journal_ids)

    if FAILURES:
        print(f"validate_telemetry: {len(FAILURES)} failure(s)",
              file=sys.stderr)
        return 1
    print("validate_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
