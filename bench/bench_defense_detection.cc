// Extension experiment (the paper's future-work direction): how
// detectable is each attack? For every attack method, inject its fleet
// into the log and measure the ROC-AUC of unsupervised detectors at
// separating attacker accounts from organic users. Expected shape:
// target-heavy repetitive strategies (what PoisonRec learns against
// popularity rankers) are highly detectable by entropy/cold-affinity;
// Random/Middle attacks blend in better; the ensemble dominates any
// single detector.
#include <cstdio>
#include <memory>

#include "attack/appgrad.h"
#include "attack/conslop.h"
#include "attack/heuristics.h"
#include "attack/poisonrec_attack.h"
#include "bench/common.h"
#include "defense/detector.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Defense extension: detection AUC per attack method (Steam, "
      "ItemPop, scale=%.3g) ==\n\n",
      config.scale);

  auto environment =
      MakeEnvironment(config, data::DatasetPreset::kSteam, "ItemPop");

  std::vector<std::unique_ptr<attack::AttackMethod>> methods;
  methods.push_back(std::make_unique<attack::RandomAttack>());
  methods.push_back(std::make_unique<attack::PopularAttack>());
  methods.push_back(std::make_unique<attack::MiddleAttack>());
  methods.push_back(std::make_unique<attack::PowerItemAttack>());
  methods.push_back(std::make_unique<attack::ConsLopAttack>());
  attack::AppGradConfig appgrad;
  appgrad.iterations = config.training_steps;
  methods.push_back(std::make_unique<attack::AppGradAttack>(appgrad));
  methods.push_back(std::make_unique<attack::PoisonRecAttack>(
      MakePoisonRecConfig(config, core::ActionSpaceKind::kBcbtPopular,
                          config.seed ^ 0xdef3u),
      config.training_steps));

  std::vector<std::unique_ptr<defense::Detector>> detectors;
  detectors.push_back(std::make_unique<defense::ColdItemAffinityDetector>());
  detectors.push_back(std::make_unique<defense::ClickEntropyDetector>());
  detectors.push_back(std::make_unique<defense::FleetSimilarityDetector>());
  detectors.push_back(defense::MakeDefaultEnsemble());

  std::vector<std::string> header = {"Method"};
  for (const auto& d : detectors) header.push_back(d->Name());
  header.push_back("RecNum");
  header.push_back("Mitigated");
  PrintTableHeader(header);

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"method", "detector", "auc", "recnum", "mitigated"});
  for (const auto& method : methods) {
    const auto trajectories =
        method->GenerateAttack(*environment, config.seed ^ 0x71bu);
    const double rec_num = environment->Evaluate(trajectories);

    // The log the platform sees after injection.
    data::Dataset poisoned = environment->dataset().Clone();
    std::vector<data::UserId> fakes;
    for (const auto& t : trajectories) {
      const data::UserId u = environment->AttackerUserId(t.attacker_index);
      poisoned.AddSequence(u, t.items);
      fakes.push_back(u);
    }

    // Mitigation: drop the 10% most suspicious accounts (ensemble) and
    // retrain; how much of the attack survives?
    data::Dataset cleaned = defense::RemoveSuspiciousUsers(
        poisoned, detectors.back()->Score(poisoned), 0.1);
    rec::FitConfig fit;
    fit.embedding_dim = config.embedding_dim;
    auto retrained = rec::MakeRecommender("ItemPop", fit).value();
    retrained->Fit(cleaned);
    const double mitigated = environment->RecNum(*retrained);

    std::vector<std::string> row = {method->Name()};
    for (const auto& detector : detectors) {
      const double auc =
          defense::DetectionAuc(detector->Score(poisoned), fakes);
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%.3f", auc);
      row.push_back(buffer);
      csv.push_back({method->Name(), detector->Name(), buffer,
                     FormatCount(rec_num), FormatCount(mitigated)});
    }
    row.push_back(FormatCount(rec_num));
    row.push_back(FormatCount(mitigated));
    PrintTableRow(row);
  }
  WriteCsvOutput(config, "defense_detection.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
