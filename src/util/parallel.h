// Minimal data parallelism: a blocking parallel-for over an index range.
// Used to evaluate the M independent reward queries of a PoisonRec
// training step concurrently (each query clones and updates its own
// ranker, so iterations share no mutable state).
#ifndef POISONREC_UTIL_PARALLEL_H_
#define POISONREC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace poisonrec {

/// Runs fn(0) .. fn(count-1), splitting indices across up to
/// `num_threads` workers (0 = hardware concurrency). Blocks until every
/// call returns. Falls back to the calling thread when count <= 1 or one
/// thread is requested. fn must be safe to invoke concurrently for
/// distinct indices.
///
/// If fn throws, remaining indices are abandoned and the first exception
/// is rethrown on the calling thread after all workers have joined.
void ParallelFor(std::size_t count, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn);

}  // namespace poisonrec

#endif  // POISONREC_UTIL_PARALLEL_H_
