// Using the attack framework defensively: a robustness audit. Given one
// interaction log, train the same fixed-budget PoisonRec attacker against
// every ranker and rank the algorithms by how much target exposure the
// attacker can buy — the number a platform owner needs when choosing a
// model. (The paper's Table III read column-wise.)
//
// Build: cmake --build build && ./build/examples/robustness_audit
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/poisonrec.h"

using namespace poisonrec;

int main() {
  data::SyntheticConfig data_config =
      data::PresetConfig(data::DatasetPreset::kPhone, /*scale=*/0.05, 31);
  data::Dataset log = data::GenerateSynthetic(data_config);
  std::printf(
      "robustness audit on synthetic Phone (%zu users, %zu items, %zu "
      "events)\n",
      log.num_users(), log.num_items(), log.num_interactions());
  std::printf("attacker budget: 12 accounts x 12 clicks, 8 target items\n\n");

  struct Row {
    std::string ranker;
    double baseline;
    double poisoned;
  };
  std::vector<Row> rows;
  for (const std::string& name : rec::AllRecommenderNames()) {
    rec::FitConfig fit;
    fit.embedding_dim = 16;
    env::EnvironmentConfig env_config;
    env_config.num_attackers = 12;
    env_config.trajectory_length = 12;
    env_config.num_target_items = 8;
    env_config.num_candidate_originals = 60;
    env_config.max_eval_users = 150;
    env_config.seed = 4;
    env::AttackEnvironment system(
        log, rec::MakeRecommender(name, fit).value(), env_config);

    core::PoisonRecConfig config;
    config.samples_per_step = 6;
    config.batch_size = 6;
    config.policy.embedding_dim = 16;
    core::PoisonRecAttacker attacker(&system, config);
    attacker.Train(8);
    rows.push_back({name, system.BaselineRecNum(),
                    system.Evaluate(attacker.BestAttack())});
    std::printf("audited %s...\n", name.c_str());
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return (a.poisoned - a.baseline) < (b.poisoned - b.baseline);
  });
  std::printf("\n%-14s %10s %10s %10s   (most robust first)\n", "Ranker",
              "baseline", "poisoned", "damage");
  std::printf("---------------------------------------------------\n");
  for (const Row& row : rows) {
    std::printf("%-14s %10.0f %10.0f %10.0f\n", row.ranker.c_str(),
                row.baseline, row.poisoned, row.poisoned - row.baseline);
  }
  return 0;
}
