// Cross-module integration tests: full pipelines from data generation
// through attack training, evaluation, persistence, and detection.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "attack/poisonrec_attack.h"
#include "core/poisonrec.h"
#include "defense/detector.h"
#include "nn/serialize.h"
#include "rec/metrics.h"

namespace poisonrec {
namespace {

data::Dataset SmallLog(std::uint64_t seed = 33) {
  data::SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 80;
  cfg.num_interactions = 1100;
  cfg.seed = seed;
  return data::GenerateSynthetic(cfg);
}

env::EnvironmentConfig SmallEnvConfig() {
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 8;
  cfg.trajectory_length = 8;
  cfg.num_target_items = 4;
  cfg.num_candidate_originals = 25;
  cfg.top_k = 5;
  cfg.seed = 44;
  return cfg;
}

rec::FitConfig FastFit() {
  rec::FitConfig fit;
  fit.embedding_dim = 8;
  fit.epochs = 2;
  fit.update_epochs = 2;
  return fit;
}

// Generate -> save CSV -> load CSV -> identical attack surface.
TEST(IntegrationTest, CsvRoundTripPreservesAttackResults) {
  data::Dataset original = SmallLog();
  const std::string path =
      (std::filesystem::temp_directory_path() / "poisonrec_integ.csv")
          .string();
  ASSERT_TRUE(data::SaveDatasetCsv(original, path).ok());
  auto loaded = data::LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());

  env::AttackEnvironment env_a(
      original, rec::MakeRecommender("ItemPop").value(), SmallEnvConfig());
  env::AttackEnvironment env_b(
      *loaded, rec::MakeRecommender("ItemPop").value(), SmallEnvConfig());
  std::vector<env::Trajectory> attack;
  for (std::size_t n = 0; n < 8; ++n) {
    attack.push_back({n, {80, 81, 80, 81, 82, 83, 80, 81}});
  }
  EXPECT_DOUBLE_EQ(env_a.Evaluate(attack), env_b.Evaluate(attack));
  std::remove(path.c_str());
}

// Full training loop against every ranker: finite stats, valid attacks,
// non-negative rewards.
TEST(IntegrationTest, TrainsAgainstEveryRanker) {
  for (const std::string& name : rec::AllRecommenderNames()) {
    env::AttackEnvironment system(SmallLog(),
                                  rec::MakeRecommender(name, FastFit()).value(),
                                  SmallEnvConfig());
    core::PoisonRecConfig config;
    config.samples_per_step = 4;
    config.batch_size = 4;
    config.update_epochs = 2;
    config.policy.embedding_dim = 8;
    core::PoisonRecAttacker attacker(&system, config);
    auto stats = attacker.Train(2);
    EXPECT_TRUE(std::isfinite(stats.back().loss)) << name;
    EXPECT_GE(stats.back().best_reward_so_far, 0.0) << name;
    auto attack = attacker.BestAttack();
    EXPECT_EQ(attack.size(), 8u) << name;
    EXPECT_GE(system.Evaluate(attack), 0.0) << name;
  }
}

// Attack -> persistence -> restore: the restored policy reproduces the
// trained policy's behavior exactly.
TEST(IntegrationTest, PolicyCheckpointAfterTraining) {
  env::AttackEnvironment system(SmallLog(),
                                rec::MakeRecommender("ItemPop").value(),
                                SmallEnvConfig());
  core::PoisonRecConfig config;
  config.samples_per_step = 4;
  config.batch_size = 4;
  config.policy.embedding_dim = 8;
  core::PoisonRecAttacker trained(&system, config);
  trained.Train(3);

  const std::string path =
      (std::filesystem::temp_directory_path() / "poisonrec_integ_ckpt.bin")
          .string();
  ASSERT_TRUE(
      nn::SaveParameters(trained.policy().Parameters(), path).ok());

  core::PoisonRecAttacker restored(&system, config);
  ASSERT_TRUE(
      nn::LoadParameters(path, restored.policy().Parameters()).ok());

  Rng rng_a(5);
  Rng rng_b(5);
  auto ep_a = trained.policy().SampleEpisode(8, &rng_a);
  auto ep_b = restored.policy().SampleEpisode(8, &rng_b);
  for (std::size_t n = 0; n < ep_a.size(); ++n) {
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(ep_a[n].steps[t].item, ep_b[n].steps[t].item);
    }
  }
  std::remove(path.c_str());
}

// Attack -> detection: an item-promotion fleet must click the cold
// targets to earn any reward, so the cold-affinity detector separates it
// from organic users regardless of how diverse the rest of the
// trajectory is. (Entropy/fleet-similarity detectors can even invert on
// a semi-trained policy — its near-uniform exploration looks *less*
// repetitive than organic sessions — which is why the defense bench
// reports per-detector AUCs.)
TEST(IntegrationTest, LearnedAttackIsDetectableAboveChance) {
  env::AttackEnvironment system(SmallLog(),
                                rec::MakeRecommender("ItemPop").value(),
                                SmallEnvConfig());
  core::PoisonRecConfig config;
  config.samples_per_step = 6;
  config.batch_size = 6;
  config.policy.embedding_dim = 8;
  core::PoisonRecAttacker attacker(&system, config);
  attacker.Train(15);

  data::Dataset poisoned = system.dataset().Clone();
  std::vector<data::UserId> fakes;
  for (const auto& t : attacker.BestAttack()) {
    const data::UserId u = system.AttackerUserId(t.attacker_index);
    poisoned.AddSequence(u, t.items);
    fakes.push_back(u);
  }
  defense::ColdItemAffinityDetector cold_affinity;
  EXPECT_GT(defense::DetectionAuc(cold_affinity.Score(poisoned), fakes),
            0.7);
}

// The whole pipeline is bit-for-bit deterministic across process-local
// reruns with the same seeds.
TEST(IntegrationTest, PipelineIsDeterministic) {
  auto run_once = []() {
    env::AttackEnvironment system(SmallLog(),
                                  rec::MakeRecommender("CoVisitation").value(),
                                  SmallEnvConfig());
    core::PoisonRecConfig config;
    config.samples_per_step = 4;
    config.batch_size = 4;
    config.policy.embedding_dim = 8;
    core::PoisonRecAttacker attacker(&system, config);
    attacker.Train(3);
    return attacker.best_episode().reward;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// Quality metrics compose with the attack pipeline: poisoning must not
// destroy the ranker's held-out accuracy (stealthiness of the promotion
// attack at this budget).
TEST(IntegrationTest, PoisoningPreservesRankingQuality) {
  data::Dataset full = SmallLog();
  data::LeaveOneOutSplit split = data::SplitLeaveOneOut(full);
  rec::FitConfig fit = FastFit();
  fit.epochs = 8;
  auto ranker = rec::MakeRecommender("BPR", fit).value();

  // Expand capacities for fake users/targets like the environment does.
  data::Dataset train(full.num_users() + 8, full.num_items() + 4);
  for (data::UserId u = 0; u < full.num_users(); ++u) {
    train.AddSequence(u, split.train.Sequence(u));
  }
  ranker->Fit(train);
  rec::EvalProtocol protocol;
  const double before =
      rec::EvaluateRanking(*ranker, full, split.test, protocol).hit_rate;

  data::Dataset poison(train.num_users(), train.num_items());
  Rng rng(3);
  for (data::UserId u = full.num_users(); u < train.num_users(); ++u) {
    for (int c = 0; c < 8; ++c) {
      poison.Add(u, c % 2 == 0 ? full.num_items() : rng.Index(20));
    }
  }
  ranker->Update(poison);
  const double after =
      rec::EvaluateRanking(*ranker, full, split.test, protocol).hit_rate;
  // The attack perturbs but must not collapse accuracy.
  EXPECT_GT(after, 0.5 * before);
}

}  // namespace
}  // namespace poisonrec
