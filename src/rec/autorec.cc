#include "rec/autorec.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace poisonrec::rec {

AutoRec::Net::Net(std::size_t num_items, std::size_t hidden, Rng* rng)
    : encoder(num_items, hidden, rng), decoder(hidden, num_items, rng) {}

std::vector<nn::Tensor> AutoRec::Net::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : encoder.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : decoder.Parameters()) params.push_back(p);
  return params;
}

AutoRec::AutoRec(const FitConfig& config) : config_(config) {}

AutoRec::AutoRec(const AutoRec& other)
    : config_(other.config_),
      num_items_(other.num_items_),
      positives_(other.positives_),
      clean_users_(other.clean_users_),
      update_seed_(other.update_seed_) {
  if (other.net_ != nullptr) {
    Rng rng(0x715bead5ull);
    net_ = std::make_unique<Net>(num_items_, config_.embedding_dim, &rng);
    std::vector<nn::Tensor> dst = net_->Parameters();
    std::vector<nn::Tensor> src = other.net_->Parameters();
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].CopyDataFrom(src[i]);
    }
  }
}

nn::Tensor AutoRec::Reconstruct(const nn::Tensor& inputs) const {
  nn::Tensor hidden = nn::Sigmoid(net_->encoder.Forward(inputs));
  return net_->decoder.Forward(hidden);
}

std::vector<float> AutoRec::UserVector(data::UserId user) const {
  std::vector<float> row(num_items_, 0.0f);
  if (user < positives_.size()) {
    for (data::ItemId item : positives_[user]) row[item] = 1.0f;
  }
  return row;
}

void AutoRec::TrainEpochs(const std::vector<data::UserId>& users,
                          std::size_t epochs, Rng* rng) {
  nn::Adam optimizer(net_->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  std::vector<data::UserId> order = users;
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size / 8);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      const std::size_t rows = end - start;
      std::vector<float> input(rows * num_items_, 0.0f);
      std::vector<float> mask(rows * num_items_, 0.0f);
      for (std::size_t r = 0; r < rows; ++r) {
        const data::UserId u = order[start + r];
        const auto& pos = positives_[u];
        for (data::ItemId item : pos) {
          input[r * num_items_ + item] = 1.0f;
          mask[r * num_items_ + item] = 1.0f;
        }
        // Sampled zero-targets keep the reconstruction from collapsing to
        // all-ones.
        const std::size_t n_neg =
            std::min<std::size_t>(num_items_,
                                  pos.size() * config_.negatives_per_positive +
                                      1);
        for (std::size_t n = 0; n < n_neg; ++n) {
          const data::ItemId j = SampleNegative(num_items_, pos, rng);
          mask[r * num_items_ + j] = 1.0f;
        }
      }
      nn::Tensor x =
          nn::Tensor::FromData(rows, num_items_, input);
      nn::Tensor target = nn::Tensor::FromData(rows, num_items_, input);
      nn::Tensor m = nn::Tensor::FromData(rows, num_items_, std::move(mask));
      nn::Tensor recon = Reconstruct(x);
      nn::Tensor loss = nn::MaskedMseLoss(recon, target, m);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }
}

void AutoRec::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  num_items_ = dataset.num_items();
  net_ = std::make_unique<Net>(num_items_, config_.embedding_dim, &rng);
  positives_ = BuildPositiveSets(dataset);
  std::vector<data::UserId> active = dataset.UsersWithMinLength(1);
  clean_users_ = active;
  TrainEpochs(active, config_.epochs, &rng);
  update_seed_ = rng.Fork();
}

void AutoRec::Update(const data::Dataset& poison) {
  POISONREC_CHECK(net_ != nullptr) << "Update before Fit";
  POISONREC_CHECK_EQ(poison.num_items(), num_items_);
  Rng rng(update_seed_ ^ 0x2545f4914f6cdd1dull);
  MergePositiveSets(poison, &positives_);
  std::vector<data::UserId> active = poison.UsersWithMinLength(1);
  // Replay: mix in clean users so the decoder does not collapse onto the
  // poison vectors (see FitConfig::update_replay_ratio).
  if (!clean_users_.empty()) {
    const std::size_t extra = static_cast<std::size_t>(
        config_.update_replay_ratio * static_cast<double>(active.size()));
    for (std::size_t i = 0; i < extra; ++i) {
      active.push_back(clean_users_[rng.Index(clean_users_.size())]);
    }
  }
  TrainEpochs(active, config_.update_epochs, &rng);
}

std::vector<double> AutoRec::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  POISONREC_CHECK(net_ != nullptr) << "Score before Fit";
  nn::NoGradScope no_grad;
  nn::Tensor x = nn::Tensor::FromData(1, num_items_, UserVector(user));
  nn::Tensor recon = Reconstruct(x);
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (data::ItemId item : candidates) {
    POISONREC_CHECK_LT(item, num_items_);
    scores.push_back(recon.at(0, item));
  }
  return scores;
}

std::unique_ptr<Recommender> AutoRec::Clone() const {
  return std::unique_ptr<Recommender>(new AutoRec(*this));
}

}  // namespace poisonrec::rec
