// Cross-cutting property tests: parameterized sweeps over sizes and
// seeds asserting structural invariants that must hold for ANY
// configuration (not just the defaults the other suites use).
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/poisonrec.h"
#include "nn/loss.h"
#include "util/stats.h"

namespace poisonrec {
namespace {

// --- BCBT sampling-depth bound: every sampled path has at most
// ceil(log2(max subtree)) + 1 decisions, for any catalog size. ----------
class TreeDepthProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TreeDepthProperty, PathLengthIsLogarithmic) {
  const auto [num_originals, seed] = GetParam();
  core::PolicyConfig config;
  config.embedding_dim = 4;
  config.action_space = core::ActionSpaceKind::kBcbtPopular;
  config.seed = static_cast<std::uint64_t>(seed);
  std::vector<data::ItemId> originals(num_originals);
  for (std::size_t i = 0; i < num_originals; ++i) originals[i] = i;
  std::vector<data::ItemId> targets = {num_originals, num_originals + 1};
  core::Policy policy(2, num_originals + 2, originals, targets, config);

  const std::size_t max_decisions =
      static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(num_originals)))) +
      2;  // +1 merged root, +1 ceiling slack for the smaller subtree
  Rng rng(static_cast<std::uint64_t>(seed) * 77 + 1);
  auto trajs = policy.SampleEpisode(4, &rng);
  for (const auto& t : trajs) {
    for (const auto& s : t.steps) {
      EXPECT_LE(s.old_log_probs.size(), max_decisions)
          << "catalog " << num_originals;
      EXPECT_EQ(s.old_log_probs.size(), s.path.size() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TreeDepthProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 17, 64, 200,
                                                      1000),
                       ::testing::Values(1, 2)));

// --- Sampled items are always within the dense id space, for every
// action-space kind and random seed. -------------------------------------
class SampleValidityProperty
    : public ::testing::TestWithParam<std::tuple<core::ActionSpaceKind, int>> {
};

TEST_P(SampleValidityProperty, ItemsInRangeAndLogProbsNegative) {
  const auto [kind, seed] = GetParam();
  core::PolicyConfig config;
  config.embedding_dim = 4;
  config.action_space = kind;
  config.seed = static_cast<std::uint64_t>(seed);
  std::vector<data::ItemId> originals = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<data::ItemId> targets = {9, 10, 11};
  core::Policy policy(3, 12, originals, targets, config);
  Rng rng(static_cast<std::uint64_t>(seed) + 99);
  for (int episode = 0; episode < 3; ++episode) {
    for (const auto& t : policy.SampleEpisode(5, &rng)) {
      for (const auto& s : t.steps) {
        EXPECT_LT(s.item, 12u);
        for (double lp : s.old_log_probs) {
          EXPECT_LE(lp, 1e-9);
          EXPECT_GT(lp, -50.0);  // no degenerate zero-probability draws
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, SampleValidityProperty,
    ::testing::Combine(
        ::testing::Values(core::ActionSpaceKind::kPlain,
                          core::ActionSpaceKind::kBPlain,
                          core::ActionSpaceKind::kBcbtPopular,
                          core::ActionSpaceKind::kBcbtRandom,
                          core::ActionSpaceKind::kCbtUnbiased),
        ::testing::Values(3, 7, 11)));

// --- Reward normalization (Eq. 8) invariants over random batches. -------
class RewardNormProperty : public ::testing::TestWithParam<int> {};

TEST_P(RewardNormProperty, ZeroMeanUnitVarianceAndOrderPreserved) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> rewards(16);
  for (double& r : rewards) r = rng.Uniform(0.0, 5000.0);
  std::vector<double> normalized = rewards;
  NormalizeRewards(&normalized);
  double mean = 0.0;
  for (double v : normalized) mean += v;
  EXPECT_NEAR(mean / 16.0, 0.0, 1e-9);
  // Order preservation: argmax unchanged.
  std::size_t argmax_raw = 0;
  std::size_t argmax_norm = 0;
  for (std::size_t i = 1; i < 16; ++i) {
    if (rewards[i] > rewards[argmax_raw]) argmax_raw = i;
    if (normalized[i] > normalized[argmax_norm]) argmax_norm = i;
  }
  EXPECT_EQ(argmax_raw, argmax_norm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewardNormProperty,
                         ::testing::Range(1, 9));

// --- Candidate generation invariants over sizes. -------------------------
class CandidateProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CandidateProperty, DistinctInRangeTargetsAppended) {
  const auto [catalog, want] = GetParam();
  std::vector<data::ItemId> targets = {catalog, catalog + 1};
  rec::RandomCandidateGenerator gen(catalog, targets, want, 5);
  for (data::UserId u = 0; u < 20; ++u) {
    auto cands = gen.Candidates(u);
    const std::size_t originals = std::min(want, catalog);
    ASSERT_EQ(cands.size(), originals + 2);
    std::set<data::ItemId> distinct(cands.begin(), cands.end());
    EXPECT_EQ(distinct.size(), cands.size());
    EXPECT_EQ(cands[cands.size() - 2], catalog);
    EXPECT_EQ(cands.back(), catalog + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CandidateProperty,
    ::testing::Values(std::make_tuple<std::size_t, std::size_t>(5, 92),
                      std::make_tuple<std::size_t, std::size_t>(92, 92),
                      std::make_tuple<std::size_t, std::size_t>(500, 92),
                      std::make_tuple<std::size_t, std::size_t>(100, 1)));

// --- Loss non-negativity / bounds over random inputs. --------------------
class LossProperty : public ::testing::TestWithParam<int> {};

TEST_P(LossProperty, CrossEntropyAndBceAreNonNegative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  nn::Tensor logits = nn::Tensor::Randn(6, 9, 2.0f, &rng);
  std::vector<std::size_t> targets(6);
  for (auto& t : targets) t = rng.Index(9);
  EXPECT_GE(nn::SoftmaxCrossEntropy(logits, targets).item(), 0.0f);

  nn::Tensor blogits = nn::Tensor::Randn(8, 1, 2.0f, &rng);
  std::vector<float> labels(8);
  for (auto& l : labels) l = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  nn::Tensor t = nn::Tensor::FromData(8, 1, std::move(labels));
  EXPECT_GE(nn::BceWithLogits(blogits, t).item(), 0.0f);

  nn::Tensor pos = nn::Tensor::Randn(8, 1, 1.0f, &rng);
  nn::Tensor neg = nn::Tensor::Randn(8, 1, 1.0f, &rng);
  EXPECT_GE(nn::BprLoss(pos, neg).item(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossProperty, ::testing::Range(1, 7));

// --- Synthetic data: statistics invariants over presets and scales. -----
class SyntheticProperty
    : public ::testing::TestWithParam<data::DatasetPreset> {};

TEST_P(SyntheticProperty, ScaledCountsAndLengthFloor) {
  data::SyntheticConfig cfg = data::PresetConfig(GetParam(), 0.02, 7);
  data::Dataset d = data::GenerateSynthetic(cfg);
  EXPECT_EQ(d.num_users(), cfg.num_users);
  EXPECT_EQ(d.num_items(), cfg.num_items);
  EXPECT_LE(d.num_interactions(), cfg.num_interactions);
  EXPECT_GE(d.num_interactions(),
            cfg.num_users * cfg.min_user_length);
  for (data::UserId u = 0; u < d.num_users(); ++u) {
    EXPECT_GE(d.Sequence(u).size(), cfg.min_user_length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, SyntheticProperty,
    ::testing::Values(data::DatasetPreset::kSteam,
                      data::DatasetPreset::kMovieLens,
                      data::DatasetPreset::kPhone,
                      data::DatasetPreset::kClothing),
    [](const auto& info) {
      return std::string(data::DatasetPresetName(info.param));
    });

}  // namespace
}  // namespace poisonrec
