#include "orch/journal.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "obs/crc32c.h"
#include "obs/json.h"
#include "orch/json_reader.h"

namespace poisonrec::orch {

const char* CampaignStateName(CampaignState state) {
  switch (state) {
    case CampaignState::kPending: return "pending";
    case CampaignState::kRunning: return "running";
    case CampaignState::kCheckpointed: return "checkpointed";
    case CampaignState::kDone: return "done";
    case CampaignState::kQuarantined: return "quarantined";
    case CampaignState::kFailed: return "failed";
    case CampaignState::kPreempted: return "preempted";
  }
  return "unknown";
}

StatusOr<CampaignState> ParseCampaignState(const std::string& name) {
  for (const CampaignState state :
       {CampaignState::kPending, CampaignState::kRunning,
        CampaignState::kCheckpointed, CampaignState::kDone,
        CampaignState::kQuarantined, CampaignState::kFailed,
        CampaignState::kPreempted}) {
    if (name == CampaignStateName(state)) return state;
  }
  return Status::InvalidArgument("unknown campaign state \"" + name + "\"");
}

bool IsTerminal(CampaignState state) {
  return state == CampaignState::kDone ||
         state == CampaignState::kQuarantined ||
         state == CampaignState::kFailed;
}

Status FleetJournal::Open(const std::string& path, bool truncate) {
  // checksum=true: every journal line carries a CRC32C member so
  // replay can tell rotted records from torn ones (obs/crc32c.h).
  if (!log_.Open(path, truncate, obs::EventLog::FlushPolicy::kEveryLine,
                 /*checksum=*/true)) {
    return Status::IoError("cannot open fleet journal " + path);
  }
  return Status::OK();
}

bool FleetJournal::Record(const CampaignJournalRecord& record) {
  obs::JsonObjectBuilder b;
  b.Str("type", "campaign")
      .Str("id", record.campaign_id)
      .Str("state", CampaignStateName(record.state))
      .Int("step", record.step)
      .Num("reward", record.reward)
      .Num("best_reward", record.best_reward)
      .Int("restarts", record.restarts)
      .Int("token", record.token);
  if (!record.owner.empty()) b.Str("owner", record.owner);
  if (!record.detail.empty()) b.Str("detail", record.detail);
  return log_.Append(std::move(b).Finish());
}

std::vector<std::string> FleetJournal::ListJournalFiles(
    const std::string& base_path) {
  const std::filesystem::path base(base_path);
  std::filesystem::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string stem = base.stem().string();
  const std::string ext = base.extension().string();
  std::vector<std::string> files;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    // The base file itself plus per-worker siblings `<stem>.<worker><ext>`
    // (e.g. fleet_journal.jsonl, fleet_journal.w812-3f.jsonl). A plain
    // prefix match would also swallow unrelated `<stem>_old<ext>` files.
    const bool matches =
        name == stem + ext ||
        (name.size() > stem.size() + ext.size() + 1 &&
         name.compare(0, stem.size() + 1, stem + ".") == 0 &&
         name.compare(name.size() - ext.size(), ext.size(), ext) == 0);
    if (matches) files.push_back((dir / name).string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

StatusOr<JournalReplayResult> FleetJournal::Replay(
    const std::vector<std::string>& paths) {
  JournalReplayResult result;
  // Per campaign and step, the token that currently owns the reward:
  // a higher-token record takes the step over, a lower one is stale.
  std::map<std::string, std::map<std::uint64_t, std::uint64_t>> step_tokens;

  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) return Status::IoError("cannot open fleet journal " + path);
    ++result.files_merged;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(std::move(line));
    }
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const bool is_tail = (i + 1 == lines.size());
      // A torn trailing line (kill mid-append) is the expected crash
      // frontier; anything malformed BEFORE it is real corruption and
      // is counted so the report can surface it.
      const auto reject = [&] {
        if (is_tail) {
          ++result.torn_tail_lines;
        } else {
          ++result.malformed_lines;
        }
      };
      // Checksum gate first: a line whose CRC32C member disagrees is
      // bit rot even when it still parses — structural validation
      // alone would fold a silently-wrong record into campaign state.
      // Legacy lines without the member pass through to the parser.
      if (obs::VerifyLineChecksum(lines[i]) ==
          obs::LineChecksum::kMismatch) {
        if (is_tail) {
          ++result.torn_tail_lines;
        } else {
          ++result.corrupt_lines;
        }
        continue;
      }
      StatusOr<JsonValue> parsed = ParseJson(lines[i]);
      if (!parsed.ok() || !parsed->is_object()) {
        reject();
        continue;
      }
      const JsonValue& record = *parsed;
      const JsonValue* type = record.Find("type");
      if (type == nullptr || !type->is_string() ||
          type->string_value != "campaign") {
        // Unknown record types are forward-compatible, not corruption.
        continue;
      }
      const JsonValue* id = record.Find("id");
      const JsonValue* state = record.Find("state");
      if (id == nullptr || !id->is_string() || state == nullptr ||
          !state->is_string()) {
        reject();
        continue;
      }
      StatusOr<CampaignState> parsed_state =
          ParseCampaignState(state->string_value);
      if (!parsed_state.ok()) {
        reject();
        continue;
      }
      const JsonValue* step = record.Find("step");
      const JsonValue* reward = record.Find("reward");
      const JsonValue* best = record.Find("best_reward");
      const JsonValue* restarts = record.Find("restarts");
      const JsonValue* token = record.Find("token");
      const JsonValue* detail = record.Find("detail");
      const std::uint64_t step_index =
          (step != nullptr && step->is_number())
              ? static_cast<std::uint64_t>(step->number_value)
              : 0;
      const std::uint64_t record_token =
          (token != nullptr && token->is_number())
              ? static_cast<std::uint64_t>(token->number_value)
              : 0;

      CampaignReplay& entry = result.campaigns[id->string_value];
      // Step rewards merge across ownership epochs (higher token wins a
      // step) because the committed values are deterministic — epoch N+1
      // resumed from epoch N's checkpoint reproduces the same rewards.
      if (*parsed_state == CampaignState::kCheckpointed && step_index > 0 &&
          reward != nullptr && reward->is_number()) {
        std::uint64_t& step_owner =
            step_tokens[id->string_value][step_index];
        if (record_token >= step_owner) {
          entry.step_rewards[step_index] = reward->number_value;
          step_owner = record_token;
        }
      }
      // Everything else is token-aware last-writer-wins: a record below
      // the campaign's winning epoch is a fenced-out owner's stale write
      // and must not override the new owner's state. Outranked kPending
      // records are skipped silently — every shared worker journals
      // pending for the whole plan, so those duplicates are expected,
      // not zombie writes.
      if (record_token < entry.token) {
        if (*parsed_state != CampaignState::kPending) ++result.stale_records;
        continue;
      }
      entry.token = record_token;
      entry.state = *parsed_state;
      if (step_index > entry.steps_completed &&
          (*parsed_state == CampaignState::kCheckpointed ||
           *parsed_state == CampaignState::kPreempted ||
           IsTerminal(*parsed_state))) {
        entry.steps_completed = step_index;
      }
      if (best != nullptr && best->is_number() &&
          best->number_value > entry.best_reward) {
        entry.best_reward = best->number_value;
      }
      if (restarts != nullptr && restarts->is_number()) {
        const auto r = static_cast<std::uint64_t>(restarts->number_value);
        if (r > entry.restarts) entry.restarts = r;
      }
      if (detail != nullptr && detail->is_string()) {
        entry.detail = detail->string_value;
      }
    }
  }
  return result;
}

StatusOr<std::map<std::string, CampaignReplay>> FleetJournal::ReplayFile(
    const std::string& path) {
  POISONREC_ASSIGN_OR_RETURN(JournalReplayResult result,
                             Replay({path}));
  return std::move(result.campaigns);
}

}  // namespace poisonrec::orch
