// Unit tests for orch/status.h: CollectFleetStatus folds fabricated
// journal / lease / snapshot state through the test seams (injected
// clock + pid probe), and classifies damaged inputs into hygiene
// counters instead of crashing:
//
//   * torn trailing snapshot (publish interrupted before the footer),
//   * CRC-mismatched snapshot (bit rot under an intact footer),
//   * framed-but-foreign snapshot (not a worker_status document),
//   * expired lease over a live journal (stalled campaign, exit 2),
//   * a fenced zombie's stale snapshot, which must not override the
//     new owner's live progress.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "orch/journal.h"
#include "orch/lease.h"
#include "orch/status.h"
#include "util/fsio.h"
#include "util/status.h"

namespace poisonrec::orch {
namespace {

struct StatusDirs {
  std::string base;
  std::string journal;
  std::string telemetry;
  std::string leases;
};

StatusDirs MakeDirs(const char* name) {
  StatusDirs dirs;
  const auto base = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(base);
  dirs.base = base.string();
  dirs.journal = (base / "journal.jsonl").string();
  dirs.telemetry = (base / "telemetry").string();
  dirs.leases = (base / "leases").string();
  std::filesystem::create_directories(dirs.telemetry);
  std::filesystem::create_directories(dirs.leases);
  return dirs;
}

FleetStatusOptions MakeOptions(const StatusDirs& dirs, double now) {
  FleetStatusOptions options;
  options.journal_path = dirs.journal;
  options.checkpoint_dir = dirs.base;
  options.telemetry_dir = dirs.telemetry;
  options.lease_dir = dirs.leases;
  options.now = [now] { return now; };
  // Default seam for these tests: every pid referenced is gone.
  options.pid_alive = [](std::uint64_t) { return false; };
  return options;
}

/// A minimal-but-complete worker_status payload; `campaigns` is the
/// JSON array literal, `counters` the metrics counter object literal.
std::string SnapshotJson(const std::string& worker, std::uint64_t pid,
                         double wall_unix, bool shutdown,
                         const std::string& campaigns,
                         const std::string& counters = "{}") {
  char head[512];
  std::snprintf(
      head, sizeof(head),
      "{\"type\":\"worker_status\",\"worker\":\"%s\",\"pid\":%llu,"
      "\"host\":\"testhost\",\"seq\":3,\"wall_unix\":%.3f,"
      "\"uptime_seconds\":4.5,\"publish_period_seconds\":0.25,"
      "\"lease_ttl_seconds\":2.0,\"shared\":true,\"shutdown\":%s,"
      "\"campaigns\":",
      worker.c_str(), static_cast<unsigned long long>(pid), wall_unix,
      shutdown ? "true" : "false");
  return std::string(head) + campaigns +
         ",\"metrics\":{\"wall_unix\":0,\"uptime_seconds\":0,"
         "\"counters\":" +
         counters + ",\"histograms\":{}}}";
}

void PublishSnapshot(const StatusDirs& dirs, const std::string& worker,
                     const std::string& payload) {
  const std::string path = dirs.telemetry + "/" + worker + ".status.json";
  ASSERT_TRUE(WriteFileDurableChecksummed(path, payload).ok());
}

void AppendJournal(const StatusDirs& dirs,
                   const CampaignJournalRecord& record) {
  FleetJournal journal;
  ASSERT_TRUE(journal.Open(dirs.journal, /*truncate=*/false).ok());
  ASSERT_TRUE(journal.Record(record));
  journal.Close();
}

CampaignJournalRecord Checkpointed(const std::string& id, std::uint64_t step,
                                   double reward, std::uint64_t token,
                                   const std::string& owner) {
  CampaignJournalRecord record;
  record.campaign_id = id;
  record.state = CampaignState::kCheckpointed;
  record.step = step;
  record.reward = reward;
  record.best_reward = reward;
  record.token = token;
  record.owner = owner;
  return record;
}

const CampaignStatusRow* FindCampaign(const FleetStatus& status,
                                      const std::string& id) {
  for (const CampaignStatusRow& row : status.campaigns) {
    if (row.id == id) return &row;
  }
  return nullptr;
}

bool HasReasonContaining(const FleetStatus& status,
                         const std::string& needle) {
  for (const std::string& reason : status.degraded_reasons) {
    if (reason.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(StatusTest, EmptyInputsDegradeWithNoFleetState) {
  const StatusDirs dirs = MakeDirs("poisonrec_status_empty");
  const FleetStatus status = CollectFleetStatus(MakeOptions(dirs, 1000.0));
  EXPECT_TRUE(status.degraded());
  EXPECT_EQ(status.ExitCode(), 2);
  EXPECT_TRUE(HasReasonContaining(status, "no fleet state found"));
  EXPECT_TRUE(status.workers.empty());
  EXPECT_TRUE(status.campaigns.empty());
  std::filesystem::remove_all(dirs.base);
}

TEST(StatusTest, HealthyFleetFoldsJournalLeasesAndSnapshots) {
  const StatusDirs dirs = MakeDirs("poisonrec_status_healthy");
  // Journal: c1 mid-flight at step 4, c2 finished.
  AppendJournal(dirs, Checkpointed("c1", 4, 0.5, 1, "wN"));
  CampaignJournalRecord done = Checkpointed("c2", 10, 0.8, 1, "wN");
  done.state = CampaignState::kDone;
  AppendJournal(dirs, done);

  // Fresh lease on c1 held by wN (renewed at t=1000, ttl 2s).
  LeaseManager leases(dirs.leases, "wN", /*ttl_seconds=*/2.0);
  ASSERT_TRUE(leases.Init().ok());
  leases.SetClockForTest([] { return 1000.0; });
  ASSERT_TRUE(leases.Acquire("c1").ok());

  // Live snapshot from wN: c1 running at step 5, 2 steps/s toward 10.
  PublishSnapshot(
      dirs, "wN",
      SnapshotJson("wN", 222, /*wall_unix=*/1000.2, /*shutdown=*/false,
                   "[{\"id\":\"c1\",\"slot\":\"running\","
                   "\"state\":\"running\",\"step\":5,\"total\":10,"
                   "\"last_reward\":0.55,\"best_reward\":0.6,"
                   "\"restarts\":0,\"preemptions\":1,\"token\":1,"
                   "\"step_rate\":2.0,\"running_seconds\":2.5}]",
                   "{\"poisonrec_fleet_status_snapshots_total\":3}"));

  FleetStatusOptions options = MakeOptions(dirs, /*now=*/1001.0);
  options.pid_alive = [](std::uint64_t pid) { return pid == 222; };
  const FleetStatus status = CollectFleetStatus(options);

  EXPECT_FALSE(status.degraded())
      << (status.degraded_reasons.empty() ? ""
                                          : status.degraded_reasons.front());
  EXPECT_EQ(status.ExitCode(), 0);
  ASSERT_EQ(status.workers.size(), 1u);
  EXPECT_EQ(status.workers[0].worker_id, "wN");
  EXPECT_EQ(status.workers[0].health, WorkerHealth::kLive);
  EXPECT_NEAR(status.workers[0].age_seconds, 0.8, 1e-9);
  EXPECT_EQ(status.workers_live, 1u);

  const CampaignStatusRow* c1 = FindCampaign(status, "c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->state, CampaignState::kRunning);
  EXPECT_EQ(c1->owner, "wN");
  EXPECT_EQ(c1->token, 1u);
  // Live snapshot step (5) wins over the journal frontier (4).
  EXPECT_EQ(c1->step, 5u);
  EXPECT_EQ(c1->total, 10u);
  EXPECT_TRUE(c1->running);
  EXPECT_TRUE(c1->lease_held);
  EXPECT_FALSE(c1->lease_expired);
  EXPECT_FALSE(c1->stalled);
  EXPECT_DOUBLE_EQ(c1->step_rate, 2.0);
  EXPECT_NEAR(c1->eta_seconds, 2.5, 1e-9);  // (10 - 5) / 2.0
  EXPECT_EQ(c1->preemptions, 1u);

  const CampaignStatusRow* c2 = FindCampaign(status, "c2");
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c2->state, CampaignState::kDone);
  EXPECT_EQ(c2->step, 10u);

  EXPECT_DOUBLE_EQ(status.aggregate_step_rate, 2.0);
  EXPECT_DOUBLE_EQ(
      status.counters.at("poisonrec_fleet_status_snapshots_total"), 3.0);
  EXPECT_EQ(status.hygiene.snapshots_ok, 1u);
  EXPECT_EQ(status.hygiene.leases_ok, 1u);
  EXPECT_EQ(status.hygiene.journal_files_merged, 1u);

  const std::string json = FleetStatusJson(status);
  EXPECT_NE(json.find("\"type\":\"fleet_status\""), std::string::npos);
  EXPECT_NE(json.find("\"exit_code\":0"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"c1\""), std::string::npos);
  const std::string table = FormatFleetStatusTable(status);
  EXPECT_NE(table.find("healthy (exit 0)"), std::string::npos);
  EXPECT_NE(table.find("c1"), std::string::npos);
  std::filesystem::remove_all(dirs.base);
}

TEST(StatusTest, DamagedInputsClassifyIntoHygieneCountersWithoutCrash) {
  const StatusDirs dirs = MakeDirs("poisonrec_status_damage");
  const std::string good =
      SnapshotJson("wG", 1, 999.9, /*shutdown=*/true, "[]");

  // Torn: published without the integrity footer (interrupted publish).
  ASSERT_TRUE(
      WriteFileDurable(dirs.telemetry + "/wT.status.json", good).ok());
  // Corrupt: footer intact, one payload bit flipped after framing.
  {
    std::string framed = WithIntegrityFooter(good);
    framed[10] ^= 0x01;
    std::ofstream out(dirs.telemetry + "/wC.status.json",
                      std::ios::binary | std::ios::trunc);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    ASSERT_TRUE(out.good());
  }
  // Invalid: correctly framed, but not a worker_status document.
  ASSERT_TRUE(WriteFileDurableChecksummed(dirs.telemetry + "/wI.status.json",
                                          "{\"type\":\"other\"}")
                  .ok());
  // Good: a cleanly exited worker.
  PublishSnapshot(dirs, "wG", good);
  // Damaged lease: a foreign blob sitting at a lease path.
  {
    std::ofstream out(dirs.leases + "/cX.lease", std::ios::trunc);
    out << "not a lease";
    ASSERT_TRUE(out.good());
  }

  const FleetStatus status = CollectFleetStatus(MakeOptions(dirs, 1000.0));
  EXPECT_EQ(status.hygiene.snapshots_torn, 1u);
  EXPECT_EQ(status.hygiene.snapshots_corrupt, 1u);
  EXPECT_EQ(status.hygiene.snapshots_invalid, 1u);
  EXPECT_EQ(status.hygiene.snapshots_ok, 1u);
  EXPECT_EQ(status.hygiene.leases_damaged, 1u);
  EXPECT_EQ(status.hygiene.leases_ok, 0u);
  // The surviving snapshot still renders; damage alone is not degraded.
  ASSERT_EQ(status.workers.size(), 1u);
  EXPECT_EQ(status.workers[0].worker_id, "wG");
  EXPECT_EQ(status.workers[0].health, WorkerHealth::kExited);
  EXPECT_FALSE(status.degraded())
      << (status.degraded_reasons.empty() ? ""
                                          : status.degraded_reasons.front());
  const std::string json = FleetStatusJson(status);
  EXPECT_NE(json.find("\"snapshots_torn\":1"), std::string::npos);
  EXPECT_NE(json.find("\"snapshots_corrupt\":1"), std::string::npos);
  std::filesystem::remove_all(dirs.base);
}

TEST(StatusTest, ExpiredLeaseOverLiveJournalMarksCampaignStalled) {
  const StatusDirs dirs = MakeDirs("poisonrec_status_stalled");
  AppendJournal(dirs, Checkpointed("c1", 4, 0.5, 1, "wA"));

  // Lease renewed at t=1000 with a 2s ttl; collection happens at
  // t=1010, so the heartbeat is 10s old — long expired.
  LeaseManager leases(dirs.leases, "wA", /*ttl_seconds=*/2.0);
  ASSERT_TRUE(leases.Init().ok());
  leases.SetClockForTest([] { return 1000.0; });
  ASSERT_TRUE(leases.Acquire("c1").ok());

  const FleetStatus status = CollectFleetStatus(MakeOptions(dirs, 1010.0));
  EXPECT_TRUE(status.degraded());
  EXPECT_EQ(status.ExitCode(), 2);
  EXPECT_TRUE(HasReasonContaining(status, "c1 stalled (lease expired)"));
  const CampaignStatusRow* c1 = FindCampaign(status, "c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_TRUE(c1->lease_held);
  EXPECT_TRUE(c1->lease_expired);
  EXPECT_TRUE(c1->stalled);
  EXPECT_FALSE(IsTerminal(c1->state));
  const std::string table = FormatFleetStatusTable(status);
  EXPECT_NE(table.find("DEGRADED (exit 2)"), std::string::npos);
  EXPECT_NE(table.find("lease-expired"), std::string::npos);
  std::filesystem::remove_all(dirs.base);
}

TEST(StatusTest, FencedZombiesStaleSnapshotDoesNotOverrideNewOwner) {
  const StatusDirs dirs = MakeDirs("poisonrec_status_zombie");
  // The new owner's epoch (token 2) is authoritative in the journal.
  AppendJournal(dirs, Checkpointed("c1", 4, 0.5, 2, "wN"));

  // Zombie wZ (pid 111, dead): its last snapshot still claims c1
  // running at step 9 under the old token 1.
  PublishSnapshot(
      dirs, "wZ",
      SnapshotJson("wZ", 111, /*wall_unix=*/1000.4, /*shutdown=*/false,
                   "[{\"id\":\"c1\",\"slot\":\"running\","
                   "\"state\":\"running\",\"step\":9,\"total\":10,"
                   "\"last_reward\":0.9,\"best_reward\":0.9,"
                   "\"restarts\":0,\"preemptions\":0,\"token\":1,"
                   "\"step_rate\":9.0,\"running_seconds\":1.0}]"));
  // New owner wN (pid 222, alive): running c1 at step 5, token 2.
  PublishSnapshot(
      dirs, "wN",
      SnapshotJson("wN", 222, /*wall_unix=*/1000.5, /*shutdown=*/false,
                   "[{\"id\":\"c1\",\"slot\":\"running\","
                   "\"state\":\"running\",\"step\":5,\"total\":10,"
                   "\"last_reward\":0.55,\"best_reward\":0.6,"
                   "\"restarts\":1,\"preemptions\":0,\"token\":2,"
                   "\"step_rate\":2.0,\"running_seconds\":2.5}]"));

  FleetStatusOptions options = MakeOptions(dirs, /*now=*/1001.0);
  options.pid_alive = [](std::uint64_t pid) { return pid == 222; };
  const FleetStatus status = CollectFleetStatus(options);

  ASSERT_EQ(status.workers.size(), 2u);  // sorted: wN, wZ
  EXPECT_EQ(status.workers[0].worker_id, "wN");
  EXPECT_EQ(status.workers[0].health, WorkerHealth::kLive);
  EXPECT_EQ(status.workers[1].worker_id, "wZ");
  EXPECT_EQ(status.workers[1].health, WorkerHealth::kStale);
  EXPECT_EQ(status.workers_live, 1u);
  EXPECT_EQ(status.workers_stale, 1u);

  // The zombie makes the fleet degraded, but its tombstone snapshot
  // must not hijack the campaign row: owner, step, token, and rate all
  // come from the live owner (and the journal), not from wZ.
  EXPECT_TRUE(status.degraded());
  EXPECT_EQ(status.ExitCode(), 2);
  EXPECT_TRUE(HasReasonContaining(status, "worker wZ stale"));
  const CampaignStatusRow* c1 = FindCampaign(status, "c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->owner, "wN");
  EXPECT_EQ(c1->token, 2u);
  EXPECT_EQ(c1->step, 5u);  // not the zombie's stale 9
  EXPECT_DOUBLE_EQ(c1->step_rate, 2.0);
  EXPECT_DOUBLE_EQ(c1->last_reward, 0.55);
  EXPECT_EQ(c1->restarts, 1u);
  EXPECT_TRUE(c1->running);
  // c1 itself is not stalled: its owner is live.
  EXPECT_FALSE(c1->stalled);
  std::filesystem::remove_all(dirs.base);
}

}  // namespace
}  // namespace poisonrec::orch
