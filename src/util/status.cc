#include "util/status.h"

#include <cstdlib>
#include <iostream>

namespace poisonrec {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::cerr << "FATAL: accessed value of errored StatusOr: "
            << status.ToString() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace poisonrec
