file(REMOVE_RECURSE
  "CMakeFiles/action_tree_test.dir/action_tree_test.cc.o"
  "CMakeFiles/action_tree_test.dir/action_tree_test.cc.o.d"
  "action_tree_test"
  "action_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
