#include "core/policy.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace poisonrec::core {

namespace {

// Stable log-softmax over a logits vector; returns log p[chosen].
double LogSoftmaxAt(const std::vector<double>& logits, std::size_t chosen) {
  double maxv = logits[0];
  for (double v : logits) maxv = std::max(maxv, v);
  double denom = 0.0;
  for (double v : logits) denom += std::exp(v - maxv);
  return logits[chosen] - maxv - std::log(denom);
}

double LogSigmoid(double x) {
  // log sigmoid(x) = -softplus(-x)
  return x > 0.0 ? -std::log1p(std::exp(-x)) : x - std::log1p(std::exp(x));
}

float DotRow(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t k = 0; k < dim; ++k) acc += a[k] * b[k];
  return acc;
}

}  // namespace

const char* ActionSpaceKindName(ActionSpaceKind kind) {
  switch (kind) {
    case ActionSpaceKind::kPlain:
      return "Plain";
    case ActionSpaceKind::kBPlain:
      return "BPlain";
    case ActionSpaceKind::kBcbtPopular:
      return "BCBT-Popular";
    case ActionSpaceKind::kBcbtRandom:
      return "BCBT-Random";
    case ActionSpaceKind::kCbtUnbiased:
      return "CBT-Unbiased";
  }
  return "?";
}

Policy::Policy(
    std::size_t num_attackers, std::size_t num_items,
    const std::vector<data::ItemId>& original_items_in_popularity_order,
    const std::vector<data::ItemId>& target_items,
    const PolicyConfig& config)
    : config_(config),
      num_attackers_(num_attackers),
      num_items_(num_items),
      targets_(target_items),
      originals_(original_items_in_popularity_order),
      init_rng_(config.seed),
      user_emb_(num_attackers, config.embedding_dim, &init_rng_),
      item_emb_(num_items, config.embedding_dim, &init_rng_),
      lstm_(config.embedding_dim, config.embedding_dim, &init_rng_),
      dnn_({config.embedding_dim, config.embedding_dim,
            config.embedding_dim},
           &init_rng_) {
  POISONREC_CHECK(!targets_.empty());
  POISONREC_CHECK(!originals_.empty());
  POISONREC_CHECK_EQ(targets_.size() + originals_.size(), num_items_)
      << "target + original ids must cover the dense item space";

  is_target_.assign(num_items_, 0);
  for (data::ItemId t : targets_) {
    POISONREC_CHECK_LT(t, num_items_);
    is_target_[t] = 1;
  }

  switch (config_.action_space) {
    case ActionSpaceKind::kPlain:
      break;
    case ActionSpaceKind::kBPlain:
      set_emb_ = nn::Tensor::Randn(2, config_.embedding_dim, 0.1f,
                                   &init_rng_, /*requires_grad=*/true);
      break;
    case ActionSpaceKind::kBcbtPopular: {
      tree_ = std::make_unique<ActionTree>(targets_, originals_);
      break;
    }
    case ActionSpaceKind::kBcbtRandom: {
      std::vector<data::ItemId> shuffled = originals_;
      init_rng_.Shuffle(&shuffled);
      tree_ = std::make_unique<ActionTree>(targets_, shuffled);
      break;
    }
    case ActionSpaceKind::kCbtUnbiased: {
      // Targets are cold, so popularity order places them leftmost; the
      // tree is otherwise identical to BCBT-Popular minus the root bias.
      std::vector<data::ItemId> all = targets_;
      all.insert(all.end(), originals_.begin(), originals_.end());
      tree_ = std::make_unique<ActionTree>(all);
      break;
    }
  }
  if (tree_ != nullptr) {
    node_emb_ = nn::Tensor::Randn(tree_->num_nodes(), config_.embedding_dim,
                                  0.1f, &init_rng_, /*requires_grad=*/true);
  }
}

std::vector<nn::Tensor> Policy::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : user_emb_.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : item_emb_.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : lstm_.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : dnn_.Parameters()) params.push_back(p);
  if (node_emb_.defined()) params.push_back(node_emb_);
  if (set_emb_.defined()) params.push_back(set_emb_);
  return params;
}

FiniteSweep Policy::SweepParametersFinite() const {
  FiniteSweep total;
  for (const nn::Tensor& p : Parameters()) {
    const FiniteSweep sweep = SweepFinite(p.data());
    if (total.bad() == 0 && sweep.bad() > 0) {
      total.first_bad = total.checked + sweep.first_bad;
    }
    total.checked += sweep.checked;
    total.nan += sweep.nan;
    total.inf += sweep.inf;
  }
  return total;
}

std::size_t Policy::NodeFeatureRow(int node_id) const {
  if (tree_->IsLeaf(node_id)) return tree_->LeafItem(node_id);
  return num_items_ + static_cast<std::size_t>(node_id);
}

const float* Policy::NodeFeatureData(int node_id) const {
  const std::size_t dim = config_.embedding_dim;
  if (tree_->IsLeaf(node_id)) {
    return item_emb_.table().data().data() + tree_->LeafItem(node_id) * dim;
  }
  return node_emb_.data().data() +
         static_cast<std::size_t>(node_id) * dim;
}

// ---------------------------------------------------------------------------
// Sampling (fast raw-data paths; the LSTM/DNN forward uses tensor ops
// under NoGradScope).
// ---------------------------------------------------------------------------

void Policy::SampleStepPlain(const std::vector<float>& dht, std::size_t row,
                             Rng* rng, SampledStep* step) const {
  const std::size_t dim = config_.embedding_dim;
  const float* q = dht.data() + row * dim;
  const float* table = item_emb_.table().data().data();
  std::vector<double> logits(num_items_);
  for (std::size_t j = 0; j < num_items_; ++j) {
    logits[j] = DotRow(q, table + j * dim, dim);
  }
  const std::size_t chosen = rng->CategoricalFromLogits(logits);
  step->item = chosen;
  step->old_log_probs = {LogSoftmaxAt(logits, chosen)};
}

void Policy::SampleStepBPlain(const std::vector<float>& dht, std::size_t row,
                              Rng* rng, SampledStep* step) const {
  const std::size_t dim = config_.embedding_dim;
  const float* q = dht.data() + row * dim;
  const float* sets = set_emb_.data().data();
  std::vector<double> root_logits = {DotRow(q, sets, dim),
                                     DotRow(q, sets + dim, dim)};
  const std::size_t set_choice = rng->CategoricalFromLogits(root_logits);
  const std::vector<data::ItemId>& members =
      set_choice == 0 ? targets_ : originals_;
  const float* table = item_emb_.table().data().data();
  std::vector<double> logits(members.size());
  for (std::size_t j = 0; j < members.size(); ++j) {
    logits[j] = DotRow(q, table + members[j] * dim, dim);
  }
  const std::size_t pick = rng->CategoricalFromLogits(logits);
  step->item = members[pick];
  step->path = {static_cast<int>(set_choice)};
  step->old_log_probs = {LogSoftmaxAt(root_logits, set_choice),
                         LogSoftmaxAt(logits, pick)};
}

void Policy::SampleStepTree(const std::vector<float>& dht, std::size_t row,
                            Rng* rng, SampledStep* step) const {
  const std::size_t dim = config_.embedding_dim;
  const float* q = dht.data() + row * dim;
  int node = tree_->root();
  step->path.push_back(node);
  while (!tree_->IsLeaf(node)) {
    const ActionTree::Node& n = tree_->node(node);
    const double o_left = DotRow(q, NodeFeatureData(n.left), dim);
    const double o_right = DotRow(q, NodeFeatureData(n.right), dim);
    const double p_left = 1.0 / (1.0 + std::exp(o_right - o_left));
    const bool go_left = rng->Uniform() < p_left;
    const int next = go_left ? n.left : n.right;
    step->old_log_probs.push_back(
        LogSigmoid(go_left ? o_left - o_right : o_right - o_left));
    step->path.push_back(next);
    node = next;
  }
  step->item = tree_->LeafItem(node);
}

std::vector<SampledTrajectory> Policy::SampleEpisode(
    std::size_t trajectory_length, Rng* rng) const {
  nn::NoGradScope no_grad;
  const std::size_t n = num_attackers_;
  std::vector<SampledTrajectory> trajs(n);
  std::vector<std::size_t> attacker_ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    trajs[i].attacker_index = i;
    trajs[i].steps.resize(trajectory_length);
    attacker_ids[i] = i;
  }

  nn::LstmCell::State state = lstm_.InitialState(n);
  state = lstm_.Step(user_emb_.Forward(attacker_ids), state);
  for (std::size_t t = 0; t < trajectory_length; ++t) {
    nn::Tensor dht = dnn_.Forward(state.h);  // (n x dim)
    const std::vector<float>& dht_data = dht.data();
    std::vector<std::size_t> chosen(n);
    for (std::size_t row = 0; row < n; ++row) {
      SampledStep* step = &trajs[row].steps[t];
      switch (config_.action_space) {
        case ActionSpaceKind::kPlain:
          SampleStepPlain(dht_data, row, rng, step);
          break;
        case ActionSpaceKind::kBPlain:
          SampleStepBPlain(dht_data, row, rng, step);
          break;
        case ActionSpaceKind::kBcbtPopular:
        case ActionSpaceKind::kBcbtRandom:
        case ActionSpaceKind::kCbtUnbiased:
          SampleStepTree(dht_data, row, rng, step);
          break;
      }
      chosen[row] = step->item;
    }
    if (t + 1 < trajectory_length) {
      state = lstm_.Step(item_emb_.Forward(chosen), state);
    }
  }
  return trajs;
}

std::vector<std::vector<SampledTrajectory>> Policy::SampleEpisodesBatched(
    std::size_t episodes, std::size_t trajectory_length,
    std::vector<Rng>* rngs) const {
  POISONREC_CHECK(rngs != nullptr);
  POISONREC_CHECK_EQ(rngs->size(), episodes);
  nn::NoGradScope no_grad;
  const std::size_t n = num_attackers_;
  const std::size_t rows = episodes * n;
  std::vector<std::vector<SampledTrajectory>> out(episodes);
  std::vector<std::size_t> attacker_ids(rows);
  for (std::size_t e = 0; e < episodes; ++e) {
    out[e].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[e][i].attacker_index = i;
      out[e][i].steps.resize(trajectory_length);
      attacker_ids[e * n + i] = i;
    }
  }

  nn::LstmCell::State state = lstm_.InitialState(rows);
  state = lstm_.Step(user_emb_.Forward(attacker_ids), state);
  for (std::size_t t = 0; t < trajectory_length; ++t) {
    nn::Tensor dht = dnn_.Forward(state.h);  // (episodes·n x dim)
    const std::vector<float>& dht_data = dht.data();
    std::vector<std::size_t> chosen(rows);
    // Per-episode RNG draw order matches SampleEpisode exactly: for a
    // fixed episode e, rows are visited 0..n-1 at each t.
    for (std::size_t e = 0; e < episodes; ++e) {
      Rng* rng = &(*rngs)[e];
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t row = e * n + i;
        SampledStep* step = &out[e][i].steps[t];
        switch (config_.action_space) {
          case ActionSpaceKind::kPlain:
            SampleStepPlain(dht_data, row, rng, step);
            break;
          case ActionSpaceKind::kBPlain:
            SampleStepBPlain(dht_data, row, rng, step);
            break;
          case ActionSpaceKind::kBcbtPopular:
          case ActionSpaceKind::kBcbtRandom:
          case ActionSpaceKind::kCbtUnbiased:
            SampleStepTree(dht_data, row, rng, step);
            break;
        }
        chosen[row] = step->item;
      }
    }
    if (t + 1 < trajectory_length) {
      state = lstm_.Step(item_emb_.Forward(chosen), state);
    }
  }
  return out;
}

std::vector<SampledTrajectory> Policy::SampleEpisodePerRow(
    std::size_t trajectory_length, Rng* rng) const {
  nn::NoGradScope no_grad;
  const std::size_t n = num_attackers_;
  std::vector<SampledTrajectory> trajs(n);
  std::vector<nn::LstmCell::State> states;
  states.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trajs[i].attacker_index = i;
    trajs[i].steps.resize(trajectory_length);
    nn::LstmCell::State state = lstm_.InitialState(1);
    states.push_back(lstm_.Step(user_emb_.Forward({i}), state));
  }
  for (std::size_t t = 0; t < trajectory_length; ++t) {
    // Timestep-major like SampleEpisode so the shared RNG stream is
    // consumed in the same order: at each t, rows 0..n-1 decide.
    std::vector<std::size_t> chosen(n);
    for (std::size_t row = 0; row < n; ++row) {
      nn::Tensor dht = dnn_.Forward(states[row].h);  // (1 x dim)
      const std::vector<float>& dht_data = dht.data();
      SampledStep* step = &trajs[row].steps[t];
      switch (config_.action_space) {
        case ActionSpaceKind::kPlain:
          SampleStepPlain(dht_data, 0, rng, step);
          break;
        case ActionSpaceKind::kBPlain:
          SampleStepBPlain(dht_data, 0, rng, step);
          break;
        case ActionSpaceKind::kBcbtPopular:
        case ActionSpaceKind::kBcbtRandom:
        case ActionSpaceKind::kCbtUnbiased:
          SampleStepTree(dht_data, 0, rng, step);
          break;
      }
      chosen[row] = step->item;
    }
    if (t + 1 < trajectory_length) {
      for (std::size_t row = 0; row < n; ++row) {
        states[row] =
            lstm_.Step(item_emb_.Forward({chosen[row]}), states[row]);
      }
    }
  }
  return trajs;
}

// ---------------------------------------------------------------------------
// PPO recompute (differentiable)
// ---------------------------------------------------------------------------

std::vector<nn::Tensor> Policy::HiddenStates(
    const std::vector<std::size_t>& attacker_ids,
    const std::vector<std::vector<data::ItemId>>& item_prefixes,
    std::size_t trajectory_length) const {
  const std::size_t rows = attacker_ids.size();
  std::vector<nn::Tensor> hs;
  hs.reserve(trajectory_length);
  nn::LstmCell::State state = lstm_.InitialState(rows);
  state = lstm_.Step(user_emb_.Forward(attacker_ids), state);
  hs.push_back(state.h);
  for (std::size_t t = 1; t < trajectory_length; ++t) {
    std::vector<std::size_t> items(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      items[r] = item_prefixes[r][t - 1];
    }
    state = lstm_.Step(item_emb_.Forward(items), state);
    hs.push_back(state.h);
  }
  return hs;
}

std::vector<nn::Tensor> Policy::HiddenStatesPerRow(
    const std::vector<std::size_t>& attacker_ids,
    const std::vector<std::vector<data::ItemId>>& item_prefixes,
    std::size_t trajectory_length) const {
  const std::size_t rows = attacker_ids.size();
  std::vector<nn::LstmCell::State> states;
  states.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    nn::LstmCell::State state = lstm_.InitialState(1);
    states.push_back(lstm_.Step(user_emb_.Forward({attacker_ids[r]}), state));
  }
  std::vector<nn::Tensor> hs;
  hs.reserve(trajectory_length);
  std::vector<nn::Tensor> row_h(rows);
  for (std::size_t t = 0; t < trajectory_length; ++t) {
    if (t > 0) {
      for (std::size_t r = 0; r < rows; ++r) {
        states[r] = lstm_.Step(
            item_emb_.Forward({item_prefixes[r][t - 1]}), states[r]);
      }
    }
    for (std::size_t r = 0; r < rows; ++r) row_h[r] = states[r].h;
    hs.push_back(nn::StackRows(row_h));
  }
  return hs;
}

std::vector<DecisionBatch> Policy::RecomputeLogProbs(
    const std::vector<const SampledTrajectory*>& trajectories,
    bool per_row_recurrence) const {
  POISONREC_CHECK(!trajectories.empty());
  const std::size_t rows = trajectories.size();
  const std::size_t T = trajectories[0]->steps.size();
  std::vector<std::size_t> attacker_ids(rows);
  std::vector<std::vector<data::ItemId>> sequences(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    POISONREC_CHECK_EQ(trajectories[r]->steps.size(), T)
        << "all trajectories must share T";
    attacker_ids[r] = trajectories[r]->attacker_index;
    sequences[r].reserve(T);
    for (const SampledStep& step : trajectories[r]->steps) {
      sequences[r].push_back(step.item);
    }
  }

  std::vector<nn::Tensor> hs =
      per_row_recurrence ? HiddenStatesPerRow(attacker_ids, sequences, T)
                         : HiddenStates(attacker_ids, sequences, T);
  std::vector<DecisionBatch> batches;

  nn::Tensor feats;  // [item embeddings; node embeddings] for tree gathers
  const bool use_tree = tree_ != nullptr;
  if (use_tree) {
    feats = nn::ConcatRows(item_emb_.table(), node_emb_);
  }

  for (std::size_t t = 0; t < T; ++t) {
    nn::Tensor dht = dnn_.Forward(hs[t]);  // (rows x dim)
    switch (config_.action_space) {
      case ActionSpaceKind::kPlain: {
        nn::Tensor scores =
            nn::MatMul(dht, nn::Transpose(item_emb_.table()));
        nn::Tensor logp = nn::LogSoftmax(scores);
        nn::Tensor onehot = nn::Tensor::Zeros(rows, num_items_);
        DecisionBatch batch;
        for (std::size_t r = 0; r < rows; ++r) {
          onehot.set(r, trajectories[r]->steps[t].item, 1.0f);
          batch.old_log_probs.push_back(
              trajectories[r]->steps[t].old_log_probs[0]);
          batch.traj_index.push_back(r);
        }
        batch.new_log_probs = nn::RowSum(nn::Mul(logp, onehot));
        batches.push_back(std::move(batch));
        break;
      }
      case ActionSpaceKind::kBPlain: {
        // Root decision over the two set pseudo-nodes.
        nn::Tensor root_scores = nn::MatMul(dht, nn::Transpose(set_emb_));
        nn::Tensor root_logp = nn::LogSoftmax(root_scores);
        nn::Tensor root_onehot = nn::Tensor::Zeros(rows, 2);
        DecisionBatch root_batch;
        // In-set decision: full item scores with out-of-set logits masked.
        nn::Tensor scores =
            nn::MatMul(dht, nn::Transpose(item_emb_.table()));
        nn::Tensor mask = nn::Tensor::Zeros(rows, num_items_);
        nn::Tensor item_onehot = nn::Tensor::Zeros(rows, num_items_);
        DecisionBatch item_batch;
        for (std::size_t r = 0; r < rows; ++r) {
          const SampledStep& step = trajectories[r]->steps[t];
          const int set_choice = step.path[0];
          root_onehot.set(r, static_cast<std::size_t>(set_choice), 1.0f);
          root_batch.old_log_probs.push_back(step.old_log_probs[0]);
          root_batch.traj_index.push_back(r);
          const bool targets_chosen = set_choice == 0;
          for (std::size_t j = 0; j < num_items_; ++j) {
            const bool in_set = (is_target_[j] != 0) == targets_chosen;
            if (!in_set) mask.set(r, j, -1e9f);
          }
          item_onehot.set(r, step.item, 1.0f);
          item_batch.old_log_probs.push_back(step.old_log_probs[1]);
          item_batch.traj_index.push_back(r);
        }
        root_batch.new_log_probs =
            nn::RowSum(nn::Mul(root_logp, root_onehot));
        batches.push_back(std::move(root_batch));
        nn::Tensor logp = nn::LogSoftmax(nn::Add(scores, mask));
        item_batch.new_log_probs = nn::RowSum(nn::Mul(logp, item_onehot));
        batches.push_back(std::move(item_batch));
        break;
      }
      case ActionSpaceKind::kBcbtPopular:
      case ActionSpaceKind::kBcbtRandom:
      case ActionSpaceKind::kCbtUnbiased: {
        // Group decisions by depth so each group is one batched gather.
        std::size_t max_decisions = 0;
        for (std::size_t r = 0; r < rows; ++r) {
          max_decisions = std::max(
              max_decisions, trajectories[r]->steps[t].path.size() - 1);
        }
        for (std::size_t d = 0; d < max_decisions; ++d) {
          std::vector<std::size_t> row_idx;
          std::vector<std::size_t> chosen_rows;
          std::vector<std::size_t> other_rows;
          DecisionBatch batch;
          for (std::size_t r = 0; r < rows; ++r) {
            const SampledStep& step = trajectories[r]->steps[t];
            if (step.path.size() < d + 2) continue;
            const int chosen = step.path[d + 1];
            const int other = tree_->Sibling(chosen);
            row_idx.push_back(r);
            chosen_rows.push_back(NodeFeatureRow(chosen));
            other_rows.push_back(NodeFeatureRow(other));
            batch.old_log_probs.push_back(step.old_log_probs[d]);
            batch.traj_index.push_back(r);
          }
          if (row_idx.empty()) continue;
          nn::Tensor q = nn::Rows(dht, row_idx);
          nn::Tensor ch = nn::Rows(feats, chosen_rows);
          nn::Tensor ot = nn::Rows(feats, other_rows);
          nn::Tensor diff = nn::Sub(nn::RowDot(q, ot), nn::RowDot(q, ch));
          // log sigmoid(o_ch - o_ot) = -softplus(o_ot - o_ch)
          batch.new_log_probs = nn::Scale(nn::Softplus(diff), -1.0f);
          batches.push_back(std::move(batch));
        }
        break;
      }
    }
  }
  return batches;
}

}  // namespace poisonrec::core
