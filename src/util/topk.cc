#include "util/topk.h"

namespace poisonrec {

std::vector<std::size_t> TopKIndices(const std::vector<double>& scores,
                                     std::size_t k) {
  std::vector<std::size_t> idx(scores.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto better = [&scores](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  if (k >= idx.size()) {
    std::sort(idx.begin(), idx.end(), better);
    return idx;
  }
  // Select-then-sort: O(n + k log k) versus partial_sort's O(n log k).
  // `better` is a total order (ties broken by index), so the selected
  // set and its final ordering are identical to a full sort.
  const auto mid = idx.begin() + static_cast<std::ptrdiff_t>(k);
  std::nth_element(idx.begin(), mid, idx.end(), better);
  std::sort(idx.begin(), mid, better);
  idx.resize(k);
  return idx;
}

}  // namespace poisonrec
