// Adaptive-defender tests: the DefendedEnvironment's sweep/ban/filter
// semantics, determinism through the full decorator stack
// (DefendedEnvironment over FaultyEnvironment), defender-state
// serialization, and the end-to-end acceptance campaign — a pool-less
// attacker collapses under permanent bans while a pooled attacker
// sustains most of the undefended damage, bit-identically across runs
// and across a crash + checkpoint resume.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "defense/detector.h"
#include "env/defended.h"
#include "env/fault.h"
#include "rec/registry.h"

namespace poisonrec::core {
namespace {

const SleepFn kNoSleep = [](double) {};

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct Fixture {
  explicit Fixture(std::size_t num_attackers = 4)
      : environment(MakeLog(), rec::MakeRecommender("ItemPop").value(),
                    MakeEnvConfig(num_attackers)) {}

  static data::Dataset MakeLog() {
    data::SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 60;
    cfg.num_interactions = 800;
    cfg.seed = 3;
    return data::GenerateSynthetic(cfg);
  }

  static env::EnvironmentConfig MakeEnvConfig(std::size_t num_attackers) {
    env::EnvironmentConfig cfg;
    cfg.num_attackers = num_attackers;
    cfg.trajectory_length = 6;
    cfg.num_target_items = 3;
    cfg.num_candidate_originals = 20;
    cfg.top_k = 5;
    cfg.seed = 11;
    return cfg;
  }

  static PoisonRecConfig MakeAttackerConfig() {
    PoisonRecConfig cfg;
    cfg.samples_per_step = 6;
    cfg.batch_size = 6;
    cfg.update_epochs = 2;
    cfg.policy.embedding_dim = 8;
    cfg.seed = 7;
    return cfg;
  }

  env::AttackEnvironment environment;
};

/// Repetitive session: maximally suspicious to ClickEntropyDetector.
env::Trajectory Repetitive(std::size_t attacker, std::size_t length = 6) {
  env::Trajectory t;
  t.attacker_index = attacker;
  t.items.assign(length, 0);
  return t;
}

/// All-distinct session: entropy score exactly 0 (never a ban candidate).
env::Trajectory Diverse(std::size_t attacker, std::size_t length = 6) {
  env::Trajectory t;
  t.attacker_index = attacker;
  for (std::size_t i = 0; i < length; ++i) t.items.push_back(1 + i);
  return t;
}

env::DefenseProfile EntropyProfile(std::size_t interval, std::size_t bans) {
  env::DefenseProfile profile;
  profile.detection_interval = interval;
  profile.bans_per_sweep = bans;
  return profile;
}

TEST(DefendedEnvironmentTest, NoSweepBeforeTheFirstIntervalBoundary) {
  Fixture f;
  env::DefendedEnvironment platform(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(/*interval=*/10, /*bans=*/1));
  for (std::uint64_t q = 0; q < 10; ++q) {
    ASSERT_TRUE(platform.TryEvaluate({Repetitive(0)}, q).ok());
  }
  EXPECT_EQ(platform.stats().sweeps, 0u);
  EXPECT_TRUE(platform.BannedAccounts().empty());

  // Query 10 crosses the boundary: the sweep audits the accumulated
  // history and bans the (only) suspicious account.
  ASSERT_TRUE(platform.TryEvaluate({Repetitive(0)}, 10).ok());
  EXPECT_EQ(platform.stats().sweeps, 1u);
  EXPECT_TRUE(platform.IsBanned(0));
}

TEST(DefendedEnvironmentTest, SweepBansTopSuspicionWithAccountTieBreak) {
  Fixture f;
  env::DefendedEnvironment platform(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(/*interval=*/4, /*bans=*/1));
  // Accounts 0 and 1 click repetitively (entropy score 1.0, tied);
  // accounts 2 and 3 click all-distinct items (score 0: no candidate).
  const std::vector<env::Trajectory> fleet = {Repetitive(0), Repetitive(1),
                                              Diverse(2), Diverse(3)};
  for (std::uint64_t q = 0; q < 4; ++q) {
    ASSERT_TRUE(platform.TryEvaluate(fleet, q).ok());
  }
  ASSERT_TRUE(platform.TryEvaluate(fleet, 4).ok());  // triggers the sweep

  // Tie at suspicion 1.0 breaks toward the lower account index.
  EXPECT_TRUE(platform.IsBanned(0));
  EXPECT_FALSE(platform.IsBanned(1));
  EXPECT_FALSE(platform.IsBanned(2));
  const std::vector<env::BanEvent> events = platform.ban_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_id, 4u);
  EXPECT_EQ(events[0].attacker_index, 0u);
  EXPECT_EQ(events[0].user_id, f.environment.AttackerUserId(0));
  EXPECT_GT(events[0].suspicion, 0.0);
}

TEST(DefendedEnvironmentTest, BannedSubmissionsAreFilteredFromTheReward) {
  Fixture f;
  env::DefendedEnvironment platform(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(/*interval=*/2, /*bans=*/1));
  ASSERT_TRUE(platform.TryEvaluate({Repetitive(0)}, 0).ok());
  ASSERT_TRUE(platform.TryEvaluate({Repetitive(0)}, 2).ok());  // sweep: ban 0
  ASSERT_TRUE(platform.IsBanned(0));

  // A banned account's clicks never reach the poison log: the defended
  // reward equals the clean environment's reward for the survivors only.
  const auto filtered = platform.TryEvaluate({Repetitive(0), Diverse(3)}, 3);
  ASSERT_TRUE(filtered.ok());
  EXPECT_DOUBLE_EQ(*filtered, f.environment.Evaluate({Diverse(3)}));
  EXPECT_EQ(platform.stats().filtered_trajectories, 2u);
}

TEST(DefendedEnvironmentTest, RetryAttemptsDoNotDoubleCountHistory) {
  Fixture f;
  env::DefendedEnvironment platform(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(/*interval=*/100, /*bans=*/1));
  ASSERT_TRUE(platform.TryEvaluate({Diverse(2)}, 0, /*attempt=*/0).ok());
  const std::uint64_t once = platform.stats().recorded_clicks;
  EXPECT_EQ(once, 6u);
  // A retry of the same query id lands no additional history.
  ASSERT_TRUE(platform.TryEvaluate({Diverse(2)}, 0, /*attempt=*/1).ok());
  EXPECT_EQ(platform.stats().recorded_clicks, once);
  // A new query id does.
  ASSERT_TRUE(platform.TryEvaluate({Diverse(2)}, 1).ok());
  EXPECT_EQ(platform.stats().recorded_clicks, 2 * once);
}

TEST(DefendedEnvironmentTest, ObserverAndLenientModesNeverBan) {
  Fixture f;
  // bans_per_sweep = 0: pure observer.
  env::DefendedEnvironment observer(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(/*interval=*/2, /*bans=*/0));
  // ban_probability = 0: candidates are flagged but never executed.
  env::DefenseProfile lenient = EntropyProfile(2, 2);
  lenient.ban_probability = 0.0;
  env::DefendedEnvironment merciful(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      lenient);
  for (std::uint64_t q = 0; q <= 6; ++q) {
    ASSERT_TRUE(observer.TryEvaluate({Repetitive(0)}, q).ok());
    ASSERT_TRUE(merciful.TryEvaluate({Repetitive(0)}, q).ok());
  }
  EXPECT_GE(observer.stats().sweeps, 3u);
  EXPECT_TRUE(observer.BannedAccounts().empty());
  EXPECT_GE(merciful.stats().sweeps, 3u);
  EXPECT_TRUE(merciful.BannedAccounts().empty());
}

// Satellite: decorator stacking. The defended layer over the faulty layer
// must stay deterministic end to end — same seeds, same query/attempt
// ids, same rewards, same ban sequence.
TEST(DefendedEnvironmentTest, StackOverFaultyEnvironmentIsDeterministic) {
  env::FaultProfile faults;
  faults.query_failure_rate = 0.3;
  faults.injection_drop_rate = 0.1;
  faults.shadow_ban_rate = 0.1;
  faults.reward_noise_stddev = 0.5;
  faults.seed = 17;

  auto run = [&faults]() {
    Fixture f;
    env::FaultyEnvironment faulty(&f.environment, faults);
    env::DefendedEnvironment platform(
        &faulty, defense::MakeDefaultEnsemble(), EntropyProfile(4, 1));
    std::vector<double> rewards;
    for (std::uint64_t q = 0; q < 16; ++q) {
      const std::vector<env::Trajectory> fleet = {
          Repetitive(0), Repetitive(1), Diverse(2), Diverse(3)};
      // Retry transient faults with explicit attempt ids, like the driver.
      for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
        const auto result = platform.TryEvaluate(fleet, q, attempt);
        if (result.ok()) {
          rewards.push_back(*result);
          break;
        }
      }
    }
    return std::make_pair(rewards, platform.ban_events());
  };

  const auto [rewards_a, events_a] = run();
  const auto [rewards_b, events_b] = run();
  ASSERT_EQ(rewards_a.size(), rewards_b.size());
  for (std::size_t i = 0; i < rewards_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(rewards_a[i], rewards_b[i]) << "query " << i;
  }
  ASSERT_EQ(events_a.size(), events_b.size());
  ASSERT_FALSE(events_a.empty());  // the defender actually acted
  for (std::size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_EQ(events_a[i].query_id, events_b[i].query_id);
    EXPECT_EQ(events_a[i].attacker_index, events_b[i].attacker_index);
    EXPECT_DOUBLE_EQ(events_a[i].suspicion, events_b[i].suspicion);
  }
}

TEST(DefendedEnvironmentTest, SerializeRestoreRoundTripsAndContinues) {
  Fixture f;
  env::DefendedEnvironment original(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(3, 1));
  const std::vector<env::Trajectory> fleet = {Repetitive(0), Repetitive(1),
                                              Diverse(2)};
  for (std::uint64_t q = 0; q < 5; ++q) {
    ASSERT_TRUE(original.TryEvaluate(fleet, q).ok());
  }
  ASSERT_FALSE(original.BannedAccounts().empty());
  const std::string blob = original.SerializeState();

  env::DefendedEnvironment restored(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(3, 1));
  ASSERT_TRUE(restored.RestoreState(blob).ok());
  EXPECT_EQ(restored.BannedAccounts(), original.BannedAccounts());
  EXPECT_EQ(restored.ban_events().size(), original.ban_events().size());
  EXPECT_EQ(restored.stats().recorded_clicks,
            original.stats().recorded_clicks);
  EXPECT_EQ(restored.stats().bans, original.stats().bans);

  // Both continue identically: same future sweeps, same future bans.
  for (std::uint64_t q = 5; q < 12; ++q) {
    const auto a = original.TryEvaluate(fleet, q);
    const auto b = restored.TryEvaluate(fleet, q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(*a, *b) << "query " << q;
  }
  EXPECT_EQ(original.BannedAccounts(), restored.BannedAccounts());
}

TEST(DefendedEnvironmentTest, RestoreRejectsGarbageAndWrongShape) {
  Fixture f;
  env::DefendedEnvironment platform(
      &f.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(3, 1));
  EXPECT_EQ(platform.RestoreState("definitely not a blob").code(),
            StatusCode::kInvalidArgument);

  // A blob serialized for a different account count is rejected.
  Fixture bigger(/*num_attackers=*/7);
  env::DefendedEnvironment other(
      &bigger.environment, std::make_unique<defense::ClickEntropyDetector>(),
      EntropyProfile(3, 1));
  EXPECT_EQ(platform.RestoreState(other.SerializeState()).code(),
            StatusCode::kInvalidArgument);

  // A truncated blob is rejected and leaves the defender unchanged.
  ASSERT_TRUE(platform.TryEvaluate({Diverse(2)}, 0).ok());
  const std::string blob = platform.SerializeState();
  EXPECT_EQ(platform.RestoreState(blob.substr(0, blob.size() / 2)).code(),
            StatusCode::kIoError);
  EXPECT_EQ(platform.stats().recorded_clicks, 6u);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: the defended campaign.
// ---------------------------------------------------------------------------

struct CampaignFixture {
  explicit CampaignFixture(std::size_t reserve)
      : environment(Fixture::MakeLog(),
                    rec::MakeRecommender("ItemPop").value(),
                    Fixture::MakeEnvConfig(6 + reserve)) {}

  env::AttackEnvironment environment;
};

env::DefenseProfile AggressiveProfile(const PoisonRecConfig& cfg) {
  env::DefenseProfile defense;
  // One sweep per training step, one ban per sweep: the 6-account fleet
  // is gone within 6 steps unless the pool replaces it.
  defense.detection_interval = cfg.samples_per_step;
  defense.bans_per_sweep = 1;
  return defense;
}

TEST(DefendedCampaignTest, PoolLessCollapsesWhilePooledSustains) {
  const std::size_t kSteps = 15;
  const auto cfg = Fixture::MakeAttackerConfig();

  // Undefended reference.
  CampaignFixture undefended(0);
  PoisonRecAttacker reference(&undefended.environment, cfg);
  reference.Train(kSteps);
  const double undefended_recnum =
      undefended.environment.Evaluate(reference.BestAttack());
  ASSERT_GT(undefended_recnum, 0.0);

  // Pool-less defended campaign: bans shrink the fleet for good.
  CampaignFixture poolless_fixture(0);
  env::FaultyEnvironment poolless_faulty(&poolless_fixture.environment, {});
  env::DefendedEnvironment poolless_platform(
      &poolless_faulty, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker poolless(&poolless_fixture.environment, cfg);
  poolless.AttachDefendedEnvironment(&poolless_platform, kNoSleep);
  const auto poolless_stats = poolless.Train(kSteps);

  ASSERT_EQ(poolless_stats.size(), kSteps);  // degrades, never aborts
  EXPECT_TRUE(poolless.campaign_status().ok());
  const std::size_t banned = poolless_stats.back().banned_accounts;
  EXPECT_GE(banned, 3u) << "defender banned fewer than half the fleet";
  EXPECT_LE(poolless_stats.back().effective_attackers, 3u);

  // RecNum collapse: what the surviving fleet can still deliver through
  // the platform's ban filter is a fraction of the undefended attack.
  std::vector<env::Trajectory> delivered;
  for (const env::Trajectory& t : poolless.BestAttack()) {
    if (!poolless_platform.IsBanned(t.attacker_index)) delivered.push_back(t);
  }
  const double collapsed =
      poolless_fixture.environment.Evaluate(delivered);

  // Pooled defended campaign: same defender, 30 replacement accounts.
  auto pooled_cfg = cfg;
  pooled_cfg.pool.enabled = true;
  pooled_cfg.pool.reserve_accounts = 30;
  pooled_cfg.pool.min_live_attackers = 2;
  CampaignFixture pooled_fixture(30);
  env::FaultyEnvironment pooled_faulty(&pooled_fixture.environment, {});
  env::DefendedEnvironment pooled_platform(
      &pooled_faulty, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker pooled(&pooled_fixture.environment, pooled_cfg);
  pooled.AttachDefendedEnvironment(&pooled_platform, kNoSleep);
  const auto pooled_stats = pooled.Train(kSteps);

  ASSERT_EQ(pooled_stats.size(), kSteps);
  EXPECT_TRUE(pooled.campaign_status().ok());
  for (const auto& s : pooled_stats) {
    EXPECT_GE(s.effective_attackers, pooled_cfg.pool.min_live_attackers)
        << "step " << s.step;
  }
  // The reserve absorbed the bans: the policy's full fleet stays live.
  EXPECT_EQ(pooled_stats.back().effective_attackers, pooled.num_slots());
  EXPECT_GT(pooled_stats.back().banned_accounts, 0u);
  EXPECT_LT(pooled_stats.back().pool_remaining, 30u);

  const double sustained =
      pooled_fixture.environment.Evaluate(pooled.BestAttack());
  EXPECT_GE(sustained, 0.6 * undefended_recnum)
      << "pooled " << sustained << " vs undefended " << undefended_recnum;
  EXPECT_GE(sustained, collapsed)
      << "the pool should at least match the collapsed fleet";
}

TEST(DefendedCampaignTest, PoolExhaustionAbortsWithResourceExhausted) {
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.pool.enabled = true;
  cfg.pool.reserve_accounts = 2;
  cfg.pool.min_live_attackers = 5;  // of 6 slots: one dead slot too many
  CampaignFixture f(2);
  env::FaultyEnvironment faulty(&f.environment, {});
  env::DefendedEnvironment platform(
      &faulty, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker attacker(&f.environment, cfg);
  attacker.AttachDefendedEnvironment(&platform, kNoSleep);

  const auto stats = attacker.Train(30);
  EXPECT_LT(stats.size(), 30u) << "campaign should abort early";
  EXPECT_EQ(attacker.campaign_status().code(),
            StatusCode::kResourceExhausted);
  ASSERT_NE(attacker.account_pool(), nullptr);
  EXPECT_LT(attacker.account_pool()->live_slots(),
            cfg.pool.min_live_attackers);
  EXPECT_EQ(attacker.account_pool()->reserve_remaining(), 0u);
}

TEST(DefendedCampaignTest, TrainGuardedAbortsOnExhaustionWithoutRollback) {
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.pool.enabled = true;
  cfg.pool.reserve_accounts = 1;
  cfg.pool.min_live_attackers = 6;  // abort on the very first dead slot
  cfg.guard.enabled = true;
  CampaignFixture f(1);
  env::FaultyEnvironment faulty(&f.environment, {});
  env::DefendedEnvironment platform(
      &faulty, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker attacker(&f.environment, cfg);
  attacker.AttachDefendedEnvironment(&platform, kNoSleep);

  const std::string path = TempPath("poisonrec_defended_guard_ckpt.bin");
  const GuardedTrainResult result = attacker.TrainGuarded(30, path);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  // Resource exhaustion is an incident, not a numerical anomaly: the
  // self-healing driver must not roll back or retry its way out of it.
  EXPECT_EQ(result.rollbacks, 0u);
  EXPECT_GE(result.incidents, 1u);
  std::remove(path.c_str());
}

TEST(DefendedCampaignTest, SameSeedRunsAreBitIdentical) {
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.pool.enabled = true;
  cfg.pool.reserve_accounts = 10;
  cfg.pool.min_live_attackers = 2;

  auto run = [&cfg]() {
    CampaignFixture f(10);
    env::FaultProfile faults;
    faults.query_failure_rate = 0.2;
    faults.injection_drop_rate = 0.1;
    faults.seed = 17;
    env::FaultyEnvironment faulty(&f.environment, faults);
    env::DefendedEnvironment platform(
        &faulty, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
    PoisonRecAttacker attacker(&f.environment, cfg);
    attacker.AttachDefendedEnvironment(&platform, kNoSleep);
    const auto stats = attacker.Train(8);
    return std::make_tuple(stats, platform.ban_events(),
                           attacker.best_episode().reward);
  };

  const auto [stats_a, events_a, best_a] = run();
  const auto [stats_b, events_b, best_b] = run();
  EXPECT_DOUBLE_EQ(best_a, best_b);
  ASSERT_EQ(stats_a.size(), stats_b.size());
  for (std::size_t i = 0; i < stats_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(stats_a[i].mean_reward, stats_b[i].mean_reward);
    EXPECT_DOUBLE_EQ(stats_a[i].loss, stats_b[i].loss);
    EXPECT_EQ(stats_a[i].banned_accounts, stats_b[i].banned_accounts);
    EXPECT_EQ(stats_a[i].pool_remaining, stats_b[i].pool_remaining);
    EXPECT_EQ(stats_a[i].effective_attackers, stats_b[i].effective_attackers);
  }
  ASSERT_EQ(events_a.size(), events_b.size());
  ASSERT_FALSE(events_a.empty());
  for (std::size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_EQ(events_a[i].query_id, events_b[i].query_id);
    EXPECT_EQ(events_a[i].attacker_index, events_b[i].attacker_index);
  }
}

TEST(DefendedCampaignTest, CrashAndResumeReplaysTheExactBanSequence) {
  auto cfg = Fixture::MakeAttackerConfig();
  cfg.pool.enabled = true;
  cfg.pool.reserve_accounts = 10;
  cfg.pool.min_live_attackers = 2;

  // Uninterrupted reference: 8 steps.
  CampaignFixture f_full(10);
  env::FaultyEnvironment faulty_full(&f_full.environment, {});
  env::DefendedEnvironment platform_full(
      &faulty_full, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker uninterrupted(&f_full.environment, cfg);
  uninterrupted.AttachDefendedEnvironment(&platform_full, kNoSleep);
  const auto reference = uninterrupted.Train(8);

  // Crashed run: 4 steps, checkpoint, kill — then a brand-new process:
  // fresh platform (empty defender state), fresh attacker, LoadCheckpoint.
  const std::string path = TempPath("poisonrec_defended_resume_ckpt.bin");
  CampaignFixture f_killed(10);
  env::FaultyEnvironment faulty_a(&f_killed.environment, {});
  {
    env::DefendedEnvironment platform_a(
        &faulty_a, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
    PoisonRecAttacker first_process(&f_killed.environment, cfg);
    first_process.AttachDefendedEnvironment(&platform_a, kNoSleep);
    first_process.Train(4);
    ASSERT_TRUE(first_process.SaveCheckpoint(path).ok());
  }
  env::DefendedEnvironment platform_b(
      &faulty_a, defense::MakeDefaultEnsemble(), AggressiveProfile(cfg));
  PoisonRecAttacker resumed(&f_killed.environment, cfg);
  resumed.AttachDefendedEnvironment(&platform_b, kNoSleep);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed.steps_taken(), 4u);
  const auto tail = resumed.Train(4);

  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_DOUBLE_EQ(reference[4 + i].mean_reward, tail[i].mean_reward);
    EXPECT_DOUBLE_EQ(reference[4 + i].loss, tail[i].loss);
    EXPECT_EQ(reference[4 + i].banned_accounts, tail[i].banned_accounts);
    EXPECT_EQ(reference[4 + i].pool_remaining, tail[i].pool_remaining);
    EXPECT_EQ(reference[4 + i].effective_attackers,
              tail[i].effective_attackers);
  }
  // The resumed platform replayed the full-run ban sequence exactly.
  const auto events_full = platform_full.ban_events();
  const auto events_resumed = platform_b.ban_events();
  ASSERT_EQ(events_full.size(), events_resumed.size());
  ASSERT_FALSE(events_full.empty());
  for (std::size_t i = 0; i < events_full.size(); ++i) {
    EXPECT_EQ(events_full[i].query_id, events_resumed[i].query_id);
    EXPECT_EQ(events_full[i].attacker_index, events_resumed[i].attacker_index);
    EXPECT_DOUBLE_EQ(events_full[i].suspicion, events_resumed[i].suspicion);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace poisonrec::core
