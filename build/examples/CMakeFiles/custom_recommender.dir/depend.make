# Empty dependencies file for custom_recommender.
# This may be replaced when dependencies are built.
