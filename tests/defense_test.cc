// Detection tests: individual detector signals, AUC math, and the
// end-to-end property that the ensemble separates attack fleets from
// organic users.
#include "defense/detector.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "attack/heuristics.h"
#include "data/synthetic.h"
#include "env/environment.h"
#include "rec/registry.h"

namespace poisonrec::defense {
namespace {

data::Dataset OrganicLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 120;
  cfg.num_items = 80;
  cfg.num_interactions = 2400;
  cfg.seed = 55;
  return data::GenerateSynthetic(cfg);
}

TEST(AucTest, PerfectSeparation) {
  std::vector<double> scores = {0.1, 0.2, 0.9, 0.95};
  EXPECT_DOUBLE_EQ(DetectionAuc(scores, {2, 3}), 1.0);
}

TEST(AucTest, InvertedSeparation) {
  std::vector<double> scores = {0.9, 0.8, 0.1, 0.2};
  EXPECT_DOUBLE_EQ(DetectionAuc(scores, {2, 3}), 0.0);
}

TEST(AucTest, TiesGiveChance) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(DetectionAuc(scores, {1, 3}), 0.5);
}

// Degenerate inputs: a production defender feeds DetectionAuc whatever
// the campaign produced — including logs with no fakes left (all banned),
// all-fake audit slices, and constant detector scores. All must return
// the chance value 0.5 instead of crashing or dividing by zero.
TEST(AucTest, NoFakeUsersGivesChance) {
  EXPECT_DOUBLE_EQ(DetectionAuc({0.1, 0.4, 0.9}, {}), 0.5);
}

TEST(AucTest, AllUsersFakeGivesChance) {
  EXPECT_DOUBLE_EQ(DetectionAuc({0.1, 0.4, 0.9}, {0, 1, 2}), 0.5);
}

TEST(AucTest, ConstantScoresGiveChance) {
  EXPECT_DOUBLE_EQ(DetectionAuc({0.7, 0.7, 0.7, 0.7, 0.7}, {0, 4}), 0.5);
}

TEST(AucTest, OutOfRangeFakeIdsAreIgnored) {
  // Fake ids beyond the score vector cannot be compared; when they are
  // the only fakes the result degenerates to chance.
  EXPECT_DOUBLE_EQ(DetectionAuc({0.1, 0.9}, {17, 99}), 0.5);
  // In-range fakes still dominate the computation.
  EXPECT_DOUBLE_EQ(DetectionAuc({0.1, 0.9}, {1, 99}), 1.0);
}

TEST(AucTest, EmptyScoresGiveChance) {
  EXPECT_DOUBLE_EQ(DetectionAuc({}, {0}), 0.5);
}

TEST(ColdItemAffinityTest, FlagsColdClickers) {
  data::Dataset log(4, 10);
  log.AddSequence(0, {0, 0, 0, 1});  // popular items
  log.AddSequence(1, {0, 1, 0, 1});
  log.AddSequence(2, {9, 9, 9, 9});  // cold item only
  log.AddSequence(3, {0, 1, 1, 0});
  ColdItemAffinityDetector detector;
  auto scores = detector.Score(log);
  EXPECT_GT(scores[2], scores[0]);
  EXPECT_GT(scores[2], scores[1]);
  EXPECT_GT(scores[2], scores[3]);
}

TEST(ClickEntropyTest, FlagsRepetitiveSessions) {
  data::Dataset log(3, 10);
  log.AddSequence(0, {1, 2, 3, 4, 5, 6, 7, 8});  // diverse
  log.AddSequence(1, {5, 5, 5, 5, 5, 5, 5, 5});  // one item
  log.AddSequence(2, {1, 5, 1, 5, 1, 5, 1, 5});  // two items
  ClickEntropyDetector detector;
  auto scores = detector.Score(log);
  EXPECT_GT(scores[1], scores[2]);
  EXPECT_GT(scores[2], scores[0]);
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
  EXPECT_NEAR(scores[1], 1.0, 1e-9);
}

TEST(ClickEntropyTest, EmptyUserScoresZero) {
  data::Dataset log(2, 5);
  log.AddSequence(0, {1, 2});
  ClickEntropyDetector detector;
  EXPECT_EQ(detector.Score(log)[1], 0.0);
}

TEST(FleetSimilarityTest, FlagsNearDuplicates) {
  data::Dataset log(5, 20);
  log.AddSequence(0, {1, 2, 3, 4});
  log.AddSequence(1, {10, 11, 12, 13});
  log.AddSequence(2, {5, 6, 7, 8});      // fleet member A
  log.AddSequence(3, {5, 6, 7, 8});      // fleet member B (identical)
  log.AddSequence(4, {14, 15, 16, 17});
  FleetSimilarityDetector detector;
  auto scores = detector.Score(log);
  EXPECT_DOUBLE_EQ(scores[2], 1.0);
  EXPECT_DOUBLE_EQ(scores[3], 1.0);
  EXPECT_LT(scores[0], 0.5);
  EXPECT_LT(scores[4], 0.5);
}

TEST(FleetSimilarityTest, ShortSessionsSkipped) {
  data::Dataset log(2, 5);
  log.AddSequence(0, {1});
  log.AddSequence(1, {1});
  FleetSimilarityDetector detector(/*min_length=*/3);
  auto scores = detector.Score(log);
  EXPECT_EQ(scores[0], 0.0);
  EXPECT_EQ(scores[1], 0.0);
}

TEST(EnsembleTest, FleetTopsOrganicPopulation) {
  // A realistic organic base plus a 2-account fleet that repetitively
  // clicks a (relatively) cold item: the ensemble must rank both fleet
  // accounts above the organic median by a wide margin.
  data::Dataset organic = OrganicLog();
  data::Dataset log(organic.num_users() + 2, organic.num_items());
  for (data::UserId u = 0; u < organic.num_users(); ++u) {
    log.AddSequence(u, organic.Sequence(u));
  }
  const data::ItemId cold = organic.ItemsByPopularity().front();
  const data::UserId fleet_a = organic.num_users();
  const data::UserId fleet_b = organic.num_users() + 1;
  log.AddSequence(fleet_a, {cold, cold, cold, cold, cold, cold});
  log.AddSequence(fleet_b, {cold, cold, cold, cold, cold, cold});

  auto ensemble = MakeDefaultEnsemble();
  auto scores = ensemble->Score(log);
  std::vector<double> organic_scores(scores.begin(),
                                     scores.begin() + organic.num_users());
  std::sort(organic_scores.begin(), organic_scores.end());
  const double p90 = organic_scores[organic_scores.size() * 9 / 10];
  EXPECT_GT(scores[fleet_a], p90);
  EXPECT_GT(scores[fleet_b], p90);
}

// End-to-end: inject a Popular Attack fleet into an organic log and
// verify the ensemble separates attacker accounts with high AUC.
TEST(DetectionEndToEnd, EnsembleDetectsHeuristicFleet) {
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 10;
  cfg.trajectory_length = 12;
  cfg.num_target_items = 4;
  cfg.seed = 9;
  env::AttackEnvironment system(OrganicLog(),
                                rec::MakeRecommender("ItemPop").value(),
                                cfg);
  attack::PopularAttack attack;
  const auto trajectories = attack.GenerateAttack(system, 3);

  // Materialize the poisoned log the platform would see.
  data::Dataset poisoned = system.dataset().Clone();
  std::vector<data::UserId> fakes;
  for (const auto& t : trajectories) {
    const data::UserId u = system.AttackerUserId(t.attacker_index);
    poisoned.AddSequence(u, t.items);
    fakes.push_back(u);
  }

  auto ensemble = MakeDefaultEnsemble();
  const double auc = DetectionAuc(ensemble->Score(poisoned), fakes);
  EXPECT_GT(auc, 0.9);
}

TEST(MitigationTest, RemovesHighestScorers) {
  data::Dataset log(4, 5);
  log.AddSequence(0, {0, 1});
  log.AddSequence(1, {1, 2});
  log.AddSequence(2, {2, 3});
  log.AddSequence(3, {3, 4});
  std::vector<double> scores = {0.1, 0.9, 0.2, 0.8};
  data::Dataset filtered = RemoveSuspiciousUsers(log, scores, 0.5);
  EXPECT_EQ(filtered.Sequence(0).size(), 2u);
  EXPECT_EQ(filtered.Sequence(1).size(), 0u);  // removed
  EXPECT_EQ(filtered.Sequence(2).size(), 2u);
  EXPECT_EQ(filtered.Sequence(3).size(), 0u);  // removed
  EXPECT_EQ(filtered.num_users(), 4u);         // capacity preserved
}

TEST(MitigationTest, ZeroFractionIsIdentity) {
  data::Dataset log(2, 3);
  log.AddSequence(0, {0, 1});
  std::vector<double> scores = {0.5, 0.5};
  data::Dataset filtered = RemoveSuspiciousUsers(log, scores, 0.0);
  EXPECT_EQ(filtered.num_interactions(), log.num_interactions());
}

TEST(MitigationTest, FullFractionRemovesEveryoneButKeepsCapacity) {
  data::Dataset log(3, 6);
  log.AddSequence(0, {0, 1});
  log.AddSequence(1, {2, 3});
  log.AddSequence(2, {4, 5});
  std::vector<double> scores = {0.3, 0.1, 0.2};
  data::Dataset filtered = RemoveSuspiciousUsers(log, scores, 1.0);
  EXPECT_EQ(filtered.num_interactions(), 0u);
  // Capacities are preserved so the same ranker can retrain on the
  // filtered log without re-indexing.
  EXPECT_EQ(filtered.num_users(), 3u);
  EXPECT_EQ(filtered.num_items(), 6u);
}

TEST(MitigationTest, TiesAtTheCutoffBreakByUserId) {
  // Users 1 and 3 tie at the top score, but only one removal slot exists
  // (fraction 0.25 of 4 users): the lower user id is removed.
  data::Dataset log(4, 5);
  for (data::UserId u = 0; u < 4; ++u) log.AddSequence(u, {0, 1});
  std::vector<double> scores = {0.1, 0.9, 0.2, 0.9};
  data::Dataset filtered = RemoveSuspiciousUsers(log, scores, 0.25);
  EXPECT_EQ(filtered.Sequence(1).size(), 0u);  // removed: tie, lower id
  EXPECT_EQ(filtered.Sequence(3).size(), 2u);  // kept
  EXPECT_EQ(filtered.Sequence(0).size(), 2u);
  EXPECT_EQ(filtered.Sequence(2).size(), 2u);
}

TEST(MitigationTest, DefenseRestoresBaselineOnItemPop) {
  // Attack -> detect -> filter -> retrain: removing the flagged accounts
  // should undo most of the promotion.
  env::EnvironmentConfig cfg;
  cfg.num_attackers = 10;
  cfg.trajectory_length = 24;
  cfg.num_target_items = 2;
  cfg.num_candidate_originals = 25;
  cfg.top_k = 5;
  cfg.seed = 19;
  env::AttackEnvironment system(OrganicLog(),
                                rec::MakeRecommender("ItemPop").value(),
                                cfg);
  attack::PopularAttack attack;
  const auto trajectories = attack.GenerateAttack(system, 5);
  const double poisoned_recnum = system.Evaluate(trajectories);
  ASSERT_GT(poisoned_recnum, system.BaselineRecNum());

  data::Dataset poisoned_log = system.dataset().Clone();
  for (const auto& t : trajectories) {
    poisoned_log.AddSequence(system.AttackerUserId(t.attacker_index),
                             t.items);
  }
  // Fleet similarity is the decisive signal against a rigid heuristic
  // fleet (AUC ~1 here). Note: cold-item affinity *inverts* under attacks
  // this heavy — the targets become the most popular items in the log —
  // which is why detectors must be combined in practice.
  FleetSimilarityDetector detector;
  data::Dataset cleaned = RemoveSuspiciousUsers(
      poisoned_log, detector.Score(poisoned_log), 0.1);

  // Retrain on the cleaned log and re-measure target exposure.
  auto ranker = rec::MakeRecommender("ItemPop").value();
  ranker->Fit(cleaned);
  const double cleaned_recnum = system.RecNum(*ranker);
  EXPECT_LT(cleaned_recnum, poisoned_recnum * 0.5);
}

}  // namespace
}  // namespace poisonrec::defense
