#!/usr/bin/env bash
# CI gate: sanitizer build + full test suite + the robustness harnesses.
#
#   tools/ci_check.sh [build-dir]
#
# Builds with ASan/UBSan (POISONREC_SANITIZE=address;undefined), runs
# ctest, then runs bench_fault_resilience, bench_guardrail_overhead,
# bench_obs_overhead (gates telemetry cost at <3%/step), and
# bench_defended_attack at a tiny scale so their machine-readable JSON
# lands under results/, runs a defended-campaign smoke through the CLI
# (adaptive defender + replacement pool end to end), and finishes with a
# fully instrumented campaign whose telemetry artifacts (--metrics-out /
# --trace-out / --events-out) are checked by tools/validate_telemetry.py.
# After the campaign smokes, a fleet smoke exercises the orchestrator's
# graceful-shutdown contract (SIGTERM mid-fleet -> exit 2, --resume ->
# exit 0, report/journal validated), a shared-fleet smoke runs two
# --shared workers over one journal dir (SIGKILL one, the survivor
# seizes its lease and finishes; a --submit-dir drop mid-run must
# preempt; `fleet --status` is queried mid-run (healthy, exit 0) and
# after the SIGKILL (worker stale, exit 2), with both JSON exports
# validated by validate_telemetry.py --fleet-status against the
# journal's campaign set), an fsck smoke audits the fleet's state dir and then injects
# one storage fault per damage class offline (checkpoint bit-flip,
# checkpoint truncation, torn journal tail) checking the verdicts and
# exit codes `poisonrec fsck` promises, and a separate TSan build runs
# the scheduler/journal/lease/chaos tests race-free.
# Override the scale knobs via the usual POISONREC_* env vars.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-san}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPOISONREC_SANITIZE=address;undefined"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Small-scale harness runs; JSON outputs land in results/.
export POISONREC_SCALE="${POISONREC_SCALE:-0.05}"
export POISONREC_STEPS="${POISONREC_STEPS:-2}"
export POISONREC_SAMPLES="${POISONREC_SAMPLES:-4}"
export POISONREC_EVAL_USERS="${POISONREC_EVAL_USERS:-50}"
export POISONREC_OUT="${POISONREC_OUT:-results}"
mkdir -p "${POISONREC_OUT}"

"${BUILD_DIR}/bench/bench_fault_resilience"
"${BUILD_DIR}/bench/bench_guardrail_overhead"
"${BUILD_DIR}/bench/bench_obs_overhead"
"${BUILD_DIR}/bench/bench_defended_attack"
"${BUILD_DIR}/bench/bench_storage_integrity"

# Perf smoke: quick-mode kernel microbench + the end-to-end TrainStep
# timing comparison (which exits nonzero if any engine or thread count
# changes a reward). The attacker sweep stays at CI scale; the batched
# engine must beat the per-row baseline on the update+sample phases by
# >= 3x at N=200 and the reward sequences must agree exactly.
POISONREC_REPEATS=2 "${BUILD_DIR}/bench/bench_kernels"
POISONREC_ATTACKER_SWEEP="${POISONREC_ATTACKER_SWEEP:-20,200}" \
  "${BUILD_DIR}/bench/bench_train_step_timing"
POISONREC_GATE_THREADS="${POISONREC_THREADS:-4}" \
  python3 - "${POISONREC_OUT}/train_step_timing.json" <<'EOF'
import json, os, sys
rows = json.load(open(sys.argv[1]))
mismatches = sum(int(r["reward_mismatches"]) for r in rows)
if mismatches:
    sys.exit(f"engine identity gate: {mismatches} reward mismatches")
threads = int(os.environ["POISONREC_GATE_THREADS"])
gate = [r for r in rows
        if r["engine"] == "batched" and int(r["attackers"]) == 200
        and int(r["threads"]) == threads]
if not gate:
    sys.exit("engine speedup gate: no batched N=200 row at "
             f"threads={threads} in sweep")
speedup = min(float(r["update_sample_speedup"]) for r in gate)
if speedup < 3.0:
    sys.exit(f"engine speedup gate: batched update+sample speedup "
             f"{speedup:.2f}x over the per-row baseline at N=200 "
             "(need >= 3.0x)")
print(f"engine gate: 0 mismatches across {len(rows)} rows, "
      f"batched {speedup:.2f}x per-row at N=200/{threads}t")
EOF

# Defended-campaign smoke: adaptive defender in the loop, pooled attacker,
# crash-safe checkpointing. Must finish without exhausting the pool.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
"${BUILD_DIR}/tools/poisonrec" campaign \
  --dataset=Steam --scale="${POISONREC_SCALE}" \
  --steps="${POISONREC_STEPS}" --samples="${POISONREC_SAMPLES}" \
  --eval-users="${POISONREC_EVAL_USERS}" \
  --defense --defense-interval=4 --defense-bans=1 \
  --pool-reserve=10 --pool-min-live=2 \
  --checkpoint="${SMOKE_DIR}/defended.ckpt" --checkpoint-every=1

# Telemetry smoke: instrumented campaign with enough adversity that every
# pillar lights up — a moderate NaN-reward rate trips the guard on some
# steps (guard + rollback events) while leaving most steps to run their
# PPO update (ppo/update spans), and the defender's sweeps ban attacker
# accounts (ban events). The run is seeded, so the validated artifact
# contents are reproducible.
"${BUILD_DIR}/tools/poisonrec" campaign \
  --dataset=Steam --scale="${POISONREC_SCALE}" \
  --steps=10 --samples="${POISONREC_SAMPLES}" \
  --eval-users="${POISONREC_EVAL_USERS}" \
  --fault-nan=0.08 --guard --guard-rollbacks=50 \
  --checkpoint="${SMOKE_DIR}/telemetry.ckpt" \
  --defense --defense-interval=2 --defense-bans=1 \
  --pool-reserve=10 --pool-min-live=2 \
  --metrics-out="${SMOKE_DIR}/metrics.json" \
  --trace-out="${SMOKE_DIR}/trace.json" \
  --events-out="${SMOKE_DIR}/events.jsonl"
python3 tools/validate_telemetry.py \
  --metrics "${SMOKE_DIR}/metrics.json" \
  --trace "${SMOKE_DIR}/trace.json" \
  --events "${SMOKE_DIR}/events.jsonl" \
  --require-event-types step,guard,ban,checkpoint,campaign_begin,campaign_end

# Fleet smoke: orchestrate a small sweep, SIGTERM it mid-run (graceful
# shutdown must checkpoint at the step boundary and journal the frontier,
# exiting 2 = partial), then --resume to completion (exit 0) and validate
# the consolidated report + journal. Exercises the same path as the
# SIGKILL test in tests/fleet_recovery_test.cc but through the CLI.
FLEET_DIR="${SMOKE_DIR}/fleet"
mkdir -p "${FLEET_DIR}"
cat > "${FLEET_DIR}/plan.json" <<'EOF'
{
  "name": "ci-fleet-smoke",
  "dataset": "Steam",
  "scale": 0.05,
  "defaults": {
    "steps": 14, "samples_per_step": 4, "attackers": 8,
    "trajectory_length": 8, "targets": 4, "embedding_dim": 8,
    "eval_users": 50
  },
  "campaigns": [
    {"id": "smoke0", "seed": 31},
    {"id": "smoke1", "seed": 32, "fault_preset": "flaky"},
    {"id": "smoke2", "seed": 33, "priority": 1}
  ]
}
EOF
fleet_args=(fleet "--plan=${FLEET_DIR}/plan.json"
  "--journal=${FLEET_DIR}/journal.jsonl"
  "--checkpoint-dir=${FLEET_DIR}/ckpts"
  "--report-json=${FLEET_DIR}/report.json"
  "--report-csv=${FLEET_DIR}/report.csv"
  --max-concurrent=1)
"${BUILD_DIR}/tools/poisonrec" "${fleet_args[@]}" &
FLEET_PID=$!
# Wait until at least two steps are durably journaled so the SIGTERM is
# genuinely mid-fleet, then ask for a graceful shutdown.
for _ in $(seq 1 600); do
  committed="$(grep -c '"checkpointed"' "${FLEET_DIR}/journal.jsonl" \
               2>/dev/null || true)"
  if [ "${committed:-0}" -ge 2 ]; then
    break
  fi
  sleep 0.1
done
kill -TERM "${FLEET_PID}" 2>/dev/null || true
FLEET_RC=0
wait "${FLEET_PID}" || FLEET_RC=$?
if [ "${FLEET_RC}" -ne 2 ]; then
  echo "fleet smoke: expected exit 2 after SIGTERM, got ${FLEET_RC}" >&2
  exit 1
fi
"${BUILD_DIR}/tools/poisonrec" "${fleet_args[@]}" --resume
python3 tools/validate_telemetry.py \
  --fleet-report "${FLEET_DIR}/report.json" \
  --fleet-journal "${FLEET_DIR}/journal.jsonl"

# Post-run status: every campaign done, every worker snapshot carries a
# clean-shutdown marker, so the read-only status surface must exit 0 and
# its JSON export must validate (cross-checked against the journal's
# campaign set).
STATUS_RC=0
"${BUILD_DIR}/tools/poisonrec" fleet --status \
  "--journal=${FLEET_DIR}/journal.jsonl" \
  "--checkpoint-dir=${FLEET_DIR}/ckpts" \
  "--status-json=${FLEET_DIR}/status.json" || STATUS_RC=$?
if [ "${STATUS_RC}" -ne 0 ]; then
  echo "fleet smoke: post-run --status expected exit 0, got" \
       "${STATUS_RC}" >&2
  exit 1
fi
python3 tools/validate_telemetry.py \
  --fleet-journal "${FLEET_DIR}/journal.jsonl" \
  --fleet-status "${FLEET_DIR}/status.json"

# Shared-fleet smoke: two --shared workers over one journal/checkpoint
# dir. Worker A is SIGKILLed mid-campaign; worker B seizes the stale
# lease (fencing token bump) and must finish the whole plan, exit 0.
# While B runs, a high-priority campaign dropped into --submit-dir must
# preempt the running low-priority one (journal gains a "preempted"
# record) and still leave everything done. Exercises the same paths as
# tests/fleet_shared_test.cc but through the CLI, cross-process.
SHARED_DIR="${SMOKE_DIR}/shared"
mkdir -p "${SHARED_DIR}/inbox"
cat > "${SHARED_DIR}/plan.json" <<'EOF'
{
  "name": "ci-shared-smoke",
  "dataset": "Steam",
  "scale": 0.05,
  "defaults": {
    "steps": 12, "samples_per_step": 4, "attackers": 8,
    "trajectory_length": 8, "targets": 4, "embedding_dim": 8,
    "eval_users": 50
  },
  "campaigns": [
    {"id": "shared0", "seed": 41},
    {"id": "shared1", "seed": 42},
    {"id": "shared2", "seed": 43}
  ]
}
EOF
shared_args=(fleet "--plan=${SHARED_DIR}/plan.json"
  "--journal=${SHARED_DIR}/journal.jsonl"
  "--checkpoint-dir=${SHARED_DIR}/ckpts"
  --shared --lease-ttl=0.5 --max-concurrent=1)
"${BUILD_DIR}/tools/poisonrec" "${shared_args[@]}" --worker-id=wA \
  "--report-json=${SHARED_DIR}/report.wA.json" &
WA_PID=$!
# Let worker A durably commit a couple of steps, then kill it without
# ceremony — no signal handler runs, so its lease goes stale and its
# last journal line may be torn.
for _ in $(seq 1 600); do
  committed="$(cat "${SHARED_DIR}"/journal*.jsonl 2>/dev/null \
               | grep -c '"checkpointed"' || true)"
  if [ "${committed:-0}" -ge 2 ]; then
    break
  fi
  sleep 0.1
done
# Mid-run status: worker A is alive and heartbeating, so the cluster
# must read healthy (exit 0) while naming the worker and every campaign.
shared_status_args=(fleet --status
  "--journal=${SHARED_DIR}/journal.jsonl"
  "--checkpoint-dir=${SHARED_DIR}/ckpts")
STATUS_RC=0
"${BUILD_DIR}/tools/poisonrec" "${shared_status_args[@]}" \
  "--status-json=${SHARED_DIR}/status.mid.json" || STATUS_RC=$?
if [ "${STATUS_RC}" -ne 0 ]; then
  echo "shared smoke: mid-run --status expected exit 0, got" \
       "${STATUS_RC}" >&2
  exit 1
fi
if ! grep -q '"worker":"wA"' "${SHARED_DIR}/status.mid.json"; then
  echo "shared smoke: mid-run status does not name worker wA" >&2
  exit 1
fi
python3 tools/validate_telemetry.py \
  --fleet-journal "${SHARED_DIR}/journal.jsonl" \
  --fleet-status "${SHARED_DIR}/status.mid.json"
kill -9 "${WA_PID}" 2>/dev/null || true
WA_RC=0
wait "${WA_PID}" 2>/dev/null || WA_RC=$?
# Worker A died without ceremony: the status surface must classify its
# non-shutdown snapshot over a dead pid as stale and exit 2 (degraded).
# Guard on the wait status: if A outran the kill (exit < 128 = no
# signal), it published a clean-shutdown snapshot and healthy/exit-0 is
# the correct answer — the deterministic stale assertion lives in
# tests/fleet_status_test.cc.
STATUS_RC=0
"${BUILD_DIR}/tools/poisonrec" "${shared_status_args[@]}" \
  "--status-json=${SHARED_DIR}/status.dead.json" || STATUS_RC=$?
if [ "${WA_RC}" -ge 128 ]; then
  if [ "${STATUS_RC}" -ne 2 ]; then
    echo "shared smoke: post-SIGKILL --status expected exit 2, got" \
         "${STATUS_RC}" >&2
    exit 1
  fi
  if ! grep -q '"health":"stale"' "${SHARED_DIR}/status.dead.json"; then
    echo "shared smoke: SIGKILLed worker wA not classified stale" >&2
    exit 1
  fi
else
  echo "shared smoke: worker A finished before SIGKILL" \
       "(exit ${WA_RC}); skipping the stale-classification check"
fi
python3 tools/validate_telemetry.py \
  --fleet-journal "${SHARED_DIR}/journal.jsonl" \
  --fleet-status "${SHARED_DIR}/status.dead.json"
"${BUILD_DIR}/tools/poisonrec" "${shared_args[@]}" --worker-id=wB \
  "--submit-dir=${SHARED_DIR}/inbox" \
  "--report-json=${SHARED_DIR}/report.wB.json" &
WB_PID=$!
# Once worker B has a campaign running, submit a higher-priority one so
# the watchdog has to preempt at the next step boundary.
for _ in $(seq 1 600); do
  running="$(grep -c '"running"' "${SHARED_DIR}/journal.wB.jsonl" \
             2>/dev/null || true)"
  if [ "${running:-0}" -ge 1 ]; then
    break
  fi
  sleep 0.1
done
cat > "${SHARED_DIR}/inbox/urgent.json" <<'EOF'
{
  "id": "urgent", "priority": 10, "steps": 2, "samples_per_step": 4,
  "attackers": 8, "trajectory_length": 8, "targets": 4,
  "embedding_dim": 8, "eval_users": 50, "seed": 47
}
EOF
WB_RC=0
wait "${WB_PID}" || WB_RC=$?
if [ "${WB_RC}" -ne 0 ]; then
  echo "shared smoke: surviving worker expected exit 0, got ${WB_RC}" >&2
  exit 1
fi
if ! cat "${SHARED_DIR}"/journal*.jsonl | grep -q '"preempted"'; then
  echo "shared smoke: no 'preempted' journal record — preemption never" \
       "fired" >&2
  exit 1
fi
if ! grep -q '"id":"urgent","state":"done"' "${SHARED_DIR}/report.wB.json"
then
  echo "shared smoke: submitted campaign 'urgent' did not finish" >&2
  exit 1
fi
python3 tools/validate_telemetry.py \
  --fleet-report "${SHARED_DIR}/report.wB.json" \
  --fleet-journal "${SHARED_DIR}/journal.jsonl"

# Fsck smoke: audit the fleet smoke's (healthy) state dir, then inject
# one storage fault per damage class offline and check the verdict table
# and exit codes the CLI contract promises (0 clean, 2 repairable-only,
# 1 unrepairable). Complements tests/fsck_chaos_test.cc, which sweeps
# live in-process fault schedules; this leg exercises the shipped binary
# against byte-level damage the way an operator would hit it.
FSCK_DIR="${SMOKE_DIR}/fsck"
fsck_expect() {  # fsck_expect <case> <expected-exit> <verdict-grep>
  local rc=0 out
  out="$("${BUILD_DIR}/tools/poisonrec" fsck \
    "--journal=${FSCK_DIR}/journal.jsonl" \
    "--checkpoint-dir=${FSCK_DIR}/ckpts")" || rc=$?
  if [ "${rc}" -ne "$2" ]; then
    echo "fsck smoke ($1): expected exit $2, got ${rc}" >&2
    printf '%s\n' "${out}" >&2
    exit 1
  fi
  if ! printf '%s\n' "${out}" | grep -q "$3"; then
    echo "fsck smoke ($1): no verdict matching '$3' in report" >&2
    printf '%s\n' "${out}" >&2
    exit 1
  fi
}

# Healthy: the completed fleet state dir must come back clean.
rm -rf "${FSCK_DIR}"; cp -r "${FLEET_DIR}" "${FSCK_DIR}"
fsck_expect healthy 0 '0 unrepairable'

# Bit rot: flip one interior checkpoint byte — the integrity footer CRC
# must flag it corrupt, and with no token-suffixed sibling to fall back
# on the damage is unrepairable.
rm -rf "${FSCK_DIR}"; cp -r "${FLEET_DIR}" "${FSCK_DIR}"
python3 - "${FSCK_DIR}/ckpts/smoke0.ckpt" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x10
open(path, "wb").write(bytes(data))
EOF
fsck_expect checkpoint_bitflip 1 'corrupt'

# Interrupted publish: truncate a checkpoint below its header — torn.
rm -rf "${FSCK_DIR}"; cp -r "${FLEET_DIR}" "${FSCK_DIR}"
python3 - "${FSCK_DIR}/ckpts/smoke1.ckpt" <<'EOF'
import sys
with open(sys.argv[1], "r+b") as f:
    f.truncate(16)
EOF
fsck_expect checkpoint_truncated 1 'torn'

# Crash frontier: a half-written final journal record is tolerated by
# replay, so the damage is repairable-only (exit 2).
rm -rf "${FSCK_DIR}"; cp -r "${FLEET_DIR}" "${FSCK_DIR}"
printf '{"type":"campaign","id":"smoke0","sta' \
  >> "${FSCK_DIR}/journal.jsonl"
fsck_expect journal_torn_tail 2 'torn_tail'

# TSan leg: the fleet scheduler, watchdog, journal, and lease paths are
# intentionally multi-threaded control paths, and the batched attacker
# engine adds row-partitioned kernels, threaded sparse matmuls, and a
# parallel recorded-backward schedule; run their tests under
# ThreadSanitizer (incompatible with ASan, hence the separate build
# tree).
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPOISONREC_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "$(nproc)" \
  --target orch_test lease_test fleet_recovery_test fleet_shared_test \
           fsck_chaos_test fleet_status_test status_test \
           batched_engine_test
"${TSAN_DIR}/tests/orch_test"
"${TSAN_DIR}/tests/lease_test"
"${TSAN_DIR}/tests/fleet_recovery_test"
"${TSAN_DIR}/tests/fleet_shared_test"
"${TSAN_DIR}/tests/fsck_chaos_test"
"${TSAN_DIR}/tests/status_test"
"${TSAN_DIR}/tests/fleet_status_test"
"${TSAN_DIR}/tests/batched_engine_test"

echo "ci_check: OK"
