// GEMM kernel microbenchmark: the seed scalar triple loop (the MatMul
// the repo shipped with) versus the cache-blocked kernels of
// nn/kernels.h, single-threaded and threaded, over the matrix shapes
// the system actually runs: the LSTM gate products and DNN head of the
// policy (src/nn/module.cc), the batched PPO recompute, the AutoRec
// encoder, plus the canonical 256x256x256 acceptance shape.
//
// Timing protocol: min over POISONREC_REPEATS repetitions (default 5)
// of the mean time across enough inner iterations to fill ~10ms, so
// small shapes are not measured at clock resolution. Emits a table and
// machine-readable JSON (results/kernel_timing.json).
//
//   POISONREC_REPEATS  min-of-N repetitions (default 5; CI smoke uses 2)
//   POISONREC_THREADS  threaded-kernel thread count (default 4)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "nn/kernels.h"
#include "util/random.h"
#include "util/timer.h"

namespace poisonrec::bench {
namespace {

struct Shape {
  std::string label;
  std::size_t m, k, n;
};

// The seed kernel: the naive i-k-j loop with the dense zero-skip branch
// that MatMul used before the kernel layer existed. Baseline for the
// speedup column.
void SeedGemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

// Min-of-N of the per-call time of fn(), with enough inner iterations
// per sample to amortize timer resolution.
template <typename Fn>
double MinSeconds(std::size_t repeats, const Fn& fn) {
  // Calibrate the iteration count off one warm-up call.
  Timer calibrate;
  fn();
  const double once = std::max(calibrate.ElapsedSeconds(), 1e-9);
  const std::size_t iters =
      std::max<std::size_t>(1, static_cast<std::size_t>(0.01 / once));
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    Timer timer;
    for (std::size_t it = 0; it < iters; ++it) fn();
    const double per_call = timer.ElapsedSeconds() / static_cast<double>(iters);
    if (r == 0 || per_call < best) best = per_call;
  }
  return best;
}

std::string Fmt(double v, const char* format) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

int Main() {
  const BenchConfig config = LoadBenchConfig();
  const std::size_t repeats = EnvSize("POISONREC_REPEATS", 5);
  const std::size_t threads = EnvSize("POISONREC_THREADS", 4);

  const std::size_t dim = config.embedding_dim;
  const std::vector<Shape> shapes = {
      // LSTM cell gate products as the batched engine issues them: all N
      // attacker rows of one episode (SampleEpisode / RecomputeLogProbs)
      // and the full M·N-row stack of SampleEpisodesBatched. The old
      // m=1 per-row shape is gone from the engine — every LSTM GEMM now
      // carries at least the N attacker rows.
      {"lstm_batch", config.num_attackers, dim, 4 * dim},
      {"lstm_batch_step",
       config.samples_per_step * config.num_attackers, dim, 4 * dim},
      // DNN head: hidden → item logits over the candidate set.
      {"dnn_head", config.num_attackers, dim, 2 * config.candidate_originals},
      // PPO recompute: all M·T decisions of a step in one product.
      {"ppo_recompute", config.samples_per_step * config.trajectory_length,
       dim, 4 * dim},
      // AutoRec-style encoder on a mid-size catalog.
      {"autorec_encode", 500, dim, 500},
      // Canonical acceptance shape.
      {"gemm_256", 256, 256, 256},
  };

  PrintTableHeader({"shape", "mkn", "seed_ms", "kernel_ms",
                    "kern_mt_ms", "speedup_1t", "speedup_mt"});
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"shape", "m", "k", "n", "threads", "seed_ms", "kernel_ms",
                  "kernel_mt_ms", "gflops_mt", "speedup_1t", "speedup_mt"});

  Rng rng(config.seed);
  for (const Shape& s : shapes) {
    std::vector<float> a(s.m * s.k);
    std::vector<float> b(s.k * s.n);
    std::vector<float> c(s.m * s.n, 0.0f);
    for (float& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

    const double seed_s = MinSeconds(
        repeats, [&] { SeedGemm(s.m, s.k, s.n, a.data(), b.data(), c.data()); });
    nn::SetNumThreads(1);
    const double one_s = MinSeconds(repeats, [&] {
      nn::kernels::GemmNN(s.m, s.k, s.n, a.data(), b.data(), c.data());
    });
    nn::SetNumThreads(threads);
    const double mt_s = MinSeconds(repeats, [&] {
      nn::kernels::GemmNN(s.m, s.k, s.n, a.data(), b.data(), c.data());
    });
    nn::SetNumThreads(0);

    const double flops = 2.0 * static_cast<double>(s.m * s.k * s.n);
    const std::string mkn = std::to_string(s.m) + "x" + std::to_string(s.k) +
                            "x" + std::to_string(s.n);
    PrintTableRow({s.label, mkn, Fmt(seed_s * 1e3, "%.4f"),
                   Fmt(one_s * 1e3, "%.4f"), Fmt(mt_s * 1e3, "%.4f"),
                   Fmt(seed_s / one_s, "%.2f"), Fmt(seed_s / mt_s, "%.2f")});
    rows.push_back({s.label, std::to_string(s.m), std::to_string(s.k),
                    std::to_string(s.n), std::to_string(threads),
                    Fmt(seed_s * 1e3, "%.5f"), Fmt(one_s * 1e3, "%.5f"),
                    Fmt(mt_s * 1e3, "%.5f"), Fmt(flops / mt_s * 1e-9, "%.3f"),
                    Fmt(seed_s / one_s, "%.3f"), Fmt(seed_s / mt_s, "%.3f")});
  }

  WriteCsvOutput(config, "kernel_timing.csv", rows);
  WriteJsonOutput(config, "kernel_timing.json", rows);
  return 0;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Main(); }
