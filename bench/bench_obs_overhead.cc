// Telemetry overhead harness: the obs subsystem (trace spans around every
// TrainStep phase, sharded metric counters in the GEMM kernels, and the
// per-step structured event stream) is meant to stay on in production
// campaigns, so its cost must be a small fraction of the step itself.
// Runs two identically-seeded attackers — telemetry fully off vs tracing
// enabled + event log attached — and compares mean per-step wall-clock.
// Acceptance (gated: nonzero exit on breach): overhead under 3%. Both
// runs must find the same best RecNum, confirming telemetry is
// observe-only.
#include <cstdio>
#include <filesystem>

#include "bench/common.h"
#include "core/ppo.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace poisonrec::bench {
namespace {

constexpr double kMaxOverheadPct = 3.0;

struct RunResult {
  double total_seconds = 0.0;
  double mean_step_seconds = 0.0;
  double best_recnum = 0.0;
};

RunResult RunOne(const BenchConfig& config, const std::string& ranker,
                 bool instrumented, const std::string& events_path) {
  auto environment =
      MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
  core::PoisonRecConfig pr = MakePoisonRecConfig(
      config, core::ActionSpaceKind::kBcbtPopular, config.seed ^ 0x0b5u);
  core::PoisonRecAttacker attacker(environment.get(), pr);

  obs::EventLog event_log;
  obs::SetTracingEnabled(instrumented);
  if (instrumented) {
    if (!event_log.Open(events_path)) {
      std::printf("failed to open %s; instrumented run has no event log\n",
                  events_path.c_str());
    }
    attacker.SetEventLog(&event_log);
  }

  const auto stats = attacker.Train(config.training_steps);

  obs::SetTracingEnabled(false);
  obs::ClearTrace();

  RunResult result;
  for (const auto& s : stats) result.total_seconds += s.seconds;
  result.mean_step_seconds =
      stats.empty() ? 0.0 : result.total_seconds / stats.size();
  result.best_recnum = attacker.best_episode().reward;
  return result;
}

int Run() {
  BenchConfig config = LoadBenchConfig();
  const std::string ranker =
      config.rankers.empty() ? "ItemPop" : config.rankers.front();
  const std::string events_path =
      (std::filesystem::temp_directory_path() / "poisonrec_obs_overhead.jsonl")
          .string();
  std::printf(
      "== Telemetry overhead: obs on vs off (%s on Steam, scale=%.3g) ==\n\n",
      ranker.c_str(), config.scale);

  // Warm-up run so neither timed run pays first-touch costs (thread pool
  // spawn, metric registration), then alternate the two modes and keep
  // each mode's fastest repetition: the minimum is robust against
  // scheduler noise, which at bench scale is larger than the effect
  // being measured.
  (void)RunOne(config, ranker, false, events_path);
  RunResult off;
  RunResult on;
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult off_rep = RunOne(config, ranker, false, events_path);
    const RunResult on_rep = RunOne(config, ranker, true, events_path);
    if (rep == 0 || off_rep.mean_step_seconds < off.mean_step_seconds) {
      off = off_rep;
    }
    if (rep == 0 || on_rep.mean_step_seconds < on.mean_step_seconds) {
      on = on_rep;
    }
  }
  std::remove(events_path.c_str());

  const double overhead_pct =
      off.mean_step_seconds > 0.0
          ? (on.mean_step_seconds / off.mean_step_seconds - 1.0) * 100.0
          : 0.0;

  PrintTableHeader({"mode", "steps", "mean_s", "total_s", "RecNum"});
  char buffer[32];
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"mode", "steps", "mean_step_seconds", "total_seconds", "best_recnum",
       "overhead_pct"});
  const RunResult* results[] = {&off, &on};
  const char* names[] = {"telemetry_off", "telemetry_on"};
  for (int i = 0; i < 2; ++i) {
    std::snprintf(buffer, sizeof(buffer), "%.6f",
                  results[i]->mean_step_seconds);
    const std::string mean_s = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.4f", results[i]->total_seconds);
    const std::string total_s = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.2f", i == 0 ? 0.0 : overhead_pct);
    PrintTableRow({names[i], std::to_string(config.training_steps), mean_s,
                   total_s, FormatCount(results[i]->best_recnum)});
    rows.push_back({names[i], std::to_string(config.training_steps), mean_s,
                    total_s, FormatCount(results[i]->best_recnum), buffer});
  }
  std::printf("\ntelemetry overhead: %.2f%% per step (%s identical results)\n",
              overhead_pct,
              off.best_recnum == on.best_recnum ? "with" : "WITHOUT");
  WriteJsonOutput(config, "obs_overhead.json", rows);

  if (overhead_pct > kMaxOverheadPct) {
    std::printf("FAIL: telemetry overhead %.2f%% exceeds the %.1f%% budget\n",
                overhead_pct, kMaxOverheadPct);
    return 1;
  }
  std::printf("telemetry overhead within the %.1f%% budget\n",
              kMaxOverheadPct);
  return 0;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Run(); }
