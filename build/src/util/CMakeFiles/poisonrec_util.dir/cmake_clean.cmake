file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_util.dir/csv.cc.o"
  "CMakeFiles/poisonrec_util.dir/csv.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/logging.cc.o"
  "CMakeFiles/poisonrec_util.dir/logging.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/parallel.cc.o"
  "CMakeFiles/poisonrec_util.dir/parallel.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/random.cc.o"
  "CMakeFiles/poisonrec_util.dir/random.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/stats.cc.o"
  "CMakeFiles/poisonrec_util.dir/stats.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/status.cc.o"
  "CMakeFiles/poisonrec_util.dir/status.cc.o.d"
  "CMakeFiles/poisonrec_util.dir/topk.cc.o"
  "CMakeFiles/poisonrec_util.dir/topk.cc.o.d"
  "libpoisonrec_util.a"
  "libpoisonrec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
