#include "rec/candidates.h"

#include <algorithm>

#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/topk.h"

namespace poisonrec::rec {

RandomCandidateGenerator::RandomCandidateGenerator(
    std::size_t num_original_items, std::vector<data::ItemId> target_items,
    std::size_t num_original, std::uint64_t seed)
    : num_original_items_(num_original_items),
      targets_(std::move(target_items)),
      num_original_(std::min(num_original, num_original_items)),
      seed_(seed) {
  POISONREC_CHECK_GT(num_original_items_, 0u);
}

std::vector<data::ItemId> RandomCandidateGenerator::Candidates(
    data::UserId user) const {
  // Per-user deterministic draw: hash the seed with the user id.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ull * (user + 1)));
  std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(num_original_items_, num_original_);
  std::vector<data::ItemId> candidates(picks.begin(), picks.end());
  candidates.insert(candidates.end(), targets_.begin(), targets_.end());
  return candidates;
}

PersonalizedCandidateGenerator::PersonalizedCandidateGenerator(
    const data::Dataset& clean_log, std::size_t num_original_items,
    std::vector<data::ItemId> target_items, std::size_t num_original)
    : targets_(std::move(target_items)) {
  POISONREC_CHECK_LE(num_original_items, clean_log.num_items());
  num_original = std::min(num_original, num_original_items);

  // Item-item co-occurrence from adjacent clicks in the clean log.
  std::vector<std::unordered_map<data::ItemId, double>> covis(
      num_original_items);
  for (data::UserId u = 0; u < clean_log.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = clean_log.Sequence(u);
    for (std::size_t p = 0; p + 1 < seq.size(); ++p) {
      const data::ItemId a = seq[p];
      const data::ItemId b = seq[p + 1];
      if (a == b || a >= num_original_items || b >= num_original_items) {
        continue;
      }
      covis[a][b] += 1.0;
      covis[b][a] += 1.0;
    }
  }
  // Popularity backfill order (most popular first).
  std::vector<data::ItemId> by_pop = clean_log.ItemsByPopularity();
  std::reverse(by_pop.begin(), by_pop.end());

  per_user_.resize(clean_log.num_users());
  for (data::UserId u = 0; u < clean_log.num_users(); ++u) {
    std::unordered_map<data::ItemId, double> scores;
    for (data::ItemId i : clean_log.Sequence(u)) {
      if (i >= num_original_items) continue;
      for (const auto& [j, c] : covis[i]) scores[j] += c;
    }
    std::vector<data::ItemId> ids;
    ids.reserve(scores.size());
    std::vector<double> vals;
    vals.reserve(scores.size());
    for (const auto& [j, c] : scores) {
      ids.push_back(j);
      vals.push_back(c);
    }
    std::vector<data::ItemId> picked = TopKByScore(ids, vals, num_original);
    // Backfill thin histories with globally popular items.
    std::unordered_set<data::ItemId> have(picked.begin(), picked.end());
    for (data::ItemId p : by_pop) {
      if (picked.size() >= num_original) break;
      if (p >= num_original_items || have.count(p) > 0) continue;
      picked.push_back(p);
      have.insert(p);
    }
    per_user_[u] = std::move(picked);
  }
}

std::vector<data::ItemId> PersonalizedCandidateGenerator::Candidates(
    data::UserId user) const {
  std::vector<data::ItemId> out;
  if (user < per_user_.size()) out = per_user_[user];
  out.insert(out.end(), targets_.begin(), targets_.end());
  return out;
}

}  // namespace poisonrec::rec
