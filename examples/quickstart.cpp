// Quickstart: the smallest end-to-end PoisonRec run.
//
// 1. Generate an implicit-feedback log (a synthetic stand-in for Steam).
// 2. Stand up the black-box system: an ItemPop ranker pretrained on the
//    log, wrapped in an AttackEnvironment that only exposes RecNum.
//    (Swap the name for any of the 8 algorithms: BPR, NeuMF, GRU4Rec, ...)
// 3. Train the PoisonRec agent (LSTM policy + PPO + BCBT) against it.
// 4. Inject the best learned attack and report the damage.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/poisonrec.h"

using namespace poisonrec;

int main() {
  // -- 1. The platform's interaction log ------------------------------------
  data::SyntheticConfig data_config;
  data_config.num_users = 300;
  data_config.num_items = 200;
  data_config.num_interactions = 6000;
  data_config.seed = 42;
  data::Dataset log = data::GenerateSynthetic(data_config);
  std::printf("log: %zu users, %zu items, %zu interactions\n",
              log.num_users(), log.num_items(), log.num_interactions());

  // -- 2. The black-box recommender system ----------------------------------
  rec::FitConfig fit;
  fit.embedding_dim = 16;
  auto ranker = rec::MakeRecommender("ItemPop", fit).value();

  env::EnvironmentConfig env_config;
  env_config.num_attackers = 12;       // N fake accounts
  env_config.trajectory_length = 15;   // T clicks each
  env_config.num_target_items = 4;     // |I_t| new items to promote
  env_config.num_candidate_originals = 40;
  env_config.top_k = 10;
  env_config.seed = 7;
  env::AttackEnvironment system(log, std::move(ranker), env_config);
  std::printf("baseline RecNum (no attack): %.0f\n",
              system.BaselineRecNum());

  // -- 3. Train PoisonRec ----------------------------------------------------
  core::PoisonRecConfig attack_config;
  attack_config.samples_per_step = 8;   // M
  attack_config.batch_size = 8;         // B
  attack_config.update_epochs = 3;      // K
  attack_config.policy.embedding_dim = 16;
  attack_config.policy.action_space = core::ActionSpaceKind::kBcbtPopular;
  attack_config.seed = 99;
  core::PoisonRecAttacker attacker(&system, attack_config);

  for (int step = 0; step < 15; ++step) {
    core::TrainStepStats stats = attacker.TrainStep();
    std::printf(
        "step %2zu  mean RecNum %6.1f  best %6.0f  target-click ratio "
        "%.2f\n",
        stats.step, stats.mean_reward, stats.best_reward_so_far,
        stats.target_click_ratio);
  }

  // -- 4. The learned attack -------------------------------------------------
  const std::vector<env::Trajectory> best_attack = attacker.BestAttack();
  const double poisoned = system.Evaluate(best_attack);
  std::printf("\nRecNum after injecting the best learned attack: %.0f\n",
              poisoned);
  std::printf("first attacker's trajectory:");
  for (data::ItemId item : best_attack.front().items) {
    std::printf(" %zu%s", item,
                item >= system.num_original_items() ? "*" : "");
  }
  std::printf("   (* = target item)\n");
  return 0;
}
