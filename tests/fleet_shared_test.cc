// Cross-process shared-fleet tests: two `--shared` workers cooperate on
// one plan over a shared journal/checkpoint/lease directory.
//
//   1. SIGKILL takeover: a forked worker is killed mid-campaign; the
//      surviving worker seizes its expired lease, resumes from the
//      token-suffixed checkpoint, and the merged per-step rewards are
//      bit-identical to a single uninterrupted fleet.
//   2. Zombie fencing: a worker is SIGSTOPped (not killed) while holding
//      a lease; a sibling seizes the campaign with an incremented
//      fencing token; SIGCONT revives the zombie, whose late writes are
//      rejected by lease validation — it observes it was fenced and
//      exits cleanly, and the merged journal is uncorrupted.
//
// POSIX-only by construction (fork/kill/waitpid); gated like
// fleet_recovery_test.cc.
#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "orch/fleet.h"
#include "orch/journal.h"
#include "orch/spec.h"

namespace poisonrec::orch {
namespace {

data::Dataset MakeLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 110;
  cfg.num_interactions = 1800;
  cfg.seed = 5;
  return data::GenerateSynthetic(cfg);
}

/// Campaigns sized like fleet_recovery_test.cc: a few milliseconds per
/// step, enough steps that signals land mid-campaign.
FleetPlan SharedPlan(std::size_t campaigns) {
  FleetPlan plan;
  plan.name = "shared-fleet";
  for (std::size_t i = 0; i < campaigns; ++i) {
    CampaignSpec spec;
    spec.id = "shard" + std::to_string(i);
    spec.steps = 10;
    spec.samples_per_step = 4;
    spec.attackers = 8;
    spec.trajectory_length = 10;
    spec.num_target_items = 4;
    spec.embedding_dim = 8;
    spec.max_eval_users = 96;
    spec.seed = 21 + i * 17;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

FleetOptions SharedOptions(const std::string& dir,
                           const std::string& worker_id) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = dir + "/report." + worker_id + ".json";
  options.report_csv_path = "";
  // Fork safety: exactly one campaign at a time per worker.
  options.max_concurrent = 1;
  options.shared = true;
  options.worker_id = worker_id;
  options.lease_ttl_seconds = 0.5;
  return options;
}

FleetOptions ReferenceOptions(const std::string& dir) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = dir + "/report.json";
  options.report_csv_path = "";
  options.max_concurrent = 1;
  return options;
}

/// Total committed steps across the whole journal family (base file plus
/// every per-worker sibling).
std::uint64_t CommittedSteps(const std::string& journal_base) {
  const std::vector<std::string> files =
      FleetJournal::ListJournalFiles(journal_base);
  if (files.empty()) return 0;
  auto replay = FleetJournal::Replay(files);
  if (!replay.ok()) return 0;
  std::uint64_t total = 0;
  for (const auto& [id, entry] : replay->campaigns) {
    total += entry.steps_completed;
  }
  return total;
}

void ExpectBitIdentical(const FleetResult& reference,
                        const FleetResult& merged) {
  ASSERT_EQ(reference.outcomes.size(), merged.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    const CampaignOutcome& ref = reference.outcomes[i];
    const CampaignOutcome& got = merged.outcomes[i];
    EXPECT_EQ(ref.id, got.id);
    EXPECT_EQ(got.steps_completed, ref.steps_completed) << ref.id;
    ASSERT_EQ(ref.step_rewards.size(), got.step_rewards.size()) << ref.id;
    for (const auto& [step, reward] : ref.step_rewards) {
      ASSERT_TRUE(got.step_rewards.count(step))
          << ref.id << " lost step " << step;
      EXPECT_DOUBLE_EQ(reward, got.step_rewards.at(step))
          << ref.id << " step " << step;
    }
    EXPECT_DOUBLE_EQ(ref.best_reward, got.best_reward) << ref.id;
  }
}

TEST(FleetSharedTest, SigkilledWorkerIsSeizedBySiblingBitIdentically) {
  const auto base =
      std::filesystem::temp_directory_path() / "poisonrec_shared_sigkill";
  std::filesystem::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string shared_dir = (base / "shared").string();
  std::filesystem::create_directories(ref_dir);
  std::filesystem::create_directories(shared_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = SharedPlan(3);

  // Reference: one worker, never interrupted, not shared.
  FleetOrchestrator reference(plan, &log, ReferenceOptions(ref_dir));
  const FleetResult ref_result = reference.Run();
  ASSERT_EQ(ref_result.ExitCode(), 0) << ref_result.status;
  ASSERT_EQ(ref_result.done, 3u);

  // Worker A runs the shared plan in a forked child until killed.
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    FleetOrchestrator worker_a(plan, &log, SharedOptions(shared_dir, "wA"));
    worker_a.Run();
    _exit(0);
  }

  // Kill A once it has durably finished shard0 and is mid-shard1 (12 =
  // 10 + 2 under max_concurrent=1).
  const std::string journal_base = shared_dir + "/journal.jsonl";
  bool progressed = false;
  for (int i = 0; i < 2000; ++i) {
    if (CommittedSteps(journal_base) >= 12) {
      progressed = true;
      break;
    }
    int probe_status = 0;
    if (waitpid(child, &probe_status, WNOHANG) == child) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(progressed) << "worker A never committed 12 steps; committed="
                          << CommittedSteps(journal_base);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "worker A finished before SIGKILL - grow the plan";
  ASSERT_LT(CommittedSteps(journal_base), 30u)
      << "fleet finished before the kill";

  // Worker B joins the same shared directories. A's lease stops being
  // renewed, expires, and B seizes the campaign with an incremented
  // fencing token, resuming from A's token-suffixed checkpoint.
  FleetResult b_result;
  int exit_code = -1;
  for (int round = 0; round < 3 && exit_code != 0; ++round) {
    FleetOrchestrator worker_b(plan, &log, SharedOptions(shared_dir, "wB"));
    b_result = worker_b.Run();
    ASSERT_TRUE(b_result.status.ok()) << b_result.status;
    exit_code = b_result.ExitCode();
  }
  ASSERT_EQ(exit_code, 0);
  EXPECT_EQ(b_result.done, 3u);
  // shard0 finished by A before the kill: recovered from the merged
  // journals, not re-run.
  EXPECT_GE(b_result.recovered, 1u);
  // Both workers' journal files were merged into the final report.
  EXPECT_GE(b_result.journal_files_merged, 2u);

  ExpectBitIdentical(ref_result, b_result);
  std::filesystem::remove_all(base);
}

TEST(FleetSharedTest, SigstoppedZombieIsFencedAndItsLateWritesRejected) {
  const auto base =
      std::filesystem::temp_directory_path() / "poisonrec_shared_zombie";
  std::filesystem::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string shared_dir = (base / "shared").string();
  std::filesystem::create_directories(ref_dir);
  std::filesystem::create_directories(shared_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = SharedPlan(1);

  FleetOrchestrator reference(plan, &log, ReferenceOptions(ref_dir));
  const FleetResult ref_result = reference.Run();
  ASSERT_EQ(ref_result.ExitCode(), 0) << ref_result.status;

  // Worker A (the future zombie). Its exit code encodes the child-side
  // assertions: 41 = never observed being fenced, otherwise the fleet
  // exit code (0 once the sibling's terminal states are merged in).
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    FleetOrchestrator worker_a(plan, &log, SharedOptions(shared_dir, "wA"));
    const FleetResult result = worker_a.Run();
    if (result.fenced == 0) _exit(41);
    _exit(result.ExitCode());
  }

  // Stop (not kill) A once it holds the lease mid-campaign.
  const std::string journal_base = shared_dir + "/journal.jsonl";
  bool progressed = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t committed = CommittedSteps(journal_base);
    if (committed >= 2) {
      progressed = true;
      break;
    }
    int probe_status = 0;
    if (waitpid(child, &probe_status, WNOHANG) == child) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(child, SIGSTOP);
  ASSERT_TRUE(progressed) << "worker A never committed 2 steps";
  ASSERT_LT(CommittedSteps(journal_base), 10u)
      << "worker A finished before SIGSTOP - grow the campaign";

  // Worker B: A's heartbeats have stopped, so the lease expires and B
  // seizes shard0 with token+1, resumes from A's checkpoint frontier,
  // and finishes the plan.
  FleetOrchestrator worker_b(plan, &log, SharedOptions(shared_dir, "wB"));
  const FleetResult b_result = worker_b.Run();
  ASSERT_TRUE(b_result.status.ok()) << b_result.status;
  ASSERT_EQ(b_result.ExitCode(), 0);
  ASSERT_EQ(b_result.done, 1u);

  // Revive the zombie. Its next lease validation (step commit or
  // heartbeat renewal) fails the fencing check: it must stop writing,
  // count itself fenced, and still exit 0 because the campaign is
  // terminal in the merged journals.
  kill(child, SIGCONT);
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFEXITED(wait_status));
  EXPECT_NE(WEXITSTATUS(wait_status), 41)
      << "zombie worker never observed being fenced";
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);

  // The zombie's late writes were rejected: the merged journal family
  // replays to exactly the reference rewards, campaign done.
  auto merged = FleetJournal::Replay(FleetJournal::ListJournalFiles(
      journal_base));
  ASSERT_TRUE(merged.ok()) << merged.status();
  const CampaignReplay& shard0 = merged->campaigns.at("shard0");
  EXPECT_EQ(shard0.state, CampaignState::kDone);
  EXPECT_EQ(shard0.steps_completed, 10u);
  // The winning epoch is the seizure token, strictly above A's.
  EXPECT_GE(shard0.token, 2u);
  ASSERT_EQ(ref_result.outcomes.size(), 1u);
  const CampaignOutcome& ref = ref_result.outcomes[0];
  ASSERT_EQ(shard0.step_rewards.size(), ref.step_rewards.size());
  for (const auto& [step, reward] : ref.step_rewards) {
    ASSERT_TRUE(shard0.step_rewards.count(step)) << "lost step " << step;
    EXPECT_DOUBLE_EQ(reward, shard0.step_rewards.at(step))
        << "step " << step;
  }
  EXPECT_DOUBLE_EQ(ref.best_reward, shard0.best_reward);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace poisonrec::orch

#else
#include <gtest/gtest.h>
TEST(FleetSharedTest, SkippedOnNonPosixPlatforms) { GTEST_SKIP(); }
#endif  // __unix__ || __APPLE__
