#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace poisonrec::obs {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "\"nan\"";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "\"inf\"" : "\"-inf\"";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

void AppendJsonNumber(std::string* out, std::uint64_t v) {
  *out += std::to_string(v);
}

bool IsJsonNumberLiteral(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(value);
}

void JsonObjectBuilder::Key(std::string_view key) {
  if (!first_) out_ += ",";
  first_ = false;
  AppendJsonString(&out_, key);
  out_ += ":";
}

JsonObjectBuilder& JsonObjectBuilder::Str(std::string_view key,
                                          std::string_view value) {
  Key(key);
  AppendJsonString(&out_, value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Num(std::string_view key, double value) {
  Key(key);
  AppendJsonNumber(&out_, value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Int(std::string_view key,
                                          std::uint64_t value) {
  Key(key);
  AppendJsonNumber(&out_, value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Bool(std::string_view key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::Raw(std::string_view key,
                                          std::string_view json) {
  Key(key);
  out_ += json;
  return *this;
}

std::string JsonObjectBuilder::Finish() && {
  out_ += "}";
  return std::move(out_);
}

}  // namespace poisonrec::obs
