#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace poisonrec::nn {

namespace {

// 0 = resolve to hardware concurrency at call time.
std::atomic<std::size_t> g_num_threads{0};

// Shared-dimension block: a kBlockK×n panel of B (256 floats wide at
// n=64) stays resident in L1/L2 while every row of the current range
// streams through it.
constexpr std::size_t kBlockK = 64;

// Below this many multiply-accumulates a GEMM runs single-threaded; the
// pool handoff costs more than it saves on the tiny per-step matmuls
// (e.g. the 1×d policy step).
constexpr std::size_t kParallelMinWork = std::size_t{1} << 15;

// axpy: crow += av * brow. Elementwise — each c[j] receives exactly one
// add per call, with no cross-element reduction — so the compiler is
// free to vectorize at any width without changing a single bit. The
// __restrict qualifiers license that vectorization without runtime
// alias checks (kernel outputs never alias their inputs).
inline void AxpyRow(float av, const float* __restrict brow,
                    float* __restrict crow, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
}

// The *Rows workers compute rows [i0, i1) of C. Each kernel's
// accumulation order for a given output element is a pure function of
// that element's indices (never of the row range), which is what makes
// row-partitioned execution bit-identical to single-threaded.

void GemmNNRows(std::size_t i0, std::size_t i1, std::size_t k, std::size_t n,
                const float* a, const float* b, float* c) {
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        AxpyRow(arow[kk], b + kk * n, crow, n);
      }
    }
  }
}

void GemmTNRows(std::size_t i0, std::size_t i1, std::size_t m, std::size_t k,
                std::size_t n, const float* a, const float* b, float* c) {
  // A stored (k×m): column i of A is the strided sequence a[p*m + i].
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t p1 = std::min(k, p0 + kBlockK);
    for (std::size_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (std::size_t p = p0; p < p1; ++p) {
        AxpyRow(a[p * m + i], b + p * n, crow, n);
      }
    }
  }
}

void GemmNTRows(std::size_t i0, std::size_t i1, std::size_t k, std::size_t n,
                const float* a, const float* b, float* c) {
  // B stored (n×k): C[i][j] is a contiguous dot of A row i with B row j.
  // Four partial sums for instruction-level parallelism; the combine
  // order is fixed, so results are identical for every row partition.
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        s0 += arow[kk] * brow[kk];
        s1 += arow[kk + 1] * brow[kk + 1];
        s2 += arow[kk + 2] * brow[kk + 2];
        s3 += arow[kk + 3] * brow[kk + 3];
      }
      float tail = 0.0f;
      for (; kk < k; ++kk) tail += arow[kk] * brow[kk];
      crow[j] += ((s0 + s1) + (s2 + s3)) + tail;
    }
  }
}

// Row-partitions [0, m) across the kernel thread budget and runs
// `rows(i0, i1)` for each block. Rows are handed out in blocks of
// roughly m / (threads * 4) so the atomic index counter stays cold
// while load still balances when rows have uneven cost.
template <typename RowsFn>
void ForEachRowBlock(std::size_t m, std::size_t k, std::size_t n,
                     const RowsFn& rows) {
  const std::size_t work = m * k * n;
  if (work < kParallelMinWork) {  // skip even the thread-budget lookup
    rows(0, m);
    return;
  }
  const std::size_t threads = std::min(GetNumThreads(), m);
  if (threads <= 1) {
    rows(0, m);
    return;
  }
  const std::size_t block =
      std::max<std::size_t>(1, m / (threads * 4));
  const std::size_t num_blocks = (m + block - 1) / block;
  // Span only around the threaded branch: these are the regions the
  // perf backlog (ROADMAP.md) needs to see, and the tiny single-threaded
  // matmuls are far too frequent to trace individually.
  POISONREC_TRACE_SPAN("gemm/threaded");
  ParallelFor(num_blocks, threads, [&](std::size_t bi) {
    const std::size_t i0 = bi * block;
    rows(i0, std::min(m, i0 + block));
  });
}

// Call/flop accounting shared by the three variants. The counters are
// sharded (obs::Counter), so the two relaxed adds here stay off any
// contended cache line even when every pool worker issues GEMMs.
inline void CountGemm(obs::Counter* calls, std::size_t m, std::size_t k,
                      std::size_t n) {
  static obs::Counter* const flops =
      obs::MetricsRegistry::Global().GetCounter("poisonrec_gemm_flops_total");
  calls->Increment();
  flops->Increment(static_cast<std::uint64_t>(2) * m * k * n);
}

}  // namespace

void SetNumThreads(std::size_t num_threads) {
  g_num_threads.store(num_threads, std::memory_order_relaxed);
}

std::size_t GetNumThreads() {
  const std::size_t n = g_num_threads.load(std::memory_order_relaxed);
  if (n != 0) return n;
  static const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return hardware;
}

namespace kernels {

void GemmNN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_nn_calls_total");
  CountGemm(calls, m, k, n);
  ForEachRowBlock(m, k, n, [&](std::size_t i0, std::size_t i1) {
    GemmNNRows(i0, i1, k, n, a, b, c);
  });
}

void GemmTN(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_tn_calls_total");
  CountGemm(calls, m, k, n);
  ForEachRowBlock(m, k, n, [&](std::size_t i0, std::size_t i1) {
    GemmTNRows(i0, i1, m, k, n, a, b, c);
  });
}

void GemmNT(std::size_t m, std::size_t k, std::size_t n, const float* a,
            const float* b, float* c) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter(
          "poisonrec_gemm_nt_calls_total");
  CountGemm(calls, m, k, n);
  ForEachRowBlock(m, k, n, [&](std::size_t i0, std::size_t i1) {
    GemmNTRows(i0, i1, k, n, a, b, c);
  });
}

}  // namespace kernels

}  // namespace poisonrec::nn
