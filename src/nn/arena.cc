#include "nn/arena.h"

#include <utility>

namespace poisonrec::nn {

namespace {

thread_local TensorArena* t_current_arena = nullptr;

}  // namespace

std::shared_ptr<internal::TensorImpl> TensorArena::Acquire(std::size_t rows,
                                                           std::size_t cols) {
  ++total_acquired_;
  std::shared_ptr<internal::TensorImpl> node;
  if (!free_.empty()) {
    node = std::move(free_.back());
    free_.pop_back();
    ++total_recycled_;
    node->rows = rows;
    node->cols = cols;
    // assign() reuses the vector's capacity when it fits; grad must be
    // cleared (not just left stale) so EnsureGrad re-zeroes it for the
    // new shape instead of keeping a prior node's gradients.
    node->data.assign(rows * cols, 0.0f);
    node->grad.clear();
    node->requires_grad = false;
    node->parents.clear();
    node->backward_fn = nullptr;
    node->forward_fn = nullptr;
  } else {
    node = std::make_shared<internal::TensorImpl>();
    node->rows = rows;
    node->cols = cols;
    node->data.assign(rows * cols, 0.0f);
  }
  live_.push_back(node);
  return node;
}

void TensorArena::Reset() {
  // Reverse creation order: the last-created node is the deepest child;
  // releasing its parent edges drops refcounts on earlier nodes, so by
  // the time the sweep reaches them they too are arena-only and recycle.
  for (std::size_t i = live_.size(); i-- > 0;) {
    std::shared_ptr<internal::TensorImpl>& node = live_[i];
    if (node.use_count() == 1) {
      node->parents.clear();
      node->backward_fn = nullptr;
      node->forward_fn = nullptr;
      free_.push_back(std::move(node));
    }
    // Nodes still referenced elsewhere escape to the normal shared_ptr
    // lifetime: dropping our reference here is all that's needed.
  }
  live_.clear();
}

TensorArena* TensorArena::Current() { return t_current_arena; }

TensorArena::Scope::Scope(TensorArena* arena)
    : arena_(arena), previous_(t_current_arena) {
  t_current_arena = arena;
}

TensorArena::Scope::~Scope() {
  t_current_arena = previous_;
  if (arena_ != nullptr) arena_->Reset();
}

}  // namespace poisonrec::nn
