#include "core/account_pool.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace poisonrec::core {

namespace {

/// Keeps the fleet-attrition gauges current on every pool transition so
/// a metrics scrape mid-step still sees the fleet's true size (the
/// per-step event stream only samples at step boundaries).
void UpdatePoolGauges(const AccountPool& pool) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static obs::Gauge* const live = reg.GetGauge("poisonrec_pool_live_slots");
  static obs::Gauge* const reserve =
      reg.GetGauge("poisonrec_pool_reserve_remaining");
  static obs::Gauge* const retired =
      reg.GetGauge("poisonrec_pool_retired_accounts");
  live->Set(static_cast<double>(pool.live_slots()));
  reserve->Set(static_cast<double>(pool.reserve_remaining()));
  retired->Set(static_cast<double>(pool.retired_accounts()));
}

}  // namespace

AccountPool::AccountPool(std::size_t num_slots, std::size_t total_accounts)
    : total_accounts_(total_accounts), next_account_(num_slots) {
  POISONREC_CHECK_GT(num_slots, 0u);
  POISONREC_CHECK_GE(total_accounts, num_slots);
  slot_account_.resize(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) slot_account_[s] = s;
  UpdatePoolGauges(*this);
}

std::size_t AccountPool::account(std::size_t slot) const {
  POISONREC_CHECK_LT(slot, slot_account_.size());
  return slot_account_[slot];
}

bool AccountPool::OnBanned(std::size_t account) {
  for (std::size_t s = 0; s < slot_account_.size(); ++s) {
    if (slot_account_[s] != account || account == kDeadSlot) continue;
    ++retired_;
    if (next_account_ < total_accounts_) {
      slot_account_[s] = next_account_++;
    } else {
      slot_account_[s] = kDeadSlot;
    }
    UpdatePoolGauges(*this);
    return true;
  }
  return false;
}

std::size_t AccountPool::live_slots() const {
  std::size_t live = 0;
  for (std::size_t a : slot_account_) {
    if (a != kDeadSlot) ++live;
  }
  return live;
}

void AccountPool::Restore(std::vector<std::size_t> slot_accounts,
                          std::size_t next_account, std::size_t retired) {
  POISONREC_CHECK_EQ(slot_accounts.size(), slot_account_.size());
  POISONREC_CHECK_LE(next_account, total_accounts_);
  slot_account_ = std::move(slot_accounts);
  next_account_ = next_account;
  retired_ = retired;
  UpdatePoolGauges(*this);
}

}  // namespace poisonrec::core
