// Wall-clock stopwatch for the timing experiments (§IV-B of the paper).
#ifndef POISONREC_UTIL_TIMER_H_
#define POISONREC_UTIL_TIMER_H_

#include <chrono>

namespace poisonrec {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace poisonrec

#endif  // POISONREC_UTIL_TIMER_H_
