file(REMOVE_RECURSE
  "libpoisonrec_nn.a"
)
