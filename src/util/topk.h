// Top-k selection over score vectors — the primitive every ranker uses to
// produce the recommendation list L_u.
#ifndef POISONREC_UTIL_TOPK_H_
#define POISONREC_UTIL_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace poisonrec {

/// Returns the indices of the k largest scores, ordered by descending
/// score. Ties are broken by ascending index so that rankings are
/// deterministic. If k >= scores.size(), returns all indices sorted.
std::vector<std::size_t> TopKIndices(const std::vector<double>& scores,
                                     std::size_t k);

/// Same as TopKIndices but maps through an id vector: returns the ids
/// whose scores are in the top k. `ids` and `scores` must align.
template <typename Id>
std::vector<Id> TopKByScore(const std::vector<Id>& ids,
                            const std::vector<double>& scores,
                            std::size_t k) {
  POISONREC_CHECK_EQ(ids.size(), scores.size());
  std::vector<std::size_t> idx = TopKIndices(scores, k);
  std::vector<Id> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(ids[i]);
  return out;
}

}  // namespace poisonrec

#endif  // POISONREC_UTIL_TOPK_H_
