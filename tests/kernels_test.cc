// Tests for the dense GEMM kernel layer (nn/kernels.h) and the
// GradMode/NoGradScope inference switch: kernel-vs-reference
// equivalence over randomized shapes, bit-identical threaded vs
// single-threaded execution, and tape-free no-grad outputs.
#include "nn/kernels.h"

#include <cstddef>
#include <vector>

#include "gtest/gtest.h"
#include "nn/tensor.h"
#include "util/random.h"

namespace poisonrec::nn {
namespace {

using kernels::GemmNN;
using kernels::GemmNT;
using kernels::GemmTN;

// Restores the process-wide kernel thread budget on scope exit so a
// failing test cannot leak its override into later tests.
class ThreadBudgetOverride {
 public:
  explicit ThreadBudgetOverride(std::size_t n) { SetNumThreads(n); }
  ~ThreadBudgetOverride() { SetNumThreads(0); }
};

std::vector<float> RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  std::vector<float> m(rows * cols);
  for (float& v : m) v = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return m;
}

// Naive O(m·k·n) references, one per transpose variant. Accumulate into
// c like the kernels do.
void RefGemmNN(std::size_t m, std::size_t k, std::size_t n,
               const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      (*c)[i * n + j] += static_cast<float>(acc);
    }
  }
}

void RefGemmTN(std::size_t m, std::size_t k, std::size_t n,
               const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>* c) {
  // A stored (k×m): C[i][j] = sum_p A[p][i] * B[p][j].
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      (*c)[i * n + j] += static_cast<float>(acc);
    }
  }
}

void RefGemmNT(std::size_t m, std::size_t k, std::size_t n,
               const std::vector<float>& a, const std::vector<float>& b,
               std::vector<float>* c) {
  // B stored (n×k): C[i][j] = sum_kk A[i][kk] * B[j][kk].
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * k + kk]) * b[j * k + kk];
      }
      (*c)[i * n + j] += static_cast<float>(acc);
    }
  }
}

void ExpectNear(const std::vector<float>& got, const std::vector<float>& want,
                float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

TEST(KernelsTest, GemmNNMatchesReferenceOverRandomShapes) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = rng.Index(40) + 1;
    const std::size_t k = rng.Index(40) + 1;
    const std::size_t n = rng.Index(40) + 1;
    const std::vector<float> a = RandomMatrix(m, k, &rng);
    const std::vector<float> b = RandomMatrix(k, n, &rng);
    std::vector<float> got(m * n, 0.5f);  // nonzero: checks accumulate semantics
    std::vector<float> want = got;
    GemmNN(m, k, n, a.data(), b.data(), got.data());
    RefGemmNN(m, k, n, a, b, &want);
    ExpectNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, GemmTNMatchesReferenceOverRandomShapes) {
  Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = rng.Index(40) + 1;
    const std::size_t k = rng.Index(40) + 1;
    const std::size_t n = rng.Index(40) + 1;
    const std::vector<float> a = RandomMatrix(k, m, &rng);
    const std::vector<float> b = RandomMatrix(k, n, &rng);
    std::vector<float> got(m * n, -0.25f);
    std::vector<float> want = got;
    GemmTN(m, k, n, a.data(), b.data(), got.data());
    RefGemmTN(m, k, n, a, b, &want);
    ExpectNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, GemmNTMatchesReferenceOverRandomShapes) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = rng.Index(40) + 1;
    const std::size_t k = rng.Index(40) + 1;
    const std::size_t n = rng.Index(40) + 1;
    const std::vector<float> a = RandomMatrix(m, k, &rng);
    const std::vector<float> b = RandomMatrix(n, k, &rng);
    std::vector<float> got(m * n, 1.0f);
    std::vector<float> want = got;
    GemmNT(m, k, n, a.data(), b.data(), got.data());
    RefGemmNT(m, k, n, a, b, &want);
    ExpectNear(got, want, 1e-4f);
  }
}

// The determinism contract: threaded kernels must be bit-identical to
// single-threaded, not merely close. Shapes are chosen above the
// parallel threshold (m·k·n >= 2^15) with row counts that do not divide
// evenly into blocks.
TEST(KernelsTest, ThreadedGemmIsBitIdenticalToSingleThreaded) {
  Rng rng(44);
  const std::size_t m = 97, k = 53, n = 71;
  ASSERT_GE(m * k * n, std::size_t{1} << 15);
  const std::vector<float> a = RandomMatrix(m, k, &rng);
  const std::vector<float> bnn = RandomMatrix(k, n, &rng);
  const std::vector<float> btn = RandomMatrix(k, m, &rng);  // A for TN
  const std::vector<float> bnt = RandomMatrix(n, k, &rng);  // B for NT

  std::vector<float> single_nn(m * n, 0.0f), single_tn(m * n, 0.0f),
      single_nt(m * n, 0.0f);
  {
    ThreadBudgetOverride one_thread(1);
    GemmNN(m, k, n, a.data(), bnn.data(), single_nn.data());
    GemmTN(m, k, n, btn.data(), bnn.data(), single_tn.data());
    GemmNT(m, k, n, a.data(), bnt.data(), single_nt.data());
  }
  for (std::size_t threads : {2, 4, 7}) {
    ThreadBudgetOverride many(threads);
    std::vector<float> got_nn(m * n, 0.0f), got_tn(m * n, 0.0f),
        got_nt(m * n, 0.0f);
    GemmNN(m, k, n, a.data(), bnn.data(), got_nn.data());
    GemmTN(m, k, n, btn.data(), bnn.data(), got_tn.data());
    GemmNT(m, k, n, a.data(), bnt.data(), got_nt.data());
    EXPECT_EQ(got_nn, single_nn) << "GemmNN, " << threads << " threads";
    EXPECT_EQ(got_tn, single_tn) << "GemmTN, " << threads << " threads";
    EXPECT_EQ(got_nt, single_nt) << "GemmNT, " << threads << " threads";
  }
}

TEST(KernelsTest, MatMulForwardAndBackwardUseKernelsCorrectly) {
  // End-to-end through the tensor op: gradients must match the
  // numerical gradient, which pins both backward kernel mappings
  // (dA = dC·Bᵀ via GemmNT, dB = Aᵀ·dC via GemmTN).
  Rng rng(55);
  Tensor a = Tensor::Rand(4, 6, -1.0f, 1.0f, &rng, /*requires_grad=*/true);
  Tensor b = Tensor::Rand(6, 5, -1.0f, 1.0f, &rng, /*requires_grad=*/true);
  Tensor loss = Sum(MatMul(a, b));
  loss.Backward();

  const std::vector<float> da_num = NumericalGradient(
      [&b](const Tensor& x) { return Sum(MatMul(x, b)).item(); }, a);
  const std::vector<float> db_num = NumericalGradient(
      [&a](const Tensor& x) { return Sum(MatMul(a, x)).item(); }, b);
  for (std::size_t i = 0; i < da_num.size(); ++i) {
    EXPECT_NEAR(a.grad()[i], da_num[i], 5e-2f) << "dA element " << i;
  }
  for (std::size_t i = 0; i < db_num.size(); ++i) {
    EXPECT_NEAR(b.grad()[i], db_num[i], 5e-2f) << "dB element " << i;
  }
}

TEST(KernelsTest, SetNumThreadsRoundTripsAndZeroMeansHardware) {
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3u);
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1u);  // resolved, never 0
}

TEST(NoGradScopeTest, LeavesNoGraphNodes) {
  Rng rng(66);
  Tensor a = Tensor::Rand(3, 4, -1.0f, 1.0f, &rng, /*requires_grad=*/true);
  Tensor b = Tensor::Rand(4, 2, -1.0f, 1.0f, &rng, /*requires_grad=*/true);
  Tensor out;
  {
    NoGradScope no_grad;
    out = Sigmoid(MatMul(a, b));
  }
  EXPECT_FALSE(out.requires_grad());
  EXPECT_TRUE(out.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(out.impl()->backward_fn));
  EXPECT_TRUE(out.impl()->grad.empty());

  // Outside the scope the same expression records the tape again.
  Tensor tracked = Sigmoid(MatMul(a, b));
  EXPECT_TRUE(tracked.requires_grad());
  EXPECT_FALSE(tracked.impl()->parents.empty());
}

TEST(NoGradScopeTest, NestsAndRestoresCorrectly) {
  EXPECT_TRUE(GradMode::Enabled());
  {
    NoGradScope outer;
    EXPECT_FALSE(GradMode::Enabled());
    {
      NoGradScope inner;
      EXPECT_FALSE(GradMode::Enabled());
    }
    EXPECT_FALSE(GradMode::Enabled());  // inner exit must not re-enable
  }
  EXPECT_TRUE(GradMode::Enabled());
  EXPECT_TRUE(GradEnabled());  // shorthand stays in sync
}

}  // namespace
}  // namespace poisonrec::nn
