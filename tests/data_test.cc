// Dataset / split / synthetic-generator / CSV tests.
#include "data/dataset.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/csv.h"

namespace poisonrec::data {
namespace {

TEST(DatasetTest, AddAndQuery) {
  Dataset d(3, 5);
  d.Add(0, 1);
  d.Add(0, 2);
  d.Add(2, 1);
  EXPECT_EQ(d.num_users(), 3u);
  EXPECT_EQ(d.num_items(), 5u);
  EXPECT_EQ(d.num_interactions(), 3u);
  EXPECT_EQ(d.Sequence(0).size(), 2u);
  EXPECT_EQ(d.Sequence(1).size(), 0u);
  EXPECT_EQ(d.ItemPopularity()[1], 2u);
  EXPECT_EQ(d.ItemPopularity()[0], 0u);
}

TEST(DatasetTest, CapacityExceedsUsage) {
  // Cold items/users (the attack setting) are representable.
  Dataset d(10, 10);
  d.Add(0, 0);
  EXPECT_EQ(d.num_users(), 10u);
  EXPECT_EQ(d.ItemPopularity()[9], 0u);
}

TEST(DatasetTest, ItemsByPopularityAscending) {
  Dataset d(1, 3);
  d.AddSequence(0, {2, 2, 2, 0, 0, 1});
  auto order = d.ItemsByPopularity();
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
}

TEST(DatasetTest, ItemsByPopularityTieById) {
  Dataset d(1, 3);
  d.AddSequence(0, {1, 2});
  auto order = d.ItemsByPopularity();
  EXPECT_EQ(order[0], 0u);  // count 0
  EXPECT_EQ(order[1], 1u);  // count 1, lower id first
  EXPECT_EQ(order[2], 2u);
}

TEST(DatasetTest, AllInteractionsOrdered) {
  Dataset d(2, 4);
  d.AddSequence(0, {3, 1});
  d.AddSequence(1, {2});
  auto all = d.AllInteractions();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].user, 0u);
  EXPECT_EQ(all[0].item, 3u);
  EXPECT_EQ(all[0].position, 0u);
  EXPECT_EQ(all[1].position, 1u);
  EXPECT_EQ(all[2].user, 1u);
}

TEST(DatasetTest, UsersWithMinLength) {
  Dataset d(3, 3);
  d.AddSequence(0, {0, 1, 2});
  d.AddSequence(1, {0});
  auto users = d.UsersWithMinLength(2);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0], 0u);
}

TEST(SplitTest, LeaveOneOutSemantics) {
  Dataset d(2, 10);
  d.AddSequence(0, {1, 2, 3, 4});  // 4 events: 2 train, 1 valid, 1 test
  d.AddSequence(1, {5, 6});        // < 3 events: all train
  auto split = SplitLeaveOneOut(d);
  EXPECT_EQ(split.train.Sequence(0), (std::vector<ItemId>{1, 2}));
  EXPECT_EQ(split.train.Sequence(1), (std::vector<ItemId>{5, 6}));
  ASSERT_EQ(split.validation.size(), 1u);
  EXPECT_EQ(split.validation[0].item, 3u);
  ASSERT_EQ(split.test.size(), 1u);
  EXPECT_EQ(split.test[0].item, 4u);
}

TEST(SplitTest, PreservesCapacities) {
  Dataset d(4, 7);
  d.AddSequence(0, {1, 2, 3});
  auto split = SplitLeaveOneOut(d);
  EXPECT_EQ(split.train.num_users(), 4u);
  EXPECT_EQ(split.train.num_items(), 7u);
}

TEST(CsvIoTest, RoundTrip) {
  Dataset d(2, 3);
  d.AddSequence(0, {0, 2});
  d.AddSequence(1, {1});
  const std::string path =
      std::filesystem::temp_directory_path() / "poisonrec_ds.csv";
  ASSERT_TRUE(SaveDatasetCsv(d, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_interactions(), 3u);
  EXPECT_EQ(loaded->Sequence(0), (std::vector<ItemId>{0, 2}));
  std::remove(path.c_str());
}

TEST(CsvIoTest, RejectsBadIds) {
  const std::string path =
      std::filesystem::temp_directory_path() / "poisonrec_bad.csv";
  {
    std::vector<std::vector<std::string>> rows = {{"x", "1"}};
    ASSERT_TRUE(WriteCsv(path, rows).ok());
  }
  auto loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SyntheticTest, HonorsCounts) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 40;
  cfg.num_interactions = 600;
  cfg.seed = 9;
  Dataset d = GenerateSynthetic(cfg);
  EXPECT_EQ(d.num_users(), 50u);
  EXPECT_EQ(d.num_items(), 40u);
  // Interaction budget is met within rounding (floor allocation).
  EXPECT_GE(d.num_interactions(), 500u);
  EXPECT_LE(d.num_interactions(), 600u);
}

TEST(SyntheticTest, EveryUserHasMinLength) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 20;
  cfg.num_interactions = 300;
  cfg.min_user_length = 3;
  cfg.seed = 10;
  Dataset d = GenerateSynthetic(cfg);
  for (UserId u = 0; u < d.num_users(); ++u) {
    EXPECT_GE(d.Sequence(u).size(), 3u);
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 15;
  cfg.num_interactions = 200;
  cfg.seed = 11;
  Dataset a = GenerateSynthetic(cfg);
  Dataset b = GenerateSynthetic(cfg);
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.Sequence(u), b.Sequence(u));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 15;
  cfg.num_interactions = 200;
  cfg.seed = 12;
  Dataset a = GenerateSynthetic(cfg);
  cfg.seed = 13;
  Dataset b = GenerateSynthetic(cfg);
  bool any_diff = false;
  for (UserId u = 0; u < a.num_users() && !any_diff; ++u) {
    any_diff = a.Sequence(u) != b.Sequence(u);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, PopularityIsLongTailed) {
  SyntheticConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 100;
  cfg.num_interactions = 5000;
  cfg.seed = 14;
  Dataset d = GenerateSynthetic(cfg);
  auto order = d.ItemsByPopularity();
  const auto& pop = d.ItemPopularity();
  // Top item should dominate the median item by a clear factor.
  const std::size_t top = pop[order.back()];
  const std::size_t median = pop[order[order.size() / 2]];
  EXPECT_GT(top, 3 * std::max<std::size_t>(1, median));
}

TEST(PresetTest, Table2CountsAtFullScale) {
  SyntheticConfig steam = PresetConfig(DatasetPreset::kSteam, 1.0);
  EXPECT_EQ(steam.num_users, 6506u);
  EXPECT_EQ(steam.num_items, 5134u);
  EXPECT_EQ(steam.num_interactions, 180721u);
  SyntheticConfig ml = PresetConfig(DatasetPreset::kMovieLens, 1.0);
  EXPECT_EQ(ml.num_users, 5999u);
  EXPECT_EQ(ml.num_items, 3706u);
  EXPECT_EQ(ml.num_interactions, 943317u);
  SyntheticConfig phone = PresetConfig(DatasetPreset::kPhone, 1.0);
  EXPECT_EQ(phone.num_users, 27879u);
  SyntheticConfig clothing = PresetConfig(DatasetPreset::kClothing, 1.0);
  EXPECT_EQ(clothing.num_items, 23033u);
}

TEST(PresetTest, ScalingIsProportional) {
  SyntheticConfig half = PresetConfig(DatasetPreset::kSteam, 0.5);
  EXPECT_NEAR(half.num_users, 3253.0, 1.0);
  EXPECT_NEAR(half.num_interactions, 90360.5, 1.0);
}

TEST(PresetTest, ParseNames) {
  EXPECT_EQ(*ParseDatasetPreset("steam"), DatasetPreset::kSteam);
  EXPECT_EQ(*ParseDatasetPreset("MovieLens"), DatasetPreset::kMovieLens);
  EXPECT_EQ(*ParseDatasetPreset("ml-1m"), DatasetPreset::kMovieLens);
  EXPECT_EQ(*ParseDatasetPreset("Phone"), DatasetPreset::kPhone);
  EXPECT_EQ(*ParseDatasetPreset("CLOTHING"), DatasetPreset::kClothing);
  EXPECT_FALSE(ParseDatasetPreset("netflix").ok());
}

TEST(PresetTest, NamesRoundTrip) {
  for (DatasetPreset p :
       {DatasetPreset::kSteam, DatasetPreset::kMovieLens,
        DatasetPreset::kPhone, DatasetPreset::kClothing}) {
    EXPECT_EQ(*ParseDatasetPreset(DatasetPresetName(p)), p);
  }
}

}  // namespace
}  // namespace poisonrec::data
