# Empty dependencies file for poisonrec_bench_common.
# This may be replaced when dependencies are built.
