// Storage-integrity overhead harness: measures what the PR's integrity
// framing costs on the hot write paths so the "checksums are cheap"
// claim in docs/robustness.md stays an empirical one:
//
//   1. Raw CRC32C throughput (software table implementation) over
//      checkpoint-sized buffers.
//   2. Checksummed vs plain EventLog append throughput (the journal's
//      per-line CRC32C splice).
//   3. Durable checkpoint publish: WriteFileDurable vs
//      WriteFileDurableChecksummed, plus the verify-on-load cost of
//      ReadFileVerified.
//
// Output: results/storage_integrity.{csv,json}, one row per operation.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/crc32c.h"
#include "obs/event_log.h"
#include "util/fsio.h"

namespace poisonrec::bench {
namespace {

double SecondsSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string Format(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return std::string(buffer);
}

int Run() {
  const BenchConfig config = LoadBenchConfig();
  const std::string work_dir =
      (std::filesystem::temp_directory_path() /
       "poisonrec_bench_storage_integrity")
          .string();
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"operation", "iterations", "wall_seconds", "mb_per_s",
                  "ops_per_s"});
  PrintTableHeader({"operation", "iters", "wall s", "MB/s", "ops/s"});

  const auto report = [&rows](const std::string& name, std::size_t iters,
                              double wall, double bytes) {
    const double mbs = wall > 0.0 ? bytes / wall / (1024.0 * 1024.0) : 0.0;
    const double ops = wall > 0.0 ? static_cast<double>(iters) / wall : 0.0;
    PrintTableRow({name, std::to_string(iters), Format(wall),
                   FormatCount(mbs), FormatCount(ops)});
    rows.push_back({name, std::to_string(iters), std::to_string(wall),
                    std::to_string(mbs), std::to_string(ops)});
  };

  // 1. Raw CRC32C over a checkpoint-sized buffer.
  {
    const std::size_t buffer_bytes = 1 << 20;
    std::string buffer(buffer_bytes, '\0');
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      buffer[i] = static_cast<char>(i * 131u + 17u);
    }
    const std::size_t iters = 64;
    volatile std::uint32_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      sink = obs::Crc32c(buffer.data(), buffer.size(), sink);
    }
    report("crc32c_1mib", iters, SecondsSince(start),
           static_cast<double>(iters * buffer_bytes));
  }

  // 2. Plain vs checksummed event-log appends (kOnClose flushing so the
  // delta is the CRC splice, not fsync cadence).
  const std::string line =
      R"({"type":"campaign","id":"c0","state":"checkpointed","step":12,)"
      R"("reward":3.25,"best_reward":4.5,"token":2,"owner":"wA"})";
  const std::size_t appends = 20000;
  for (const bool checksum : {false, true}) {
    obs::EventLog log;
    const std::string path =
        work_dir + (checksum ? "/events_crc.jsonl" : "/events.jsonl");
    if (!log.Open(path, /*truncate=*/true,
                  obs::EventLog::FlushPolicy::kOnClose, checksum)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < appends; ++i) log.Append(line);
    log.Close();
    report(checksum ? "append_checksummed" : "append_plain", appends,
           SecondsSince(start),
           static_cast<double>(appends * line.size()));
  }

  // 3. Durable publish with and without the integrity footer, and the
  // verify-on-load pass.
  {
    const std::size_t payload_bytes = 256 * 1024;
    std::string payload(payload_bytes, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<char>(i * 37u + 5u);
    }
    const std::size_t iters = 32;
    const std::string plain_path = work_dir + "/plain.bin";
    const std::string framed_path = work_dir + "/framed.bin";

    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      if (!WriteFileDurable(plain_path, payload).ok()) return 1;
    }
    report("publish_durable", iters, SecondsSince(start),
           static_cast<double>(iters * payload_bytes));

    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      if (!WriteFileDurableChecksummed(framed_path, payload).ok()) return 1;
    }
    report("publish_checksummed", iters, SecondsSince(start),
           static_cast<double>(iters * payload_bytes));

    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      auto loaded = ReadFileVerified(framed_path);
      if (!loaded.ok() || loaded->size() != payload_bytes) {
        std::fprintf(stderr, "verify-on-load failed\n");
        return 1;
      }
    }
    report("read_verified", iters, SecondsSince(start),
           static_cast<double>(iters * payload_bytes));
  }

  WriteCsvOutput(config, "storage_integrity.csv", rows);
  WriteJsonOutput(config, "storage_integrity.json", rows);
  std::filesystem::remove_all(work_dir);
  return 0;
}

}  // namespace
}  // namespace poisonrec::bench

int main() { return poisonrec::bench::Run(); }
