# Empty compiler generated dependencies file for poisonrec_viz.
# This may be replaced when dependencies are built.
