// The PoisonRec policy network π_θ (paper §III-C): an LSTM encodes the
// state s_t = {u, a_0, ..., a_{t-1}} into h_t (Eq. 5); a 2-layer ReLU DNN
// D maps h_t to a query vector whose dot products with item (or tree-node)
// features define the action distribution (Eq. 6 / Algorithm 2).
//
// Four action-space designs are supported (paper §IV-B):
//   Plain        — flat softmax over I ∪ I_t (Eq. 6)
//   BPlain       — two-stage: choose the set (I_t vs I), then the item
//   BCBT-Popular — full BCBT with popularity-sorted leaves (Assumption 1)
//   BCBT-Random  — BCBT with randomly permuted leaves (ablation)
//   CBT-Unbiased — one popularity-sorted tree over I ∪ I_t, no root bias
//                  (ablation isolating hierarchy from priori knowledge)
#ifndef POISONREC_CORE_POLICY_H_
#define POISONREC_CORE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/action_tree.h"
#include "core/trajectory.h"
#include "nn/module.h"
#include "util/guard.h"
#include "util/random.h"

namespace poisonrec::core {

enum class ActionSpaceKind {
  kPlain,
  kBPlain,
  kBcbtPopular,
  kBcbtRandom,
  /// Ablation: the hierarchical structure without the priori-knowledge
  /// root (one popularity-sorted complete binary tree over I ∪ I_t).
  kCbtUnbiased,
};

const char* ActionSpaceKindName(ActionSpaceKind kind);

struct PolicyConfig {
  /// |e|: embedding size; all hidden layers share it (paper: 64).
  std::size_t embedding_dim = 64;
  ActionSpaceKind action_space = ActionSpaceKind::kBcbtPopular;
  std::uint64_t seed = 123;
};

/// A batch of homogeneous decisions recomputed under current parameters
/// (for the PPO ratio). Row k corresponds to trajectory
/// `traj_index[k]` and has stored old log-prob `old_log_probs[k]`.
struct DecisionBatch {
  nn::Tensor new_log_probs;            // (K x 1), differentiable
  std::vector<double> old_log_probs;   // K
  std::vector<std::size_t> traj_index; // K
};

class Policy {
 public:
  /// `original_items_in_popularity_order`: ascending popularity — the
  /// BCBT-Popular leaf order. `target_items`: the I_t ids. `num_items`
  /// must cover both sets (|I| + |I_t| dense ids).
  Policy(std::size_t num_attackers, std::size_t num_items,
         const std::vector<data::ItemId>& original_items_in_popularity_order,
         const std::vector<data::ItemId>& target_items,
         const PolicyConfig& config);

  /// Samples one episode's N trajectories (one per attacker), each of
  /// length T, recording per-decision log-probs under current parameters.
  std::vector<SampledTrajectory> SampleEpisode(std::size_t trajectory_length,
                                               Rng* rng) const;

  /// Batched variant: rolls out `episodes` episodes at once by stacking
  /// all episodes' attacker rows into one (episodes·N x dim) recurrence
  /// — one LSTM/DNN forward per timestep instead of `episodes`. Episode
  /// e consumes (*rngs)[e] in exactly the per-row order SampleEpisode
  /// uses (t ascending, rows 0..N-1), and every dense op computes each
  /// output row independently of the batch it sits in, so the result is
  /// bit-identical to `episodes` separate SampleEpisode calls with the
  /// same RNG streams.
  std::vector<std::vector<SampledTrajectory>> SampleEpisodesBatched(
      std::size_t episodes, std::size_t trajectory_length,
      std::vector<Rng>* rngs) const;

  /// Per-row baseline: advances each attacker's LSTM state and DNN head
  /// with its own 1×d matmuls (~6N tiny ops per timestep) instead of one
  /// N-row forward. RNG draw order is identical to SampleEpisode (t
  /// ascending, rows 0..N-1), and every kernel computes a given output
  /// row by the same accumulation order regardless of batch size, so the
  /// trajectories are bit-identical to SampleEpisode's. Kept as the
  /// historical reference the batched engine is benchmarked and
  /// identity-checked against (bench_train_step_timing).
  std::vector<SampledTrajectory> SampleEpisodePerRow(
      std::size_t trajectory_length, Rng* rng) const;

  /// Recomputes every decision's log-prob for PPO (Eq. 7/9). All
  /// trajectories must share the same length. With `per_row_recurrence`
  /// the hidden states come from per-row 1×d recurrence chains stacked
  /// via nn::StackRows (the per-row baseline); gradients are bit-identical
  /// to the batched recurrence because StackRows orders the backward
  /// visit rows-ascending per timestep — the batched GemmTN's reduction
  /// order.
  std::vector<DecisionBatch> RecomputeLogProbs(
      const std::vector<const SampledTrajectory*>& trajectories,
      bool per_row_recurrence = false) const;

  std::vector<nn::Tensor> Parameters() const;

  /// Guardrail hook: sweeps every parameter tensor for NaN/Inf. A policy
  /// whose parameters fail this sweep samples garbage trajectories, so
  /// the trainer checks it before each step (util/guard.h,
  /// docs/robustness.md).
  FiniteSweep SweepParametersFinite() const;
  const nn::Tensor& item_embeddings() const { return item_emb_.table(); }
  std::size_t embedding_dim() const { return config_.embedding_dim; }
  ActionSpaceKind kind() const { return config_.action_space; }
  const ActionTree* tree() const { return tree_.get(); }
  std::size_t num_items() const { return num_items_; }

 private:
  /// Hidden states for a batch of sequences: returns h after consuming the
  /// user embedding and the first t items, for t = 0..T-1 (the state used
  /// to pick a_t). Output: T tensors of shape (rows x dim).
  std::vector<nn::Tensor> HiddenStates(
      const std::vector<std::size_t>& attacker_ids,
      const std::vector<std::vector<data::ItemId>>& item_prefixes,
      std::size_t trajectory_length) const;

  /// Per-row baseline recurrence: one 1×d LSTM chain per sequence,
  /// stacked per timestep into the same (rows x dim) layout HiddenStates
  /// produces. Values and gradients are bit-identical to HiddenStates.
  std::vector<nn::Tensor> HiddenStatesPerRow(
      const std::vector<std::size_t>& attacker_ids,
      const std::vector<std::vector<data::ItemId>>& item_prefixes,
      std::size_t trajectory_length) const;

  /// Feature-row index of a tree node in the concatenated
  /// [item embeddings; node embeddings] table.
  std::size_t NodeFeatureRow(int node_id) const;

  /// Raw feature pointer for tree-walk sampling (no autograd).
  const float* NodeFeatureData(int node_id) const;

  // Sampling helpers (raw-data fast paths).
  void SampleStepPlain(const std::vector<float>& dht, std::size_t row,
                       Rng* rng, SampledStep* step) const;
  void SampleStepBPlain(const std::vector<float>& dht, std::size_t row,
                        Rng* rng, SampledStep* step) const;
  void SampleStepTree(const std::vector<float>& dht, std::size_t row,
                      Rng* rng, SampledStep* step) const;

  PolicyConfig config_;
  std::size_t num_attackers_;
  std::size_t num_items_;
  std::vector<data::ItemId> targets_;
  std::vector<data::ItemId> originals_;

  // Declared before the modules: member init order supplies it to them.
  mutable Rng init_rng_;

  nn::Embedding user_emb_;
  nn::Embedding item_emb_;
  nn::LstmCell lstm_;
  nn::Mlp dnn_;

  // BCBT state (kBcbtPopular / kBcbtRandom).
  std::unique_ptr<ActionTree> tree_;
  nn::Tensor node_emb_;  // (num_nodes x dim): rows for internal nodes

  // BPlain state: features of the two set pseudo-nodes.
  nn::Tensor set_emb_;  // (2 x dim)
  std::vector<char> is_target_;  // per item id
};

}  // namespace poisonrec::core

#endif  // POISONREC_CORE_POLICY_H_
