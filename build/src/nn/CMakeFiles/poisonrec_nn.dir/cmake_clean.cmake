file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_nn.dir/loss.cc.o"
  "CMakeFiles/poisonrec_nn.dir/loss.cc.o.d"
  "CMakeFiles/poisonrec_nn.dir/module.cc.o"
  "CMakeFiles/poisonrec_nn.dir/module.cc.o.d"
  "CMakeFiles/poisonrec_nn.dir/optimizer.cc.o"
  "CMakeFiles/poisonrec_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/poisonrec_nn.dir/serialize.cc.o"
  "CMakeFiles/poisonrec_nn.dir/serialize.cc.o.d"
  "CMakeFiles/poisonrec_nn.dir/sparse.cc.o"
  "CMakeFiles/poisonrec_nn.dir/sparse.cc.o.d"
  "CMakeFiles/poisonrec_nn.dir/tensor.cc.o"
  "CMakeFiles/poisonrec_nn.dir/tensor.cc.o.d"
  "libpoisonrec_nn.a"
  "libpoisonrec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
