file(REMOVE_RECURSE
  "CMakeFiles/custom_recommender.dir/custom_recommender.cpp.o"
  "CMakeFiles/custom_recommender.dir/custom_recommender.cpp.o.d"
  "custom_recommender"
  "custom_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
