#include "rec/gru4rec.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace poisonrec::rec {

Gru4Rec::Net::Net(std::size_t num_items, std::size_t dim, Rng* rng)
    : items(num_items, dim, rng), gru(dim, dim, rng) {}

std::vector<nn::Tensor> Gru4Rec::Net::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : items.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : gru.Parameters()) params.push_back(p);
  return params;
}

Gru4Rec::Gru4Rec(const FitConfig& config) : config_(config) {}

Gru4Rec::Gru4Rec(const Gru4Rec& other)
    : config_(other.config_),
      num_items_(other.num_items_),
      history_(other.history_),
      clean_sequences_(other.clean_sequences_),
      update_seed_(other.update_seed_) {
  if (other.net_ != nullptr) {
    Rng rng(0x6a09e667ull);
    net_ = std::make_unique<Net>(num_items_, config_.embedding_dim, &rng);
    std::vector<nn::Tensor> dst = net_->Parameters();
    std::vector<nn::Tensor> src = other.net_->Parameters();
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].CopyDataFrom(src[i]);
    }
  }
}

const nn::Tensor& Gru4Rec::ItemEmbeddings() const {
  POISONREC_CHECK(net_ != nullptr) << "GRU4Rec not fitted";
  return net_->items.table();
}

nn::Tensor Gru4Rec::Encode(const std::vector<data::ItemId>& sequence) const {
  nn::Tensor h = net_->gru.InitialState(1);
  const std::size_t start =
      sequence.size() > config_.max_sequence_length
          ? sequence.size() - config_.max_sequence_length
          : 0;
  for (std::size_t p = start; p < sequence.size(); ++p) {
    nn::Tensor x = net_->items.Forward({sequence[p]});
    h = net_->gru.Step(x, h);
  }
  return h;
}

void Gru4Rec::TrainEpochs(
    const std::vector<std::vector<data::ItemId>>& sequences,
    std::size_t epochs, Rng* rng) {
  nn::Adam optimizer(net_->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  std::vector<std::size_t> order;
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    if (sequences[s].size() >= 2) order.push_back(s);
  }
  const std::size_t n_neg = std::max<std::size_t>(
      4, config_.negatives_per_positive * 4);

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t s : order) {
      const std::vector<data::ItemId>& full = sequences[s];
      const std::size_t start =
          full.size() > config_.max_sequence_length
              ? full.size() - config_.max_sequence_length
              : 0;
      nn::Tensor h = net_->gru.InitialState(1);
      nn::Tensor loss;  // accumulated across steps
      std::size_t steps = 0;
      for (std::size_t p = start; p + 1 < full.size(); ++p) {
        nn::Tensor x = net_->items.Forward({full[p]});
        h = net_->gru.Step(x, h);
        // Sampled softmax: positive first, then negatives.
        std::vector<std::size_t> cands;
        cands.push_back(full[p + 1]);
        for (std::size_t n = 0; n < n_neg; ++n) {
          cands.push_back(rng->Index(num_items_));
        }
        nn::Tensor cand_emb = net_->items.Forward(cands);
        nn::Tensor logits = nn::MatMul(h, nn::Transpose(cand_emb));
        nn::Tensor step_loss = nn::SoftmaxCrossEntropy(logits, {0});
        loss = steps == 0 ? step_loss : nn::Add(loss, step_loss);
        ++steps;
      }
      if (steps == 0) continue;
      loss = nn::Scale(loss, 1.0f / static_cast<float>(steps));
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }
}

void Gru4Rec::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  num_items_ = dataset.num_items();
  net_ = std::make_unique<Net>(num_items_, config_.embedding_dim, &rng);
  history_.assign(dataset.num_users(), {});
  std::vector<std::vector<data::ItemId>> sequences;
  sequences.reserve(dataset.num_users());
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    history_[u] = dataset.Sequence(u);
    sequences.push_back(dataset.Sequence(u));
  }
  clean_sequences_ = sequences;
  TrainEpochs(sequences, config_.epochs, &rng);
  update_seed_ = rng.Fork();
}

void Gru4Rec::Update(const data::Dataset& poison) {
  POISONREC_CHECK(net_ != nullptr) << "Update before Fit";
  POISONREC_CHECK_EQ(poison.num_items(), num_items_);
  Rng rng(update_seed_ ^ 0xbb67ae8584caa73bull);
  if (poison.num_users() > history_.size()) {
    history_.resize(poison.num_users());
  }
  std::vector<std::vector<data::ItemId>> sequences;
  for (data::UserId u = 0; u < poison.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = poison.Sequence(u);
    if (seq.empty()) continue;
    history_[u].insert(history_[u].end(), seq.begin(), seq.end());
    sequences.push_back(seq);
  }
  // Replay: mix in clean sequences so the model does not collapse onto
  // the poison sessions (see FitConfig::update_replay_ratio).
  if (!clean_sequences_.empty()) {
    const std::size_t extra = static_cast<std::size_t>(
        config_.update_replay_ratio *
        static_cast<double>(sequences.size()));
    for (std::size_t i = 0; i < extra; ++i) {
      sequences.push_back(
          clean_sequences_[rng.Index(clean_sequences_.size())]);
    }
  }
  TrainEpochs(sequences, config_.update_epochs, &rng);
}

std::vector<double> Gru4Rec::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  POISONREC_CHECK(net_ != nullptr) << "Score before Fit";
  nn::NoGradScope no_grad;
  std::vector<data::ItemId> seq;
  if (user < history_.size()) seq = history_[user];
  nn::Tensor h = Encode(seq);
  std::vector<std::size_t> cands(candidates.begin(), candidates.end());
  nn::Tensor cand_emb = net_->items.Forward(cands);
  nn::Tensor logits = nn::MatMul(h, nn::Transpose(cand_emb));
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = logits.at(0, i);
  }
  return scores;
}

std::unique_ptr<Recommender> Gru4Rec::Clone() const {
  return std::unique_ptr<Recommender>(new Gru4Rec(*this));
}

}  // namespace poisonrec::rec
