#include "viz/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::viz {

namespace internal {

std::vector<double> ComputeAffinities(const std::vector<double>& sq_dist,
                                      std::size_t n, double perplexity) {
  POISONREC_CHECK_EQ(sq_dist.size(), n * n);
  const double target_entropy = std::log(perplexity);
  std::vector<double> p(n * n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // Binary search the precision beta = 1/(2 sigma^2).
    double beta = 1.0;
    double beta_lo = -1.0;  // unset
    double beta_hi = -1.0;
    std::vector<double> row(n, 0.0);
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = j == i ? 0.0 : std::exp(-sq_dist[i * n + j] * beta);
        sum += row[j];
      }
      if (sum <= 0.0) sum = 1e-12;
      double entropy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] <= 0.0) continue;
        const double pj = row[j] / sum;
        entropy -= pj * std::log(pj);
      }
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = beta_hi < 0.0 ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = beta_lo < 0.0 ? beta / 2.0 : (beta + beta_lo) / 2.0;
      }
    }
    double sum = 0.0;
    for (double v : row) sum += v;
    if (sum <= 0.0) sum = 1e-12;
    for (std::size_t j = 0; j < n; ++j) {
      p[i * n + j] = row[j] / sum;
    }
  }

  // Symmetrize and normalize: P_ij = (p_ij + p_ji) / 2n.
  std::vector<double> sym(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sym[i * n + j] = std::max(
          (p[i * n + j] + p[j * n + i]) / (2.0 * static_cast<double>(n)),
          1e-12);
    }
  }
  return sym;
}

}  // namespace internal

std::vector<double> TsneEmbed(const std::vector<double>& points,
                              std::size_t n, std::size_t dim,
                              const TsneConfig& config) {
  POISONREC_CHECK_EQ(points.size(), n * dim);
  POISONREC_CHECK_GE(n, 2u);

  // Pairwise squared distances in the input space.
  std::vector<double> sq_dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double d = points[i * dim + k] - points[j * dim + k];
        acc += d * d;
      }
      sq_dist[i * n + j] = acc;
      sq_dist[j * n + i] = acc;
    }
  }
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<double> p = internal::ComputeAffinities(
      sq_dist, n, std::max(2.0, perplexity));

  Rng rng(config.seed);
  std::vector<double> y(n * 2);
  for (double& v : y) v = rng.Normal(0.0, 1e-2);
  std::vector<double> velocity(n * 2, 0.0);
  std::vector<double> q(n * n, 0.0);
  std::vector<double> grad(n * 2, 0.0);

  const std::size_t exaggeration_end = config.iterations / 4;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? config.early_exaggeration : 1.0;
    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = y[i * 2] - y[j * 2];
        const double dy = y[i * 2 + 1] - y[j * 2 + 1];
        const double t = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = t;
        q[j * n + i] = t;
        q_sum += 2.0 * t;
      }
    }
    if (q_sum <= 0.0) q_sum = 1e-12;

    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double t = q[i * n + j];
        const double qij = std::max(t / q_sum, 1e-12);
        const double mult =
            4.0 * (exaggeration * p[i * n + j] - qij) * t;
        grad[i * 2] += mult * (y[i * 2] - y[j * 2]);
        grad[i * 2 + 1] += mult * (y[i * 2 + 1] - y[j * 2 + 1]);
      }
    }
    for (std::size_t k = 0; k < n * 2; ++k) {
      velocity[k] =
          config.momentum * velocity[k] - config.learning_rate * grad[k];
      y[k] += velocity[k];
    }
    // Center the embedding.
    double mean_x = 0.0;
    double mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean_x += y[i * 2];
      mean_y += y[i * 2 + 1];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i * 2] -= mean_x;
      y[i * 2 + 1] -= mean_y;
    }
  }
  return y;
}

}  // namespace poisonrec::viz
