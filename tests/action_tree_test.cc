// BCBT structure tests: complete-binary-tree invariants, leaf ordering,
// sibling/parent relations, logarithmic depth — parameterized over sizes.
#include "core/action_tree.h"

#include <cmath>
#include <functional>
#include <set>

#include <gtest/gtest.h>

namespace poisonrec::core {
namespace {

std::vector<data::ItemId> Iota(std::size_t n, std::size_t start = 0) {
  std::vector<data::ItemId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + i;
  return v;
}

TEST(ActionTreeTest, SingleLeafSubtrees) {
  ActionTree tree(Iota(1, 100), Iota(1));
  // root + 2 leaves
  EXPECT_EQ(tree.num_nodes(), 3u);
  const auto& root = tree.node(tree.root());
  EXPECT_TRUE(tree.IsLeaf(root.left));
  EXPECT_TRUE(tree.IsLeaf(root.right));
  EXPECT_EQ(tree.LeafItem(root.left), 100u);  // targets on the left
  EXPECT_EQ(tree.LeafItem(root.right), 0u);
}

TEST(ActionTreeTest, LeafOrderMatchesInput) {
  std::vector<data::ItemId> targets = {10, 11};
  std::vector<data::ItemId> originals = {3, 1, 4, 1 + 4, 9};
  ActionTree tree(targets, originals);
  std::vector<data::ItemId> expected = {10, 11, 3, 1, 4, 5, 9};
  EXPECT_EQ(tree.LeavesInOrder(), expected);
}

TEST(ActionTreeTest, RootSeparatesTargetAndOriginalSubtrees) {
  ActionTree tree(Iota(8, 100), Iota(20));
  const auto& root = tree.node(tree.root());
  // Everything under root.left is a target.
  std::function<void(int, bool)> check = [&](int id, bool expect_target) {
    if (tree.IsLeaf(id)) {
      if (expect_target) {
        EXPECT_GE(tree.LeafItem(id), 100u);
      } else {
        EXPECT_LT(tree.LeafItem(id), 20u);
      }
      return;
    }
    check(tree.node(id).left, expect_target);
    check(tree.node(id).right, expect_target);
  };
  check(root.left, true);
  check(root.right, false);
}

TEST(ActionTreeTest, SiblingAndParentConsistency) {
  ActionTree tree(Iota(4, 50), Iota(11));
  for (int id = 0; id < static_cast<int>(tree.num_nodes()); ++id) {
    const auto& n = tree.node(id);
    if (n.item < 0) {
      EXPECT_EQ(tree.node(n.left).parent, id);
      EXPECT_EQ(tree.node(n.right).parent, id);
      EXPECT_EQ(tree.Sibling(n.left), n.right);
      EXPECT_EQ(tree.Sibling(n.right), n.left);
    }
  }
  EXPECT_EQ(tree.Sibling(tree.root()), -1);
}

TEST(ActionTreeTest, LeafOfInverse) {
  ActionTree tree(Iota(3, 30), Iota(9));
  for (data::ItemId item : tree.LeavesInOrder()) {
    const int leaf = tree.LeafOf(item);
    ASSERT_GE(leaf, 0);
    EXPECT_EQ(tree.LeafItem(leaf), item);
  }
  EXPECT_EQ(tree.LeafOf(999), -1);
}

class TreeSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSizeTest, NodeCountIsTwoLeavesMinusOnePerSubtree) {
  const std::size_t n = GetParam();
  ActionTree tree(Iota(8, 1000), Iota(n));
  // target subtree: 2*8-1, original: 2n-1, +1 merged root.
  EXPECT_EQ(tree.num_nodes(), (2 * 8 - 1) + (2 * n - 1) + 1);
  EXPECT_EQ(tree.LeavesInOrder().size(), n + 8);
}

TEST_P(TreeSizeTest, DepthIsLogarithmic) {
  const std::size_t n = GetParam();
  ActionTree tree(Iota(8, 1000), Iota(n));
  // Complete binary tree: original subtree depth = ceil(log2 n) + 1
  // levels of nodes; +1 for the merged root.
  const std::size_t expected_original_levels =
      static_cast<std::size_t>(std::ceil(std::log2(n))) + 1;
  EXPECT_LE(tree.MaxDepth(), std::max<std::size_t>(
                                 expected_original_levels, 4) + 1);
}

TEST_P(TreeSizeTest, CompleteShape) {
  // In a complete binary tree leaf depths differ by at most 1 within each
  // subtree.
  const std::size_t n = GetParam();
  ActionTree tree(Iota(8, 1000), Iota(n));
  const auto& root = tree.node(tree.root());
  std::function<void(int, std::size_t, std::size_t*, std::size_t*)> walk =
      [&](int id, std::size_t depth, std::size_t* min_d, std::size_t* max_d) {
        if (tree.IsLeaf(id)) {
          *min_d = std::min(*min_d, depth);
          *max_d = std::max(*max_d, depth);
          return;
        }
        walk(tree.node(id).left, depth + 1, min_d, max_d);
        walk(tree.node(id).right, depth + 1, min_d, max_d);
      };
  std::size_t min_d = 1000;
  std::size_t max_d = 0;
  walk(root.right, 0, &min_d, &max_d);
  EXPECT_LE(max_d - min_d, 1u) << "original subtree not complete, n=" << n;
}

TEST_P(TreeSizeTest, AllItemsReachable) {
  const std::size_t n = GetParam();
  ActionTree tree(Iota(8, 1000), Iota(n));
  auto leaves = tree.LeavesInOrder();
  std::set<data::ItemId> unique(leaves.begin(), leaves.end());
  EXPECT_EQ(unique.size(), n + 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15,
                                           16, 17, 31, 100, 1000));

}  // namespace
}  // namespace poisonrec::core
