// Appendix harness: testbed validity. Before attacking the 8 rankers,
// verify that each one, trained with the bench FitConfig, beats the
// random-scorer floor on leave-one-out held-out items (HR@10 / NDCG@10).
// An attack result on a ranker that cannot rank is meaningless; this
// harness documents the quality of every testbed the other benches use.
#include <cstdio>

#include "bench/common.h"
#include "rec/metrics.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Appendix: ranker quality on leave-one-out splits (scale=%.3g) "
      "==\n\n",
      config.scale);

  rec::EvalProtocol protocol;
  protocol.top_k = 10;
  protocol.num_negatives = 50;
  std::printf("random floor: HR@10 = %.3f\n\n",
              rec::RandomHitRate(protocol));

  std::vector<data::DatasetPreset> datasets = {
      data::DatasetPreset::kSteam, data::DatasetPreset::kPhone};
  if (!config.datasets.empty()) {
    datasets.clear();
    for (const std::string& name : config.datasets) {
      datasets.push_back(data::ParseDatasetPreset(name).value());
    }
  }

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"dataset", "ranker", "hr10", "ndcg10"});
  for (data::DatasetPreset preset : datasets) {
    std::printf("-- %s --\n", data::DatasetPresetName(preset));
    PrintTableHeader({"Ranker", "HR@10", "NDCG@10", "vs-floor"});
    data::Dataset full = MakeDataset(config, preset);
    data::LeaveOneOutSplit split = data::SplitLeaveOneOut(full);
    for (const std::string& name : config.rankers) {
      rec::FitConfig fit;
      fit.embedding_dim = config.embedding_dim;
      fit.epochs = 6;
      fit.seed = config.seed ^ 0x99u;
      auto ranker = rec::MakeRecommender(name, fit).value();
      ranker->Fit(split.train);
      rec::RankingQuality q =
          rec::EvaluateRanking(*ranker, full, split.test, protocol);
      char hr[16];
      char ndcg[16];
      char lift[16];
      std::snprintf(hr, sizeof(hr), "%.3f", q.hit_rate);
      std::snprintf(ndcg, sizeof(ndcg), "%.3f", q.ndcg);
      std::snprintf(lift, sizeof(lift), "%.1fx",
                    q.hit_rate / rec::RandomHitRate(protocol));
      PrintTableRow({name, hr, ndcg, lift});
      csv.push_back({data::DatasetPresetName(preset), name, hr, ndcg});
    }
    std::printf("\n");
  }
  WriteCsvOutput(config, "ranker_quality.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
