file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_viz.dir/tsne.cc.o"
  "CMakeFiles/poisonrec_viz.dir/tsne.cc.o.d"
  "libpoisonrec_viz.a"
  "libpoisonrec_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
