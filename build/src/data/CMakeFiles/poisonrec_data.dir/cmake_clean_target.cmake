file(REMOVE_RECURSE
  "libpoisonrec_data.a"
)
