// BPR: Bayesian Personalized Ranking (Rendle et al., 2009). Matrix
// factorization trained with the pairwise ranking objective
// -log sigmoid(x_ui - x_uj) over sampled (user, positive, negative)
// triples.
#ifndef POISONREC_REC_BPR_H_
#define POISONREC_REC_BPR_H_

#include <memory>
#include <vector>

#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class Bpr : public Recommender {
 public:
  explicit Bpr(const FitConfig& config = FitConfig());

  std::string Name() const override { return "BPR"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  const FactorTables& factors() const { return factors_; }

 private:
  void SgdEpochs(const std::vector<data::Interaction>& interactions,
                 std::size_t epochs, Rng* rng);

  FitConfig config_;
  FactorTables factors_;
  std::vector<std::unordered_set<data::ItemId>> positives_;
  std::vector<data::Interaction> clean_;  // replay pool for Update
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_BPR_H_
