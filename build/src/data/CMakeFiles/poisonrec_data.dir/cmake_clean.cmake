file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_data.dir/dataset.cc.o"
  "CMakeFiles/poisonrec_data.dir/dataset.cc.o.d"
  "CMakeFiles/poisonrec_data.dir/synthetic.cc.o"
  "CMakeFiles/poisonrec_data.dir/synthetic.cc.o.d"
  "libpoisonrec_data.a"
  "libpoisonrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
