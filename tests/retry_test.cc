// RetryPolicy / CallWithRetry tests. All schedules run against a fake
// sleep hook — nothing here ever blocks on a real clock.
#include "util/retry.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/cancel.h"

namespace poisonrec {
namespace {

/// Records requested sleeps instead of sleeping.
struct FakeClock {
  std::vector<double> sleeps;
  SleepFn Hook() {
    return [this](double seconds) { sleeps.push_back(seconds); };
  }
  double Total() const {
    double t = 0.0;
    for (double s : sleeps) t += s;
    return t;
  }
};

TEST(RetryPolicyTest, DefaultRetriableCodes) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetriable(StatusCode::kUnavailable));
  EXPECT_TRUE(policy.IsRetriable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(policy.IsRetriable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(policy.IsRetriable(StatusCode::kInternal));
  EXPECT_FALSE(policy.IsRetriable(StatusCode::kIoError));
}

TEST(CallWithRetryTest, SucceedsFirstTryWithoutSleeping) {
  FakeClock clock;
  RetryStats stats;
  auto result = CallWithRetry<int>(
      RetryPolicy{}, [](std::size_t) -> StatusOr<int> { return 42; },
      /*jitter_seed=*/1, &stats, clock.Hook());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST(CallWithRetryTest, RetriesTransientFailureUntilSuccess) {
  FakeClock clock;
  RetryStats stats;
  int calls = 0;
  auto result = CallWithRetry<int>(
      RetryPolicy{},
      [&calls](std::size_t attempt) -> StatusOr<int> {
        ++calls;
        EXPECT_EQ(attempt + 1, static_cast<std::size_t>(calls));
        if (attempt < 2) return Status::Unavailable("flaky");
        return 7;
      },
      /*jitter_seed=*/2, &stats, clock.Hook());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(clock.sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.slept_seconds, clock.Total());
}

TEST(CallWithRetryTest, NeverRetriesNonRetriableCodes) {
  FakeClock clock;
  RetryStats stats;
  int calls = 0;
  auto result = CallWithRetry<int>(
      RetryPolicy{},
      [&calls](std::size_t) -> StatusOr<int> {
        ++calls;
        return Status::InvalidArgument("bad request");
      },
      /*jitter_seed=*/3, &stats, clock.Hook());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST(CallWithRetryTest, ExhaustsBudgetAndReturnsLastError) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  auto result = CallWithRetry<int>(
      policy,
      [&calls](std::size_t) -> StatusOr<int> {
        ++calls;
        return Status::ResourceExhausted("throttled");
      },
      /*jitter_seed=*/4, nullptr, clock.Hook());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps.size(), 2u);
}

TEST(CallWithRetryTest, BackoffScheduleRespectsFloorAndCeiling) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_seconds = 0.1;
  policy.max_backoff_seconds = 0.5;
  auto result = CallWithRetry<int>(
      policy,
      [](std::size_t) -> StatusOr<int> { return Status::Unavailable("x"); },
      /*jitter_seed=*/5, nullptr, clock.Hook());
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(clock.sleeps.size(), 7u);
  // First retry sleeps exactly the base; later ones stay within bounds.
  EXPECT_DOUBLE_EQ(clock.sleeps[0], 0.1);
  for (double s : clock.sleeps) {
    EXPECT_GE(s, 0.1);
    EXPECT_LE(s, 0.5);
  }
}

TEST(CallWithRetryTest, BackoffIsDeterministicInTheJitterSeed) {
  auto run = [](std::uint64_t seed) {
    FakeClock clock;
    RetryPolicy policy;
    policy.max_attempts = 6;
    CallWithRetry<int>(
        policy,
        [](std::size_t) -> StatusOr<int> { return Status::Unavailable("x"); },
        seed, nullptr, clock.Hook());
    return clock.sleeps;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(CallWithRetryTest, TotalElapsedDeadlineStopsTheLoop) {
  // The hybrid elapsed clock counts fake-slept seconds, so the deadline
  // is testable without real waiting: 3 sleeps of ~0.05s+ blow a 0.12s
  // budget long before the 50-attempt cap.
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_seconds = 0.05;
  policy.max_backoff_seconds = 0.05;
  policy.max_elapsed_seconds = 0.12;
  RetryStats stats;
  int calls = 0;
  auto result = CallWithRetry<int>(
      policy,
      [&calls](std::size_t) -> StatusOr<int> {
        ++calls;
        return Status::Unavailable("down");
      },
      /*jitter_seed=*/6, &stats, clock.Hook());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The deadline message wraps the last underlying error.
  EXPECT_NE(result.status().message().find("down"), std::string::npos)
      << result.status().message();
  // The loop gives up *before* a sleep that would cross the deadline:
  // attempts at t=0 / 0.05 / 0.10, then the next 0.05s backoff would
  // land past 0.12s.
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(stats.slept_seconds, 0.10);
  EXPECT_LE(stats.slept_seconds, policy.max_elapsed_seconds);
}

TEST(CallWithRetryTest, CancelTokenShortCircuitsBeforeFirstAttempt) {
  FakeClock clock;
  CancelToken cancel;
  cancel.Cancel();
  int calls = 0;
  auto result = CallWithRetry<int>(
      RetryPolicy{},
      [&calls](std::size_t) -> StatusOr<int> {
        ++calls;
        return 1;
      },
      /*jitter_seed=*/7, nullptr, clock.Hook(), &cancel);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 0);
}

TEST(CallWithRetryTest, CancelDuringBackoffStopsWithoutAnotherAttempt) {
  CancelToken cancel;
  int calls = 0;
  // Cancel fires from inside the (fake) backoff sleep — the loop must
  // notice before launching the next attempt.
  auto result = CallWithRetry<int>(
      RetryPolicy{},
      [&calls](std::size_t) -> StatusOr<int> {
        ++calls;
        return Status::Unavailable("down");
      },
      /*jitter_seed=*/8, nullptr,
      [&cancel](double) { cancel.Cancel(); }, &cancel);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1);
}

TEST(CancelTokenTest, SleepForWakesImmediatelyOnCancel) {
  CancelToken cancel;
  cancel.Cancel();
  // Cancelled token: a long sleep returns at once (test would time out
  // otherwise).
  EXPECT_FALSE(cancel.SleepFor(60.0));
  cancel.Reset();
  EXPECT_FALSE(cancel.cancelled());
  // Uncancelled short sleep completes and reports "not cancelled".
  EXPECT_TRUE(cancel.SleepFor(0.001));
}

TEST(RetryBackoffTest, DecorrelatedJitterGrowsFromBase) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.2;
  policy.max_backoff_seconds = 100.0;
  RetryBackoff backoff(policy, 9);
  const double first = backoff.NextDelaySeconds();
  EXPECT_DOUBLE_EQ(first, 0.2);
  double previous = first;
  for (int i = 0; i < 10; ++i) {
    const double next = backoff.NextDelaySeconds();
    EXPECT_GE(next, 0.2);
    EXPECT_LE(next, std::max(0.2, 3.0 * previous) + 1e-12);
    previous = next;
  }
}

}  // namespace
}  // namespace poisonrec
