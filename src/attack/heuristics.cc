#include "attack/heuristics.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/topk.h"

namespace poisonrec::attack {

namespace {

/// Top `fraction` of original items by popularity (at least 1 item).
std::vector<data::ItemId> PopularPool(const env::AttackEnvironment& env,
                                      double fraction) {
  const std::vector<std::size_t>& pop = env.item_popularity();
  std::vector<double> scores(env.num_original_items());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(pop[i]);
  }
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(scores.size() * fraction));
  return TopKByScore(
      [&] {
        std::vector<data::ItemId> ids(scores.size());
        for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
        return ids;
      }(),
      scores, k);
}

/// Builds N trajectories where each step alternates: even steps click a
/// target item, odd steps click an item drawn by `pick_other`.
template <typename PickOther>
std::vector<env::Trajectory> AlternatingAttack(
    const env::AttackEnvironment& env, Rng* rng, PickOther pick_other) {
  const std::vector<data::ItemId>& targets = env.target_items();
  std::vector<env::Trajectory> out;
  out.reserve(env.num_attackers());
  for (std::size_t n = 0; n < env.num_attackers(); ++n) {
    env::Trajectory traj;
    traj.attacker_index = n;
    for (std::size_t t = 0; t < env.trajectory_length(); ++t) {
      if (t % 2 == 0) {
        traj.items.push_back(targets[rng->Index(targets.size())]);
      } else {
        traj.items.push_back(pick_other());
      }
    }
    out.push_back(std::move(traj));
  }
  return out;
}

}  // namespace

std::vector<env::Trajectory> RandomAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  return AlternatingAttack(environment, &rng, [&]() {
    return static_cast<data::ItemId>(
        rng.Index(environment.num_original_items()));
  });
}

PopularAttack::PopularAttack(double top_fraction)
    : top_fraction_(top_fraction) {}

std::vector<env::Trajectory> PopularAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<data::ItemId> pool =
      PopularPool(environment, top_fraction_);
  return AlternatingAttack(environment, &rng, [&]() {
    return pool[rng.Index(pool.size())];
  });
}

MiddleAttack::MiddleAttack(double top_fraction)
    : top_fraction_(top_fraction) {}

std::vector<env::Trajectory> MiddleAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<data::ItemId> popular =
      PopularPool(environment, top_fraction_);
  const std::unordered_set<data::ItemId> popular_set(popular.begin(),
                                                     popular.end());
  std::vector<data::ItemId> tail;
  for (data::ItemId i = 0; i < environment.num_original_items(); ++i) {
    if (popular_set.find(i) == popular_set.end()) tail.push_back(i);
  }
  if (tail.empty()) tail = popular;  // degenerate tiny catalogs
  const std::vector<data::ItemId>& targets = environment.target_items();

  std::vector<env::Trajectory> out;
  out.reserve(environment.num_attackers());
  for (std::size_t n = 0; n < environment.num_attackers(); ++n) {
    env::Trajectory traj;
    traj.attacker_index = n;
    for (std::size_t t = 0; t < environment.trajectory_length(); ++t) {
      switch (rng.Index(3)) {
        case 0:
          traj.items.push_back(targets[rng.Index(targets.size())]);
          break;
        case 1:
          traj.items.push_back(popular[rng.Index(popular.size())]);
          break;
        default:
          traj.items.push_back(tail[rng.Index(tail.size())]);
          break;
      }
    }
    out.push_back(std::move(traj));
  }
  return out;
}

PowerItemAttack::PowerItemAttack(double top_fraction)
    : top_fraction_(top_fraction) {}

std::vector<std::size_t> PowerItemAttack::InDegreeCentrality(
    const data::Dataset& dataset) {
  // Directed edge a -> b per consecutive click pair; in-degree counts
  // distinct predecessors.
  std::vector<std::set<data::ItemId>> predecessors(dataset.num_items());
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = dataset.Sequence(u);
    for (std::size_t p = 0; p + 1 < seq.size(); ++p) {
      if (seq[p] != seq[p + 1]) predecessors[seq[p + 1]].insert(seq[p]);
    }
  }
  std::vector<std::size_t> in_degree(dataset.num_items());
  for (std::size_t i = 0; i < in_degree.size(); ++i) {
    in_degree[i] = predecessors[i].size();
  }
  return in_degree;
}

std::vector<env::Trajectory> PowerItemAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  // Requires the system log (stronger knowledge, per the paper).
  const std::vector<std::size_t> centrality =
      InDegreeCentrality(environment.dataset());
  std::vector<double> scores(environment.num_original_items());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(centrality[i]);
  }
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(scores.size() * top_fraction_));
  std::vector<data::ItemId> ids(scores.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  const std::vector<data::ItemId> power = TopKByScore(ids, scores, k);
  return AlternatingAttack(environment, &rng, [&]() {
    return power[rng.Index(power.size())];
  });
}

}  // namespace poisonrec::attack
