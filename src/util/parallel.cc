#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace poisonrec {

void ParallelFor(std::size_t count, std::size_t num_threads,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // A worker exception must surface on the calling thread, not terminate
  // the process: capture the first one, stop handing out work, rethrow
  // after the join.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> cancelled{false};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&]() {
      while (!cancelled.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace poisonrec
