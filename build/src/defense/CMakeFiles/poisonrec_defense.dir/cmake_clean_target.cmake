file(REMOVE_RECURSE
  "libpoisonrec_defense.a"
)
