// Policy-network tests across all four action-space designs: trajectory
// validity, log-prob bookkeeping, sample/recompute consistency (the PPO
// ratio must be 1 before any update), and the priori-knowledge property
// (biased designs sample targets with ~0.5 probability at init).
#include "core/policy.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace poisonrec::core {
namespace {

constexpr std::size_t kTargets = 4;
constexpr std::size_t kOriginals = 21;
constexpr std::size_t kItems = kTargets + kOriginals;
constexpr std::size_t kAttackers = 5;
constexpr std::size_t kT = 6;

Policy MakePolicy(ActionSpaceKind kind, std::uint64_t seed = 12) {
  PolicyConfig config;
  config.embedding_dim = 8;
  config.action_space = kind;
  config.seed = seed;
  std::vector<data::ItemId> originals;
  for (data::ItemId i = 0; i < kOriginals; ++i) originals.push_back(i);
  std::vector<data::ItemId> targets;
  for (data::ItemId i = kOriginals; i < kItems; ++i) targets.push_back(i);
  return Policy(kAttackers, kItems, originals, targets, config);
}

class PolicyKindTest : public ::testing::TestWithParam<ActionSpaceKind> {};

TEST_P(PolicyKindTest, EpisodeShapeIsValid) {
  Policy policy = MakePolicy(GetParam());
  Rng rng(3);
  auto trajs = policy.SampleEpisode(kT, &rng);
  ASSERT_EQ(trajs.size(), kAttackers);
  for (std::size_t n = 0; n < kAttackers; ++n) {
    EXPECT_EQ(trajs[n].attacker_index, n);
    ASSERT_EQ(trajs[n].steps.size(), kT);
    for (const SampledStep& step : trajs[n].steps) {
      EXPECT_LT(step.item, kItems);
      ASSERT_FALSE(step.old_log_probs.empty());
      for (double lp : step.old_log_probs) {
        EXPECT_LE(lp, 1e-9);
        EXPECT_TRUE(std::isfinite(lp));
      }
    }
  }
}

TEST_P(PolicyKindTest, RecomputeMatchesSampledLogProbs) {
  // Before any parameter update, recomputed log-probs must equal the ones
  // recorded at sampling time (PPO ratio == 1).
  Policy policy = MakePolicy(GetParam());
  Rng rng(4);
  auto trajs = policy.SampleEpisode(kT, &rng);
  std::vector<const SampledTrajectory*> ptrs;
  for (const auto& t : trajs) ptrs.push_back(&t);
  auto batches = policy.RecomputeLogProbs(ptrs);
  ASSERT_FALSE(batches.empty());
  std::size_t total = 0;
  for (const DecisionBatch& batch : batches) {
    ASSERT_EQ(batch.new_log_probs.rows(), batch.old_log_probs.size());
    for (std::size_t i = 0; i < batch.old_log_probs.size(); ++i) {
      EXPECT_NEAR(batch.new_log_probs.at(i, 0), batch.old_log_probs[i],
                  5e-4)
          << ActionSpaceKindName(GetParam());
      ++total;
    }
  }
  // Total decision count matches the stored bookkeeping.
  std::size_t expected = 0;
  for (const auto& t : trajs) {
    for (const auto& s : t.steps) expected += s.old_log_probs.size();
  }
  EXPECT_EQ(total, expected);
}

TEST_P(PolicyKindTest, SamplingIsDeterministicInRngState) {
  Policy policy = MakePolicy(GetParam());
  Rng rng_a(9);
  Rng rng_b(9);
  auto a = policy.SampleEpisode(kT, &rng_a);
  auto b = policy.SampleEpisode(kT, &rng_b);
  for (std::size_t n = 0; n < kAttackers; ++n) {
    for (std::size_t t = 0; t < kT; ++t) {
      EXPECT_EQ(a[n].steps[t].item, b[n].steps[t].item);
    }
  }
}

TEST_P(PolicyKindTest, GradientsFlowFromDecisions) {
  Policy policy = MakePolicy(GetParam());
  Rng rng(5);
  auto trajs = policy.SampleEpisode(kT, &rng);
  std::vector<const SampledTrajectory*> ptrs;
  for (const auto& t : trajs) ptrs.push_back(&t);
  auto batches = policy.RecomputeLogProbs(ptrs);
  nn::Tensor loss;
  for (const auto& batch : batches) {
    nn::Tensor s = nn::Sum(batch.new_log_probs);
    loss = loss.defined() ? nn::Add(loss, s) : s;
  }
  loss.Backward();
  double grad_mass = 0.0;
  for (const nn::Tensor& p : policy.Parameters()) {
    for (float g : p.grad()) grad_mass += std::abs(g);
  }
  EXPECT_GT(grad_mass, 0.0) << ActionSpaceKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PolicyKindTest,
    ::testing::Values(ActionSpaceKind::kPlain, ActionSpaceKind::kBPlain,
                      ActionSpaceKind::kBcbtPopular,
                      ActionSpaceKind::kBcbtRandom,
                      ActionSpaceKind::kCbtUnbiased),
    [](const auto& info) {
      std::string name = ActionSpaceKindName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

double TargetFraction(Policy& policy, Rng* rng, std::size_t episodes) {
  std::size_t target_clicks = 0;
  std::size_t total = 0;
  for (std::size_t e = 0; e < episodes; ++e) {
    auto trajs = policy.SampleEpisode(kT, rng);
    for (const auto& t : trajs) {
      for (const auto& s : t.steps) {
        ++total;
        if (s.item >= kOriginals) ++target_clicks;
      }
    }
  }
  return static_cast<double>(target_clicks) / static_cast<double>(total);
}

TEST(PolicyPrioriKnowledge, BiasedDesignsSampleTargetsAtHalf) {
  // Paper §III-E: with the set-level root decision, target probability at
  // initialization is ~0.5 instead of |I_t| / |I ∪ I_t|.
  Rng rng(6);
  Policy bplain = MakePolicy(ActionSpaceKind::kBPlain);
  Policy bcbt = MakePolicy(ActionSpaceKind::kBcbtPopular);
  EXPECT_NEAR(TargetFraction(bplain, &rng, 40), 0.5, 0.1);
  EXPECT_NEAR(TargetFraction(bcbt, &rng, 40), 0.5, 0.1);
}

TEST(PolicyPrioriKnowledge, PlainSamplesTargetsAtCatalogFraction) {
  Rng rng(7);
  Policy plain = MakePolicy(ActionSpaceKind::kPlain);
  const double expected =
      static_cast<double>(kTargets) / static_cast<double>(kItems);
  EXPECT_NEAR(TargetFraction(plain, &rng, 40), expected, 0.08);
}

TEST(PolicyPrioriKnowledge, UnbiasedTreeSamplesTargetsNearLeafShare) {
  // Without the root bias, the tree's initial target probability depends
  // on the targets' leaf positions — far below the 0.5 of BCBT but,
  // because the (complete) tree is balanced, near their leaf share.
  Rng rng(8);
  Policy unbiased = MakePolicy(ActionSpaceKind::kCbtUnbiased);
  const double fraction = TargetFraction(unbiased, &rng, 40);
  EXPECT_LT(fraction, 0.35);
  EXPECT_GT(fraction, 0.02);
}

TEST(PolicyStructure, UnbiasedTreeCoversAllItems) {
  Policy policy = MakePolicy(ActionSpaceKind::kCbtUnbiased);
  ASSERT_NE(policy.tree(), nullptr);
  EXPECT_EQ(policy.tree()->LeavesInOrder().size(), kItems);
}

TEST(PolicyStructure, TreeOnlyForBcbt) {
  EXPECT_EQ(MakePolicy(ActionSpaceKind::kPlain).tree(), nullptr);
  EXPECT_EQ(MakePolicy(ActionSpaceKind::kBPlain).tree(), nullptr);
  EXPECT_NE(MakePolicy(ActionSpaceKind::kBcbtPopular).tree(), nullptr);
  EXPECT_NE(MakePolicy(ActionSpaceKind::kBcbtRandom).tree(), nullptr);
}

TEST(PolicyStructure, BcbtPathsAreRootToLeaf) {
  Policy policy = MakePolicy(ActionSpaceKind::kBcbtPopular);
  const ActionTree* tree = policy.tree();
  Rng rng(8);
  auto trajs = policy.SampleEpisode(kT, &rng);
  for (const auto& t : trajs) {
    for (const auto& s : t.steps) {
      ASSERT_GE(s.path.size(), 2u);
      EXPECT_EQ(s.path.front(), tree->root());
      EXPECT_TRUE(tree->IsLeaf(s.path.back()));
      EXPECT_EQ(tree->LeafItem(s.path.back()), s.item);
      EXPECT_EQ(s.old_log_probs.size(), s.path.size() - 1);
      for (std::size_t d = 0; d + 1 < s.path.size(); ++d) {
        const auto& node = tree->node(s.path[d]);
        EXPECT_TRUE(s.path[d + 1] == node.left || s.path[d + 1] == node.right);
      }
    }
  }
}

TEST(PolicyStructure, BPlainPathEncodesSetChoice) {
  Policy policy = MakePolicy(ActionSpaceKind::kBPlain);
  Rng rng(9);
  auto trajs = policy.SampleEpisode(kT, &rng);
  for (const auto& t : trajs) {
    for (const auto& s : t.steps) {
      ASSERT_EQ(s.path.size(), 1u);
      ASSERT_EQ(s.old_log_probs.size(), 2u);
      const bool is_target = s.item >= kOriginals;
      EXPECT_EQ(s.path[0], is_target ? 0 : 1);
    }
  }
}

TEST(PolicyStructure, BcbtRandomShufflesLeaves) {
  Policy popular = MakePolicy(ActionSpaceKind::kBcbtPopular, 31);
  Policy random = MakePolicy(ActionSpaceKind::kBcbtRandom, 31);
  EXPECT_NE(popular.tree()->LeavesInOrder(),
            random.tree()->LeavesInOrder());
}

TEST(PolicyStructure, ParameterCountsByKind) {
  // user emb, item emb, lstm(3), dnn(4) = 9 base tensors.
  EXPECT_EQ(MakePolicy(ActionSpaceKind::kPlain).Parameters().size(), 9u);
  EXPECT_EQ(MakePolicy(ActionSpaceKind::kBPlain).Parameters().size(), 10u);
  EXPECT_EQ(MakePolicy(ActionSpaceKind::kBcbtPopular).Parameters().size(),
            10u);
}

}  // namespace
}  // namespace poisonrec::core
