// The four heuristic baselines (paper §IV-A):
//   Random  — alternate a random original item and a random target item
//   Popular — alternate a top-k% popular item and a target item
//   Middle  — at each step pick a set among {I_t, I_p, I \ I_p}, then an
//             item inside it (can click several targets in a row)
//   PowerItem — alternate an influential "power item" (by in-degree
//             centrality on the item transition graph; requires the log)
//             and a target item
#ifndef POISONREC_ATTACK_HEURISTICS_H_
#define POISONREC_ATTACK_HEURISTICS_H_

#include "attack/attack.h"

namespace poisonrec::attack {

class RandomAttack : public AttackMethod {
 public:
  std::string Name() const override { return "Random"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;
};

class PopularAttack : public AttackMethod {
 public:
  /// `top_fraction`: size of the popular pool I_p (paper: k% = 10%).
  explicit PopularAttack(double top_fraction = 0.1);

  std::string Name() const override { return "Popular"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

 private:
  double top_fraction_;
};

class MiddleAttack : public AttackMethod {
 public:
  explicit MiddleAttack(double top_fraction = 0.1);

  std::string Name() const override { return "Middle"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

 private:
  double top_fraction_;
};

class PowerItemAttack : public AttackMethod {
 public:
  /// `top_fraction`: size of the power-item pool.
  explicit PowerItemAttack(double top_fraction = 0.1);

  std::string Name() const override { return "PowerItem"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

  /// In-degree centrality of every item on the directed item transition
  /// graph built from consecutive clicks (exposed for tests).
  static std::vector<std::size_t> InDegreeCentrality(
      const data::Dataset& dataset);

 private:
  double top_fraction_;
};

}  // namespace poisonrec::attack

#endif  // POISONREC_ATTACK_HEURISTICS_H_
