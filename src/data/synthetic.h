// Synthetic dataset generators.
//
// The paper evaluates on Steam, MovieLens-1m and two Amazon categories.
// Those dumps are not available offline, so we generate logs whose shape
// matches each dataset's published statistics (Table II): user/item/sample
// counts, a long-tail (Zipf) item popularity distribution, heterogeneous
// user activity, and cluster-structured sequential sessions (consecutive
// items tend to be related — the structure CoVisitation and GRU4Rec
// exploit, and the structure attacks must navigate). See DESIGN.md §3 for
// the substitution argument.
#ifndef POISONREC_DATA_SYNTHETIC_H_
#define POISONREC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace poisonrec::data {

/// Knobs of the synthetic log generator.
struct SyntheticConfig {
  std::size_t num_users = 1000;
  std::size_t num_items = 500;
  std::size_t num_interactions = 20000;
  /// Zipf exponent of the global item-popularity distribution.
  double popularity_exponent = 1.0;
  /// Number of latent item clusters ("genres") inducing co-visitation
  /// structure.
  std::size_t num_clusters = 20;
  /// Probability that a user's next click stays within their preferred
  /// cluster rather than following global popularity.
  double cluster_affinity = 0.6;
  /// Minimum interactions per user (the paper filters to k >= 3).
  std::size_t min_user_length = 3;
  std::uint64_t seed = 1;
};

/// Presets mirroring the paper's Table II statistics.
enum class DatasetPreset { kSteam, kMovieLens, kPhone, kClothing };

/// Human-readable preset name ("Steam", "MovieLens", "Phone", "Clothing").
const char* DatasetPresetName(DatasetPreset preset);

/// Parses a preset name (case-insensitive).
StatusOr<DatasetPreset> ParseDatasetPreset(const std::string& name);

/// Table II statistics scaled by `scale` (scale=1 reproduces the paper's
/// counts; benchmarks default to smaller scales).
SyntheticConfig PresetConfig(DatasetPreset preset, double scale = 1.0,
                             std::uint64_t seed = 1);

/// Generates a log with the configured shape. Deterministic in the seed.
Dataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace poisonrec::data

#endif  // POISONREC_DATA_SYNTHETIC_H_
