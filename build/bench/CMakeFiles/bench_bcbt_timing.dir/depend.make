# Empty dependencies file for bench_bcbt_timing.
# This may be replaced when dependencies are built.
