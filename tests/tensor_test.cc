// Autograd correctness: forward values and gradient checks against
// numerical differentiation for every op.
#include "nn/tensor.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "util/random.h"

namespace poisonrec::nn {
namespace {

constexpr float kTol = 2e-2f;   // numerical-gradient tolerance (float math)
constexpr float kEps = 1e-2f;   // finite-difference step

// Checks d(loss(x))/dx against central differences, where graph(x) must
// return a scalar tensor built from x.
void CheckGradient(Tensor x, const std::function<Tensor(const Tensor&)>& graph) {
  Tensor loss = graph(x);
  ASSERT_TRUE(loss.is_scalar());
  loss.Backward();
  std::vector<float> analytic = x.grad();
  std::vector<float> numeric = NumericalGradient(
      [&graph](const Tensor& t) {
        NoGradGuard guard;
        return graph(t).item();
      },
      x, kEps);
  ASSERT_EQ(analytic.size(), numeric.size());
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i],
                kTol * (1.0f + std::abs(numeric[i])))
        << "component " << i;
  }
}

Tensor RandomTensor(std::size_t rows, std::size_t cols, std::uint64_t seed,
                    bool requires_grad = true) {
  Rng rng(seed);
  return Tensor::Randn(rows, cols, 0.5f, &rng, requires_grad);
}

TEST(TensorBasics, FactoriesAndShape) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  EXPECT_EQ(z.size(), 6u);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor o = Tensor::Ones(3, 1);
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);

  Tensor f = Tensor::Full(1, 4, 2.5f);
  for (float v : f.data()) EXPECT_EQ(v, 2.5f);

  Tensor d = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(d.at(0, 0), 1.0f);
  EXPECT_EQ(d.at(1, 1), 4.0f);
}

TEST(TensorBasics, DeepCopyDetaches) {
  Tensor a = Tensor::FromData(1, 2, {1, 2}, /*requires_grad=*/true);
  Tensor b = a.DeepCopy();
  b.set(0, 0, 99.0f);
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_FALSE(b.requires_grad());
}

TEST(TensorBasics, CopyAliases) {
  Tensor a = Tensor::FromData(1, 2, {1, 2});
  Tensor b = a;  // aliasing copy
  b.set(0, 0, 7.0f);
  EXPECT_EQ(a.at(0, 0), 7.0f);
}

TEST(TensorBasics, ItemRequiresScalar) {
  Tensor a = Tensor::Zeros(1, 1);
  EXPECT_EQ(a.item(), 0.0f);
}

TEST(TensorForward, MatMulValues) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorForward, AddBroadcastRow) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData(1, 2, {10, 20});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(TensorForward, MulBroadcastColumn) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromData(2, 1, {2, 10});
  Tensor c = Mul(a, col);
  EXPECT_FLOAT_EQ(c.at(0, 2), 6.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 40.0f);
}

TEST(TensorForward, SoftmaxRowsSumToOne) {
  Tensor a = RandomTensor(4, 7, 11, /*requires_grad=*/false);
  Tensor s = Softmax(a);
  for (std::size_t r = 0; r < s.rows(); ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < s.cols(); ++c) {
      sum += s.at(r, c);
      EXPECT_GE(s.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorForward, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = RandomTensor(3, 5, 12, false);
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5f);
  }
}

TEST(TensorForward, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::FromData(1, 3, {1000.0f, 1001.0f, 999.0f});
  Tensor s = Softmax(a);
  for (float v : s.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(s.at(0, 1), s.at(0, 0));
}

TEST(TensorForward, TransposeRoundTrip) {
  Tensor a = RandomTensor(3, 4, 13, false);
  Tensor t = Transpose(Transpose(a));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], t.data()[i]);
  }
}

TEST(TensorForward, RowsGathers) {
  Tensor table = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor picked = Rows(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(picked.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(picked.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(picked.at(2, 1), 6.0f);
}

TEST(TensorForward, ColsSlices) {
  Tensor a = Tensor::FromData(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor mid = Cols(a, 1, 2);
  EXPECT_EQ(mid.cols(), 2u);
  EXPECT_FLOAT_EQ(mid.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mid.at(1, 1), 7.0f);
}

TEST(TensorForward, ConcatColsAndRows) {
  Tensor a = Tensor::FromData(2, 1, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor cc = ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3u);
  EXPECT_FLOAT_EQ(cc.at(1, 2), 6.0f);

  Tensor c = Tensor::FromData(1, 2, {7, 8});
  Tensor cr = ConcatRows(b, c);
  EXPECT_EQ(cr.rows(), 3u);
  EXPECT_FLOAT_EQ(cr.at(2, 1), 8.0f);
}

TEST(TensorForward, NoGradGuardSkipsTape) {
  Tensor a = RandomTensor(2, 2, 14);
  NoGradGuard guard;
  Tensor b = Relu(a);
  EXPECT_FALSE(b.requires_grad());
}

// -- Gradient checks --------------------------------------------------------

TEST(TensorGrad, MatMulLeft) {
  Tensor b = RandomTensor(3, 2, 21, false);
  CheckGradient(RandomTensor(2, 3, 20),
                [&b](const Tensor& x) { return Sum(MatMul(x, b)); });
}

TEST(TensorGrad, MatMulRight) {
  Tensor a = RandomTensor(2, 3, 22, false);
  CheckGradient(RandomTensor(3, 2, 23),
                [&a](const Tensor& x) { return Sum(MatMul(a, x)); });
}

TEST(TensorGrad, AddSameShape) {
  Tensor b = RandomTensor(2, 3, 24, false);
  CheckGradient(RandomTensor(2, 3, 25), [&b](const Tensor& x) {
    return Sum(Mul(Add(x, b), Add(x, b)));
  });
}

TEST(TensorGrad, AddBroadcastBias) {
  Tensor a = RandomTensor(4, 3, 26, false);
  CheckGradient(RandomTensor(1, 3, 27), [&a](const Tensor& x) {
    return Sum(Square(Add(a, x)));
  });
}

TEST(TensorGrad, SubBroadcast) {
  Tensor a = RandomTensor(4, 3, 28, false);
  CheckGradient(RandomTensor(1, 3, 29), [&a](const Tensor& x) {
    return Sum(Square(Sub(a, x)));
  });
}

TEST(TensorGrad, MulElementwise) {
  Tensor b = RandomTensor(3, 3, 30, false);
  CheckGradient(RandomTensor(3, 3, 31),
                [&b](const Tensor& x) { return Sum(Mul(x, b)); });
}

TEST(TensorGrad, MulBroadcastColumn) {
  Tensor a = RandomTensor(3, 4, 32, false);
  CheckGradient(RandomTensor(3, 1, 33),
                [&a](const Tensor& x) { return Sum(Mul(a, x)); });
}

TEST(TensorGrad, Sigmoid) {
  CheckGradient(RandomTensor(2, 4, 34),
                [](const Tensor& x) { return Sum(Sigmoid(x)); });
}

TEST(TensorGrad, TanhOp) {
  CheckGradient(RandomTensor(2, 4, 35),
                [](const Tensor& x) { return Sum(Tanh(x)); });
}

TEST(TensorGrad, Softplus) {
  CheckGradient(RandomTensor(2, 4, 36),
                [](const Tensor& x) { return Sum(Softplus(x)); });
}

TEST(TensorGrad, ExpLog) {
  CheckGradient(RandomTensor(2, 3, 37), [](const Tensor& x) {
    return Sum(Log(AddScalar(Exp(x), 1.0f)));
  });
}

TEST(TensorGrad, LeakyReluGrad) {
  CheckGradient(RandomTensor(3, 3, 38),
                [](const Tensor& x) { return Sum(LeakyRelu(x, 0.2f)); });
}

TEST(TensorGrad, SquareScale) {
  CheckGradient(RandomTensor(2, 2, 39), [](const Tensor& x) {
    return Mean(Scale(Square(x), 3.0f));
  });
}

TEST(TensorGrad, SoftmaxWeighted) {
  Tensor w = RandomTensor(2, 5, 40, false);
  CheckGradient(RandomTensor(2, 5, 41), [&w](const Tensor& x) {
    return Sum(Mul(Softmax(x), w));
  });
}

TEST(TensorGrad, LogSoftmaxWeighted) {
  Tensor w = RandomTensor(2, 5, 42, false);
  CheckGradient(RandomTensor(2, 5, 43), [&w](const Tensor& x) {
    return Sum(Mul(LogSoftmax(x), w));
  });
}

TEST(TensorGrad, RowSumWeighted) {
  Tensor w = RandomTensor(3, 1, 44, false);
  CheckGradient(RandomTensor(3, 4, 45), [&w](const Tensor& x) {
    return Sum(Mul(RowSum(x), w));
  });
}

TEST(TensorGrad, TransposeChain) {
  Tensor b = RandomTensor(2, 3, 46, false);
  CheckGradient(RandomTensor(3, 2, 47), [&b](const Tensor& x) {
    return Sum(Mul(Transpose(x), b));
  });
}

TEST(TensorGrad, ConcatColsBoth) {
  Tensor b = RandomTensor(2, 2, 48, false);
  CheckGradient(RandomTensor(2, 3, 49), [&b](const Tensor& x) {
    return Sum(Square(ConcatCols(x, b)));
  });
}

TEST(TensorGrad, ConcatRowsBoth) {
  Tensor b = RandomTensor(2, 3, 50, false);
  CheckGradient(RandomTensor(4, 3, 51), [&b](const Tensor& x) {
    return Sum(Square(ConcatRows(b, x)));
  });
}

TEST(TensorGrad, RowsScatterAccumulates) {
  // The same row gathered twice must receive twice the gradient.
  Tensor table = Tensor::FromData(2, 2, {1, 2, 3, 4}, true);
  Tensor picked = Rows(table, {0, 0, 1});
  Tensor loss = Sum(picked);
  loss.Backward();
  EXPECT_FLOAT_EQ(table.grad()[0], 2.0f);  // row 0 twice
  EXPECT_FLOAT_EQ(table.grad()[2], 1.0f);  // row 1 once
}

TEST(TensorGrad, RowsNumerical) {
  CheckGradient(RandomTensor(4, 3, 52), [](const Tensor& x) {
    return Sum(Square(Rows(x, {1, 3, 1})));
  });
}

TEST(TensorGrad, ColsNumerical) {
  CheckGradient(RandomTensor(3, 6, 53), [](const Tensor& x) {
    return Sum(Square(Cols(x, 2, 3)));
  });
}

TEST(TensorGrad, RowDotBoth) {
  Tensor b = RandomTensor(3, 4, 54, false);
  CheckGradient(RandomTensor(3, 4, 55), [&b](const Tensor& x) {
    return Sum(Square(RowDot(x, b)));
  });
}

TEST(TensorGrad, ReusedNodeAccumulates) {
  // x used twice in the graph: d(x*x + 3x)/dx = 2x + 3.
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  Tensor loss = Add(Mul(x, x), Scale(x, 3.0f));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
}

TEST(TensorGrad, DeepChainStaysFinite) {
  // A 100-step chain exercises the iterative topological sort.
  Tensor x = RandomTensor(1, 8, 56);
  Tensor h = x;
  for (int i = 0; i < 100; ++i) {
    h = Tanh(h);
  }
  Tensor loss = Sum(h);
  loss.Backward();
  for (float g : x.grad()) {
    EXPECT_TRUE(std::isfinite(g));
  }
}

// Property sweep: random graphs of mixed ops gradient-check cleanly.
class MixedGraphGradTest : public ::testing::TestWithParam<int> {};

TEST_P(MixedGraphGradTest, NumericalAgreement) {
  const int seed = GetParam();
  Tensor w = RandomTensor(4, 4, seed * 1000 + 1, false);
  CheckGradient(RandomTensor(2, 4, seed * 1000), [&w](const Tensor& x) {
    Tensor h = Tanh(MatMul(x, w));
    h = Add(h, x);
    h = Relu(h);
    return Mean(Square(h));
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedGraphGradTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace poisonrec::nn
