// Generic retry with exponential backoff and decorrelated jitter, for
// calls against unreliable backends (the black-box recommender under
// attack throttles crawlers and drops queries; see env/fault.h).
//
// The sleep is injectable so tests — and deterministic training runs —
// never block on a real clock. All jitter draws come from a caller-seeded
// Rng, so retry schedules are reproducible.
#ifndef POISONREC_UTIL_RETRY_H_
#define POISONREC_UTIL_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <vector>

#include "util/cancel.h"
#include "util/random.h"
#include "util/status.h"

namespace poisonrec {

/// What to retry and how hard. Defaults match the fault model of
/// env/fault.h: transient unavailability and throttling are retriable,
/// everything else fails immediately.
struct RetryPolicy {
  /// Total attempts including the first call (1 = no retries).
  std::size_t max_attempts = 4;
  /// Backoff floor; the first retry sleeps at least this long.
  double initial_backoff_seconds = 0.05;
  /// Backoff ceiling (decorrelated jitter is clamped here).
  double max_backoff_seconds = 2.0;
  /// Codes worth retrying. Any other non-OK code propagates immediately.
  std::vector<StatusCode> retriable = {StatusCode::kUnavailable,
                                       StatusCode::kResourceExhausted};
  /// Total-elapsed-time deadline across every attempt and backoff sleep
  /// (0 = unbounded). When the next backoff would push the call past the
  /// deadline — counting real wall time and, under an injected fake
  /// sleep, the simulated slept seconds — the retry loop gives up with
  /// kDeadlineExceeded instead of sleeping. This is what keeps a retry
  /// loop from outliving the campaign deadline that contains it.
  double max_elapsed_seconds = 0.0;

  bool IsRetriable(StatusCode code) const;
};

/// Observability for a single retried call.
struct RetryStats {
  /// Attempts actually made (>= 1 once the call ran).
  std::size_t attempts = 0;
  /// attempts - 1 when the call ran; how many times we re-queried.
  std::size_t retries = 0;
  /// Total simulated/real backoff slept.
  double slept_seconds = 0.0;
};

/// Sleep hook; an empty function means "really sleep".
using SleepFn = std::function<void(double seconds)>;

/// Decorrelated-jitter backoff schedule (Brooker, AWS Architecture Blog):
///   delay_0 = base
///   delay_k = min(cap, uniform(base, 3 * delay_{k-1}))
/// Draws come from the given seed only, so schedules reproduce.
class RetryBackoff {
 public:
  RetryBackoff(const RetryPolicy& policy, std::uint64_t jitter_seed);

  /// Delay to sleep before the next retry.
  double NextDelaySeconds();

 private:
  double base_;
  double cap_;
  double previous_;
  bool first_ = true;
  Rng rng_;
};

/// Invokes `fn(attempt)` (attempt = 0, 1, ...) until it returns OK, a
/// non-retriable error, the attempt budget is spent, or the elapsed-time
/// deadline would be exceeded. On budget exhaustion the last error is
/// returned; on deadline exhaustion kDeadlineExceeded wrapping the last
/// error. `sleep` is called with the backoff delay between attempts;
/// pass {} to really sleep. A non-null `cancel` token is polled before
/// every attempt and interrupts the default (real) backoff sleep
/// immediately; cancellation returns kCancelled without calling fn
/// again, so a supervisor can always unblock a retry loop parked in a
/// long fault blackout.
template <typename T, typename Fn>
StatusOr<T> CallWithRetry(const RetryPolicy& policy, Fn&& fn,
                          std::uint64_t jitter_seed = 0,
                          RetryStats* stats = nullptr,
                          const SleepFn& sleep = {},
                          const CancelToken* cancel = nullptr);

// -- implementation ---------------------------------------------------------

namespace internal {
/// Blocks the calling thread (the default sleep hook).
void SleepForSeconds(double seconds);
/// Seconds of real wall time since `start` (steady clock ticks).
double ElapsedSecondsSince(std::uint64_t start_ticks);
/// Current steady-clock tick count (nanoseconds).
std::uint64_t NowTicks();
}  // namespace internal

template <typename T, typename Fn>
StatusOr<T> CallWithRetry(const RetryPolicy& policy, Fn&& fn,
                          std::uint64_t jitter_seed, RetryStats* stats,
                          const SleepFn& sleep, const CancelToken* cancel) {
  POISONREC_CHECK_GT(policy.max_attempts, 0u);
  RetryBackoff backoff(policy, jitter_seed);
  RetryStats local;
  const std::uint64_t start_ticks = internal::NowTicks();
  // The deadline tracks whichever is larger: real wall time (covers slow
  // fn calls and real sleeps) or the accumulated backoff delays (covers
  // tests that inject a fake sleep, where wall time barely moves).
  const auto elapsed = [&local, start_ticks] {
    const double wall = internal::ElapsedSecondsSince(start_ticks);
    return wall > local.slept_seconds ? wall : local.slept_seconds;
  };
  StatusOr<T> result = Status::Internal("retry loop never ran");
  const auto cancelled_status = [&local, &result] {
    return Status::Cancelled(
        "retry loop cancelled after " + std::to_string(local.attempts) +
        " attempt(s)" +
        (local.attempts > 0 ? "; last error: " + result.status().ToString()
                            : std::string()));
  };
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (cancel != nullptr && cancel->cancelled()) {
      StatusOr<T> out = cancelled_status();
      if (stats != nullptr) *stats = local;
      return out;
    }
    if (attempt > 0) {
      const double delay = backoff.NextDelaySeconds();
      if (policy.max_elapsed_seconds > 0.0 &&
          elapsed() + delay > policy.max_elapsed_seconds) {
        StatusOr<T> deadline = Status::DeadlineExceeded(
            "retry deadline (" + std::to_string(policy.max_elapsed_seconds) +
            "s) exhausted after " + std::to_string(local.attempts) +
            " attempt(s); last error: " + result.status().ToString());
        if (stats != nullptr) *stats = local;
        return deadline;
      }
      local.slept_seconds += delay;
      if (sleep) {
        sleep(delay);
      } else if (cancel != nullptr) {
        cancel->SleepFor(delay);  // wakes immediately on Cancel
      } else {
        internal::SleepForSeconds(delay);
      }
      if (cancel != nullptr && cancel->cancelled()) {
        StatusOr<T> out = cancelled_status();
        if (stats != nullptr) *stats = local;
        return out;
      }
    }
    local.attempts = attempt + 1;
    local.retries = attempt;
    result = fn(attempt);
    if (result.ok() || !policy.IsRetriable(result.status().code())) break;
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace poisonrec

#endif  // POISONREC_UTIL_RETRY_H_
