// Tests for nn modules: shapes, parameter plumbing, gradient flow, and
// end-to-end gradient checks through LSTM/GRU cells.
#include "nn/module.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace poisonrec::nn {
namespace {

TEST(LinearTest, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 2, &rng);
  Tensor x = Tensor::Ones(4, 3);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(layer.NumParameters(), 3u * 2u + 2u);
}

TEST(LinearTest, GradientFlowsToWeightAndBias) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  Tensor x = Tensor::Ones(1, 3);
  Tensor loss = Sum(Square(layer.Forward(x)));
  loss.Backward();
  float wg = 0.0f;
  for (float g : layer.weight().grad()) wg += std::abs(g);
  float bg = 0.0f;
  for (float g : layer.bias().grad()) bg += std::abs(g);
  EXPECT_GT(wg, 0.0f);
  EXPECT_GT(bg, 0.0f);
}

TEST(EmbeddingTest, LookupShapes) {
  Rng rng(3);
  Embedding emb(10, 4, &rng);
  Tensor rows = emb.Forward({1, 7, 1});
  EXPECT_EQ(rows.rows(), 3u);
  EXPECT_EQ(rows.cols(), 4u);
  // Repeated id returns identical rows.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(rows.at(0, c), rows.at(2, c));
  }
}

TEST(EmbeddingTest, OnlyTouchedRowsGetGradient) {
  Rng rng(4);
  Embedding emb(5, 3, &rng);
  Tensor loss = Sum(emb.Forward({2}));
  loss.Backward();
  const std::vector<float>& g = emb.table().grad();
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (r == 2) {
        EXPECT_FLOAT_EQ(g[r * 3 + c], 1.0f);
      } else {
        EXPECT_FLOAT_EQ(g[r * 3 + c], 0.0f);
      }
    }
  }
}

TEST(MlpTest, HiddenReluFinalLinear) {
  Rng rng(5);
  Mlp mlp({4, 8, 2}, &rng);
  Tensor x = Tensor::Ones(3, 4);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 2u);
  // Final layer is linear: outputs may be negative.
  EXPECT_EQ(mlp.Parameters().size(), 4u);
}

TEST(MlpTest, CopyParametersFrom) {
  Rng rng1(6);
  Rng rng2(7);
  Mlp a({3, 3}, &rng1);
  Mlp b({3, 3}, &rng2);
  b.CopyParametersFrom(a);
  Tensor x = Tensor::Ones(1, 3);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(LstmTest, StepShapesAndStateEvolution) {
  Rng rng(8);
  LstmCell lstm(4, 6, &rng);
  auto state = lstm.InitialState(2);
  EXPECT_EQ(state.h.rows(), 2u);
  EXPECT_EQ(state.h.cols(), 6u);
  Tensor x = Tensor::Ones(2, 4);
  auto next = lstm.Step(x, state);
  float moved = 0.0f;
  for (float v : next.h.data()) moved += std::abs(v);
  EXPECT_GT(moved, 0.0f);  // state moved away from zero
  // Cell state bounded by tanh dynamics: |h| < 1.
  for (float v : next.h.data()) EXPECT_LT(std::abs(v), 1.0f);
}

TEST(LstmTest, GradientThroughThreeSteps) {
  Rng rng(9);
  LstmCell lstm(3, 3, &rng);
  Tensor x = Tensor::Randn(2, 3, 0.5f, &rng, /*requires_grad=*/true);
  auto state = lstm.InitialState(2);
  for (int t = 0; t < 3; ++t) state = lstm.Step(x, state);
  Tensor loss = Sum(Square(state.h));
  loss.Backward();
  // Check input gradient numerically.
  std::vector<float> analytic = x.grad();
  std::vector<float> numeric = NumericalGradient(
      [&lstm](const Tensor& t) {
        NoGradGuard guard;
        auto s = lstm.InitialState(2);
        for (int i = 0; i < 3; ++i) s = lstm.Step(t, s);
        return Sum(Square(s.h)).item();
      },
      x, 1e-2f);
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 0.02f + 0.05f * std::abs(numeric[i]));
  }
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(10);
  LstmCell lstm(2, 4, &rng);
  // Parameters() returns by value; take a (shared-storage) copy instead
  // of a reference into the destroyed temporary vector.
  const Tensor bias = lstm.Parameters()[2];
  for (std::size_t c = 4; c < 8; ++c) {
    EXPECT_FLOAT_EQ(bias.at(0, c), 1.0f);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(bias.at(0, c), 0.0f);
  }
}

TEST(GruTest, StepShapes) {
  Rng rng(11);
  GruCell gru(4, 5, &rng);
  Tensor h = gru.InitialState(3);
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 5u);
  Tensor x = Tensor::Ones(3, 4);
  Tensor h2 = gru.Step(x, h);
  EXPECT_EQ(h2.rows(), 3u);
  EXPECT_EQ(h2.cols(), 5u);
}

TEST(GruTest, GradientThroughSteps) {
  Rng rng(12);
  GruCell gru(3, 3, &rng);
  Tensor x = Tensor::Randn(1, 3, 0.5f, &rng, true);
  Tensor h = gru.InitialState(1);
  for (int t = 0; t < 3; ++t) h = gru.Step(x, h);
  Tensor loss = Sum(Square(h));
  loss.Backward();
  std::vector<float> numeric = NumericalGradient(
      [&gru](const Tensor& t) {
        NoGradGuard guard;
        Tensor s = gru.InitialState(1);
        for (int i = 0; i < 3; ++i) s = gru.Step(t, s);
        return Sum(Square(s)).item();
      },
      x, 1e-2f);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_NEAR(x.grad()[i], numeric[i],
                0.02f + 0.05f * std::abs(numeric[i]));
  }
}

TEST(GruTest, InterpolatesBetweenStateAndCandidate) {
  // h' = (1-z) n + z h is a convex combination, so |h'| stays bounded by
  // max(|h|, 1) since |n| < 1.
  Rng rng(13);
  GruCell gru(2, 4, &rng);
  Tensor h = gru.InitialState(1);
  Tensor x = Tensor::Full(1, 2, 3.0f);
  for (int t = 0; t < 50; ++t) h = gru.Step(x, h);
  for (float v : h.data()) EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
}

TEST(ModuleTest, ZeroGradClears) {
  Rng rng(14);
  Linear layer(2, 2, &rng);
  Tensor loss = Sum(layer.Forward(Tensor::Ones(1, 2)));
  loss.Backward();
  layer.ZeroGrad();
  for (float g : layer.weight().grad()) EXPECT_EQ(g, 0.0f);
}

// Training property: a 2-layer MLP learns XOR with Adam.
TEST(ModuleTest, MlpLearnsXor) {
  Rng rng(15);
  Mlp mlp({2, 8, 1}, &rng);
  Adam opt(mlp.Parameters(), 0.05f);
  Tensor x = Tensor::FromData(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y = Tensor::FromData(4, 1, {0, 1, 1, 0});
  float final_loss = 1.0f;
  for (int step = 0; step < 400; ++step) {
    Tensor pred = Sigmoid(mlp.Forward(x));
    Tensor loss = Mean(Square(Sub(pred, y)));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.05f);
}

}  // namespace
}  // namespace poisonrec::nn
