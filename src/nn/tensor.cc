#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/arena.h"
#include "nn/graph.h"
#include "nn/kernels.h"

namespace poisonrec::nn {

using internal::TensorImpl;

namespace {

thread_local bool g_grad_enabled = true;

std::shared_ptr<TensorImpl> NewNode(std::size_t rows, std::size_t cols) {
  if (TensorArena* arena = TensorArena::Current()) {
    return arena->Acquire(rows, cols);
  }
  auto node = std::make_shared<TensorImpl>();
  node->rows = rows;
  node->cols = cols;
  node->data.assign(rows * cols, 0.0f);
  return node;
}

bool TrackGrad(std::initializer_list<const Tensor*> inputs) {
  if (!GradMode::Enabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->requires_grad()) return true;
  }
  return false;
}

// Registers parents + backward closure on `out` when tracking is on.
// `forward_fn` recomputes out's data from its parents' current data; it
// is only materialized (and the node only registered for replay) while
// a GraphTape is recording on this thread, so the normal path pays one
// thread-local read and nothing else.
template <typename FwdFn>
void Attach(const std::shared_ptr<TensorImpl>& out,
            std::initializer_list<const Tensor*> inputs,
            std::function<void()> backward_fn, FwdFn&& forward_fn) {
  out->requires_grad = true;
  out->EnsureGrad();
  for (const Tensor* t : inputs) {
    out->parents.push_back(t->impl());
    if (t->requires_grad()) t->impl()->EnsureGrad();
  }
  out->backward_fn = std::move(backward_fn);
  if (GraphTape* tape = GraphTape::Current()) {
    out->forward_fn = std::forward<FwdFn>(forward_fn);
    tape->Register(out);
  }
}

}  // namespace

bool GradMode::Enabled() { return g_grad_enabled; }

void GradMode::SetEnabled(bool enabled) { g_grad_enabled = enabled; }

bool GradEnabled() { return GradMode::Enabled(); }

NoGradGuard::NoGradGuard() : previous_(GradMode::Enabled()) {
  GradMode::SetEnabled(false);
}

NoGradGuard::~NoGradGuard() { GradMode::SetEnabled(previous_); }

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Tensor Tensor::Zeros(std::size_t rows, std::size_t cols, bool requires_grad) {
  auto node = NewNode(rows, cols);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Ones(std::size_t rows, std::size_t cols, bool requires_grad) {
  return Full(rows, cols, 1.0f, requires_grad);
}

Tensor Tensor::Full(std::size_t rows, std::size_t cols, float value,
                    bool requires_grad) {
  auto node = NewNode(rows, cols);
  std::fill(node->data.begin(), node->data.end(), value);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::FromData(std::size_t rows, std::size_t cols,
                        std::vector<float> data, bool requires_grad) {
  POISONREC_CHECK_EQ(rows * cols, data.size());
  auto node = std::make_shared<TensorImpl>();
  node->rows = rows;
  node->cols = cols;
  node->data = std::move(data);
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Randn(std::size_t rows, std::size_t cols, float stddev,
                     Rng* rng, bool requires_grad) {
  POISONREC_CHECK(rng != nullptr);
  auto node = NewNode(rows, cols);
  for (float& v : node->data) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

Tensor Tensor::Rand(std::size_t rows, std::size_t cols, float lo, float hi,
                    Rng* rng, bool requires_grad) {
  POISONREC_CHECK(rng != nullptr);
  auto node = NewNode(rows, cols);
  for (float& v : node->data) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->EnsureGrad();
  return Tensor(std::move(node));
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

float Tensor::item() const {
  POISONREC_CHECK(is_scalar()) << "item() on tensor of shape "
                               << ShapeString();
  return impl_->data[0];
}

void Tensor::ZeroGrad() {
  if (defined() && !impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::DeepCopy(bool requires_grad) const {
  POISONREC_CHECK(defined());
  return FromData(rows(), cols(), impl_->data, requires_grad);
}

void Tensor::CopyDataFrom(const Tensor& other) {
  POISONREC_CHECK(defined() && other.defined());
  POISONREC_CHECK_EQ(rows(), other.rows());
  POISONREC_CHECK_EQ(cols(), other.cols());
  impl_->data = other.impl_->data;
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "(undefined)";
  return "(" + std::to_string(rows()) + "x" + std::to_string(cols()) + ")";
}

void Tensor::Backward() {
  POISONREC_CHECK(defined());
  POISONREC_CHECK(is_scalar()) << "Backward() requires a scalar loss, got "
                               << ShapeString();
  POISONREC_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";

  // Iterative post-order DFS to build reverse topological order.
  // RecordedBackward::Capture (nn/graph.cc) replicates this traversal
  // to freeze the closure order for graph reuse — keep them in sync.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

// ---------------------------------------------------------------------------
// Ops
//
// Each op's forward loop lives in one *Forward helper taking raw impls:
// the op calls it once at build time, and the same helper (captured in
// a replay closure) recomputes the node when the PPO update replays its
// recorded graph. One source of truth per loop keeps replay trivially
// bit-identical to the original forward.
// ---------------------------------------------------------------------------

namespace {

void MatMulForward(const TensorImpl* ai, const TensorImpl* bi, TensorImpl* oi,
                   std::size_t m, std::size_t k, std::size_t n) {
  // GemmNN accumulates, so replay must clear the previous epoch's
  // values first (a no-op on the freshly zeroed first call).
  std::fill(oi->data.begin(), oi->data.end(), 0.0f);
  kernels::GemmNN(m, k, n, ai->data.data(), bi->data.data(),
                  oi->data.data());
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.cols(), b.rows())
      << "MatMul shape mismatch " << a.ShapeString() << " * "
      << b.ShapeString();
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = NewNode(m, n);
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  kernels::GemmNN(m, k, n, a.data().data(), b.data().data(),
                  out->data.data());
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi, m, k, n]() {
          if (ai->requires_grad) {
            // dA(m×k) += dC(m×n) · Bᵀ (B stored k×n).
            kernels::GemmNT(m, n, k, oi->grad.data(), bi->data.data(),
                            ai->grad.data());
          }
          if (bi->requires_grad) {
            // dB(k×n) += Aᵀ · dC (A stored m×k).
            kernels::GemmTN(k, m, n, ai->data.data(), oi->grad.data(),
                            bi->grad.data());
          }
        },
        [ai, bi, oi, m, k, n]() { MatMulForward(ai, bi, oi, m, k, n); });
  }
  return result;
}

namespace {

enum class AddKind { kSame, kBroadcastRow };

AddKind CheckAddShapes(const Tensor& a, const Tensor& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) return AddKind::kSame;
  POISONREC_CHECK(b.rows() == 1 && b.cols() == a.cols())
      << "Add/Sub shape mismatch " << a.ShapeString() << " vs "
      << b.ShapeString();
  return AddKind::kBroadcastRow;
}

void AddForward(const TensorImpl* ai, const TensorImpl* bi, TensorImpl* oi,
                AddKind kind, float sign) {
  const std::size_t n = ai->cols;
  for (std::size_t r = 0; r < ai->rows; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const float bv = kind == AddKind::kSame ? bi->at(r, c) : bi->at(0, c);
      oi->at(r, c) = ai->at(r, c) + sign * bv;
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const AddKind kind = CheckAddShapes(a, b);
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  const std::size_t n = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const float bv =
          kind == AddKind::kSame ? b.at(r, c) : b.at(0, c);
      out->at(r, c) = a.at(r, c) + bv;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi, kind]() {
          if (ai->requires_grad) {
            for (std::size_t i = 0; i < ai->grad.size(); ++i) {
              ai->grad[i] += oi->grad[i];
            }
          }
          if (bi->requires_grad) {
            if (kind == AddKind::kSame) {
              for (std::size_t i = 0; i < bi->grad.size(); ++i) {
                bi->grad[i] += oi->grad[i];
              }
            } else {
              for (std::size_t r = 0; r < oi->rows; ++r) {
                for (std::size_t c = 0; c < oi->cols; ++c) {
                  bi->grad[c] += oi->gat(r, c);
                }
              }
            }
          }
        },
        [ai, bi, oi, kind]() { AddForward(ai, bi, oi, kind, 1.0f); });
  }
  return result;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const AddKind kind = CheckAddShapes(a, b);
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float bv =
          kind == AddKind::kSame ? b.at(r, c) : b.at(0, c);
      out->at(r, c) = a.at(r, c) - bv;
    }
  }
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi, kind]() {
          if (ai->requires_grad) {
            for (std::size_t i = 0; i < ai->grad.size(); ++i) {
              ai->grad[i] += oi->grad[i];
            }
          }
          if (bi->requires_grad) {
            if (kind == AddKind::kSame) {
              for (std::size_t i = 0; i < bi->grad.size(); ++i) {
                bi->grad[i] -= oi->grad[i];
              }
            } else {
              for (std::size_t r = 0; r < oi->rows; ++r) {
                for (std::size_t c = 0; c < oi->cols; ++c) {
                  bi->grad[c] -= oi->gat(r, c);
                }
              }
            }
          }
        },
        [ai, bi, oi, kind]() { AddForward(ai, bi, oi, kind, -1.0f); });
  }
  return result;
}

namespace {

void MulForward(const TensorImpl* ai, const TensorImpl* bi, TensorImpl* oi,
                bool broadcast_col) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    for (std::size_t c = 0; c < ai->cols; ++c) {
      const float bv = broadcast_col ? bi->at(r, 0) : bi->at(r, c);
      oi->at(r, c) = ai->at(r, c) * bv;
    }
  }
}

}  // namespace

Tensor Mul(const Tensor& a, const Tensor& b) {
  const bool broadcast_col = (b.cols() == 1 && b.rows() == a.rows() &&
                              a.cols() != 1);
  if (!broadcast_col) {
    POISONREC_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
        << "Mul shape mismatch " << a.ShapeString() << " vs "
        << b.ShapeString();
  }
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  MulForward(ai, bi, oi, broadcast_col);
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi, broadcast_col]() {
          for (std::size_t r = 0; r < oi->rows; ++r) {
            for (std::size_t c = 0; c < oi->cols; ++c) {
              const float g = oi->gat(r, c);
              const float bv =
                  broadcast_col ? bi->data[r] : bi->at(r, c);
              if (ai->requires_grad) ai->gat(r, c) += g * bv;
              if (bi->requires_grad) {
                if (broadcast_col) {
                  bi->grad[r] += g * ai->at(r, c);
                } else {
                  bi->gat(r, c) += g * ai->at(r, c);
                }
              }
            }
          }
        },
        [ai, bi, oi, broadcast_col]() {
          MulForward(ai, bi, oi, broadcast_col);
        });
  }
  return result;
}

namespace {

// Shared scaffolding for elementwise unary ops:
// out = fwd(x), dx += dout * dfn(x, y).
template <typename Fwd, typename Dfn>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Dfn dfn) {
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  for (std::size_t i = 0; i < a.size(); ++i) {
    out->data[i] = fwd(a.data()[i]);
  }
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi, dfn]() {
          if (!ai->requires_grad) return;
          for (std::size_t i = 0; i < ai->grad.size(); ++i) {
            ai->grad[i] += oi->grad[i] * dfn(ai->data[i], oi->data[i]);
          }
        },
        [ai, oi, fwd]() {
          for (std::size_t i = 0; i < ai->data.size(); ++i) {
            oi->data[i] = fwd(ai->data[i]);
          }
        });
  }
  return result;
}

}  // namespace

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // Stable logistic.
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float slope) {
  return UnaryOp(
      a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        POISONREC_CHECK_GT(x, 0.0f) << "Log of non-positive value";
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x > 0.0f ? x + std::log1p(std::exp(-x))
                        : std::log1p(std::exp(x));
      },
      [](float x, float) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

namespace {

void SoftmaxForward(const TensorImpl* ai, TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    float maxv = ai->at(r, 0);
    for (std::size_t c = 1; c < ai->cols; ++c) {
      maxv = std::max(maxv, ai->at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < ai->cols; ++c) {
      const float e = std::exp(ai->at(r, c) - maxv);
      oi->at(r, c) = e;
      denom += e;
    }
    for (std::size_t c = 0; c < ai->cols; ++c) oi->at(r, c) /= denom;
  }
}

void LogSoftmaxForward(const TensorImpl* ai, TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    float maxv = ai->at(r, 0);
    for (std::size_t c = 1; c < ai->cols; ++c) {
      maxv = std::max(maxv, ai->at(r, c));
    }
    float denom = 0.0f;
    for (std::size_t c = 0; c < ai->cols; ++c) {
      denom += std::exp(ai->at(r, c) - maxv);
    }
    const float lse = maxv + std::log(denom);
    for (std::size_t c = 0; c < ai->cols; ++c) {
      oi->at(r, c) = ai->at(r, c) - lse;
    }
  }
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  SoftmaxForward(ai, oi);
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi]() {
          if (!ai->requires_grad) return;
          for (std::size_t r = 0; r < oi->rows; ++r) {
            float dot = 0.0f;
            for (std::size_t c = 0; c < oi->cols; ++c) {
              dot += oi->gat(r, c) * oi->at(r, c);
            }
            for (std::size_t c = 0; c < oi->cols; ++c) {
              ai->gat(r, c) += oi->at(r, c) * (oi->gat(r, c) - dot);
            }
          }
        },
        [ai, oi]() { SoftmaxForward(ai, oi); });
  }
  return result;
}

Tensor LogSoftmax(const Tensor& a) {
  auto out = NewNode(a.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  LogSoftmaxForward(ai, oi);
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi]() {
          if (!ai->requires_grad) return;
          for (std::size_t r = 0; r < oi->rows; ++r) {
            float gsum = 0.0f;
            for (std::size_t c = 0; c < oi->cols; ++c) gsum += oi->gat(r, c);
            for (std::size_t c = 0; c < oi->cols; ++c) {
              ai->gat(r, c) +=
                  oi->gat(r, c) - std::exp(oi->at(r, c)) * gsum;
            }
          }
        },
        [ai, oi]() { LogSoftmaxForward(ai, oi); });
  }
  return result;
}

Tensor Sum(const Tensor& a) {
  auto out = NewNode(1, 1);
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->data[0] = acc;
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi]() {
          if (!ai->requires_grad) return;
          const float g = oi->grad[0];
          for (float& gv : ai->grad) gv += g;
        },
        [ai, oi]() {
          float sum = 0.0f;
          for (float v : ai->data) sum += v;
          oi->data[0] = sum;
        });
  }
  return result;
}

Tensor Mean(const Tensor& a) {
  POISONREC_CHECK_GT(a.size(), 0u);
  auto out = NewNode(1, 1);
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->data[0] = acc / static_cast<float>(a.size());
  Tensor result(out);
  if (TrackGrad({&a})) {
    const float inv = 1.0f / static_cast<float>(a.size());
    Attach(
        out, {&a},
        [ai, oi, inv]() {
          if (!ai->requires_grad) return;
          const float g = oi->grad[0] * inv;
          for (float& gv : ai->grad) gv += g;
        },
        [ai, oi]() {
          float sum = 0.0f;
          for (float v : ai->data) sum += v;
          oi->data[0] = sum / static_cast<float>(ai->data.size());
        });
  }
  return result;
}

namespace {

void RowSumForward(const TensorImpl* ai, TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < ai->cols; ++c) acc += ai->at(r, c);
    oi->data[r] = acc;
  }
}

}  // namespace

Tensor RowSum(const Tensor& a) {
  auto out = NewNode(a.rows(), 1);
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  RowSumForward(ai, oi);
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi]() {
          if (!ai->requires_grad) return;
          for (std::size_t r = 0; r < ai->rows; ++r) {
            const float g = oi->grad[r];
            for (std::size_t c = 0; c < ai->cols; ++c) ai->gat(r, c) += g;
          }
        },
        [ai, oi]() { RowSumForward(ai, oi); });
  }
  return result;
}

namespace {

void TransposeForward(const TensorImpl* ai, TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    for (std::size_t c = 0; c < ai->cols; ++c) {
      oi->at(c, r) = ai->at(r, c);
    }
  }
}

}  // namespace

Tensor Transpose(const Tensor& a) {
  auto out = NewNode(a.cols(), a.rows());
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  TransposeForward(ai, oi);
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi]() {
          if (!ai->requires_grad) return;
          for (std::size_t r = 0; r < ai->rows; ++r) {
            for (std::size_t c = 0; c < ai->cols; ++c) {
              ai->gat(r, c) += oi->gat(c, r);
            }
          }
        },
        [ai, oi]() { TransposeForward(ai, oi); });
  }
  return result;
}

namespace {

void ConcatColsForward(const TensorImpl* ai, const TensorImpl* bi,
                       TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    for (std::size_t c = 0; c < ai->cols; ++c) oi->at(r, c) = ai->at(r, c);
    for (std::size_t c = 0; c < bi->cols; ++c) {
      oi->at(r, ai->cols + c) = bi->at(r, c);
    }
  }
}

void ConcatRowsForward(const TensorImpl* ai, const TensorImpl* bi,
                       TensorImpl* oi) {
  std::copy(ai->data.begin(), ai->data.end(), oi->data.begin());
  std::copy(bi->data.begin(), bi->data.end(),
            oi->data.begin() + static_cast<std::ptrdiff_t>(ai->data.size()));
}

}  // namespace

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.rows(), b.rows());
  auto out = NewNode(a.rows(), a.cols() + b.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  ConcatColsForward(ai, bi, oi);
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi]() {
          for (std::size_t r = 0; r < oi->rows; ++r) {
            if (ai->requires_grad) {
              for (std::size_t c = 0; c < ai->cols; ++c) {
                ai->gat(r, c) += oi->gat(r, c);
              }
            }
            if (bi->requires_grad) {
              for (std::size_t c = 0; c < bi->cols; ++c) {
                bi->gat(r, c) += oi->gat(r, ai->cols + c);
              }
            }
          }
        },
        [ai, bi, oi]() { ConcatColsForward(ai, bi, oi); });
  }
  return result;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.cols(), b.cols());
  auto out = NewNode(a.rows() + b.rows(), a.cols());
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  ConcatRowsForward(ai, bi, oi);
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi]() {
          if (ai->requires_grad) {
            for (std::size_t i = 0; i < ai->grad.size(); ++i) {
              ai->grad[i] += oi->grad[i];
            }
          }
          if (bi->requires_grad) {
            const std::size_t offset = ai->data.size();
            for (std::size_t i = 0; i < bi->grad.size(); ++i) {
              bi->grad[i] += oi->grad[offset + i];
            }
          }
        },
        [ai, bi, oi]() { ConcatRowsForward(ai, bi, oi); });
  }
  return result;
}

namespace {

void StackRowsForward(const std::vector<TensorImpl*>& parts, TensorImpl* oi) {
  std::size_t offset = 0;
  for (const TensorImpl* p : parts) {
    std::copy(p->data.begin(), p->data.end(),
              oi->data.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += p->data.size();
  }
}

}  // namespace

Tensor StackRows(const std::vector<Tensor>& parts) {
  POISONREC_CHECK(!parts.empty());
  const std::size_t cols = parts[0].cols();
  std::size_t rows = 0;
  for (const Tensor& p : parts) {
    POISONREC_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  auto out = NewNode(rows, cols);
  std::vector<TensorImpl*> impls;
  impls.reserve(parts.size());
  bool track = false;
  for (const Tensor& p : parts) {
    impls.push_back(p.impl().get());
    if (p.requires_grad()) track = true;
  }
  TensorImpl* oi = out.get();
  StackRowsForward(impls, oi);
  Tensor result(out);
  if (GradMode::Enabled() && track) {
    out->requires_grad = true;
    out->EnsureGrad();
    // Parents in descending part order — Backward()'s post-order DFS
    // then appends part N-1's subtree first, so the reversed closure
    // order visits part 0's chain first. See the header comment: this
    // is what makes the per-row recurrence accumulate into shared
    // weights in the same ascending-row order as one batched GemmTN.
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      out->parents.push_back(it->impl());
      if (it->requires_grad()) it->impl()->EnsureGrad();
    }
    out->backward_fn = [impls, oi]() {
      std::size_t offset = 0;
      for (TensorImpl* p : impls) {
        if (p->requires_grad) {
          for (std::size_t i = 0; i < p->grad.size(); ++i) {
            p->grad[i] += oi->grad[offset + i];
          }
        }
        offset += p->data.size();
      }
    };
    if (GraphTape* tape = GraphTape::Current()) {
      out->forward_fn = [impls, oi]() { StackRowsForward(impls, oi); };
      tape->Register(out);
    }
  }
  return result;
}

namespace {

void ColsForward(const TensorImpl* ai, TensorImpl* oi, std::size_t start,
                 std::size_t len) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    for (std::size_t c = 0; c < len; ++c) {
      oi->at(r, c) = ai->at(r, start + c);
    }
  }
}

}  // namespace

Tensor Cols(const Tensor& a, std::size_t start, std::size_t len) {
  POISONREC_CHECK_LE(start + len, a.cols());
  auto out = NewNode(a.rows(), len);
  TensorImpl* ai = a.impl().get();
  TensorImpl* oi = out.get();
  ColsForward(ai, oi, start, len);
  Tensor result(out);
  if (TrackGrad({&a})) {
    Attach(
        out, {&a},
        [ai, oi, start, len]() {
          if (!ai->requires_grad) return;
          for (std::size_t r = 0; r < ai->rows; ++r) {
            for (std::size_t c = 0; c < len; ++c) {
              ai->gat(r, start + c) += oi->gat(r, c);
            }
          }
        },
        [ai, oi, start, len]() { ColsForward(ai, oi, start, len); });
  }
  return result;
}

Tensor Rows(const Tensor& table, const std::vector<std::size_t>& indices) {
  const std::size_t dim = table.cols();
  auto out = NewNode(indices.size(), dim);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    POISONREC_CHECK_LT(indices[i], table.rows());
    std::copy(table.data().begin() +
                  static_cast<std::ptrdiff_t>(indices[i] * dim),
              table.data().begin() +
                  static_cast<std::ptrdiff_t>((indices[i] + 1) * dim),
              out->data.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  Tensor result(out);
  if (TrackGrad({&table})) {
    TensorImpl* ti = table.impl().get();
    TensorImpl* oi = out.get();
    // One shared index copy serves both closures.
    auto idx = std::make_shared<const std::vector<std::size_t>>(indices);
    Attach(
        out, {&table},
        [ti, oi, idx, dim]() {
          if (!ti->requires_grad) return;
          for (std::size_t i = 0; i < idx->size(); ++i) {
            float* dst = ti->grad.data() + (*idx)[i] * dim;
            const float* src = oi->grad.data() + i * dim;
            for (std::size_t c = 0; c < dim; ++c) dst[c] += src[c];
          }
        },
        [ti, oi, idx, dim]() {
          for (std::size_t i = 0; i < idx->size(); ++i) {
            std::copy(ti->data.begin() +
                          static_cast<std::ptrdiff_t>((*idx)[i] * dim),
                      ti->data.begin() +
                          static_cast<std::ptrdiff_t>(((*idx)[i] + 1) * dim),
                      oi->data.begin() + static_cast<std::ptrdiff_t>(i * dim));
          }
        });
  }
  return result;
}

namespace {

void RowDotForward(const TensorImpl* ai, const TensorImpl* bi,
                   TensorImpl* oi) {
  for (std::size_t r = 0; r < ai->rows; ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < ai->cols; ++c) {
      acc += ai->at(r, c) * bi->at(r, c);
    }
    oi->data[r] = acc;
  }
}

}  // namespace

Tensor RowDot(const Tensor& a, const Tensor& b) {
  POISONREC_CHECK_EQ(a.rows(), b.rows());
  POISONREC_CHECK_EQ(a.cols(), b.cols());
  auto out = NewNode(a.rows(), 1);
  TensorImpl* ai = a.impl().get();
  TensorImpl* bi = b.impl().get();
  TensorImpl* oi = out.get();
  RowDotForward(ai, bi, oi);
  Tensor result(out);
  if (TrackGrad({&a, &b})) {
    Attach(
        out, {&a, &b},
        [ai, bi, oi]() {
          for (std::size_t r = 0; r < ai->rows; ++r) {
            const float g = oi->grad[r];
            for (std::size_t c = 0; c < ai->cols; ++c) {
              if (ai->requires_grad) ai->gat(r, c) += g * bi->at(r, c);
              if (bi->requires_grad) bi->gat(r, c) += g * ai->at(r, c);
            }
          }
        },
        [ai, bi, oi]() { RowDotForward(ai, bi, oi); });
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fused LSTM gate tail
// ---------------------------------------------------------------------------

namespace {

// Exactly the stable logistic UnaryOp's Sigmoid uses — bit-for-bit.
inline float StableSigmoid(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

// Forward for rows [r0, r1): activates the four gate blocks of `pre`
// into `act`, then produces c = f·c_prev + i·g and h = o·tanh(c) in the
// same per-element order the composed Sigmoid/Tanh/Mul/Add chain used.
void LstmGatesRows(std::size_t r0, std::size_t r1, std::size_t h,
                   const TensorImpl* pre, const TensorImpl* cprev,
                   TensorImpl* act, TensorImpl* cnew, TensorImpl* hnew) {
  for (std::size_t r = r0; r < r1; ++r) {
    const float* p = pre->data.data() + r * 4 * h;
    float* a = act->data.data() + r * 4 * h;
    const float* cp = cprev->data.data() + r * h;
    float* cn = cnew->data.data() + r * h;
    float* hn = hnew->data.data() + r * h;
    for (std::size_t j = 0; j < h; ++j) {
      const float ig = StableSigmoid(p[j]);
      const float fg = StableSigmoid(p[h + j]);
      const float gg = std::tanh(p[2 * h + j]);
      const float og = StableSigmoid(p[3 * h + j]);
      a[j] = ig;
      a[h + j] = fg;
      a[2 * h + j] = gg;
      a[3 * h + j] = og;
      const float c = fg * cp[j] + ig * gg;
      cn[j] = c;
      hn[j] = og * std::tanh(c);
    }
  }
}

}  // namespace

LstmGatesResult LstmGates(const Tensor& preact, const Tensor& c_prev) {
  POISONREC_CHECK_EQ(preact.rows(), c_prev.rows());
  POISONREC_CHECK_EQ(preact.cols(), 4 * c_prev.cols());
  const std::size_t rows = preact.rows();
  const std::size_t h = c_prev.cols();

  auto act = NewNode(rows, 4 * h);
  auto cnew = NewNode(rows, h);
  auto hnew = NewNode(rows, h);
  TensorImpl* pi = preact.impl().get();
  TensorImpl* ci = c_prev.impl().get();
  TensorImpl* acti = act.get();
  TensorImpl* cni = cnew.get();
  TensorImpl* hni = hnew.get();

  const auto forward = [pi, ci, acti, cni, hni, rows, h]() {
    kernels::ParallelRows(rows, rows * 4 * h,
                          [&](std::size_t r0, std::size_t r1) {
                            LstmGatesRows(r0, r1, h, pi, ci, acti, cni, hni);
                          });
  };
  forward();

  Tensor act_t(act);
  Tensor cnew_t(cnew);
  Tensor hnew_t(hnew);
  LstmGatesResult result{hnew_t, cnew_t};
  if (!TrackGrad({&preact, &c_prev})) return result;

  // Three tape nodes so reverse topological order visits h -> c -> act
  // and every cross-term (h's grad into c, c's grad into the gates)
  // lands exactly once. Each backward partitions by row with the same
  // ownership contract as the forward: a row's gradients are written
  // only by the thread that owns the row, so results are bit-identical
  // at every thread count.
  //
  // act = [σ(i) | σ(f) | tanh(g) | σ(o)] with parent `preact`. Its
  // replay closure reruns the whole fused forward (act, c, h); the
  // other two nodes' closures are no-ops, so a tape replay still
  // computes every value exactly once and in topological order (act is
  // registered first).
  Attach(
      act, {&preact},
      [pi, acti, rows, h]() {
        if (!pi->requires_grad) return;
        kernels::ParallelRows(
            rows, rows * 4 * h, [&](std::size_t r0, std::size_t r1) {
              for (std::size_t r = r0; r < r1; ++r) {
                const float* a = acti->data.data() + r * 4 * h;
                const float* ga = acti->grad.data() + r * 4 * h;
                float* gp = pi->grad.data() + r * 4 * h;
                for (std::size_t j = 0; j < h; ++j) {
                  gp[j] += ga[j] * a[j] * (1.0f - a[j]);
                  gp[h + j] += ga[h + j] * a[h + j] * (1.0f - a[h + j]);
                  gp[2 * h + j] +=
                      ga[2 * h + j] * (1.0f - a[2 * h + j] * a[2 * h + j]);
                  gp[3 * h + j] +=
                      ga[3 * h + j] * a[3 * h + j] * (1.0f - a[3 * h + j]);
                }
              }
            });
      },
      forward);

  // c = f·c_prev + i·g with parents {act, c_prev}.
  Attach(
      cnew, {&act_t, &c_prev},
      [ci, acti, cni, rows, h]() {
        kernels::ParallelRows(
            rows, rows * h, [&](std::size_t r0, std::size_t r1) {
              for (std::size_t r = r0; r < r1; ++r) {
                const float* a = acti->data.data() + r * 4 * h;
                const float* gc = cni->grad.data() + r * h;
                const float* cp = ci->data.data() + r * h;
                float* ga = acti->grad.data() + r * 4 * h;
                float* gcp =
                    ci->requires_grad ? ci->grad.data() + r * h : nullptr;
                for (std::size_t j = 0; j < h; ++j) {
                  const float g = gc[j];
                  ga[j] += g * a[2 * h + j];   // d i  = dc · g
                  ga[h + j] += g * cp[j];      // d f  = dc · c_prev
                  ga[2 * h + j] += g * a[j];   // d g  = dc · i
                  if (gcp != nullptr) gcp[j] += g * a[h + j];  // dc_prev
                }
              }
            });
      },
      []() {});

  // h = o·tanh(c) with parents {act, c}.
  Attach(
      hnew, {&act_t, &cnew_t},
      [acti, cni, hni, rows, h]() {
        kernels::ParallelRows(
            rows, rows * h, [&](std::size_t r0, std::size_t r1) {
              for (std::size_t r = r0; r < r1; ++r) {
                const float* a = acti->data.data() + r * 4 * h;
                const float* cn = cni->data.data() + r * h;
                const float* gh = hni->grad.data() + r * h;
                float* ga = acti->grad.data() + r * 4 * h;
                float* gc = cni->grad.data() + r * h;
                for (std::size_t j = 0; j < h; ++j) {
                  const float t = std::tanh(cn[j]);
                  ga[3 * h + j] += gh[j] * t;               // d o
                  gc[j] += gh[j] * a[3 * h + j] * (1.0f - t * t);
                }
              }
            });
      },
      []() {});

  return result;
}

std::vector<float> NumericalGradient(
    const std::function<float(const Tensor&)>& f, Tensor x, float eps) {
  std::vector<float> grad(x.size());
  std::vector<float>& data = x.mutable_data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float saved = data[i];
    data[i] = saved + eps;
    const float fp = f(x);
    data[i] = saved - eps;
    const float fm = f(x);
    data[i] = saved;
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

}  // namespace poisonrec::nn
