// CSR sparse matrix + sparse-dense product with autograd. Used by NGCF to
// propagate embeddings over the normalized user-item adjacency.
#ifndef POISONREC_NN_SPARSE_H_
#define POISONREC_NN_SPARSE_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace poisonrec::nn {

/// Immutable CSR matrix built from COO triplets. Duplicate entries are
/// summed.
class CsrMatrix {
 public:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    float value;
  };

  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A * x for a dense vector-like accessor; used internally.
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<std::size_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

  /// Transposed view (Aᵀ in CSR over the original columns), built at
  /// construction for the backward pass: entries of column c appear in
  /// ascending original-row order — exactly the order the serial
  /// scatter dx += Aᵀ·dout accumulates them — so the backward can
  /// partition by column with the kernels' row-ownership contract and
  /// stay bit-identical at any thread count.
  const std::vector<std::size_t>& t_row_offsets() const {
    return t_row_offsets_;
  }
  const std::vector<std::size_t>& t_col_indices() const {
    return t_col_indices_;
  }
  const std::vector<float>& t_values() const { return t_values_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;
  std::vector<float> values_;
  std::vector<std::size_t> t_row_offsets_;  // size cols_+1
  std::vector<std::size_t> t_col_indices_;  // original row per entry
  std::vector<float> t_values_;
};

/// Dense product A (sparse, m x k) * x (dense, k x n) -> (m x n).
/// Backward: dx += A^T * dout. A itself is constant (no gradient).
/// This is the only place the library exploits sparsity: the dense GEMM
/// kernels (nn/kernels.h) carry no zero-skip branches, so matrices that
/// are actually sparse must come through here as CsrMatrix.
Tensor SparseMatMul(const CsrMatrix& a, const Tensor& x);

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_SPARSE_H_
