file(REMOVE_RECURSE
  "libpoisonrec_viz.a"
)
