// Tiny CSV reader/writer used by the dataset loader and the benchmark
// harnesses that emit figure data.
#ifndef POISONREC_UTIL_CSV_H_
#define POISONREC_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace poisonrec {

/// Splits one CSV line on commas. No quoting support — the formats this
/// library reads/writes are plain numeric tables.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Reads a whole CSV file into rows of fields. Skips empty lines.
StatusOr<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path);

/// Writes rows of fields as CSV.
Status WriteCsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

}  // namespace poisonrec

#endif  // POISONREC_UTIL_CSV_H_
