// Unit tests for the util substrate: Status/StatusOr, Rng, stats, top-k,
// CSV.
#include <cstdio>
#include <filesystem>
#include <numeric>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/topk.h"

namespace poisonrec {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  POISONREC_ASSIGN_OR_RETURN(int h, Half(x));
  POISONREC_RETURN_NOT_OK(h > 100 ? Status::OutOfRange("big") : Status::OK());
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(11, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(1000, &out).code(), StatusCode::kOutOfRange);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, CategoricalFrequencies) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalFromLogitsMatchesSoftmax) {
  Rng rng(4);
  std::vector<double> logits = {0.0, std::log(3.0)};  // probs 0.25/0.75
  int counts[2] = {0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.CategoricalFromLogits(logits)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto picks = rng.SampleWithoutReplacement(20, 10);
    EXPECT_EQ(picks.size(), 10u);
    std::sort(picks.begin(), picks.end());
    EXPECT_EQ(std::unique(picks.begin(), picks.end()), picks.end());
    for (auto p : picks) EXPECT_LT(p, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(6);
  auto picks = rng.SampleWithoutReplacement(5, 5);
  std::sort(picks.begin(), picks.end());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(picks[i], i);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ZipfTest, HeadHeavierThanTail) {
  ZipfTable table(100, 1.0);
  EXPECT_GT(table.Pmf(0), table.Pmf(50));
  EXPECT_GT(table.Pmf(50), table.Pmf(99));
  double total = 0.0;
  for (std::size_t r = 0; r < 100; ++r) total += table.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SamplesFollowPmf) {
  ZipfTable table(10, 1.0);
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, table.Pmf(r), 0.01);
  }
}

TEST(StatsTest, RunningMatchesBatch) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats rs;
  for (double x : xs) rs.AddTracked(x);
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 10.0);
}

TEST(StatsTest, NormalizeRewardsZeroMeanUnitStd) {
  std::vector<double> r = {10.0, 20.0, 30.0, 40.0};
  NormalizeRewards(&r);
  EXPECT_NEAR(Mean(r), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(r), 1.0, 1e-12);
}

TEST(StatsTest, NormalizeConstantBatchIsZero) {
  std::vector<double> r = {5.0, 5.0, 5.0};
  NormalizeRewards(&r);
  for (double v : r) EXPECT_EQ(v, 0.0);
}

TEST(StatsTest, EmptyVectors) {
  std::vector<double> r;
  NormalizeRewards(&r);  // no crash
  EXPECT_EQ(Mean(r), 0.0);
  EXPECT_EQ(StdDev(r), 0.0);
}

TEST(StatsTest, MaskedNormalizeUsesValidEntriesOnly) {
  // The invalid entry (999) must not skew the statistics, and must come
  // out as exactly zero advantage.
  std::vector<double> r = {10.0, 999.0, 20.0, 30.0, 40.0};
  const std::vector<char> valid = {1, 0, 1, 1, 1};
  NormalizeRewards(&r, valid);
  EXPECT_EQ(r[1], 0.0);
  std::vector<double> expected = {10.0, 20.0, 30.0, 40.0};
  NormalizeRewards(&expected);
  EXPECT_NEAR(r[0], expected[0], 1e-12);
  EXPECT_NEAR(r[2], expected[1], 1e-12);
  EXPECT_NEAR(r[3], expected[2], 1e-12);
  EXPECT_NEAR(r[4], expected[3], 1e-12);
}

TEST(StatsTest, MaskedNormalizeDegenerateCasesAreZero) {
  // Fewer than two valid entries: everything is zeroed.
  std::vector<double> one = {7.0, 3.0};
  NormalizeRewards(&one, {1, 0});
  EXPECT_EQ(one[0], 0.0);
  EXPECT_EQ(one[1], 0.0);
  // Constant valid entries: zero too.
  std::vector<double> constant = {5.0, 9.0, 5.0};
  NormalizeRewards(&constant, {1, 0, 1});
  for (double v : constant) EXPECT_EQ(v, 0.0);
}

TEST(TopKTest, OrdersByScoreDescending) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  auto top = TopKIndices(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(TopKTest, TieBrokenByIndex) {
  std::vector<double> scores = {1.0, 1.0, 1.0};
  auto top = TopKIndices(scores, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKTest, KLargerThanSize) {
  std::vector<double> scores = {0.3, 0.1};
  auto top = TopKIndices(scores, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
}

TEST(TopKTest, ByScoreMapsIds) {
  std::vector<int> ids = {100, 200, 300};
  std::vector<double> scores = {0.5, 0.9, 0.1};
  auto top = TopKByScore(ids, scores, 2);
  EXPECT_EQ(top[0], 200);
  EXPECT_EQ(top[1], 100);
}

TEST(CsvTest, RoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "poisonrec_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {{"a", "1"}, {"b", "2"}};
  ASSERT_TRUE(WriteCsv(path, rows).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto loaded = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, SplitHandlesEmptyFields) {
  auto fields = SplitCsvLine("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

}  // namespace
}  // namespace poisonrec
