// The black-box attack environment (paper Figure 2). It owns the clean
// log and a pretrained Ranker, exposes only what a real attacker can see
// (item count, item popularity, the RecNum reward), and evaluates attacks
// by Algorithm 1's DataPoisoning: reload the pretrained ranker, update it
// with the injected fake behaviors, then simulate user traffic and count
// page views of the target items (Eq. 1).
#ifndef POISONREC_ENV_ENVIRONMENT_H_
#define POISONREC_ENV_ENVIRONMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "rec/candidates.h"
#include "rec/recommender.h"

namespace poisonrec::env {

/// One attacker's fake behavior sequence: T ordered item clicks.
struct Trajectory {
  /// Attacker index in [0, N). The environment maps it to a reserved fake
  /// user id.
  std::size_t attacker_index = 0;
  std::vector<data::ItemId> items;
};

struct EnvironmentConfig {
  /// N: number of controlled fake users.
  std::size_t num_attackers = 20;
  /// T: clicks per attacker.
  std::size_t trajectory_length = 20;
  /// |I_t|: target items are appended as new item ids (paper: 8 new items).
  std::size_t num_target_items = 8;
  /// Candidate Generation: random originals per user (paper: 92).
  std::size_t num_candidate_originals = 92;
  /// Length of each recommendation list L_u (paper: 10).
  std::size_t top_k = 10;
  /// false = Algorithm 1 semantics (clone pretrained ranker + incremental
  /// update with the poison log). true = retrain from scratch on
  /// clean + poison (ablation).
  bool full_retrain = false;
  /// false = the paper's random Candidate Generation. true = personalized
  /// candidates from clean-log co-occurrence (ablation; a harder surface
  /// because the originals are each user's strongest items).
  bool personalized_candidates = false;
  /// Cap on evaluated users (0 = all users with history). Smaller caps
  /// speed up reward evaluation; RecNum scales accordingly.
  std::size_t max_eval_users = 0;
  std::uint64_t seed = 42;
};

/// Black-box recommender system under attack.
class AttackEnvironment {
 public:
  /// Takes the clean log (`base` capacities = real users/items only) and
  /// an unfitted ranker; expands the id spaces with attacker users and
  /// target items, then pretrains the ranker on the expanded clean log.
  AttackEnvironment(const data::Dataset& base,
                    std::unique_ptr<rec::Recommender> ranker,
                    const EnvironmentConfig& config);

  // -- Attacker-visible knowledge ------------------------------------------
  std::size_t num_original_items() const { return num_original_items_; }
  std::size_t num_total_items() const {
    return num_original_items_ + target_items_.size();
  }
  const std::vector<data::ItemId>& target_items() const {
    return target_items_;
  }
  /// Popularity ("sales volume") of every item — crawlable public info.
  const std::vector<std::size_t>& item_popularity() const {
    return dataset_.ItemPopularity();
  }
  std::size_t num_attackers() const { return config_.num_attackers; }
  std::size_t trajectory_length() const { return config_.trajectory_length; }
  const EnvironmentConfig& config() const { return config_; }

  // -- White-box access (for tests/analysis; NOT used by attacks) ----------
  const data::Dataset& dataset() const { return dataset_; }
  const rec::Recommender& pretrained_ranker() const { return *ranker_; }

  /// Fake user id reserved for attacker `i`.
  data::UserId AttackerUserId(std::size_t attacker_index) const;

  /// Injects the fake trajectories into a fresh copy of the system and
  /// returns RecNum (Eq. 1). The environment itself is unchanged, so
  /// repeated calls are independent attacks on the same pretrained system.
  double Evaluate(const std::vector<Trajectory>& trajectories) const;

  /// RecNum with no attack at all.
  double BaselineRecNum() const { return Evaluate({}); }

  /// RecNum for a specific (already poisoned) ranker — exposed so
  /// baselines with internal optimization loops (AppGrad) can reuse the
  /// exact reward definition.
  double RecNum(const rec::Recommender& ranker) const;

 private:
  /// Builds the poison log (expanded capacities) from trajectories.
  data::Dataset BuildPoisonLog(
      const std::vector<Trajectory>& trajectories) const;

  EnvironmentConfig config_;
  std::size_t num_original_items_;
  std::size_t num_real_users_;
  std::vector<data::ItemId> target_items_;
  data::Dataset dataset_;  // expanded clean log
  std::unique_ptr<rec::Recommender> ranker_;
  std::unique_ptr<rec::CandidateGenerator> candidates_;
  std::vector<data::UserId> eval_users_;
};

}  // namespace poisonrec::env

#endif  // POISONREC_ENV_ENVIRONMENT_H_
