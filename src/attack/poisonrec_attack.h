// Adapter presenting PoisonRec through the AttackMethod interface so the
// comparison harnesses (Table III) can treat all 7 methods uniformly.
#ifndef POISONREC_ATTACK_POISONREC_ATTACK_H_
#define POISONREC_ATTACK_POISONREC_ATTACK_H_

#include "attack/attack.h"
#include "core/ppo.h"

namespace poisonrec::attack {

class PoisonRecAttack : public AttackMethod {
 public:
  /// Trains for `training_steps` iterations of Algorithm 1 and returns
  /// the best attack found.
  PoisonRecAttack(const core::PoisonRecConfig& config,
                  std::size_t training_steps);

  std::string Name() const override { return "PoisonRec"; }
  std::vector<env::Trajectory> GenerateAttack(
      const env::AttackEnvironment& environment,
      std::uint64_t seed) override;

  /// Training curve from the most recent GenerateAttack call.
  const std::vector<core::TrainStepStats>& last_training_stats() const {
    return last_stats_;
  }

 private:
  core::PoisonRecConfig config_;
  std::size_t training_steps_;
  std::vector<core::TrainStepStats> last_stats_;
};

}  // namespace poisonrec::attack

#endif  // POISONREC_ATTACK_POISONREC_ATTACK_H_
