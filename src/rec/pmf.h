// PMF: Probabilistic Matrix Factorization (Salakhutdinov & Mnih, 2007)
// adapted to implicit feedback: observed interactions are 1-targets,
// sampled unobserved items are 0-targets, squared loss with Gaussian
// (L2) priors, SGD.
#ifndef POISONREC_REC_PMF_H_
#define POISONREC_REC_PMF_H_

#include <memory>
#include <vector>

#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class Pmf : public Recommender {
 public:
  explicit Pmf(const FitConfig& config = FitConfig());

  std::string Name() const override { return "PMF"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  const FactorTables& factors() const { return factors_; }

 private:
  void SgdEpochs(const std::vector<data::Interaction>& interactions,
                 std::size_t epochs, Rng* rng);

  FitConfig config_;
  FactorTables factors_;
  std::vector<std::unordered_set<data::ItemId>> positives_;
  std::vector<data::Interaction> clean_;  // replay pool for Update
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_PMF_H_
