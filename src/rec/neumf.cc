#include "rec/neumf.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/logging.h"

namespace poisonrec::rec {

namespace {
constexpr std::uint64_t kCloneRngSeed = 0xabcdef12345ull;
}  // namespace

NeuMf::Net::Net(std::size_t num_users, std::size_t num_items,
                std::size_t dim, Rng* rng)
    : gmf_user(num_users, dim, rng),
      gmf_item(num_items, dim, rng),
      mlp_user(num_users, dim, rng),
      mlp_item(num_items, dim, rng),
      mlp({2 * dim, dim, std::max<std::size_t>(1, dim / 2)}, rng),
      fuse(dim + std::max<std::size_t>(1, dim / 2), 1, rng) {}

std::vector<nn::Tensor> NeuMf::Net::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(&gmf_user),
        static_cast<const nn::Module*>(&gmf_item),
        static_cast<const nn::Module*>(&mlp_user),
        static_cast<const nn::Module*>(&mlp_item),
        static_cast<const nn::Module*>(&mlp),
        static_cast<const nn::Module*>(&fuse)}) {
    for (const nn::Tensor& p : m->Parameters()) params.push_back(p);
  }
  return params;
}

NeuMf::NeuMf(const FitConfig& config) : config_(config) {}

NeuMf::NeuMf(const NeuMf& other)
    : config_(other.config_),
      num_users_(other.num_users_),
      num_items_(other.num_items_),
      positives_(other.positives_),
      clean_(other.clean_),
      update_seed_(other.update_seed_) {
  if (other.net_ != nullptr) {
    Rng rng(kCloneRngSeed);
    net_ = std::make_unique<Net>(num_users_, num_items_,
                                 config_.embedding_dim, &rng);
    std::vector<nn::Tensor> dst = net_->Parameters();
    std::vector<nn::Tensor> src = other.net_->Parameters();
    POISONREC_CHECK_EQ(dst.size(), src.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].CopyDataFrom(src[i]);
    }
  }
}

const nn::Tensor& NeuMf::ItemEmbeddings() const {
  POISONREC_CHECK(net_ != nullptr) << "NeuMF not fitted";
  return net_->gmf_item.table();
}

nn::Tensor NeuMf::ForwardLogits(const std::vector<std::size_t>& users,
                                const std::vector<std::size_t>& items) const {
  nn::Tensor eu_g = net_->gmf_user.Forward(users);
  nn::Tensor ei_g = net_->gmf_item.Forward(items);
  nn::Tensor gmf = nn::Mul(eu_g, ei_g);  // (B x dim)
  nn::Tensor eu_m = net_->mlp_user.Forward(users);
  nn::Tensor ei_m = net_->mlp_item.Forward(items);
  nn::Tensor mlp_out = net_->mlp.Forward(nn::ConcatCols(eu_m, ei_m));
  mlp_out = nn::Relu(mlp_out);
  return net_->fuse.Forward(nn::ConcatCols(gmf, mlp_out));  // (B x 1)
}

void NeuMf::TrainEpochs(const std::vector<data::Interaction>& interactions,
                        std::size_t epochs, Rng* rng) {
  nn::Adam optimizer(net_->Parameters(), config_.learning_rate, 0.9f, 0.999f,
                     1e-8f, config_.weight_decay);
  std::vector<std::size_t> order(interactions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t batch_positives = std::max<std::size_t>(
      1, config_.batch_size / (1 + config_.negatives_per_positive));

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t start = 0; start < order.size();
         start += batch_positives) {
      const std::size_t end =
          std::min(order.size(), start + batch_positives);
      std::vector<std::size_t> users;
      std::vector<std::size_t> items;
      std::vector<float> labels;
      for (std::size_t idx = start; idx < end; ++idx) {
        const data::Interaction& ev = interactions[order[idx]];
        users.push_back(ev.user);
        items.push_back(ev.item);
        labels.push_back(1.0f);
        for (std::size_t n = 0; n < config_.negatives_per_positive; ++n) {
          users.push_back(ev.user);
          items.push_back(
              SampleNegative(num_items_, positives_[ev.user], rng));
          labels.push_back(0.0f);
        }
      }
      nn::Tensor logits = ForwardLogits(users, items);
      const std::size_t n_examples = labels.size();
      nn::Tensor targets =
          nn::Tensor::FromData(n_examples, 1, std::move(labels));
      nn::Tensor loss = nn::BceWithLogits(logits, targets);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }
}

void NeuMf::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  num_users_ = dataset.num_users();
  num_items_ = dataset.num_items();
  net_ = std::make_unique<Net>(num_users_, num_items_,
                               config_.embedding_dim, &rng);
  positives_ = BuildPositiveSets(dataset);
  clean_ = dataset.AllInteractions();
  TrainEpochs(clean_, config_.epochs, &rng);
  update_seed_ = rng.Fork();
}

void NeuMf::Update(const data::Dataset& poison) {
  POISONREC_CHECK(net_ != nullptr) << "Update before Fit";
  POISONREC_CHECK_EQ(poison.num_items(), num_items_);
  POISONREC_CHECK_LE(poison.num_users(), num_users_);
  Rng rng(update_seed_ ^ 0x5bd1e9955bd1e995ull);
  MergePositiveSets(poison, &positives_);
  TrainEpochs(MixWithReplay(poison.AllInteractions(), clean_,
                            config_.update_replay_ratio, &rng),
              config_.update_epochs, &rng);
}

std::vector<double> NeuMf::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  POISONREC_CHECK(net_ != nullptr) << "Score before Fit";
  nn::NoGradScope no_grad;
  std::vector<std::size_t> users(candidates.size(), user);
  std::vector<std::size_t> items(candidates.begin(), candidates.end());
  nn::Tensor logits = ForwardLogits(users, items);
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = logits.at(i, 0);
  }
  return scores;
}

std::unique_ptr<Recommender> NeuMf::Clone() const {
  return std::unique_ptr<Recommender>(new NeuMf(*this));
}

}  // namespace poisonrec::rec
