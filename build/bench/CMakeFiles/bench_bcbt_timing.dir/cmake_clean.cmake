file(REMOVE_RECURSE
  "CMakeFiles/bench_bcbt_timing.dir/bench_bcbt_timing.cc.o"
  "CMakeFiles/bench_bcbt_timing.dir/bench_bcbt_timing.cc.o.d"
  "bench_bcbt_timing"
  "bench_bcbt_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bcbt_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
