// Fleet plan: the declarative sweep description the orchestrator
// executes. A plan JSON file names a shared dataset, per-campaign
// defaults, an explicit campaign list and/or a sweep block whose
// cross-product (ranker x fault preset x defense x budget) is expanded
// into concrete CampaignSpecs. Every campaign is an independent
// PoisonRec attack (core/ppo.h) with its own seed, checkpoint and
// journal identity, supervised by orch/supervisor.h.
//
// Plan schema (all keys optional unless noted):
//   {
//     "name": "nightly",
//     "dataset": "Steam", "scale": 0.05, "dataset_seed": 1,
//     "defaults": { <campaign keys> },
//     "campaigns": [ { "id": "a", <campaign keys> }, ... ],
//     "sweep": {
//       "rankers": ["ItemPop", "CoVisitation"],
//       "fault_presets": ["clean", "flaky"],
//       "defenses": [false, true],
//       "budgets": [10, 25]
//     }
//   }
//
// Campaign keys: id (required for explicit campaigns), ranker,
// fault_preset (clean|flaky|blackout), fault {failure, throttle,
// throttle_cooldown, drop, shadow_ban, noise, nan, seed}, defense,
// detector, defense_interval, defense_bans, defense_ban_prob,
// pool_reserve, pool_min_live, steps, samples_per_step, attackers,
// trajectory_length, targets, embedding_dim, eval_users, seed,
// retry_attempts, retry_deadline_seconds, priority, deadline_seconds,
// stall_timeout_seconds, max_restarts, restart_backoff_seconds,
// max_preemptions.
// Unknown keys are rejected — a misspelled knob must fail the plan, not
// silently run with the default.
#ifndef POISONREC_ORCH_SPEC_H_
#define POISONREC_ORCH_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ppo.h"
#include "env/defended.h"
#include "env/environment.h"
#include "env/fault.h"
#include "orch/json_reader.h"
#include "util/status.h"

namespace poisonrec::orch {

/// One supervised campaign: workload + supervision policy.
struct CampaignSpec {
  /// Unique within the plan; keys the journal, checkpoint file name and
  /// report rows. Required and restricted to [A-Za-z0-9._-].
  std::string id;

  // -- Workload -------------------------------------------------------------
  std::string ranker = "ItemPop";
  /// Named fault profile ("clean", "flaky", "blackout"); an explicit
  /// "fault" object overrides individual rates on top of the preset.
  std::string fault_preset = "clean";
  env::FaultProfile fault;
  bool defense = false;
  std::string detector = "ensemble";
  env::DefenseProfile defense_profile;
  std::size_t pool_reserve = 0;
  std::size_t pool_min_live = 2;
  /// Training-step budget (checkpointed progress counts toward it).
  std::size_t steps = 10;
  std::size_t samples_per_step = 4;
  std::size_t attackers = 6;
  std::size_t trajectory_length = 5;
  std::size_t num_target_items = 2;
  std::size_t embedding_dim = 8;
  std::size_t max_eval_users = 64;
  std::uint64_t seed = 1;
  std::size_t retry_attempts = 4;
  /// Per-query retry deadline (util/retry max_elapsed_seconds; 0 = off).
  double retry_deadline_seconds = 0.0;

  // -- Supervision ----------------------------------------------------------
  /// Higher runs first; ties break in plan order.
  int priority = 0;
  /// Whole-campaign wall-clock deadline (0 = unbounded). Exceeding it
  /// quarantines the campaign — no restart, the budget is simply too
  /// small for the workload.
  double deadline_seconds = 0.0;
  /// Heartbeat silence that counts as a stall (0 = watchdog off). A
  /// stalled campaign is hard-cancelled and restarted from its own
  /// checkpoint.
  double stall_timeout_seconds = 0.0;
  /// Automatic restarts (from the campaign checkpoint) the supervisor
  /// grants before quarantining.
  std::size_t max_restarts = 2;
  /// Base delay between restarts (grows with util/retry's decorrelated
  /// jitter schedule).
  double restart_backoff_seconds = 0.05;
  /// Times this campaign may be soft-stopped at a step boundary to hand
  /// its worker to a higher-priority campaign (orch/fleet.h). Past the
  /// cap it becomes preemption-immune, so repeated high-priority
  /// arrivals cannot starve it. 0 = never preemptible.
  std::size_t max_preemptions = 3;
};

/// The whole fleet: one shared synthetic dataset + campaigns.
struct FleetPlan {
  std::string name = "fleet";
  std::string dataset = "Steam";
  double scale = 0.05;
  std::uint64_t dataset_seed = 1;
  std::vector<CampaignSpec> campaigns;
};

/// Named fault profiles usable in plans and on the CLI.
///   clean    — no faults at all
///   flaky    — transient failures + throttling + drops worth retrying
///   blackout — heavy unavailability: retry loops park in long backoffs
///              (what stall watchdogs and retry deadlines exist for)
StatusOr<env::FaultProfile> FaultPresetProfile(const std::string& name);

/// Parses + validates a plan document (see the schema above): defaults
/// are applied, the sweep block is expanded into campaigns, ids are
/// checked unique, unknown keys are rejected.
StatusOr<FleetPlan> ParseFleetPlan(const JsonValue& root);
StatusOr<FleetPlan> ParseFleetPlanText(std::string_view json_text);
StatusOr<FleetPlan> LoadFleetPlan(const std::string& path);

/// Structural validation used by ParseFleetPlan and re-run by the
/// orchestrator on programmatically built plans.
Status ValidatePlan(const FleetPlan& plan);

/// Per-campaign structural validation (the per-entry half of
/// ValidatePlan); also guards FleetOrchestrator::Submit, where a
/// campaign arrives without an enclosing plan.
Status ValidateCampaignSpec(const CampaignSpec& spec);

/// Parses one standalone campaign object — the `fleet --submit-dir`
/// file format. Same keys as a plan campaign entry; id is required.
StatusOr<CampaignSpec> ParseCampaignSpecText(std::string_view json_text);

/// Maps a campaign spec onto the attacker / environment configs. The
/// attacker always runs guarded (TrainGuarded requires it) with
/// single-threaded inner loops — fleet concurrency happens one level up.
core::PoisonRecConfig MakeAttackerConfig(const CampaignSpec& spec);
env::EnvironmentConfig MakeEnvironmentConfig(const CampaignSpec& spec);

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_SPEC_H_
