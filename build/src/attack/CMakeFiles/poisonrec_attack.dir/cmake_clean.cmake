file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_attack.dir/appgrad.cc.o"
  "CMakeFiles/poisonrec_attack.dir/appgrad.cc.o.d"
  "CMakeFiles/poisonrec_attack.dir/conslop.cc.o"
  "CMakeFiles/poisonrec_attack.dir/conslop.cc.o.d"
  "CMakeFiles/poisonrec_attack.dir/heuristics.cc.o"
  "CMakeFiles/poisonrec_attack.dir/heuristics.cc.o.d"
  "CMakeFiles/poisonrec_attack.dir/poisonrec_attack.cc.o"
  "CMakeFiles/poisonrec_attack.dir/poisonrec_attack.cc.o.d"
  "libpoisonrec_attack.a"
  "libpoisonrec_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
