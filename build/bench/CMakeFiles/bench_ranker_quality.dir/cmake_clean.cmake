file(REMOVE_RECURSE
  "CMakeFiles/bench_ranker_quality.dir/bench_ranker_quality.cc.o"
  "CMakeFiles/bench_ranker_quality.dir/bench_ranker_quality.cc.o.d"
  "bench_ranker_quality"
  "bench_ranker_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ranker_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
