// Dense 2-D tensor with reverse-mode automatic differentiation.
//
// This is the neural-network substrate for the whole library: the PoisonRec
// policy network (LSTM + DNN head) and the neural rankers (NeuMF, AutoRec,
// GRU4Rec, NGCF) are all built from these ops. The design is a dynamic tape:
// every op allocates a node that remembers its parents and a backward
// closure; Tensor::Backward() runs the tape in reverse topological order.
//
// Tensors are row-major float matrices. A "vector" is a 1xN or Nx1 tensor.
// Gradients are accumulated into per-node grad buffers; optimizers read
// them and the caller zeroes them between steps.
#ifndef POISONREC_NN_TENSOR_H_
#define POISONREC_NN_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::nn {

namespace internal {

/// Shared node in the autograd graph. Users interact through Tensor.
struct TensorImpl {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily when requires_grad
  bool requires_grad = false;
  // Parents are held by shared_ptr so the graph stays alive until the
  // output handle is dropped; backward closures capture raw pointers only
  // (no ownership cycles).
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;
  // Recorded only while a GraphTape scope is active (see nn/graph.h):
  // recomputes this node's data from its parents' current data, letting
  // the PPO update replay an identical graph across epochs instead of
  // re-taping it. Null outside recording scopes — zero cost on the
  // normal path.
  std::function<void()> forward_fn;

  float& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  float at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  float& gat(std::size_t r, std::size_t c) { return grad[r * cols + c]; }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// Thread-local gradient-recording mode (the PyTorch GradMode idiom).
/// While disabled, ops skip graph-node bookkeeping entirely: no parent
/// edges, no backward closures, no grad buffers — outputs are plain
/// leaves. Inference and sampling paths (Policy::SampleEpisode, the
/// neural rankers' Score/top-k) run under a disabled scope, which also
/// makes them safe to call concurrently on shared parameters (reads
/// only, no tape mutation).
class GradMode {
 public:
  static bool Enabled();
  static void SetEnabled(bool enabled);
};

/// True when ops should record the autograd tape (default). Shorthand
/// for GradMode::Enabled(); toggle with NoGradScope in inference and
/// sampling paths to skip bookkeeping.
bool GradEnabled();

/// RAII scope that disables gradient recording on this thread and
/// restores the previous mode on destruction (nests correctly).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Preferred name for the inference-mode scope.
using NoGradScope = NoGradGuard;

/// Value-semantics handle to an autograd node. Copying a Tensor aliases the
/// underlying buffer (like a shared_ptr); use DeepCopy for a detached copy.
class Tensor {
 public:
  Tensor() = default;

  // -- Factories ----------------------------------------------------------
  static Tensor Zeros(std::size_t rows, std::size_t cols,
                      bool requires_grad = false);
  static Tensor Ones(std::size_t rows, std::size_t cols,
                     bool requires_grad = false);
  static Tensor Full(std::size_t rows, std::size_t cols, float value,
                     bool requires_grad = false);
  static Tensor FromData(std::size_t rows, std::size_t cols,
                         std::vector<float> data, bool requires_grad = false);
  /// Gaussian init N(0, stddev^2).
  static Tensor Randn(std::size_t rows, std::size_t cols, float stddev,
                      Rng* rng, bool requires_grad = false);
  /// Uniform init in [lo, hi).
  static Tensor Rand(std::size_t rows, std::size_t cols, float lo, float hi,
                     Rng* rng, bool requires_grad = false);

  // -- Shape / element access ---------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  std::size_t rows() const { return impl_->rows; }
  std::size_t cols() const { return impl_->cols; }
  std::size_t size() const { return impl_->data.size(); }
  bool is_scalar() const { return defined() && size() == 1; }

  float at(std::size_t r, std::size_t c) const { return impl_->at(r, c); }
  void set(std::size_t r, std::size_t c, float v) { impl_->at(r, c) = v; }
  /// Value of a 1x1 tensor.
  float item() const;

  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& mutable_data() { return impl_->data; }
  /// Gradient buffer (empty until backward touches this node).
  const std::vector<float>& grad() const { return impl_->grad; }
  std::vector<float>& mutable_grad() { return impl_->grad; }

  bool requires_grad() const { return defined() && impl_->requires_grad; }
  /// Clears this tensor's gradient buffer (keeps allocation).
  void ZeroGrad();

  /// Runs backpropagation from this (scalar) tensor: seeds d(self)/d(self)
  /// = 1 and applies the tape in reverse topological order.
  void Backward();

  /// Detached deep copy (new leaf; same data; requires_grad as given).
  Tensor DeepCopy(bool requires_grad = false) const;
  /// Overwrites this tensor's values with `other`'s (shapes must match).
  void CopyDataFrom(const Tensor& other);

  std::string ShapeString() const;

  // Internal: op implementations need the node.
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

// -- Ops --------------------------------------------------------------------
// All ops allocate a fresh output node; inputs are unmodified.

/// Matrix product: (m x k) * (k x n) -> (m x n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Elementwise sum. Shapes must match, or b may be (1 x n) and broadcast
/// across a's rows (bias add).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference (same broadcast rule as Add).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product; shapes must match, or b may be (m x 1)
/// and broadcast across a's columns.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Scalar multiple.
Tensor Scale(const Tensor& a, float s);
/// Adds a scalar to every element.
Tensor AddScalar(const Tensor& a, float s);

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
/// max(x, slope*x) with slope in (0,1).
Tensor LeakyRelu(const Tensor& a, float slope = 0.2f);
Tensor Exp(const Tensor& a);
/// Natural log; input must be positive.
Tensor Log(const Tensor& a);
/// log(1 + exp(x)), numerically stable.
Tensor Softplus(const Tensor& a);
/// Elementwise square.
Tensor Square(const Tensor& a);

/// Row-wise softmax.
Tensor Softmax(const Tensor& a);
/// Row-wise log-softmax (numerically stable).
Tensor LogSoftmax(const Tensor& a);

/// Sum of all elements -> 1x1.
Tensor Sum(const Tensor& a);
/// Mean of all elements -> 1x1.
Tensor Mean(const Tensor& a);
/// Row sums -> (m x 1).
Tensor RowSum(const Tensor& a);

Tensor Transpose(const Tensor& a);
/// Horizontal concatenation: (m x a) ++ (m x b) -> (m x (a+b)).
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation: (a x n) ++ (b x n) -> ((a+b) x n).
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// Variadic vertical stack: parts[0] on top, parts.back() at the bottom.
/// Parents are registered in *descending* part order so Backward()'s
/// reverse-post-order traversal runs part 0's producing chain first.
/// The per-row PPO baseline relies on that: N per-row recurrence chains
/// stacked per timestep accumulate into the shared LSTM weights in
/// ascending row order — the same in-place add sequence one batched
/// GemmTN issues — keeping the per-row and batched engines bit-identical
/// through the update. See Policy::RecomputeLogProbs(per_row).
Tensor StackRows(const std::vector<Tensor>& parts);

/// Contiguous column slice: columns [start, start+len) -> (m x len).
Tensor Cols(const Tensor& a, std::size_t start, std::size_t len);

/// Gather: selects rows of `table` by index -> (|indices| x cols).
/// Backward scatter-adds into the table (this is the embedding lookup).
Tensor Rows(const Tensor& table, const std::vector<std::size_t>& indices);

/// Row-wise dot product of equal-shaped matrices -> (m x 1).
Tensor RowDot(const Tensor& a, const Tensor& b);

/// Fused LSTM cell tail: consumes the (B x 4h) pre-activation block
/// `preact` (layout [i | f | g | o], the order module.cc produces) and
/// the previous cell state `c_prev` (B x h), and returns the new hidden
/// and cell states in one pass per row instead of eight elementwise
/// temporaries. Forward math uses the same per-element formulas as the
/// composed Sigmoid/Tanh/Mul/Add chain it replaces; rows are
/// partitioned with the kernels' row-ownership contract, so results do
/// not depend on the thread count.
struct LstmGatesResult {
  Tensor h;
  Tensor c;
};
LstmGatesResult LstmGates(const Tensor& preact, const Tensor& c_prev);

// -- Utilities ----------------------------------------------------------

/// Numerical gradient of f at `x` via central differences (testing aid).
std::vector<float> NumericalGradient(
    const std::function<float(const Tensor&)>& f, Tensor x,
    float eps = 1e-3f);

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_TENSOR_H_
