#include "orch/fleet.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/fsio.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace poisonrec::orch {

namespace {

/// Serializes one campaign outcome as a JSON object for the report.
std::string OutcomeJson(const CampaignOutcome& outcome) {
  std::string rewards = "[";
  bool first = true;
  for (const auto& [step, reward] : outcome.step_rewards) {
    if (!first) rewards += ",";
    first = false;
    rewards += "[";
    obs::AppendJsonNumber(&rewards, step);
    rewards += ",";
    obs::AppendJsonNumber(&rewards, reward);
    rewards += "]";
  }
  rewards += "]";
  obs::JsonObjectBuilder b;
  b.Str("id", outcome.id)
      .Str("state", CampaignStateName(outcome.state))
      .Int("steps_completed", outcome.steps_completed)
      .Int("restarts", outcome.restarts)
      .Int("rollbacks", outcome.rollbacks)
      .Num("best_reward", outcome.best_reward)
      .Num("wall_seconds", outcome.wall_seconds)
      .Bool("interrupted", outcome.interrupted)
      .Bool("recovered", outcome.recovered_from_journal)
      .Int("preemptions", outcome.preemptions)
      .Bool("fenced", outcome.fenced)
      .Bool("sibling", outcome.sibling_owned)
      .Int("token", outcome.lease_token)
      .Str("detail", outcome.detail)
      .Raw("step_rewards", rewards);
  return std::move(b).Finish();
}

std::string FormatDouble(double v) {
  std::string out;
  obs::AppendJsonNumber(&out, v);
  return out;
}

/// CSV cells are comma-split without quoting (util/csv), so free-text
/// details must not introduce field breaks.
std::string CsvSafe(std::string text) {
  std::replace(text.begin(), text.end(), ',', ';');
  std::replace(text.begin(), text.end(), '\n', ' ');
  return text;
}

/// Reconstructs a reportable outcome from folded journal state — used
/// for terminal campaigns recovered on resume and for campaigns a
/// sibling worker owns or finished.
CampaignOutcome OutcomeFromReplay(const std::string& id,
                                  const CampaignReplay& replay,
                                  bool sibling) {
  CampaignOutcome outcome;
  outcome.id = id;
  outcome.state = replay.state;
  outcome.steps_completed = replay.steps_completed;
  outcome.restarts = replay.restarts;
  outcome.best_reward = replay.best_reward;
  outcome.step_rewards = replay.step_rewards;
  outcome.lease_token = replay.token;
  outcome.detail =
      replay.detail.empty() ? "recovered from journal" : replay.detail;
  outcome.recovered_from_journal = true;
  outcome.sibling_owned = sibling;
  return outcome;
}

double WallUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string HostName() {
  char buffer[256];
  if (::gethostname(buffer, sizeof(buffer)) != 0) return "unknown";
  buffer[sizeof(buffer) - 1] = '\0';
  return buffer;
}

/// Journal state a preempted campaign carries into its next run.
CampaignReplay ReplayFromOutcome(const CampaignOutcome& outcome) {
  CampaignReplay replay;
  replay.state = outcome.state;
  replay.steps_completed = outcome.steps_completed;
  replay.restarts = outcome.restarts;
  replay.best_reward = outcome.best_reward;
  replay.step_rewards = outcome.step_rewards;
  replay.token = outcome.lease_token;
  replay.detail = outcome.detail;
  return replay;
}

}  // namespace

int FleetResult::ExitCode() const {
  if (!status.ok()) return 1;
  if (quarantined + failed + interrupted > 0) return 2;
  return 0;
}

FleetOrchestrator::FleetOrchestrator(FleetPlan plan,
                                     const data::Dataset* dataset,
                                     FleetOptions options)
    : plan_(std::move(plan)),
      dataset_(dataset),
      options_(std::move(options)) {
  POISONREC_CHECK(dataset_ != nullptr);
}

void FleetOrchestrator::RequestShutdown() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    sched_cv_.notify_all();
  }
  // Wake the watchdog too so a long poll period never delays shutdown
  // propagation (it re-checks stop_ on every wake).
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  watchdog_cv_.notify_all();
}

std::string FleetOrchestrator::WorkerJournalPath() const {
  if (!options_.shared) return options_.journal_path;
  // Each shared worker appends to its own sibling file so no two
  // processes ever share a journal fd; replay merges the whole family.
  const std::filesystem::path base(options_.journal_path);
  std::filesystem::path dir = base.parent_path();
  const std::string name =
      base.stem().string() + "." + options_.worker_id +
      base.extension().string();
  return dir.empty() ? name : (dir / name).string();
}

std::string FleetOrchestrator::TelemetryDir() const {
  if (!options_.telemetry_dir.empty()) return options_.telemetry_dir;
  return (std::filesystem::path(options_.checkpoint_dir) / "telemetry")
      .string();
}

std::string FleetOrchestrator::WorkerStatusJson(bool shutdown) {
  std::string campaigns = "[";
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    bool first = true;
    for (const auto& entry : entries_) {
      const char* slot_name = "ready";
      switch (entry->slot) {
        case Slot::kReady:
          slot_name = "ready";
          break;
        case Slot::kRunning:
          slot_name = "running";
          break;
        case Slot::kDone:
          slot_name = "done";
          break;
        case Slot::kSibling:
          slot_name = "sibling";
          break;
      }
      // Best available view, most authoritative last: journal replay,
      // then a final local outcome, then the live supervisor.
      std::string state = CampaignStateName(CampaignState::kPending);
      std::uint64_t step = 0;
      std::uint64_t restarts = 0;
      std::uint64_t token = 0;
      double last_reward = 0.0;
      double best_reward = 0.0;
      double step_rate = 0.0;
      double running_seconds = 0.0;
      if (entry->replay.has_value()) {
        state = CampaignStateName(entry->replay->state);
        step = entry->replay->steps_completed;
        restarts = entry->replay->restarts;
        best_reward = entry->replay->best_reward;
        token = entry->replay->token;
        if (!entry->replay->step_rewards.empty()) {
          last_reward = entry->replay->step_rewards.rbegin()->second;
        }
      }
      if (entry->has_outcome) {
        state = CampaignStateName(entry->outcome.state);
        step = entry->outcome.steps_completed;
        restarts = entry->outcome.restarts;
        best_reward = entry->outcome.best_reward;
        token = entry->outcome.lease_token;
        if (!entry->outcome.step_rewards.empty()) {
          last_reward = entry->outcome.step_rewards.rbegin()->second;
        }
      }
      if (entry->slot == Slot::kRunning && entry->supervisor != nullptr) {
        state = CampaignStateName(CampaignState::kRunning);
        step = entry->supervisor->committed_steps();
        last_reward = entry->supervisor->last_committed_reward();
        best_reward = entry->supervisor->best_reward_so_far();
        step_rate = entry->supervisor->CommittedStepRate();
        token = entry->supervisor->lease_token();
        running_seconds = entry->supervisor->SecondsSinceStart();
      }
      obs::JsonObjectBuilder row;
      row.Str("id", entry->spec.id)
          .Str("slot", slot_name)
          .Str("state", state)
          .Int("step", step)
          .Int("total", entry->spec.steps)
          .Num("last_reward", last_reward)
          .Num("best_reward", best_reward)
          .Int("restarts", restarts)
          .Int("preemptions", entry->preemptions)
          .Int("token", token)
          .Num("step_rate", step_rate)
          .Num("running_seconds", running_seconds);
      if (!first) campaigns += ",";
      first = false;
      campaigns += std::move(row).Finish();
    }
  }
  campaigns += "]";

  obs::JsonObjectBuilder b;
  b.Str("type", "worker_status")
      .Str("worker", status_worker_id_)
      .Int("pid", static_cast<std::uint64_t>(::getpid()))
      .Str("host", HostName())
      .Int("seq", ++status_seq_)
      // The aggregator (orch/status.h) trusts wall_unix for staleness:
      // it is cross-process comparable, unlike the steady-clock uptime.
      .Num("wall_unix", WallUnixSeconds())
      .Num("uptime_seconds",
           run_start_ticks_ == 0
               ? 0.0
               : internal::ElapsedSecondsSince(run_start_ticks_))
      .Num("publish_period_seconds", options_.status_publish_seconds)
      .Num("lease_ttl_seconds", options_.lease_ttl_seconds)
      .Bool("shared", options_.shared)
      .Bool("shutdown", shutdown)
      .Raw("campaigns", campaigns)
      .Raw("metrics", obs::MetricsRegistry::Global().SnapshotJson());
  return std::move(b).Finish();
}

void FleetOrchestrator::PublishWorkerStatus(bool shutdown) {
  if (!options_.publish_status) return;
  const std::string json = WorkerStatusJson(shutdown);
  const std::string path =
      (std::filesystem::path(TelemetryDir()) /
       (status_worker_id_ + ".status.json"))
          .string();
  const Status wrote = WriteFileDurableChecksummed(path, json);
  if (wrote.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("poisonrec_fleet_status_snapshots_total")
        ->Increment();
  } else {
    POISONREC_LOG(Warning) << "fleet: status snapshot publish failed: "
                           << wrote.ToString();
  }
  last_status_ticks_ = internal::NowTicks();
}

StatusOr<JournalReplayResult> FleetOrchestrator::MergedReplay() const {
  std::vector<std::string> files;
  if (options_.shared) {
    files = FleetJournal::ListJournalFiles(options_.journal_path);
  } else if (std::filesystem::exists(options_.journal_path)) {
    files.push_back(options_.journal_path);
  }
  if (files.empty()) return JournalReplayResult{};
  return FleetJournal::Replay(files);
}

Status FleetOrchestrator::Submit(CampaignSpec spec) {
  POISONREC_RETURN_NOT_OK(ValidateCampaignSpec(spec));
  std::lock_guard<std::mutex> lock(sched_mu_);
  if (!accepting_) {
    return Status::FailedPrecondition(
        "fleet is not running; campaigns can only be submitted while Run "
        "is active");
  }
  for (const auto& entry : entries_) {
    if (entry->spec.id == spec.id) {
      return Status::AlreadyExists("campaign id \"" + spec.id +
                                   "\" is already scheduled");
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->spec = std::move(spec);
  entry->slot = Slot::kReady;
  CampaignJournalRecord record;
  record.campaign_id = entry->spec.id;
  record.state = CampaignState::kPending;
  record.detail = "submitted";
  journal_.Record(record);
  POISONREC_LOG(Info) << "fleet: accepted submission " << entry->spec.id
                      << " (priority " << entry->spec.priority << ")";
  entries_.push_back(std::move(entry));
  sched_cv_.notify_all();
  return Status::OK();
}

void FleetOrchestrator::IngestSubmissions() {
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (std::filesystem::directory_iterator it(options_.submit_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".json") continue;
    files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& file : files) {
    const std::string name = file.filename().string();
    if (!ingested_submissions_.insert(name).second) continue;
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in && buffer.str().empty()) {
      POISONREC_LOG(Warning) << "fleet: cannot read submission " << file;
      continue;
    }
    StatusOr<CampaignSpec> spec = ParseCampaignSpecText(buffer.str());
    if (!spec.ok()) {
      POISONREC_LOG(Warning) << "fleet: rejected submission " << file << ": "
                             << spec.status().ToString();
      continue;
    }
    const Status submitted = Submit(std::move(spec).value());
    if (!submitted.ok() &&
        submitted.code() != StatusCode::kAlreadyExists) {
      POISONREC_LOG(Warning) << "fleet: rejected submission " << file << ": "
                             << submitted.ToString();
    }
  }
}

FleetOrchestrator::Entry* FleetOrchestrator::BestReadyLocked() {
  Entry* best = nullptr;
  for (const auto& entry : entries_) {
    if (entry->slot != Slot::kReady) continue;
    if (best == nullptr || entry->spec.priority > best->spec.priority) {
      best = entry.get();
    }
  }
  return best;
}

void FleetOrchestrator::RefreshSiblingsLocked() {
  if (leases_ == nullptr) return;
  StatusOr<JournalReplayResult> merged = MergedReplay();
  if (!merged.ok()) {
    POISONREC_LOG(Warning) << "fleet: sibling journal merge failed: "
                           << merged.status().ToString();
    return;
  }
  for (const auto& entry : entries_) {
    if (entry->slot != Slot::kSibling) continue;
    const auto it = merged->campaigns.find(entry->spec.id);
    if (it == merged->campaigns.end()) continue;
    // Inherit the sibling's committed frontier: if we later seize the
    // lease, the supervisor resumes from these steps (and the sibling's
    // token-suffixed checkpoint), keeping recovery bit-identical.
    entry->replay = it->second;
    if (IsTerminal(it->second.state)) {
      // Preserve the fenced flag (and the local run's wall clock) when
      // this worker lost the campaign mid-run: the sibling's terminal
      // state is authoritative, but the report must still say we were
      // fenced out.
      const bool was_fenced = entry->has_outcome && entry->outcome.fenced;
      const double wall_seconds =
          entry->has_outcome ? entry->outcome.wall_seconds : 0.0;
      entry->outcome =
          OutcomeFromReplay(entry->spec.id, it->second, /*sibling=*/true);
      if (was_fenced) {
        entry->outcome.fenced = true;
        entry->outcome.wall_seconds = wall_seconds;
      }
      entry->has_outcome = true;
      entry->slot = Slot::kDone;
    }
  }
}

void FleetOrchestrator::WorkerLoop() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  while (true) {
    if (stop_.load(std::memory_order_acquire)) {
      // Drain: queued campaigns are left for a later --resume (or a
      // sibling); they journal nothing and report as interrupted.
      for (const auto& entry : entries_) {
        if (entry->slot != Slot::kReady) continue;
        CampaignOutcome outcome;
        outcome.id = entry->spec.id;
        if (entry->replay.has_value()) {
          outcome.steps_completed = entry->replay->steps_completed;
          outcome.restarts = entry->replay->restarts;
          outcome.best_reward = entry->replay->best_reward;
          outcome.step_rewards = entry->replay->step_rewards;
        }
        outcome.preemptions = entry->preemptions;
        outcome.state = outcome.steps_completed > 0
                            ? CampaignState::kCheckpointed
                            : CampaignState::kPending;
        outcome.interrupted = true;
        outcome.detail = "not started: fleet shutdown requested";
        entry->outcome = std::move(outcome);
        entry->has_outcome = true;
        entry->slot = Slot::kDone;
      }
      sched_cv_.notify_all();
      return;
    }

    Entry* entry = BestReadyLocked();
    if (entry != nullptr) {
      // Mark the claim before dropping the lock so no sibling worker
      // thread races us to the same entry.
      entry->slot = Slot::kRunning;
      std::uint64_t token = 0;
      if (leases_ != nullptr) {
        lock.unlock();
        StatusOr<LeaseInfo> lease = leases_->Acquire(entry->spec.id);
        lock.lock();
        if (!lease.ok()) {
          // A live sibling beat us to it; anything else (I/O) is worth
          // a warning but is handled the same way — re-probed later.
          entry->slot = Slot::kSibling;
          if (lease.status().code() != StatusCode::kUnavailable) {
            POISONREC_LOG(Warning)
                << "fleet: lease acquire failed for " << entry->spec.id
                << ": " << lease.status().ToString();
          }
          continue;
        }
        token = lease->token;
      }

      SupervisorOptions supervisor_options;
      supervisor_options.checkpoint_dir = options_.checkpoint_dir;
      supervisor_options.journal = &journal_;
      supervisor_options.fleet_stop = &stop_;
      supervisor_options.replay = entry->replay;
      supervisor_options.leases = leases_.get();
      supervisor_options.lease_token = token;
      supervisor_options.preemptions = entry->preemptions;
      supervisor_options.retry_sleep = options_.retry_sleep;
      supervisor_options.restart_sleep = options_.restart_sleep;
      auto supervisor = std::make_shared<CampaignSupervisor>(
          entry->spec, dataset_, std::move(supervisor_options));
      entry->supervisor = supervisor;
      entry->last_renew_ticks = internal::NowTicks();

      lock.unlock();
      CampaignOutcome outcome;
      bool crashed = false;
      try {
        outcome = supervisor->Run();
      } catch (const std::exception& e) {
        crashed = true;
        outcome.id = entry->spec.id;
        outcome.state = CampaignState::kFailed;
        outcome.detail = std::string("uncaught exception: ") + e.what();
        CampaignJournalRecord record;
        record.campaign_id = outcome.id;
        record.state = CampaignState::kFailed;
        record.token = token;
        if (leases_ != nullptr) record.owner = leases_->owner_id();
        record.detail = outcome.detail;
        journal_.Record(record);
      }
      const bool release_lease =
          leases_ != nullptr && !outcome.fenced;
      if (release_lease) {
        const Status released = leases_->Release(entry->spec.id, token);
        if (!released.ok()) {
          POISONREC_LOG(Warning)
              << "fleet: lease release failed for " << entry->spec.id
              << ": " << released.ToString();
        }
      }
      lock.lock();
      entry->supervisor.reset();
      if (outcome.fenced) {
        // The seizing sibling owns the campaign now; our provisional
        // outcome is kept only for the fenced flag — the final merged
        // replay supplies the authoritative state.
        entry->outcome = std::move(outcome);
        entry->has_outcome = true;
        entry->slot = Slot::kSibling;
      } else if (!crashed && outcome.state == CampaignState::kPreempted) {
        entry->preemptions = outcome.preemptions;
        entry->replay = ReplayFromOutcome(outcome);
        entry->outcome = std::move(outcome);
        entry->has_outcome = true;
        entry->slot = Slot::kReady;
      } else {
        entry->outcome = std::move(outcome);
        entry->has_outcome = true;
        entry->slot = Slot::kDone;
      }
      sched_cv_.notify_all();
      continue;
    }

    bool have_running = false;
    bool have_sibling = false;
    for (const auto& e : entries_) {
      have_running |= e->slot == Slot::kRunning;
      have_sibling |= e->slot == Slot::kSibling;
    }
    if (!have_running && !have_sibling) return;  // drained

    double wait_seconds = std::max(options_.watchdog_poll_seconds, 0.001);
    if (have_sibling && leases_ != nullptr) {
      // Probe cadence for sibling liveness: a fraction of the TTL so a
      // dead sibling's campaigns are seized promptly.
      wait_seconds = std::min(
          wait_seconds, std::max(options_.lease_ttl_seconds / 4.0, 0.01));
    }
    ++idle_workers_;
    sched_cv_.wait_for(lock,
                       std::chrono::duration<double>(wait_seconds));
    --idle_workers_;
    if (have_sibling && leases_ != nullptr &&
        !stop_.load(std::memory_order_acquire)) {
      RefreshSiblingsLocked();
      for (const auto& e : entries_) {
        if (e->slot != Slot::kSibling) continue;
        StatusOr<LeaseInfo> info = leases_->Read(e->spec.id);
        const bool seizable =
            info.ok() ? leases_->Seizable(*info)
                      : info.status().code() == StatusCode::kNotFound;
        // Re-queue: the claim path re-acquires under the flock, which
        // is where the seizure (token bump) actually happens.
        if (seizable) e->slot = Slot::kReady;
      }
    }
  }
}

void FleetOrchestrator::WatchdogLoop() {
  const double poll = std::max(options_.watchdog_poll_seconds, 0.001);
  std::unique_lock<std::mutex> wlock(watchdog_mu_);
  while (!watchdog_stop_) {
    // Condition-variable wait instead of a fixed sleep: ShutdownWatchdog
    // and RequestShutdown wake it immediately, so join latency and
    // shutdown propagation never wait out a long poll period.
    watchdog_cv_.wait_for(wlock, std::chrono::duration<double>(poll),
                          [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    wlock.unlock();

    if (!options_.submit_dir.empty()) IngestSubmissions();

    // Stall/deadline scan on a snapshot: Abort only flips atomics and
    // the cancel token, but holding shared_ptrs keeps a supervisor
    // alive even if its worker finishes mid-scan.
    std::vector<std::shared_ptr<CampaignSupervisor>> running;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      for (const auto& entry : entries_) {
        if (entry->slot == Slot::kRunning && entry->supervisor != nullptr) {
          running.push_back(entry->supervisor);
        }
      }
    }
    for (const auto& supervisor : running) {
      if (!supervisor->running()) continue;
      const CampaignSpec& spec = supervisor->spec();
      if (spec.deadline_seconds > 0.0 &&
          supervisor->SecondsSinceStart() > spec.deadline_seconds) {
        supervisor->Abort(
            "deadline exceeded (" + std::to_string(spec.deadline_seconds) +
                "s wall clock)",
            /*allow_restart=*/false);
      } else if (spec.stall_timeout_seconds > 0.0 &&
                 supervisor->SecondsSinceHeartbeat() >
                     spec.stall_timeout_seconds) {
        supervisor->Abort(
            "stall: no heartbeat for " +
                std::to_string(spec.stall_timeout_seconds) + "s",
            /*allow_restart=*/true);
      }
    }

    // Lease heartbeats every ttl/3: a worker alive but past renewal is
    // indistinguishable from a dead one to siblings, so renewal rides
    // the watchdog, which keeps ticking even when campaigns block.
    if (leases_ != nullptr) {
      std::lock_guard<std::mutex> lock(sched_mu_);
      for (const auto& entry : entries_) {
        if (entry->slot != Slot::kRunning || entry->supervisor == nullptr) {
          continue;
        }
        if (internal::ElapsedSecondsSince(entry->last_renew_ticks) <
            options_.lease_ttl_seconds / 3.0) {
          continue;
        }
        const Status renewed = leases_->Renew(
            entry->spec.id, entry->supervisor->lease_token());
        if (renewed.ok()) {
          entry->last_renew_ticks = internal::NowTicks();
        } else if (renewed.code() == StatusCode::kFailedPrecondition) {
          // Fenced out between commits (e.g. a SIGSTOP outlasted the
          // TTL): stop the campaign before it writes anything else.
          entry->supervisor->RequestSoftStop(SoftStopKind::kFenced);
        } else {
          POISONREC_LOG(Warning)
              << "fleet: lease renew failed for " << entry->spec.id << ": "
              << renewed.ToString();
        }
      }
    }

    // Priority preemption: a higher-priority campaign is ready, every
    // worker is busy — soft-stop the lowest-priority running campaign
    // at its next step boundary. One victim per poll; the re-queued
    // victim's worker picks the high-priority campaign next.
    if (!stop_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (idle_workers_ == 0) {
        const Entry* best = BestReadyLocked();
        if (best != nullptr) {
          Entry* victim = nullptr;
          for (const auto& entry : entries_) {
            if (entry->slot != Slot::kRunning ||
                entry->supervisor == nullptr) {
              continue;
            }
            if (entry->supervisor->stop_pending()) continue;
            if (entry->spec.max_preemptions == 0 ||
                entry->preemptions >= entry->spec.max_preemptions) {
              continue;  // preemption-immune: starvation cap reached
            }
            if (entry->spec.priority >= best->spec.priority) continue;
            if (victim == nullptr ||
                entry->spec.priority < victim->spec.priority) {
              victim = entry.get();
            }
          }
          if (victim != nullptr) {
            POISONREC_LOG(Info)
                << "fleet: preempting " << victim->spec.id << " (priority "
                << victim->spec.priority << ") for " << best->spec.id
                << " (priority " << best->spec.priority << ")";
            victim->supervisor->RequestSoftStop(SoftStopKind::kPreempt);
          }
        }
      }
    }

    // Status snapshots ride the watchdog: it keeps ticking even while
    // every worker blocks inside a campaign step.
    if (options_.publish_status &&
        internal::ElapsedSecondsSince(last_status_ticks_) >=
            std::max(options_.status_publish_seconds, 0.01)) {
      PublishWorkerStatus(/*shutdown=*/false);
    }

    wlock.lock();
  }
}

void FleetOrchestrator::ShutdownWatchdog() {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  watchdog_stop_ = true;
  watchdog_cv_.notify_all();
}

Status FleetOrchestrator::WriteJsonReport(const FleetResult& result) const {
  std::string campaigns = "[";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (i > 0) campaigns += ",";
    campaigns += OutcomeJson(result.outcomes[i]);
  }
  campaigns += "]";
  obs::JsonObjectBuilder journal;
  journal.Int("files_merged", result.journal_files_merged)
      .Int("malformed_lines", result.journal_malformed_lines)
      .Int("torn_tail_lines", result.journal_torn_tail_lines)
      .Int("stale_records", result.journal_stale_records)
      .Int("corrupt_lines", result.journal_corrupt_lines)
      // Interior records replay had to skip for either reason —
      // structural damage or checksum rot.
      .Int("skipped_records",
           result.journal_malformed_lines + result.journal_corrupt_lines)
      .Int("checkpoints_quarantined", result.checkpoints_quarantined);
  obs::JsonObjectBuilder summary;
  summary.Int("campaigns", result.outcomes.size())
      .Int("done", result.done)
      .Int("quarantined", result.quarantined)
      .Int("failed", result.failed)
      .Int("interrupted", result.interrupted)
      .Int("recovered", result.recovered)
      .Int("preemptions", result.preemptions)
      .Int("fenced", result.fenced)
      .Int("sibling", result.sibling_owned)
      .Num("wall_seconds", result.wall_seconds)
      .Int("exit_code", static_cast<std::uint64_t>(result.ExitCode()));
  obs::JsonObjectBuilder report;
  report.Str("type", "fleet_report")
      .Str("plan", result.plan_name)
      .Str("dataset", plan_.dataset);
  if (options_.shared) report.Str("worker", options_.worker_id);
  report.Raw("summary", std::move(summary).Finish())
      .Raw("journal", std::move(journal).Finish())
      .Raw("campaigns", campaigns);
  std::ofstream out(options_.report_json_path,
                    std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open fleet report " +
                           options_.report_json_path);
  }
  out << std::move(report).Finish() << "\n";
  out.flush();
  if (!out) {
    return Status::IoError("failed writing fleet report " +
                           options_.report_json_path);
  }
  return Status::OK();
}

Status FleetOrchestrator::WriteCsvReport(const FleetResult& result) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"campaign_id", "state", "steps_completed", "restarts",
                  "rollbacks", "best_reward", "wall_seconds", "interrupted",
                  "recovered", "preemptions", "detail"});
  for (const CampaignOutcome& outcome : result.outcomes) {
    rows.push_back({CsvSafe(outcome.id), CampaignStateName(outcome.state),
                    std::to_string(outcome.steps_completed),
                    std::to_string(outcome.restarts),
                    std::to_string(outcome.rollbacks),
                    FormatDouble(outcome.best_reward),
                    FormatDouble(outcome.wall_seconds),
                    outcome.interrupted ? "1" : "0",
                    outcome.recovered_from_journal ? "1" : "0",
                    std::to_string(outcome.preemptions),
                    CsvSafe(outcome.detail)});
  }
  return WriteCsv(options_.report_csv_path, rows);
}

FleetResult FleetOrchestrator::Run() {
  FleetResult result;
  result.plan_name = plan_.name;
  const std::uint64_t start_ticks = internal::NowTicks();

  result.status = ValidatePlan(plan_);
  if (!result.status.ok()) return result;
  if (options_.shared && options_.worker_id.empty()) {
    options_.worker_id = DefaultWorkerId();
  }
  status_worker_id_ =
      options_.worker_id.empty() ? DefaultWorkerId() : options_.worker_id;
  run_start_ticks_ = start_ticks;

  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    result.status = Status::IoError("cannot create checkpoint directory " +
                                    options_.checkpoint_dir + ": " +
                                    ec.message());
    return result;
  }
  if (options_.publish_status) {
    // Best effort: a failed mkdir surfaces as a publish warning, not a
    // fleet failure.
    std::error_code telemetry_ec;
    std::filesystem::create_directories(TelemetryDir(), telemetry_ec);
  }
  const std::filesystem::path journal_dir =
      std::filesystem::path(options_.journal_path).parent_path();
  if (!journal_dir.empty()) {
    std::filesystem::create_directories(journal_dir, ec);
  }
  if (options_.shared) {
    leases_ = std::make_unique<LeaseManager>(
        (std::filesystem::path(options_.checkpoint_dir) / "leases").string(),
        options_.worker_id, options_.lease_ttl_seconds);
    result.status = leases_->Init();
    if (!result.status.ok()) return result;
  }

  // --resume replays the journal before reopening it in append mode, so
  // the recovery history and the new run share one file family. Shared
  // mode always replays: sibling workers may already hold progress, and
  // its journals are append-only by construction.
  std::map<std::string, CampaignReplay> replay;
  if (options_.resume || options_.shared) {
    StatusOr<JournalReplayResult> replayed = MergedReplay();
    if (!replayed.ok()) {
      result.status = replayed.status();
      return result;
    }
    replay = std::move(replayed->campaigns);
    if (!replay.empty()) {
      POISONREC_LOG(Info) << "fleet resume: replayed " << replay.size()
                          << " campaign(s) from "
                          << replayed->files_merged << " journal file(s)";
    }
  }
  result.status =
      journal_.Open(WorkerJournalPath(),
                    /*truncate=*/!(options_.resume || options_.shared));
  if (!result.status.ok()) return result;

  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    for (const CampaignSpec& spec : plan_.campaigns) {
      auto entry = std::make_unique<Entry>();
      entry->spec = spec;
      const auto it = replay.find(spec.id);
      if (it != replay.end()) {
        entry->replay = it->second;
        if (IsTerminal(it->second.state)) {
          entry->outcome =
              OutcomeFromReplay(spec.id, it->second, /*sibling=*/false);
          entry->has_outcome = true;
          entry->slot = Slot::kDone;
        }
      } else {
        if (options_.resume) {
          POISONREC_LOG(Info)
              << "fleet resume: campaign " << spec.id
              << " has no journal history; scheduling fresh";
        }
        CampaignJournalRecord record;
        record.campaign_id = spec.id;
        record.state = CampaignState::kPending;
        journal_.Record(record);
      }
      entries_.push_back(std::move(entry));
    }
    accepting_ = true;
    worker_count_ = std::max<std::size_t>(
        1, std::min(options_.max_concurrent, entries_.size()));
  }

  // Initial snapshot: `fleet --status` sees this worker (and every
  // campaign's pending/replayed state) before the first step commits.
  PublishWorkerStatus(/*shutdown=*/false);

  std::thread watchdog([this] { WatchdogLoop(); });
  // Workers are the global pool's one job; each campaign's internals are
  // single-threaded (MakeAttackerConfig), so no nested-parallelism
  // inversion and the structure stays fork-safe for crash tests.
  ParallelFor(worker_count_, worker_count_, [&](std::size_t) {
    WorkerLoop();
  });
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    accepting_ = false;
  }
  ShutdownWatchdog();
  watchdog.join();

  // Final merged replay: fills in campaigns owned or finished by sibling
  // workers and surfaces journal hygiene counters in the report.
  StatusOr<JournalReplayResult> final_replay = MergedReplay();
  if (final_replay.ok()) {
    result.journal_files_merged = final_replay->files_merged;
    result.journal_malformed_lines = final_replay->malformed_lines;
    result.journal_torn_tail_lines = final_replay->torn_tail_lines;
    result.journal_stale_records = final_replay->stale_records;
    result.journal_corrupt_lines = final_replay->corrupt_lines;
  } else {
    POISONREC_LOG(Warning) << "fleet: final journal merge failed: "
                           << final_replay.status().ToString();
  }

  // Final snapshot before folding the report: marks this worker cleanly
  // exited (`"shutdown":true`) so the aggregator never calls a finished
  // worker stale, and freezes every campaign's last known state.
  PublishWorkerStatus(/*shutdown=*/true);

  std::lock_guard<std::mutex> lock(sched_mu_);
  for (const auto& entry : entries_) {
    CampaignOutcome outcome;
    if (entry->slot == Slot::kSibling) {
      const bool was_fenced = entry->has_outcome && entry->outcome.fenced;
      bool filled = false;
      if (final_replay.ok()) {
        const auto it = final_replay->campaigns.find(entry->spec.id);
        if (it != final_replay->campaigns.end()) {
          outcome = OutcomeFromReplay(entry->spec.id, it->second,
                                      /*sibling=*/true);
          if (!IsTerminal(outcome.state)) {
            // The sibling is still working (or died mid-run): resumable,
            // not finished — partial from this worker's point of view.
            outcome.interrupted = true;
            outcome.recovered_from_journal = false;
            outcome.detail = "owned by sibling worker";
          }
          filled = true;
        }
      }
      if (!filled) {
        outcome.id = entry->spec.id;
        outcome.state = CampaignState::kPending;
        outcome.interrupted = true;
        outcome.sibling_owned = true;
        outcome.detail = "owned by sibling worker";
      }
      if (was_fenced) {
        outcome.fenced = true;
        outcome.wall_seconds = entry->outcome.wall_seconds;
      }
    } else if (entry->has_outcome) {
      outcome = entry->outcome;
    } else {
      // Defensive: with the queue drained this cannot happen, but a
      // worker that died mid-pop must not leave a default outcome.
      outcome.id = entry->spec.id;
      outcome.state = CampaignState::kPending;
      outcome.interrupted = true;
      outcome.detail = "never scheduled";
    }
    result.outcomes.push_back(std::move(outcome));
  }

  for (const CampaignOutcome& outcome : result.outcomes) {
    result.preemptions += outcome.preemptions;
    result.checkpoints_quarantined += outcome.checkpoints_quarantined;
    if (outcome.fenced) ++result.fenced;
    if (outcome.sibling_owned) ++result.sibling_owned;
    if (outcome.recovered_from_journal) ++result.recovered;
    if (outcome.interrupted) {
      ++result.interrupted;
      continue;
    }
    switch (outcome.state) {
      case CampaignState::kDone:
        ++result.done;
        break;
      case CampaignState::kQuarantined:
        ++result.quarantined;
        break;
      case CampaignState::kFailed:
        ++result.failed;
        break;
      default:
        ++result.interrupted;
        break;
    }
  }
  result.wall_seconds = internal::ElapsedSecondsSince(start_ticks);

  obs::MetricsRegistry::Global()
      .GetGauge("poisonrec_fleet_last_run_campaigns")
      ->Set(static_cast<double>(result.outcomes.size()));
  obs::MetricsRegistry::Global()
      .GetGauge("poisonrec_fleet_last_run_wall_seconds")
      ->Set(result.wall_seconds);

  if (!options_.report_json_path.empty()) {
    const Status report = WriteJsonReport(result);
    if (!report.ok()) result.status = report;
  }
  if (!options_.report_csv_path.empty()) {
    const Status report = WriteCsvReport(result);
    if (!report.ok()) result.status = report;
  }
  journal_.Close();
  return result;
}

}  // namespace poisonrec::orch
