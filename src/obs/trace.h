// Trace spans: RAII-scoped begin/end records collected into bounded
// per-thread rings and exported as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Usage at an instrumentation site:
//
//   {
//     POISONREC_TRACE_SPAN("ppo/update");
//     ... work ...
//   }  // span closes here
//
// or, when the caller also wants the duration (phase timings in
// TrainStepStats):
//
//   obs::TraceSpan span("ppo/sample");
//   ... work ...
//   stats.sample_seconds = span.Stop();
//
// A TraceSpan ALWAYS reads the steady clock so Stop() is a correct timer
// regardless of whether tracing is enabled; only the ring recording (and
// the one-time thread-ring registration) is gated on TracingEnabled().
// With tracing disabled the per-span cost is two clock reads and no heap
// allocation — cheap enough to leave in TrainStep permanently
// (bench_obs_overhead gates the end-to-end cost at <3%).
//
// Threading: each thread records into its own fixed-capacity ring, so
// recording takes no lock. The global registry owns ring storage (the
// thread_local only caches a raw pointer), so rings survive thread exit
// and the export sees spans from pool workers that have already parked.
// When a ring fills, the oldest spans are overwritten; TraceEventCount()
// vs. the per-ring drop counters tell the exporter how much was lost.
//
// `name` must be a string literal (or otherwise outlive the export):
// rings store the pointer, not a copy.
#ifndef POISONREC_OBS_TRACE_H_
#define POISONREC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace poisonrec::obs {

/// Globally enables/disables ring recording. Spans already open keep the
/// enabled-state they saw at construction, so a toggle mid-span cannot
/// produce an unmatched begin/end pair.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Sets the per-thread ring capacity (events). Applies to rings created
/// after the call; default 1 << 16. Clamped to >= 16.
void SetTraceRingCapacity(std::size_t capacity);

/// Drops all recorded events (rings stay registered for reuse).
void ClearTrace();

/// Total events currently retained across all rings.
std::size_t TraceEventCount();

/// Total events overwritten because a ring was full.
std::size_t TraceDroppedCount();

/// Exports all retained events as a Chrome trace_event JSON document:
/// {"traceEvents":[{"name":...,"ph":"X","ts":<µs>,"dur":<µs>,
/// "pid":1,"tid":<n>},...]} sorted by (ts asc, dur desc) so Perfetto
/// nests enclosing spans around their children.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`. False on I/O error.
bool WriteChromeTrace(const std::string& path);

/// Max bytes (including the terminator) of a span's argument string
/// retained in the ring. Longer arguments are truncated.
inline constexpr std::size_t kTraceArgCapacity = 48;

namespace internal {
struct ThreadTraceRing;
/// Ring for the calling thread, registering it on first use.
ThreadTraceRing* ThisThreadRing();
void RecordSpan(ThreadTraceRing* ring, const char* name, const char* arg,
                std::chrono::steady_clock::time_point begin,
                std::chrono::steady_clock::time_point end);
}  // namespace internal

/// RAII span. See the file comment for the timing/recording contract.
///
/// The optional `arg` labels the span with dynamic context — the fleet
/// supervisor passes the campaign id so merged fleet traces
/// (`poisonrec trace-merge`) can attribute worker time to campaigns.
/// Unlike `name`, `arg` is copied into the ring (truncated to
/// kTraceArgCapacity-1 bytes) when the span closes, so it only has to
/// stay alive until Stop(); it is exported as `"args":{"campaign":...}`.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* arg = nullptr)
      : name_(name),
        arg_(arg),
        ring_(TracingEnabled() ? internal::ThisThreadRing() : nullptr),
        begin_(std::chrono::steady_clock::now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Stop(); }

  /// Closes the span (idempotent) and returns its duration in seconds.
  /// After the first call, returns the same duration.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      end_ = std::chrono::steady_clock::now();
      if (ring_ != nullptr) {
        internal::RecordSpan(ring_, name_, arg_, begin_, end_);
      }
    }
    return std::chrono::duration<double>(end_ - begin_).count();
  }

 private:
  const char* name_;
  const char* arg_;
  internal::ThreadTraceRing* ring_;
  std::chrono::steady_clock::time_point begin_;
  std::chrono::steady_clock::time_point end_;
  bool stopped_ = false;
};

#define POISONREC_TRACE_CONCAT_INNER(a, b) a##b
#define POISONREC_TRACE_CONCAT(a, b) POISONREC_TRACE_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define POISONREC_TRACE_SPAN(name)                                  \
  ::poisonrec::obs::TraceSpan POISONREC_TRACE_CONCAT(trace_span_, \
                                                     __LINE__)(name)

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_TRACE_H_
