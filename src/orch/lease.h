// Campaign leases: cross-process mutual exclusion + fencing for
// `poisonrec fleet --shared`, where N orchestrator processes claim
// campaigns from one plan over a shared journal/checkpoint directory.
//
// One durable JSON file per campaign (`<lease_dir>/<id>.lease`):
//
//   { "type": "lease", "campaign_id": "...", "owner": "w1-8712-5f2c...",
//     "pid": 8712, "token": 3, "renewed_unix": 1754640000.123,
//     "ttl_seconds": 2.0 }
//
// Lifecycle:
//
//          Acquire (free / released)           Renew (heartbeat, <= ttl/3)
//   ┌──────────────────────────────┐   ┌───┐
//   │                              v   v   │
//   free ──> HELD by owner O, token T ──────> Release (owner="", token T)
//             │                                        │
//             │ owner dies / SIGSTOPs: renewals stop   │ next Acquire
//             v                                        v
//            lease expires (now - renewed > ttl)     token T+1
//             │
//             v
//            SEIZED by sibling: owner=O', token T+1 (takeover)
//
// Fencing contract: the token is monotonically increasing per campaign
// (every acquisition — fresh, re-claim after release, or seizure —
// writes token+1). Checkpoint publishes and journal records carry the
// owner's token; a zombie worker resumed after takeover (SIGSTOP →
// lease expired → seized → SIGCONT) fails Validate/Renew with
// kFailedPrecondition and must stop writing — and even its in-flight
// writes cannot clobber the new owner, because checkpoints are
// token-suffixed (`<id>.t<token>.ckpt`) and journal replay drops
// stale-token records (orch/journal.h).
//
// Durability and atomicity: lease files are published with the
// util/fsio tmp-fsync-rename discipline, and every read-modify-write
// transition holds an exclusive flock(2) on a sidecar `<id>.lock`, so
// two siblings racing to seize an expired lease cannot both win the
// same token. flock is held only for the transition (crash inside it
// auto-releases); ownership across time is the lease file itself.
// flock scopes the guarantee to workers sharing one kernel — the
// single-machine multi-process fleet this targets; multi-machine
// fleets over NFS would need an O_EXCL-based lock instead.
#ifndef POISONREC_ORCH_LEASE_H_
#define POISONREC_ORCH_LEASE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace poisonrec::orch {

/// Parsed contents of one lease file.
struct LeaseInfo {
  std::string campaign_id;
  /// Owner worker id; empty once released.
  std::string owner;
  /// Pid of the owning process (diagnostics; the owner id embeds it).
  std::uint64_t pid = 0;
  /// Fencing token: strictly increases with every acquisition.
  std::uint64_t token = 0;
  /// Wall-clock seconds (unix epoch) of the last heartbeat renewal.
  double renewed_unix = 0.0;
  double ttl_seconds = 0.0;
};

/// Returns a process-unique worker id: `w<pid>-<boot nonce>`. The nonce
/// makes ids unique across pid reuse (reboots, pid wraparound).
std::string DefaultWorkerId();

class LeaseManager {
 public:
  /// `dir` holds the lease + lock files (created by Init). `owner_id`
  /// identifies this worker in lease files and journal records.
  LeaseManager(std::string dir, std::string owner_id, double ttl_seconds);

  /// Creates the lease directory. Call before Acquire.
  Status Init();

  /// Claims the campaign. Succeeds when the lease is free, released,
  /// expired (seizure — the stale owner is fenced out), or already ours
  /// (idempotent re-acquire, same token). kUnavailable when a live
  /// sibling holds it.
  StatusOr<LeaseInfo> Acquire(const std::string& campaign_id);

  /// Heartbeat: refreshes renewed_unix. kFailedPrecondition when the
  /// lease no longer carries (owner, token) — we have been fenced out.
  Status Renew(const std::string& campaign_id, std::uint64_t token);

  /// Read-only fencing check: OK iff the lease file still names us with
  /// `token`. Called before every checkpoint publish / journal commit.
  Status Validate(const std::string& campaign_id, std::uint64_t token) const;

  /// Gives the lease up (owner cleared, token kept so the next acquire
  /// increments it). kFailedPrecondition when already fenced out.
  Status Release(const std::string& campaign_id, std::uint64_t token);

  /// Parses a lease file. kNotFound when it does not exist, kDataLoss
  /// when unparseable (torn tmp never lands thanks to rename, but a
  /// foreign file could sit at the path).
  StatusOr<LeaseInfo> Read(const std::string& campaign_id) const;

  /// True when an Acquire by this manager would succeed without waiting:
  /// the lease is released, already ours, or its heartbeat has expired.
  /// A cheap read-only probe (no flock) for scheduler polling; Acquire
  /// remains the authoritative, race-free claim.
  bool Seizable(const LeaseInfo& info) const;

  std::string LeasePath(const std::string& campaign_id) const;
  const std::string& owner_id() const { return owner_id_; }
  double ttl_seconds() const { return ttl_seconds_; }

  /// Test seam: replaces the wall clock (seconds since epoch) so lease
  /// expiry can be driven without real sleeps.
  void SetClockForTest(std::function<double()> now) {
    now_ = std::move(now);
  }

 private:
  double Now() const;
  std::string LockPath(const std::string& campaign_id) const;
  Status WriteLease(const LeaseInfo& info) const;

  std::string dir_;
  std::string owner_id_;
  double ttl_seconds_;
  std::function<double()> now_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_LEASE_H_
