// Implicit-feedback interaction log. This is the substrate every
// recommender trains on and every attack poisons: an ordered sequence of
// item interactions per user, with dense user/item id spaces.
#ifndef POISONREC_DATA_DATASET_H_
#define POISONREC_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace poisonrec::data {

using UserId = std::size_t;
using ItemId = std::size_t;

/// One (user, item) event. `position` is the index within the user's
/// behavior sequence (the log is implicit feedback; there are no ratings).
struct Interaction {
  UserId user;
  ItemId item;
  std::size_t position;
};

/// Mutable interaction log with dense id spaces.
///
/// Capacities (`num_users`, `num_items`) are fixed at construction and may
/// exceed the ids actually present — the attack setting requires reserving
/// slots for N fake attacker users and for the 8 new target items, which
/// start with zero interactions ("cold").
class Dataset {
 public:
  Dataset(std::size_t num_users, std::size_t num_items);

  /// Appends an interaction at the end of `user`'s sequence.
  void Add(UserId user, ItemId item);
  /// Appends a whole item sequence for `user`.
  void AddSequence(UserId user, const std::vector<ItemId>& items);

  std::size_t num_users() const { return sequences_.size(); }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_interactions() const { return num_interactions_; }

  /// The user's behavior sequence in temporal order.
  const std::vector<ItemId>& Sequence(UserId user) const;

  /// Interaction count per item ("popularity" / sales volume — the public
  /// statistic the paper allows attackers to crawl).
  const std::vector<std::size_t>& ItemPopularity() const {
    return popularity_;
  }

  /// Item ids sorted by ascending popularity (ties by id). This ordering
  /// drives BCBT-Popular leaf assignment.
  std::vector<ItemId> ItemsByPopularity() const;

  /// Users with at least `min_len` interactions.
  std::vector<UserId> UsersWithMinLength(std::size_t min_len) const;

  /// Flat copy of all interactions (ordered by user, then position).
  std::vector<Interaction> AllInteractions() const;

  /// Deep copy.
  Dataset Clone() const { return *this; }

 private:
  std::size_t num_items_;
  std::size_t num_interactions_ = 0;
  std::vector<std::vector<ItemId>> sequences_;  // per user
  std::vector<std::size_t> popularity_;         // per item
};

/// Leave-one-out split (paper §IV-A): for each user with k >= 3 events,
/// b_k goes to test, b_{k-1} to validation, the rest to train. Users with
/// fewer than 3 events stay entirely in train.
struct LeaveOneOutSplit {
  Dataset train;
  std::vector<Interaction> validation;
  std::vector<Interaction> test;
};

LeaveOneOutSplit SplitLeaveOneOut(const Dataset& dataset);

/// Reads a dataset from CSV rows "user,item" (dense non-negative ids; rows
/// in temporal order per user). `num_users`/`num_items` are inferred as
/// max id + 1 unless larger capacities are given.
StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 std::size_t min_users = 0,
                                 std::size_t min_items = 0);

/// Writes "user,item" rows, ordered by user then position.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

}  // namespace poisonrec::data

#endif  // POISONREC_DATA_DATASET_H_
