// Resilience sweep (beyond the paper): how much attack damage survives an
// unreliable channel. Sweeps the transient query-failure rate and the
// per-click injection drop rate independently on Steam (first ranker of
// POISONREC_RANKERS; ItemPop by default); the attacker retries transient
// errors and imputes unobserved rewards. For each cell the learned best
// attack is re-scored on the clean channel, so the number isolates what
// the attacker still *learned* from what the channel merely hid.
// Expected: flat-ish in the failure rate (retries recover most queries),
// graceful decay in the drop rate (the training signal itself degrades).
#include <cstdio>

#include "bench/common.h"
#include "core/ppo.h"
#include "env/fault.h"
#include "util/retry.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  const std::string ranker =
      config.rankers.empty() ? "ItemPop" : config.rankers.front();
  std::printf(
      "== Resilience: damage vs fault severity (%s on Steam, scale=%.3g) "
      "==\n\n",
      ranker.c_str(), config.scale);

  const SleepFn no_sleep = [](double) {};
  PrintTableHeader({"fail", "drop", "RecNum", "damage", "failed", "retries"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back(
      {"failure_rate", "drop_rate", "recnum", "damage", "failed", "retries"});
  for (const double failure_rate : {0.0, 0.2, 0.4}) {
    for (const double drop_rate : {0.0, 0.15, 0.3}) {
      auto environment =
          MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);

      env::FaultProfile profile;
      profile.query_failure_rate = failure_rate;
      profile.injection_drop_rate = drop_rate;
      profile.shadow_ban_rate = 0.05;
      profile.seed = config.seed ^ 0x0fau;
      env::FaultyEnvironment faulty(environment.get(), profile);

      core::PoisonRecAttacker attacker(
          environment.get(),
          MakePoisonRecConfig(
              config, core::ActionSpaceKind::kBcbtPopular,
              config.seed ^ static_cast<std::uint64_t>(
                                failure_rate * 1000 + drop_rate * 10)));
      attacker.AttachFaultyEnvironment(&faulty, no_sleep);
      const auto stats = attacker.Train(config.training_steps);

      std::size_t failed = 0;
      std::size_t retries = 0;
      for (const auto& s : stats) {
        failed += s.failed_queries;
        retries += s.retries;
      }
      const double rec_num = environment->Evaluate(attacker.BestAttack());
      const double damage = rec_num - environment->BaselineRecNum();
      PrintTableRow({FormatCount(failure_rate * 100) + "%",
                     FormatCount(drop_rate * 100) + "%", FormatCount(rec_num),
                     FormatCount(damage), std::to_string(failed),
                     std::to_string(retries)});
      csv.push_back({std::to_string(failure_rate), std::to_string(drop_rate),
                     FormatCount(rec_num), FormatCount(damage),
                     std::to_string(failed), std::to_string(retries)});
    }
  }
  WriteCsvOutput(config, "fault_resilience.csv", csv);
  WriteJsonOutput(config, "fault_resilience.json", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
