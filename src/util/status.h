// Status / StatusOr: lightweight error propagation in the style of
// Abseil/Arrow. Library code returns Status (or StatusOr<T>) from fallible
// operations instead of throwing; programmer errors use CHECK macros
// (see util/logging.h).
#ifndef POISONREC_UTIL_STATUS_H_
#define POISONREC_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace poisonrec {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  /// The operation failed transiently (flaky backend, dropped connection);
  /// retrying the same call may succeed.
  kUnavailable = 9,
  /// The caller is being throttled (rate limit / quota); retrying after a
  /// cool-down may succeed.
  kResourceExhausted = 10,
  /// The operation gave up after exhausting its time or attempt budget.
  kDeadlineExceeded = 11,
  /// The operation was cooperatively cancelled (util/cancel.h) — e.g. a
  /// campaign supervisor interrupting a blocked retry loop, or a fleet
  /// shutting down at a step boundary. Never retriable.
  kCancelled = 12,
  /// Durable state is unrecoverable: a checkpoint or journal that exists
  /// but is truncated/corrupt (torn write, machine crash mid-commit).
  /// Unlike kIoError ("could not read"), this means "read fine, content
  /// is lost" — callers should discard the artifact and start fresh.
  kDataLoss = 13,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a code + message otherwise.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Access to the value when
/// the status is not OK aborts (programmer error).
template <typename T>
class StatusOr {
 public:
  // Implicit construction from both T and Status keeps call sites terse:
  //   StatusOr<int> F() { if (bad) return Status::InvalidArgument("x"); ... }
  StatusOr(T value) : value_(std::move(value)) {}           // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!ok()) internal::DieOnBadStatusAccess(status_);
}

/// Propagates a non-OK Status to the caller.
#define POISONREC_RETURN_NOT_OK(expr)                    \
  do {                                                   \
    ::poisonrec::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                           \
  } while (false)

/// Assigns the value of a StatusOr expression to `lhs`, propagating errors.
#define POISONREC_ASSIGN_OR_RETURN(lhs, expr)            \
  POISONREC_ASSIGN_OR_RETURN_IMPL(                       \
      POISONREC_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define POISONREC_CONCAT_INNER_(a, b) a##b
#define POISONREC_CONCAT_(a, b) POISONREC_CONCAT_INNER_(a, b)

#define POISONREC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace poisonrec

#endif  // POISONREC_UTIL_STATUS_H_
