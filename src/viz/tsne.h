// Exact O(n^2) t-SNE (van der Maaten & Hinton, 2008) — the visualization
// substrate for Figure 6 (2-D maps of learned item embeddings with the
// attack's clicked items marked). Suitable for up to a few thousand
// points, which covers the scaled experiment catalogs.
#ifndef POISONREC_VIZ_TSNE_H_
#define POISONREC_VIZ_TSNE_H_

#include <cstdint>
#include <vector>

namespace poisonrec::viz {

struct TsneConfig {
  double perplexity = 30.0;
  std::size_t iterations = 300;
  double learning_rate = 50.0;
  double momentum = 0.8;
  /// Early exaggeration factor applied for the first quarter of the run.
  double early_exaggeration = 4.0;
  std::uint64_t seed = 5;
};

/// Embeds `n` points of dimension `dim` (row-major `points`, size n*dim)
/// into 2-D. Returns row-major (n x 2) coordinates.
std::vector<double> TsneEmbed(const std::vector<double>& points,
                              std::size_t n, std::size_t dim,
                              const TsneConfig& config = TsneConfig());

namespace internal {

/// Symmetric affinities P from pairwise squared distances, with per-point
/// bandwidths found by binary search on the target perplexity. Exposed
/// for tests.
std::vector<double> ComputeAffinities(const std::vector<double>& sq_dist,
                                      std::size_t n, double perplexity);

}  // namespace internal
}  // namespace poisonrec::viz

#endif  // POISONREC_VIZ_TSNE_H_
