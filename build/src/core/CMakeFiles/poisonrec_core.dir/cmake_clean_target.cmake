file(REMOVE_RECURSE
  "libpoisonrec_core.a"
)
