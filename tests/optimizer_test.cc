// Optimizer tests: SGD/Adam mechanics and convergence, gradient clipping.
#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace poisonrec::nn {
namespace {

TEST(SgdTest, SingleStepMatchesFormula) {
  Tensor w = Tensor::FromData(1, 1, {1.0f}, true);
  Sgd opt({w}, /*lr=*/0.1f);
  Tensor loss = Square(w);  // dL/dw = 2w = 2
  loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.at(0, 0), 1.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinks) {
  Tensor w = Tensor::FromData(1, 1, {1.0f}, true);
  Sgd opt({w}, 0.1f, /*weight_decay=*/1.0f);
  w.mutable_grad().assign(1, 0.0f);
  w.mutable_grad()[0] = 0.0f;
  opt.Step();  // pure decay: w -= lr * wd * w
  EXPECT_NEAR(w.at(0, 0), 0.9f, 1e-6f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::FromData(1, 2, {5.0f, -3.0f}, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = Sum(Square(w));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.at(0, 0), 0.0f, 1e-4f);
  EXPECT_NEAR(w.at(0, 1), 0.0f, 1e-4f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam step ~= lr * sign(grad).
  Tensor w = Tensor::FromData(1, 1, {0.0f}, true);
  Adam opt({w}, 0.01f);
  w.mutable_grad()[0] = 5.0f;
  opt.Step();
  EXPECT_NEAR(w.at(0, 0), -0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnShiftedQuadratic) {
  Tensor w = Tensor::FromData(1, 3, {4.0f, -2.0f, 9.0f}, true);
  Tensor target = Tensor::FromData(1, 3, {1.0f, 2.0f, 3.0f});
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    Tensor loss = Sum(Square(Sub(w, target)));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(w.at(0, c), target.at(0, c), 1e-2f);
  }
}

TEST(AdamTest, StepCountAdvances) {
  Tensor w = Tensor::FromData(1, 1, {1.0f}, true);
  Adam opt({w}, 0.01f);
  EXPECT_EQ(opt.step_count(), 0u);
  w.mutable_grad()[0] = 1.0f;
  opt.Step();
  opt.Step();
  EXPECT_EQ(opt.step_count(), 2u);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Tensor a = Tensor::FromData(1, 1, {1.0f}, true);
  Tensor b = Tensor::FromData(1, 2, {1.0f, 2.0f}, true);
  Sgd opt({a, b}, 0.1f);
  a.mutable_grad()[0] = 3.0f;
  b.mutable_grad()[1] = 4.0f;
  opt.ZeroGrad();
  EXPECT_EQ(a.grad()[0], 0.0f);
  EXPECT_EQ(b.grad()[1], 0.0f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Tensor w = Tensor::FromData(1, 2, {0.0f, 0.0f}, true);
  w.mutable_grad() = {3.0f, 4.0f};  // norm 5
  const float before = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(before, 5.0f, 1e-5f);
  const float after = std::sqrt(w.grad()[0] * w.grad()[0] +
                                w.grad()[1] * w.grad()[1]);
  EXPECT_NEAR(after, 1.0f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(w.grad()[0] / w.grad()[1], 0.75f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor w = Tensor::FromData(1, 2, {0.0f, 0.0f}, true);
  w.mutable_grad() = {0.3f, 0.4f};  // norm 0.5
  ClipGradNorm({w}, 1.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(w.grad()[1], 0.4f);
}

}  // namespace
}  // namespace poisonrec::nn
