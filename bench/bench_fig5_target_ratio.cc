// Figure 5: the fraction of clicks that the learned PoisonRec strategy
// (BCBT-Popular) spends on target items I_t, per recommendation
// algorithm, on Steam. Expected shape (paper §IV-B): ratio ~1.0 on
// ItemPop and NeuMF (clicking targets only is optimal there), and >0.2
// but well below 1.0 on the algorithms where pairing targets with
// original items matters (CoVisitation, GRU4Rec, NGCF, ...).
#include <cstdio>
#include <set>

#include "bench/common.h"

namespace poisonrec::bench {
namespace {

void Run() {
  BenchConfig config = LoadBenchConfig();
  std::printf(
      "== Figure 5: target-click ratio of learned strategies (Steam, "
      "scale=%.3g) ==\n\n",
      config.scale);
  PrintTableHeader({"Ranker", "ratio", "targets", "RecNum"});

  std::vector<std::vector<std::string>> csv;
  csv.push_back(
      {"ranker", "target_click_ratio", "distinct_targets", "best_recnum"});
  for (const std::string& ranker : config.rankers) {
    auto environment =
        MakeEnvironment(config, data::DatasetPreset::kSteam, ranker);
    core::PoisonRecAttacker attacker(
        environment.get(),
        MakePoisonRecConfig(config, core::ActionSpaceKind::kBcbtPopular,
                            config.seed ^ 0x5f1u));
    attacker.Train(config.training_steps);
    // Ratio of the best (learned) episode, as the paper visualizes the
    // final strategies.
    const double ratio = core::TargetClickRatio(
        attacker.best_episode(), environment->num_original_items());
    // Distinct targets the strategy invests in (paper §IV-D notes
    // PoisonRec promotes several targets simultaneously).
    std::set<data::ItemId> promoted;
    for (const auto& traj : attacker.BestAttack()) {
      for (data::ItemId item : traj.items) {
        if (item >= environment->num_original_items()) {
          promoted.insert(item);
        }
      }
    }
    PrintTableRow({ranker, FormatCount(ratio * 100.0) + "%",
                   std::to_string(promoted.size()),
                   FormatCount(attacker.best_episode().reward)});
    csv.push_back({ranker, std::to_string(ratio),
                   std::to_string(promoted.size()),
                   FormatCount(attacker.best_episode().reward)});
  }
  WriteCsvOutput(config, "fig5_target_ratio.csv", csv);
}

}  // namespace
}  // namespace poisonrec::bench

int main() {
  poisonrec::bench::Run();
  return 0;
}
