#include "orch/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace poisonrec::orch {

namespace {

/// Serializes one campaign outcome as a JSON object for the report.
std::string OutcomeJson(const CampaignOutcome& outcome) {
  std::string rewards = "[";
  bool first = true;
  for (const auto& [step, reward] : outcome.step_rewards) {
    if (!first) rewards += ",";
    first = false;
    rewards += "[";
    obs::AppendJsonNumber(&rewards, step);
    rewards += ",";
    obs::AppendJsonNumber(&rewards, reward);
    rewards += "]";
  }
  rewards += "]";
  obs::JsonObjectBuilder b;
  b.Str("id", outcome.id)
      .Str("state", CampaignStateName(outcome.state))
      .Int("steps_completed", outcome.steps_completed)
      .Int("restarts", outcome.restarts)
      .Int("rollbacks", outcome.rollbacks)
      .Num("best_reward", outcome.best_reward)
      .Num("wall_seconds", outcome.wall_seconds)
      .Bool("interrupted", outcome.interrupted)
      .Bool("recovered", outcome.recovered_from_journal)
      .Str("detail", outcome.detail)
      .Raw("step_rewards", rewards);
  return std::move(b).Finish();
}

std::string FormatDouble(double v) {
  std::string out;
  obs::AppendJsonNumber(&out, v);
  return out;
}

/// CSV cells are comma-split without quoting (util/csv), so free-text
/// details must not introduce field breaks.
std::string CsvSafe(std::string text) {
  std::replace(text.begin(), text.end(), ',', ';');
  std::replace(text.begin(), text.end(), '\n', ' ');
  return text;
}

}  // namespace

int FleetResult::ExitCode() const {
  if (!status.ok()) return 1;
  if (quarantined + failed + interrupted > 0) return 2;
  return 0;
}

FleetOrchestrator::FleetOrchestrator(FleetPlan plan,
                                     const data::Dataset* dataset,
                                     FleetOptions options)
    : plan_(std::move(plan)),
      dataset_(dataset),
      options_(std::move(options)) {
  POISONREC_CHECK(dataset_ != nullptr);
}

Status FleetOrchestrator::WriteJsonReport(const FleetResult& result) const {
  std::string campaigns = "[";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (i > 0) campaigns += ",";
    campaigns += OutcomeJson(result.outcomes[i]);
  }
  campaigns += "]";
  obs::JsonObjectBuilder summary;
  summary.Int("campaigns", result.outcomes.size())
      .Int("done", result.done)
      .Int("quarantined", result.quarantined)
      .Int("failed", result.failed)
      .Int("interrupted", result.interrupted)
      .Int("recovered", result.recovered)
      .Num("wall_seconds", result.wall_seconds)
      .Int("exit_code", static_cast<std::uint64_t>(result.ExitCode()));
  obs::JsonObjectBuilder report;
  report.Str("type", "fleet_report")
      .Str("plan", result.plan_name)
      .Str("dataset", plan_.dataset)
      .Raw("summary", std::move(summary).Finish())
      .Raw("campaigns", campaigns);
  std::ofstream out(options_.report_json_path,
                    std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open fleet report " +
                           options_.report_json_path);
  }
  out << std::move(report).Finish() << "\n";
  out.flush();
  if (!out) {
    return Status::IoError("failed writing fleet report " +
                           options_.report_json_path);
  }
  return Status::OK();
}

Status FleetOrchestrator::WriteCsvReport(const FleetResult& result) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"campaign_id", "state", "steps_completed", "restarts",
                  "rollbacks", "best_reward", "wall_seconds", "interrupted",
                  "recovered", "detail"});
  for (const CampaignOutcome& outcome : result.outcomes) {
    rows.push_back({CsvSafe(outcome.id), CampaignStateName(outcome.state),
                    std::to_string(outcome.steps_completed),
                    std::to_string(outcome.restarts),
                    std::to_string(outcome.rollbacks),
                    FormatDouble(outcome.best_reward),
                    FormatDouble(outcome.wall_seconds),
                    outcome.interrupted ? "1" : "0",
                    outcome.recovered_from_journal ? "1" : "0",
                    CsvSafe(outcome.detail)});
  }
  return WriteCsv(options_.report_csv_path, rows);
}

FleetResult FleetOrchestrator::Run() {
  FleetResult result;
  result.plan_name = plan_.name;
  const std::uint64_t start_ticks = internal::NowTicks();

  result.status = ValidatePlan(plan_);
  if (!result.status.ok()) return result;

  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    result.status = Status::IoError("cannot create checkpoint directory " +
                                    options_.checkpoint_dir + ": " +
                                    ec.message());
    return result;
  }
  const std::filesystem::path journal_dir =
      std::filesystem::path(options_.journal_path).parent_path();
  if (!journal_dir.empty()) {
    std::filesystem::create_directories(journal_dir, ec);
  }

  // --resume replays the journal before reopening it in append mode, so
  // the recovery history and the new run share one file.
  std::map<std::string, CampaignReplay> replay;
  if (options_.resume && std::filesystem::exists(options_.journal_path)) {
    StatusOr<std::map<std::string, CampaignReplay>> replayed =
        FleetJournal::ReplayFile(options_.journal_path);
    if (!replayed.ok()) {
      result.status = replayed.status();
      return result;
    }
    replay = std::move(replayed).value();
    POISONREC_LOG(Info) << "fleet resume: replayed " << replay.size()
                        << " campaign(s) from " << options_.journal_path;
  }
  result.status = journal_.Open(options_.journal_path,
                                /*truncate=*/!options_.resume);
  if (!result.status.ok()) return result;

  const std::size_t n = plan_.campaigns.size();
  std::vector<std::unique_ptr<CampaignSupervisor>> supervisors;
  supervisors.reserve(n);
  for (const CampaignSpec& spec : plan_.campaigns) {
    SupervisorOptions supervisor_options;
    supervisor_options.checkpoint_dir = options_.checkpoint_dir;
    supervisor_options.journal = &journal_;
    supervisor_options.fleet_stop = &stop_;
    supervisor_options.retry_sleep = options_.retry_sleep;
    supervisor_options.restart_sleep = options_.restart_sleep;
    const auto it = replay.find(spec.id);
    if (it != replay.end()) {
      supervisor_options.replay = it->second;
    } else if (options_.resume) {
      POISONREC_LOG(Info) << "fleet resume: campaign " << spec.id
                          << " has no journal history; scheduling fresh";
    }
    supervisors.push_back(std::make_unique<CampaignSupervisor>(
        spec, dataset_, std::move(supervisor_options)));
    if (it == replay.end()) {
      CampaignJournalRecord record;
      record.campaign_id = spec.id;
      record.state = CampaignState::kPending;
      journal_.Record(record);
    }
  }

  // Priority queue: highest priority first, plan order as the tiebreak.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return plan_.campaigns[a].priority >
                            plan_.campaigns[b].priority;
                   });

  // Watchdog: polls running supervisors and hard-cancels stalled or
  // overdue attempts. Deadline beats stall when both are tripped — the
  // deadline verdict (quarantine) is the stricter one.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog([this, &watchdog_stop, &supervisors] {
    while (!watchdog_stop.load(std::memory_order_acquire)) {
      for (const auto& supervisor : supervisors) {
        if (!supervisor->running()) continue;
        const CampaignSpec& spec = supervisor->spec();
        if (spec.deadline_seconds > 0.0 &&
            supervisor->SecondsSinceStart() > spec.deadline_seconds) {
          supervisor->Abort(
              "deadline exceeded (" +
                  std::to_string(spec.deadline_seconds) + "s wall clock)",
              /*allow_restart=*/false);
        } else if (spec.stall_timeout_seconds > 0.0 &&
                   supervisor->SecondsSinceHeartbeat() >
                       spec.stall_timeout_seconds) {
          supervisor->Abort(
              "stall: no heartbeat for " +
                  std::to_string(spec.stall_timeout_seconds) + "s",
              /*allow_restart=*/true);
        }
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(options_.watchdog_poll_seconds, 0.001)));
    }
  });

  std::vector<CampaignOutcome> outcomes(n);
  std::vector<char> ran(n, 0);
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(options_.max_concurrent, n));
  // Workers are the global pool's one job; each campaign's internals are
  // single-threaded (MakeAttackerConfig), so no nested-parallelism
  // inversion and the structure stays fork-safe for crash tests.
  ParallelFor(workers, workers, [&](std::size_t) {
    while (true) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) return;
      const std::size_t index = order[slot];
      // Supervisor::Run handles a raised stop flag itself (terminal
      // replayed campaigns still surface as recovered; unstarted ones
      // journal nothing and report pending/interrupted).
      try {
        outcomes[index] = supervisors[index]->Run();
      } catch (const std::exception& e) {
        CampaignOutcome outcome;
        outcome.id = plan_.campaigns[index].id;
        outcome.state = CampaignState::kFailed;
        outcome.detail = std::string("uncaught exception: ") + e.what();
        CampaignJournalRecord record;
        record.campaign_id = outcome.id;
        record.state = CampaignState::kFailed;
        record.detail = outcome.detail;
        journal_.Record(record);
        outcomes[index] = std::move(outcome);
      }
      ran[index] = 1;
    }
  });

  watchdog_stop.store(true, std::memory_order_release);
  watchdog.join();

  for (std::size_t i = 0; i < n; ++i) {
    if (!ran[i]) {
      // Defensive: with the queue drained this cannot happen, but a
      // worker that died mid-pop must not leave a default outcome.
      CampaignOutcome& outcome = outcomes[i];
      outcome.id = plan_.campaigns[i].id;
      outcome.state = CampaignState::kPending;
      outcome.interrupted = true;
      outcome.detail = "never scheduled";
    }
  }

  result.outcomes = std::move(outcomes);
  for (const CampaignOutcome& outcome : result.outcomes) {
    if (outcome.recovered_from_journal) ++result.recovered;
    if (outcome.interrupted) {
      ++result.interrupted;
      continue;
    }
    switch (outcome.state) {
      case CampaignState::kDone:
        ++result.done;
        break;
      case CampaignState::kQuarantined:
        ++result.quarantined;
        break;
      case CampaignState::kFailed:
        ++result.failed;
        break;
      default:
        ++result.interrupted;
        break;
    }
  }
  result.wall_seconds = internal::ElapsedSecondsSince(start_ticks);

  obs::MetricsRegistry::Global()
      .GetGauge("poisonrec_fleet_last_run_campaigns")
      ->Set(static_cast<double>(n));
  obs::MetricsRegistry::Global()
      .GetGauge("poisonrec_fleet_last_run_wall_seconds")
      ->Set(result.wall_seconds);

  if (!options_.report_json_path.empty()) {
    const Status report = WriteJsonReport(result);
    if (!report.ok()) result.status = report;
  }
  if (!options_.report_csv_path.empty()) {
    const Status report = WriteCsvReport(result);
    if (!report.ok()) result.status = report;
  }
  journal_.Close();
  return result;
}

}  // namespace poisonrec::orch
