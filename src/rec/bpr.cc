#include "rec/bpr.h"

#include <cmath>

#include "util/logging.h"

namespace poisonrec::rec {

Bpr::Bpr(const FitConfig& config) : config_(config) {}

void Bpr::SgdEpochs(const std::vector<data::Interaction>& interactions,
                    std::size_t epochs, Rng* rng) {
  const std::size_t dim = factors_.dim;
  const float lr = config_.learning_rate;
  const float reg = config_.weight_decay;
  std::vector<std::size_t> order(interactions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t idx : order) {
      const data::Interaction& ev = interactions[idx];
      const data::UserId u = ev.user;
      const data::ItemId i = ev.item;
      const data::ItemId j =
          SampleNegative(factors_.num_items(), positives_[u], rng);
      float* pu = factors_.UserRow(u);
      float* qi = factors_.ItemRow(i);
      float* qj = factors_.ItemRow(j);
      float x = 0.0f;
      for (std::size_t k = 0; k < dim; ++k) x += pu[k] * (qi[k] - qj[k]);
      // d/dx of -log sigmoid(x) is -sigmoid(-x).
      const float g = x >= 0.0f
                          ? std::exp(-x) / (1.0f + std::exp(-x))
                          : 1.0f / (1.0f + std::exp(x));
      for (std::size_t k = 0; k < dim; ++k) {
        const float pu_k = pu[k];
        pu[k] += lr * (g * (qi[k] - qj[k]) - reg * pu[k]);
        qi[k] += lr * (g * pu_k - reg * qi[k]);
        qj[k] += lr * (-g * pu_k - reg * qj[k]);
      }
    }
  }
}

void Bpr::Fit(const data::Dataset& dataset) {
  Rng rng(config_.seed);
  factors_.Init(dataset.num_users(), dataset.num_items(),
                config_.embedding_dim, 0.1f, &rng);
  positives_ = BuildPositiveSets(dataset);
  clean_ = dataset.AllInteractions();
  SgdEpochs(clean_, config_.epochs, &rng);
  update_seed_ = rng.Fork();
}

void Bpr::Update(const data::Dataset& poison) {
  POISONREC_CHECK_EQ(poison.num_items(), factors_.num_items());
  POISONREC_CHECK_LE(poison.num_users(), factors_.num_users());
  Rng rng(update_seed_ ^ 0xda3e39cb94b95bdbull);
  MergePositiveSets(poison, &positives_);
  SgdEpochs(MixWithReplay(poison.AllInteractions(), clean_,
                          config_.update_replay_ratio, &rng),
            config_.update_epochs, &rng);
}

std::vector<double> Bpr::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (data::ItemId item : candidates) {
    scores.push_back(factors_.Dot(user, item));
  }
  return scores;
}

std::unique_ptr<Recommender> Bpr::Clone() const {
  return std::make_unique<Bpr>(*this);
}

}  // namespace poisonrec::rec
