// AutoRec (Sedhain et al., WWW'15), user-based variant adapted to implicit
// feedback: the autoencoder reconstructs each user's binary interaction
// vector over the item space. Training minimizes masked MSE on observed
// entries plus sampled negatives (so the trivial all-ones reconstruction
// is penalized). Scores are the decoder outputs for candidate items.
#ifndef POISONREC_REC_AUTOREC_H_
#define POISONREC_REC_AUTOREC_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "rec/factor_model.h"
#include "rec/recommender.h"

namespace poisonrec::rec {

class AutoRec : public Recommender {
 public:
  explicit AutoRec(const FitConfig& config = FitConfig());
  AutoRec(const AutoRec& other);
  AutoRec& operator=(const AutoRec&) = delete;

  std::string Name() const override { return "AutoRec"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

 private:
  struct Net {
    Net(std::size_t num_items, std::size_t hidden, Rng* rng);
    std::vector<nn::Tensor> Parameters() const;
    nn::Linear encoder;  // |I| -> hidden
    nn::Linear decoder;  // hidden -> |I|
  };

  /// Dense reconstruction of a batch of user vectors -> (B x |I|).
  nn::Tensor Reconstruct(const nn::Tensor& inputs) const;

  /// Builds the dense 0/1 input row for a user.
  std::vector<float> UserVector(data::UserId user) const;

  void TrainEpochs(const std::vector<data::UserId>& users,
                   std::size_t epochs, Rng* rng);

  FitConfig config_;
  std::size_t num_items_ = 0;
  std::unique_ptr<Net> net_;
  // Per-user positive item sets double as the autoencoder inputs.
  std::vector<std::unordered_set<data::ItemId>> positives_;
  std::vector<data::UserId> clean_users_;  // replay pool for Update
  std::uint64_t update_seed_ = 0;
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_AUTOREC_H_
