// Shared JSON fragment writer for every machine-readable artifact the
// project emits: guard incident lines (util/guard), the unified campaign
// event stream (obs/event_log), metrics snapshots (obs/metrics), Chrome
// trace exports (obs/trace), and the bench harness JSON outputs
// (bench/common). One escaping/number policy everywhere means one place
// to get it right: control characters are \u-escaped and NaN/Inf — which
// JSON has no literals for — are emitted as the strings "nan"/"inf"/
// "-inf" so any strict parser can read the output.
//
// This header is foundation-level: it depends on nothing else in the
// project, so util/ can use it without a dependency cycle.
#ifndef POISONREC_OBS_JSON_H_
#define POISONREC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace poisonrec::obs {

/// Appends `s` as a quoted, escaped JSON string.
void AppendJsonString(std::string* out, std::string_view s);

/// Appends `v` as a JSON number with round-trip precision (%.17g).
/// Non-finite values become the strings "nan" / "inf" / "-inf".
void AppendJsonNumber(std::string* out, double v);

/// Appends `v` as a bare JSON integer (no quoting needed).
void AppendJsonNumber(std::string* out, std::uint64_t v);

/// True when `cell` parses *entirely* as a finite number, i.e. it may be
/// emitted as a bare JSON number rather than a quoted string. Used by
/// emitters that serialize pre-stringified tables (bench/common).
bool IsJsonNumberLiteral(const std::string& cell);

/// Incrementally builds one JSON object — the single-line event records
/// of obs::EventLog and the per-metric entries of the registry snapshot.
/// Keys are appended in call order; no nesting support beyond what the
/// caller composes via Raw().
class JsonObjectBuilder {
 public:
  JsonObjectBuilder() : out_("{") {}

  JsonObjectBuilder& Str(std::string_view key, std::string_view value);
  JsonObjectBuilder& Num(std::string_view key, double value);
  JsonObjectBuilder& Int(std::string_view key, std::uint64_t value);
  JsonObjectBuilder& Bool(std::string_view key, bool value);
  /// Appends `json` verbatim as the value (caller guarantees validity).
  JsonObjectBuilder& Raw(std::string_view key, std::string_view json);

  /// Closes the object and returns it. The builder is spent afterwards.
  std::string Finish() &&;

 private:
  void Key(std::string_view key);
  std::string out_;
  bool first_ = true;
};

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_JSON_H_
