file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_cli.dir/poisonrec_cli.cc.o"
  "CMakeFiles/poisonrec_cli.dir/poisonrec_cli.cc.o.d"
  "poisonrec"
  "poisonrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
