// Fleet status aggregation: folds the three durable artefact families a
// running fleet leaves on disk into one queryable model, read-only and
// from any process (the `poisonrec fleet --status` backend):
//
//   * the journal family (orch/journal.h) — authoritative campaign
//     lifecycle state, merged token-aware across shared workers;
//   * live lease files (orch/lease.h)     — current ownership, fencing
//     tokens, and heartbeat freshness;
//   * worker status snapshots             — `<telemetry>/<w>.status.json`
//     integrity-framed heartbeats published by orch/fleet.h, carrying
//     per-campaign live progress (step/reward/rate) and the worker's
//     obs::Metrics registry.
//
// Damage tolerance: every input is allowed to be missing, torn, or
// corrupt — a half-published snapshot, a bit-rotted file, or a foreign
// blob classifies into the hygiene counters and the rest of the fleet
// still renders. Collection never mutates fleet state.
//
// Staleness: a worker whose snapshot says `"shutdown":true` exited
// cleanly (healthy). Otherwise it is stale when its pid is gone (leases
// are flock-scoped, so the whole fleet shares one kernel and a pid
// probe is meaningful) or when its snapshot heartbeat is older than
// `stale_after_seconds` (default: max(3 x its publish period, 2s)).
// Degraded (ExitCode 2) means: a stale worker, a quarantined or failed
// campaign, or a stalled campaign (non-terminal but its lease expired
// or its owner is stale).
#ifndef POISONREC_ORCH_STATUS_H_
#define POISONREC_ORCH_STATUS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "orch/journal.h"
#include "util/status.h"

namespace poisonrec::orch {

enum class WorkerHealth : std::uint8_t {
  /// Snapshot fresh and the process is alive.
  kLive = 0,
  /// No clean-shutdown marker and the process is gone (or the
  /// heartbeat is older than the staleness window).
  kStale = 1,
  /// Published a final `"shutdown":true` snapshot — finished cleanly.
  kExited = 2,
};

const char* WorkerHealthName(WorkerHealth health);

/// One worker's most recent status snapshot, classified.
struct WorkerStatusRow {
  std::string worker_id;
  std::uint64_t pid = 0;
  std::string host;
  /// Monotonic publication counter within the worker process.
  std::uint64_t seq = 0;
  /// Wall-clock heartbeat (unix seconds) — the field staleness math
  /// trusts; the steady-clock uptime below is per-process only.
  double wall_unix = 0.0;
  double uptime_seconds = 0.0;
  /// now - wall_unix at collection time.
  double age_seconds = 0.0;
  double publish_period_seconds = 0.0;
  bool shared = false;
  bool shutdown = false;
  WorkerHealth health = WorkerHealth::kLive;
  std::string snapshot_path;
  /// Counters from the worker's embedded metrics registry snapshot.
  std::map<std::string, double> counters;
};

/// One campaign folded across journal + lease + snapshots.
struct CampaignStatusRow {
  std::string id;
  CampaignState state = CampaignState::kPending;
  /// Lease owner when a lease file names one; otherwise the worker
  /// whose snapshot reports the campaign running; "" when unowned.
  std::string owner;
  std::uint64_t token = 0;
  std::uint64_t step = 0;
  /// Budgeted steps (from worker snapshots; 0 = unknown).
  std::uint64_t total = 0;
  double last_reward = 0.0;
  double best_reward = 0.0;
  std::uint64_t restarts = 0;
  std::uint64_t preemptions = 0;
  /// Committed steps/second from the owning worker's snapshot.
  double step_rate = 0.0;
  /// (total - step) / step_rate; negative = unknown.
  double eta_seconds = -1.0;
  /// A live worker's snapshot currently reports the campaign running.
  bool running = false;
  bool lease_held = false;
  bool lease_expired = false;
  /// Non-terminal campaign whose lease expired or whose owner is stale.
  bool stalled = false;
};

/// Per-source damage counters: inputs that failed to contribute, and
/// why. Damage classifies — it never aborts collection.
struct FleetStatusHygiene {
  std::size_t snapshots_ok = 0;
  /// Integrity footer absent / length wrong (interrupted publish).
  std::size_t snapshots_torn = 0;
  /// Footer intact, checksum wrong (bit rot).
  std::size_t snapshots_corrupt = 0;
  /// Framed and checksummed but not a parseable worker_status object.
  std::size_t snapshots_invalid = 0;
  std::size_t leases_ok = 0;
  std::size_t leases_damaged = 0;
  std::size_t journal_files_merged = 0;
  std::uint64_t journal_malformed_lines = 0;
  std::uint64_t journal_torn_tail_lines = 0;
  std::uint64_t journal_corrupt_lines = 0;
  std::uint64_t journal_stale_records = 0;
};

struct FleetStatus {
  /// Sorted by worker id.
  std::vector<WorkerStatusRow> workers;
  /// Sorted by campaign id.
  std::vector<CampaignStatusRow> campaigns;
  FleetStatusHygiene hygiene;
  std::size_t workers_live = 0;
  std::size_t workers_stale = 0;
  std::size_t workers_exited = 0;
  /// Campaign count per CampaignStateName.
  std::map<std::string, std::size_t> campaigns_by_state;
  /// Sum of running campaigns' step rates (committed steps/second).
  double aggregate_step_rate = 0.0;
  /// Counters summed across every worker's registry snapshot (fault
  /// injections, defense trips, fleet restarts, ... — one fleet-wide
  /// view of what per-process registries fragment).
  std::map<std::string, double> counters;
  /// Human-readable reasons the fleet counts as degraded; empty means
  /// healthy. Mirrors the ExitCode contract.
  std::vector<std::string> degraded_reasons;
  /// Collection time (unix seconds) all age math used.
  double collected_wall_unix = 0.0;

  bool degraded() const { return !degraded_reasons.empty(); }
  /// 0 healthy, 2 degraded (same vocabulary as fleet/fsck exits).
  int ExitCode() const { return degraded_reasons.empty() ? 0 : 2; }
};

struct FleetStatusOptions {
  /// Journal base path; the whole sibling family is merged.
  std::string journal_path = "results/fleet_journal.jsonl";
  std::string checkpoint_dir = "results/fleet_checkpoints";
  /// Empty derives `<checkpoint_dir>/telemetry` (orch/fleet.h default).
  std::string telemetry_dir;
  /// Empty derives `<checkpoint_dir>/leases` (orch/fleet.h default).
  std::string lease_dir;
  /// Heartbeat age (seconds) past which a live-pid worker still counts
  /// stale; 0 derives max(3 x the worker's publish period, 2s).
  double stale_after_seconds = 0.0;
  /// Test seams: wall clock (unix seconds) and pid liveness probe.
  std::function<double()> now;
  std::function<bool(std::uint64_t)> pid_alive;
};

/// Collects and classifies fleet state. Missing/damaged inputs land in
/// hygiene counters and degraded_reasons, never in a failure — the
/// status surface must work best during incidents.
FleetStatus CollectFleetStatus(const FleetStatusOptions& options);

/// Machine-readable export (validated by
/// `tools/validate_telemetry.py --fleet-status`).
std::string FleetStatusJson(const FleetStatus& status);

/// Human-readable cluster table + rollups for the terminal.
std::string FormatFleetStatusTable(const FleetStatus& status);

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_STATUS_H_
