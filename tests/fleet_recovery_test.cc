// Crash-recovery end-to-end test: a fleet run in a forked child is
// SIGKILLed mid-campaign (no destructors, no flushing beyond what the
// journal/checkpoint layers already guarantee), then resumed in the
// parent. The merged per-step rewards must be bit-identical to a fleet
// that was never killed — the whole point of the durable journal +
// fsynced checkpoints + deterministic replay streams.
//
// POSIX-only by construction (fork/kill/waitpid); the entire test body
// is gated on unistd.h availability.
#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "orch/fleet.h"
#include "orch/journal.h"
#include "orch/spec.h"

namespace poisonrec::orch {
namespace {

data::Dataset MakeLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 110;
  cfg.num_interactions = 1800;
  cfg.seed = 5;
  return data::GenerateSynthetic(cfg);
}

/// Campaigns sized so each step takes a few milliseconds: enough steps
/// that SIGKILL lands mid-fleet, small enough to keep the test fast.
FleetPlan RecoveryPlan() {
  FleetPlan plan;
  plan.name = "crash-recovery";
  for (std::size_t i = 0; i < 3; ++i) {
    CampaignSpec spec;
    spec.id = "victim" + std::to_string(i);
    spec.steps = 10;
    spec.samples_per_step = 4;
    spec.attackers = 8;
    spec.trajectory_length = 10;
    spec.num_target_items = 4;
    spec.embedding_dim = 8;
    spec.max_eval_users = 96;
    spec.seed = 21 + i * 17;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

FleetOptions DirOptions(const std::string& dir) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = dir + "/report.json";
  options.report_csv_path = "";  // not under test here
  // Fork safety: exactly one campaign at a time, no helper threads other
  // than the watchdog.
  options.max_concurrent = 1;
  return options;
}

std::uint64_t CommittedSteps(const std::string& journal_path) {
  auto replay = FleetJournal::ReplayFile(journal_path);
  if (!replay.ok()) return 0;
  std::uint64_t total = 0;
  for (const auto& [id, entry] : *replay) total += entry.steps_completed;
  return total;
}

TEST(FleetRecoveryTest, Sigkill9MidFleetResumesBitIdentically) {
  const auto base =
      std::filesystem::temp_directory_path() / "poisonrec_fleet_sigkill";
  std::filesystem::remove_all(base);
  const std::string ref_dir = (base / "reference").string();
  const std::string crash_dir = (base / "crashed").string();
  std::filesystem::create_directories(ref_dir);
  std::filesystem::create_directories(crash_dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = RecoveryPlan();

  // Reference: the same fleet, never interrupted.
  FleetOrchestrator reference(plan, &log, DirOptions(ref_dir));
  const FleetResult ref_result = reference.Run();
  ASSERT_EQ(ref_result.ExitCode(), 0) << ref_result.status;
  ASSERT_EQ(ref_result.done, 3u);

  // Child: run the same fleet in `crash_dir` until killed. _exit on the
  // off-chance it finishes before the parent's SIGKILL lands.
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    FleetOrchestrator victim(plan, &log, DirOptions(crash_dir));
    victim.Run();
    _exit(0);
  }

  // Parent: wait until the child has durably committed past the first
  // campaign (12 = victim0's 10 steps + 2 of victim1 under
  // max_concurrent=1, so the kill lands with one campaign finished and
  // one genuinely mid-flight), then SIGKILL — no atexit, no stack
  // unwinding, no journal Close.
  const std::string crash_journal = crash_dir + "/journal.jsonl";
  bool progressed = false;
  for (int i = 0; i < 2000; ++i) {
    if (CommittedSteps(crash_journal) >= 12) {
      progressed = true;
      break;
    }
    // Bail out early if the child somehow already exited.
    int probe_status = 0;
    if (waitpid(child, &probe_status, WNOHANG) == child) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(progressed)
      << "child never committed 12 steps; committed="
      << CommittedSteps(crash_journal);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child exited on its own before SIGKILL - grow the plan";
  const std::uint64_t committed_at_kill = CommittedSteps(crash_journal);
  ASSERT_LT(committed_at_kill, 30u) << "fleet finished before the kill";
  // Record which campaigns were already terminal when the kill landed:
  // resume must report them recovered, not re-run them.
  auto at_kill = FleetJournal::ReplayFile(crash_journal);
  ASSERT_TRUE(at_kill.ok()) << at_kill.status();
  std::set<std::string> finished_at_kill;
  for (const auto& [id, entry] : *at_kill) {
    if (entry.state == CampaignState::kDone) finished_at_kill.insert(id);
  }
  ASSERT_FALSE(finished_at_kill.empty())
      << "threshold guarantees victim0 finished before the kill";

  // Resume in the parent from the torn-but-durable journal + fsynced
  // checkpoints. Loop defensively; one pass is the normal case.
  FleetOptions resume_options = DirOptions(crash_dir);
  resume_options.resume = true;
  int exit_code = -1;
  FleetResult resumed_result;
  for (int round = 0; round < 3 && exit_code != 0; ++round) {
    FleetOrchestrator resumed(plan, &log, resume_options);
    resumed_result = resumed.Run();
    ASSERT_TRUE(resumed_result.status.ok()) << resumed_result.status;
    exit_code = resumed_result.ExitCode();
  }
  ASSERT_EQ(exit_code, 0);
  ASSERT_EQ(resumed_result.done, 3u);

  // Bit-identical recovery: the merged (pre-kill + post-resume) reward
  // sequence of every campaign equals the never-killed reference.
  ASSERT_EQ(resumed_result.outcomes.size(), ref_result.outcomes.size());
  for (std::size_t i = 0; i < ref_result.outcomes.size(); ++i) {
    const CampaignOutcome& ref = ref_result.outcomes[i];
    const CampaignOutcome& rec = resumed_result.outcomes[i];
    EXPECT_EQ(ref.id, rec.id);
    EXPECT_EQ(rec.steps_completed, 10u) << rec.id;
    if (finished_at_kill.count(rec.id)) {
      EXPECT_TRUE(rec.recovered_from_journal)
          << rec.id << " finished before the kill but was re-run";
    }
    ASSERT_EQ(ref.step_rewards.size(), rec.step_rewards.size()) << ref.id;
    for (const auto& [step, reward] : ref.step_rewards) {
      ASSERT_TRUE(rec.step_rewards.count(step))
          << ref.id << " lost step " << step;
      EXPECT_DOUBLE_EQ(reward, rec.step_rewards.at(step))
          << ref.id << " step " << step;
    }
    EXPECT_DOUBLE_EQ(ref.best_reward, rec.best_reward) << ref.id;
  }
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace poisonrec::orch

#else
#include <gtest/gtest.h>
TEST(FleetRecoveryTest, SkippedOnNonPosixPlatforms) { GTEST_SKIP(); }
#endif  // __unix__ || __APPLE__
