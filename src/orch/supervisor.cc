#include "orch/supervisor.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "defense/detector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rec/registry.h"
#include "util/logging.h"

namespace poisonrec::orch {

namespace {

bool AnyFaults(const env::FaultProfile& fault) {
  return fault.query_failure_rate > 0.0 || fault.throttle_rate > 0.0 ||
         fault.injection_drop_rate > 0.0 || fault.shadow_ban_rate > 0.0 ||
         fault.reward_noise_stddev > 0.0 || fault.stale_reward_rate > 0.0 ||
         fault.nan_reward_rate > 0.0;
}

StatusOr<std::unique_ptr<defense::Detector>> MakeDetector(
    const std::string& name) {
  if (name == "cold") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::ColdItemAffinityDetector>());
  }
  if (name == "entropy") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::ClickEntropyDetector>());
  }
  if (name == "fleet") {
    return std::unique_ptr<defense::Detector>(
        std::make_unique<defense::FleetSimilarityDetector>());
  }
  if (name == "ensemble") {
    return std::unique_ptr<defense::Detector>(
        defense::MakeDefaultEnsemble());
  }
  return Status::InvalidArgument("unknown detector \"" + name +
                                 "\" (want ensemble|cold|entropy|fleet)");
}

obs::Counter* FleetCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// Parses `<id>.t<N>.ckpt` names; nullopt for the plain `<id>.ckpt`
/// (token 0) and anything that is not a token-suffixed checkpoint of
/// this campaign.
std::optional<std::uint64_t> CheckpointToken(const std::string& filename,
                                             const std::string& id) {
  const std::string prefix = id + ".t";
  const std::string suffix = ".ckpt";
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t token = 0;
  for (std::size_t i = prefix.size(); i < filename.size() - suffix.size();
       ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return std::nullopt;
    token = token * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return token;
}

}  // namespace

CampaignSupervisor::CampaignSupervisor(const CampaignSpec& spec,
                                       const data::Dataset* dataset,
                                       SupervisorOptions options)
    : spec_(spec), dataset_(dataset), options_(std::move(options)) {
  POISONREC_CHECK(dataset_ != nullptr);
}

std::string CampaignSupervisor::CheckpointPath() const {
  // Token-suffixed under a lease: each ownership epoch publishes to its
  // own file, so a fenced-out zombie's in-flight save lands in a file
  // the new owner (holding a strictly higher token) never reads.
  const std::string name =
      options_.leases != nullptr
          ? spec_.id + ".t" + std::to_string(options_.lease_token) + ".ckpt"
          : spec_.id + ".ckpt";
  return (std::filesystem::path(options_.checkpoint_dir) / name).string();
}

std::vector<std::string> CampaignSupervisor::FindResumeCheckpoints() const {
  if (options_.leases == nullptr) {
    const std::string path = CheckpointPath();
    if (std::filesystem::exists(path)) return {path};
    return {};
  }
  // Every epoch at or below our token, newest first: normally the
  // previous owner's frontier (our token - 1) right after a seizure,
  // or our own file after a restart, with older epochs behind it as
  // fallbacks should the frontier turn out torn or rotted. Files above
  // our token would mean we are the zombie; they are ignored here and
  // the lease validation at the next commit fences us out.
  const std::filesystem::path dir(options_.checkpoint_dir);
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    std::optional<std::uint64_t> token = CheckpointToken(name, spec_.id);
    if (!token.has_value()) {
      if (name == spec_.id + ".ckpt") token = 0;  // pre-shared legacy file
      else continue;
    }
    if (*token > options_.lease_token) continue;
    candidates.emplace_back(*token, it->path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  paths.reserve(candidates.size());
  for (auto& [token, path] : candidates) paths.push_back(std::move(path));
  return paths;
}

std::string CampaignSupervisor::QuarantineCheckpoint(
    const std::string& path) const {
  const std::filesystem::path source(path);
  const std::filesystem::path dir =
      std::filesystem::path(options_.checkpoint_dir) / "corrupt";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path dest = dir / source.filename();
  if (!ec) {
    std::filesystem::rename(source, dest, ec);
    if (!ec) return dest.string();
  }
  // A quarantine that cannot move the file must still get it out of
  // the resume path — a damaged checkpoint that keeps being retried
  // would wedge the campaign.
  std::filesystem::remove(source, ec);
  return std::string();
}

void CampaignSupervisor::Journal(CampaignState state, std::uint64_t step,
                                 double reward, double best_reward,
                                 std::uint64_t restarts,
                                 const std::string& detail) {
  if (options_.journal == nullptr) return;
  if (options_.leases != nullptr) {
    // Fencing check on the write path: once a sibling holds a higher
    // token, appending would be a stale write — replay would drop it
    // anyway (token-aware fold), but not writing at all keeps the
    // journal clean and stops this worker within one step boundary.
    const Status valid =
        options_.leases->Validate(spec_.id, options_.lease_token);
    if (!valid.ok()) {
      RequestSoftStop(SoftStopKind::kFenced);
      POISONREC_LOG(Warning)
          << "campaign " << spec_.id << ": journal write suppressed: "
          << valid.message();
      return;
    }
  }
  CampaignJournalRecord record;
  record.campaign_id = spec_.id;
  record.state = state;
  record.step = step;
  record.reward = reward;
  record.best_reward = best_reward;
  record.restarts = restarts;
  record.token = options_.lease_token;
  if (options_.leases != nullptr) record.owner = options_.leases->owner_id();
  record.detail = detail;
  options_.journal->Record(record);
}

void CampaignSupervisor::Abort(const std::string& reason,
                               bool allow_restart) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_reason_ = reason;
  }
  abort_allow_restart_.store(allow_restart, std::memory_order_release);
  cancel_.Cancel();
}

bool CampaignSupervisor::RequestSoftStop(SoftStopKind kind) {
  int expected = static_cast<int>(SoftStopKind::kNone);
  const bool won = soft_stop_kind_.compare_exchange_strong(
      expected, static_cast<int>(kind), std::memory_order_acq_rel);
  if (kind == SoftStopKind::kFenced) {
    // Fencing overrides whatever stop was pending: a fenced worker must
    // not write even the checkpoint of its in-flight step, so the hard
    // cancel token fires too (the step is discarded, which is correct —
    // the seizing owner recomputes it deterministically).
    soft_stop_kind_.store(static_cast<int>(kind), std::memory_order_release);
    soft_stop_.store(true, std::memory_order_release);
    cancel_.Cancel();
    return true;
  }
  if (won) soft_stop_.store(true, std::memory_order_release);
  return won;
}

std::string CampaignSupervisor::TakeAbortReason() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string reason = abort_reason_.empty() ? "cancelled" : abort_reason_;
  abort_reason_.clear();
  return reason;
}

double CampaignSupervisor::SecondsSinceHeartbeat() const {
  const std::uint64_t ticks =
      heartbeat_ticks_.load(std::memory_order_acquire);
  if (ticks == 0) return 0.0;
  return internal::ElapsedSecondsSince(ticks);
}

double CampaignSupervisor::SecondsSinceStart() const {
  const std::uint64_t ticks = start_ticks_.load(std::memory_order_acquire);
  if (ticks == 0) return 0.0;
  return internal::ElapsedSecondsSince(ticks);
}

double CampaignSupervisor::CommittedStepRate() const {
  const std::uint64_t committed =
      committed_steps_.load(std::memory_order_acquire);
  const std::uint64_t base = run_start_steps_.load(std::memory_order_acquire);
  if (committed <= base) return 0.0;
  const double elapsed = SecondsSinceStart();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(committed - base) / elapsed;
}

void CampaignSupervisor::SleepForRestart(double seconds) {
  if (options_.restart_sleep) {
    options_.restart_sleep(seconds);
    return;
  }
  // Real sleep in small slices so a fleet shutdown request does not
  // have to wait out the whole backoff.
  double remaining = seconds;
  while (remaining > 0.0) {
    if (FleetStopRaised() || soft_stop_.load(std::memory_order_acquire)) {
      return;
    }
    const double slice = std::min(remaining, 0.02);
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
    remaining -= slice;
  }
}

Status CampaignSupervisor::RunAttempt(CampaignOutcome* outcome) {
  // A fresh environment stack per attempt: whatever state the previous
  // attempt corrupted is discarded wholesale. Determinism across
  // attempts comes from the checkpoint (policy, RNG, pool, defender
  // state) plus the derived per-episode and per-query streams.
  obs::TraceSpan attempt_span("campaign/attempt", spec_.id.c_str());
  heartbeat_ticks_.store(internal::NowTicks(), std::memory_order_release);
  rec::FitConfig fit;
  fit.embedding_dim = spec_.embedding_dim;
  fit.seed = spec_.seed ^ 0x5u;
  auto ranker = rec::MakeRecommender(spec_.ranker, fit);
  if (!ranker.ok()) return ranker.status();
  env::AttackEnvironment environment(*dataset_, std::move(ranker).value(),
                                     MakeEnvironmentConfig(spec_));

  std::optional<env::FaultyEnvironment> faulty;
  if (AnyFaults(spec_.fault)) faulty.emplace(&environment, spec_.fault);
  std::unique_ptr<env::DefendedEnvironment> defended;
  if (spec_.defense) {
    auto detector = MakeDetector(spec_.detector);
    if (!detector.ok()) return detector.status();
    if (faulty.has_value()) {
      defended = std::make_unique<env::DefendedEnvironment>(
          &*faulty, std::move(detector).value(), spec_.defense_profile);
    } else {
      defended = std::make_unique<env::DefendedEnvironment>(
          &environment, std::move(detector).value(), spec_.defense_profile);
    }
  }

  core::PoisonRecAttacker attacker(&environment, MakeAttackerConfig(spec_));
  if (defended != nullptr) {
    attacker.AttachDefendedEnvironment(defended.get(), options_.retry_sleep);
  } else if (faulty.has_value()) {
    attacker.AttachFaultyEnvironment(&*faulty, options_.retry_sleep);
  }
  // The attacker watches the supervisor's own soft-stop flag (raised by
  // shutdown, preemption, or fencing); the fleet-wide stop is mirrored
  // in from the heartbeat hook, which fires at every step entry and
  // phase boundary.
  attacker.SetStopFlag(&soft_stop_);
  attacker.SetCancelToken(&cancel_);
  attacker.SetHeartbeat([this] {
    heartbeat_ticks_.store(internal::NowTicks(), std::memory_order_release);
    if (FleetStopRaised()) RequestSoftStop(SoftStopKind::kShutdown);
  });
  static obs::Counter* const steps_committed =
      FleetCounter("poisonrec_fleet_steps_committed_total");
  attacker.SetStepCommittedCallback(
      [this, outcome](const core::TrainStepStats& stats) {
        if (options_.leases != nullptr) {
          const Status valid =
              options_.leases->Validate(spec_.id, options_.lease_token);
          if (!valid.ok()) {
            // Zombie write rejected: the checkpoint went to our stale
            // token-suffixed file (harmless), and neither the outcome
            // nor the journal records the step.
            RequestSoftStop(SoftStopKind::kFenced);
            POISONREC_LOG(Warning)
                << "campaign " << spec_.id
                << ": step commit rejected: " << valid.message();
            return;
          }
        }
        outcome->step_rewards[stats.step] = stats.mean_reward;
        outcome->steps_completed = stats.step;
        outcome->best_reward =
            std::max(outcome->best_reward, stats.best_reward_so_far);
        committed_steps_.store(stats.step, std::memory_order_release);
        last_reward_.store(stats.mean_reward, std::memory_order_release);
        best_reward_live_.store(outcome->best_reward,
                                std::memory_order_release);
        steps_committed->Increment();
        Journal(CampaignState::kCheckpointed, stats.step, stats.mean_reward,
                stats.best_reward_so_far, outcome->restarts, "");
      });

  const std::string checkpoint = CheckpointPath();
  static obs::Counter* const checkpoints_quarantined_total =
      FleetCounter("poisonrec_fleet_checkpoints_quarantined_total");
  for (const std::string& resume_from : FindResumeCheckpoints()) {
    const Status loaded = attacker.LoadCheckpoint(resume_from);
    if (loaded.ok()) {
      heartbeat_ticks_.store(internal::NowTicks(),
                             std::memory_order_release);
      break;
    }
    if (loaded.code() == StatusCode::kDataLoss ||
        loaded.code() == StatusCode::kInvalidArgument) {
      // A torn, rotted, or incompatible checkpoint is lost state, not
      // a fatal error: quarantine it under <ckpt-dir>/corrupt/ (so
      // fsck can report it and it never gets retried) and fall back to
      // the next-older candidate — one flipped bit costs a restart
      // from the previous epoch, not the campaign. With no candidate
      // left the loop ends and the campaign replays from scratch (the
      // deterministic streams reproduce the same steps).
      const std::string moved = QuarantineCheckpoint(resume_from);
      ++outcome->checkpoints_quarantined;
      checkpoints_quarantined_total->Increment();
      POISONREC_LOG(Warning)
          << "campaign " << spec_.id << ": quarantining checkpoint "
          << resume_from << (moved.empty() ? " (removed)" : " -> " + moved)
          << ": " << loaded.ToString();
      Journal(CampaignState::kRunning, 0, 0.0, outcome->best_reward,
              outcome->restarts,
              "checkpoint quarantined: " + loaded.ToString());
      continue;
    }
    return loaded;
  }
  if (attacker.steps_taken() >= spec_.steps) {
    outcome->steps_completed = attacker.steps_taken();
    outcome->best_reward =
        std::max(outcome->best_reward, attacker.best_episode().reward);
    return Status::OK();
  }

  core::GuardedTrainResult result =
      attacker.TrainGuarded(spec_.steps - attacker.steps_taken(), checkpoint);
  outcome->rollbacks += result.rollbacks;
  outcome->best_reward =
      std::max(outcome->best_reward, attacker.best_episode().reward);
  return result.status;
}

CampaignOutcome CampaignSupervisor::Run() {
  CampaignOutcome outcome;
  outcome.id = spec_.id;
  outcome.preemptions = options_.preemptions;
  outcome.lease_token = options_.lease_token;
  const std::uint64_t run_start = internal::NowTicks();
  start_ticks_.store(run_start, std::memory_order_release);
  heartbeat_ticks_.store(run_start, std::memory_order_release);

  // Journal recovery: terminal campaigns are never re-run; unfinished
  // ones inherit their committed rewards and restart count.
  if (options_.replay.has_value()) {
    const CampaignReplay& replay = *options_.replay;
    outcome.steps_completed = replay.steps_completed;
    outcome.restarts = replay.restarts;
    outcome.best_reward = replay.best_reward;
    outcome.step_rewards = replay.step_rewards;
    committed_steps_.store(replay.steps_completed,
                           std::memory_order_release);
    run_start_steps_.store(replay.steps_completed,
                           std::memory_order_release);
    best_reward_live_.store(replay.best_reward, std::memory_order_release);
    if (!replay.step_rewards.empty()) {
      last_reward_.store(replay.step_rewards.rbegin()->second,
                         std::memory_order_release);
    }
    if (IsTerminal(replay.state)) {
      outcome.state = replay.state;
      outcome.detail = replay.detail.empty()
                           ? "recovered from journal"
                           : replay.detail;
      outcome.recovered_from_journal = true;
      return outcome;
    }
  }
  if (FleetStopRaised()) {
    outcome.state = outcome.steps_completed > 0
                        ? CampaignState::kCheckpointed
                        : CampaignState::kPending;
    outcome.interrupted = true;
    outcome.detail = "not started: fleet shutdown requested";
    return outcome;
  }

  static obs::Counter* const campaigns_total =
      FleetCounter("poisonrec_fleet_campaigns_total");
  static obs::Counter* const restarts_total =
      FleetCounter("poisonrec_fleet_restarts_total");
  static obs::Counter* const quarantined_total =
      FleetCounter("poisonrec_fleet_quarantined_total");
  static obs::Counter* const interrupted_total =
      FleetCounter("poisonrec_fleet_interrupted_total");
  static obs::Counter* const preemptions_total =
      FleetCounter("poisonrec_fleet_preemptions_total");
  campaigns_total->Increment();

  running_.store(true, std::memory_order_release);
  Journal(CampaignState::kRunning, outcome.steps_completed, 0.0,
          outcome.best_reward, outcome.restarts,
          outcome.steps_completed > 0 ? "resumed from checkpoint" : "");

  // Restart delays follow the same decorrelated-jitter schedule as query
  // retries, seeded per campaign so fleets do not restart in lockstep.
  RetryPolicy restart_policy;
  restart_policy.initial_backoff_seconds = spec_.restart_backoff_seconds;
  restart_policy.max_backoff_seconds =
      std::max(1.0, 8.0 * spec_.restart_backoff_seconds);
  RetryBackoff restart_backoff(restart_policy,
                               spec_.seed ^ 0x9e3779b97f4a7c15ull);

  const auto reward_at = [&outcome](std::uint64_t step) {
    const auto it = outcome.step_rewards.find(step);
    return it == outcome.step_rewards.end() ? 0.0 : it->second;
  };
  const auto finish = [&](CampaignState state, const std::string& detail) {
    outcome.state = state;
    outcome.detail = detail;
    Journal(state, outcome.steps_completed,
            reward_at(outcome.steps_completed), outcome.best_reward,
            outcome.restarts, detail);
    running_.store(false, std::memory_order_release);
    outcome.wall_seconds = internal::ElapsedSecondsSince(run_start);
  };

  for (std::size_t attempt = 0;; ++attempt) {
    const Status status = RunAttempt(&outcome);
    const auto stop_kind = static_cast<SoftStopKind>(
        soft_stop_kind_.load(std::memory_order_acquire));
    if (stop_kind == SoftStopKind::kFenced) {
      // The lease moved to a sibling: this worker's view is no longer
      // authoritative and journaling anything would be a stale write.
      // The new owner re-runs the campaign from the seized checkpoint.
      outcome.fenced = true;
      outcome.state = CampaignState::kRunning;
      outcome.detail = "fenced: campaign lease seized by a sibling worker";
      running_.store(false, std::memory_order_release);
      outcome.wall_seconds = internal::ElapsedSecondsSince(run_start);
      return outcome;
    }
    if (status.ok()) {
      finish(CampaignState::kDone, "");
      return outcome;
    }
    if (status.code() == StatusCode::kCancelled &&
        (FleetStopRaised() || stop_kind == SoftStopKind::kShutdown)) {
      // Graceful shutdown: the last clean step is already checkpointed
      // and journaled; `fleet --resume` picks the campaign back up.
      outcome.interrupted = true;
      interrupted_total->Increment();
      finish(CampaignState::kCheckpointed,
             "interrupted: fleet shutdown (" + status.message() + ")");
      return outcome;
    }
    if (status.code() == StatusCode::kCancelled &&
        stop_kind == SoftStopKind::kPreempt) {
      // Soft-stopped at the step boundary for a higher-priority
      // campaign; the scheduler re-queues this one from its checkpoint.
      ++outcome.preemptions;
      preemptions_total->Increment();
      finish(CampaignState::kPreempted,
             "preempted for a higher-priority campaign (" +
                 std::to_string(outcome.preemptions) + "/" +
                 std::to_string(spec_.max_preemptions) + ")");
      return outcome;
    }

    std::string reason;
    bool restartable;
    if (status.code() == StatusCode::kCancelled) {
      // Watchdog abort (stall or deadline).
      reason = TakeAbortReason();
      restartable = abort_allow_restart_.load(std::memory_order_acquire);
      cancel_.Reset();
    } else if (status.code() == StatusCode::kResourceExhausted ||
               status.code() == StatusCode::kFailedPrecondition) {
      // Deterministic persistent failures: the pool drained or the
      // rollback budget was spent, and a restart replays the exact same
      // ban/anomaly stream. The circuit breaker quarantines instead of
      // burning restarts on a lost cause.
      reason = status.ToString();
      restartable = false;
    } else if (status.code() == StatusCode::kIoError ||
               status.code() == StatusCode::kUnavailable) {
      // Transient storage and environment faults — a momentary EIO or
      // ENOSPC from a checkpoint publish, an NFS blip, a throttled
      // black-box — usually clear on their own. Explicitly retriable
      // within the bounded restart budget rather than quarantined: the
      // write path already guarantees a failed publish never replaces
      // the previous durable checkpoint, so the retry resumes cleanly.
      reason = status.ToString();
      restartable = true;
    } else {
      // Unexpected errors: possibly transient, restart-worthy.
      reason = status.ToString();
      restartable = true;
    }

    if (!restartable) {
      quarantined_total->Increment();
      finish(CampaignState::kQuarantined, reason);
      return outcome;
    }
    if (attempt >= spec_.max_restarts) {
      if (status.code() == StatusCode::kCancelled) {
        quarantined_total->Increment();
        finish(CampaignState::kQuarantined,
               "restart budget exhausted (" +
                   std::to_string(spec_.max_restarts) + "); last abort: " +
                   reason);
      } else {
        finish(CampaignState::kFailed,
               "restart budget exhausted (" +
                   std::to_string(spec_.max_restarts) +
                   "); last error: " + reason);
      }
      return outcome;
    }

    ++outcome.restarts;
    restarts_total->Increment();
    POISONREC_LOG(Warning) << "campaign " << spec_.id << ": restart "
                           << outcome.restarts << "/" << spec_.max_restarts
                           << " after: " << reason;
    Journal(CampaignState::kRunning, outcome.steps_completed, 0.0,
            outcome.best_reward, outcome.restarts,
            "restart " + std::to_string(outcome.restarts) + ": " + reason);
    SleepForRestart(restart_backoff.NextDelaySeconds());
    if (FleetStopRaised() ||
        soft_stop_.load(std::memory_order_acquire)) {
      const auto kind_now = static_cast<SoftStopKind>(
          soft_stop_kind_.load(std::memory_order_acquire));
      if (kind_now == SoftStopKind::kFenced) {
        outcome.fenced = true;
        outcome.state = CampaignState::kRunning;
        outcome.detail = "fenced during restart backoff";
        running_.store(false, std::memory_order_release);
        outcome.wall_seconds = internal::ElapsedSecondsSince(run_start);
        return outcome;
      }
      if (kind_now == SoftStopKind::kPreempt) {
        ++outcome.preemptions;
        preemptions_total->Increment();
        finish(CampaignState::kPreempted,
               "preempted during restart backoff");
        return outcome;
      }
      outcome.interrupted = true;
      interrupted_total->Increment();
      finish(CampaignState::kCheckpointed,
             "interrupted during restart backoff");
      return outcome;
    }
  }
}

}  // namespace poisonrec::orch
