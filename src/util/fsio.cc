#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace poisonrec {

namespace {

Status FsyncPath(const std::string& path, int open_flags,
                 const char* what) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IoError(std::string("cannot open ") + what + " " + path +
                           " for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int sync_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(std::string("fsync failed for ") + what + " " +
                           path + ": " + std::strerror(sync_errno));
  }
  return Status::OK();
}

}  // namespace

Status FsyncFile(const std::string& path) {
  return FsyncPath(path, O_RDONLY, "file");
}

Status FsyncParentDirectory(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  return FsyncPath(dir.string(), O_RDONLY | O_DIRECTORY, "directory");
}

}  // namespace poisonrec
