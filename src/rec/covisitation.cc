#include "rec/covisitation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace poisonrec::rec {

CoVisitation::CoVisitation(const FitConfig& config) { (void)config; }

void CoVisitation::Accumulate(const data::Dataset& dataset,
                              bool record_history) {
  for (data::UserId u = 0; u < dataset.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = dataset.Sequence(u);
    for (std::size_t p = 0; p + 1 < seq.size(); ++p) {
      const data::ItemId a = seq[p];
      const data::ItemId b = seq[p + 1];
      if (a == b) continue;
      covisits_[a][b] += 1.0;
      covisits_[b][a] += 1.0;
    }
    for (data::ItemId item : seq) item_count_[item] += 1.0;
    if (record_history && !seq.empty()) {
      std::vector<data::ItemId>& h = history_[u];
      h.insert(h.end(), seq.begin(), seq.end());
    }
  }
}

void CoVisitation::Fit(const data::Dataset& dataset) {
  covisits_.assign(dataset.num_items(), {});
  item_count_.assign(dataset.num_items(), 0.0);
  history_.assign(dataset.num_users(), {});
  Accumulate(dataset, /*record_history=*/true);
}

void CoVisitation::Update(const data::Dataset& poison) {
  POISONREC_CHECK_EQ(poison.num_items(), covisits_.size());
  if (poison.num_users() > history_.size()) {
    history_.resize(poison.num_users());
  }
  Accumulate(poison, /*record_history=*/true);
}

double CoVisitation::CoVisits(data::ItemId a, data::ItemId b) const {
  POISONREC_CHECK_LT(a, covisits_.size());
  auto it = covisits_[a].find(b);
  return it == covisits_[a].end() ? 0.0 : it->second;
}

std::vector<double> CoVisitation::Score(
    data::UserId user, const std::vector<data::ItemId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  if (user >= history_.size()) return scores;
  const std::vector<data::ItemId>& h = history_[user];
  const std::size_t start = h.size() > kHistoryWindow
                                ? h.size() - kHistoryWindow
                                : 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const data::ItemId j = candidates[c];
    double acc = 0.0;
    for (std::size_t p = start; p < h.size(); ++p) {
      const data::ItemId i = h[p];
      auto it = covisits_[i].find(j);
      if (it == covisits_[i].end()) continue;
      // Damp by the source item's visit count so ubiquitous items do not
      // dominate (cosine-style normalization on one side).
      acc += it->second / std::sqrt(std::max(1.0, item_count_[i]));
    }
    scores[c] = acc;
  }
  return scores;
}

std::unique_ptr<Recommender> CoVisitation::Clone() const {
  return std::make_unique<CoVisitation>(*this);
}

}  // namespace poisonrec::rec
