// Loss functions shared by the recommenders and the policy trainer.
#ifndef POISONREC_NN_LOSS_H_
#define POISONREC_NN_LOSS_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace poisonrec::nn {

/// Numerically stable binary cross-entropy from raw logits.
/// logits, targets: (m x 1) (targets in {0,1}). Returns the mean loss.
Tensor BceWithLogits(const Tensor& logits, const Tensor& targets);

/// Mean squared error between predictions and targets of equal shape,
/// optionally masked (mask 1 = contributes; normalized by mask sum).
Tensor MseLoss(const Tensor& pred, const Tensor& target);
Tensor MaskedMseLoss(const Tensor& pred, const Tensor& target,
                     const Tensor& mask);

/// BPR pairwise loss: mean softplus(neg - pos) == -mean log sigmoid(pos-neg).
/// pos, neg: (m x 1) score columns.
Tensor BprLoss(const Tensor& pos, const Tensor& neg);

/// Cross-entropy of row-wise class logits against integer targets.
/// logits: (m x n), targets[i] in [0, n). Returns the mean NLL.
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<std::size_t>& targets);

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_LOSS_H_
