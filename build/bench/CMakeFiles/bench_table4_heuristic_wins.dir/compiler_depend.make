# Empty compiler generated dependencies file for bench_table4_heuristic_wins.
# This may be replaced when dependencies are built.
