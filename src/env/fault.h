// Unreliable-environment simulation: a fault-injecting decorator over
// AttackEnvironment.
//
// PoisonRec's premise is attacking a *live* black-box system, and real
// targets are not clean oracles: they throttle crawlers, silently drop
// injected behaviors, shadow-ban suspicious accounts, and return noisy or
// stale feedback. FaultyEnvironment simulates exactly those failure modes
// so the training loop (core/ppo.h) can be hardened against them — see
// docs/robustness.md for the full fault model.
//
// Every fault draw is a pure function of (profile.seed, query_id, attempt),
// so runs reproduce regardless of thread scheduling: the caller assigns
// query ids (the PPO loop uses step * M + m) and parallel queries stay
// independent.
//
// Shadow bans vs. permanent bans: this decorator's shadow_ban_rate is a
// *per-query, identity-less* fault — each query independently redraws
// which trajectories vanish, nothing is remembered, and the same account
// lands its clicks again on the very next query. The *stateful* adversary
// that audits accumulated behavior and removes an account forever is
// env::DefendedEnvironment (defended.h). The two stack cleanly —
// DefendedEnvironment over FaultyEnvironment over the base — because the
// defended layer filters permanently banned accounts and forwards the
// rest here with the caller's original query_id, leaving this layer's
// (seed, query_id, attempt) draw streams untouched.
#ifndef POISONREC_ENV_FAULT_H_
#define POISONREC_ENV_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "env/environment.h"
#include "util/status.h"

namespace poisonrec::env {

/// Fault rates of the simulated unreliable target. All rates are
/// probabilities in [0, 1]; 0 disables the corresponding fault.
struct FaultProfile {
  /// Per-attempt transient query failure (kUnavailable). Independent
  /// across attempts, so retrying helps.
  double query_failure_rate = 0.0;
  /// Per-query throttling (kResourceExhausted). A throttled query keeps
  /// failing until `throttle_cooldown_attempts` attempts have been burned
  /// (the cool-down), then succeeds — modeling a rate limiter that
  /// eventually forgives the caller.
  double throttle_rate = 0.0;
  std::uint32_t throttle_cooldown_attempts = 2;
  /// Per-click silent injection drop: this fraction of each trajectory's
  /// items is discarded before the poison log is built. The attacker is
  /// not told which clicks landed.
  double injection_drop_rate = 0.0;
  /// Per-trajectory shadow ban: a banned attacker's whole trajectory is
  /// ignored for this query. Transient and identity-less — redrawn every
  /// query, never remembered. Permanent, stateful account bans are
  /// env::DefendedEnvironment's job (see the file comment).
  double shadow_ban_rate = 0.0;
  /// Gaussian observation noise added to the returned RecNum
  /// (stddev in reward units; the result is clamped at 0).
  double reward_noise_stddev = 0.0;
  /// Probability of returning the previous successful query's (stale)
  /// reward instead of the fresh one. The stale cache is process-local
  /// runtime state: it is NOT part of any checkpoint, so bit-identical
  /// resume requires stale_reward_rate == 0.
  double stale_reward_rate = 0.0;
  /// Per-query probability of returning NaN instead of the real reward
  /// (a corrupted feedback channel: broken crawler parse, overflowed
  /// counter). The query *succeeds* — no Status error is raised — which
  /// is exactly what the training-stability guardrails exist to catch
  /// (see util/guard.h and docs/robustness.md).
  double nan_reward_rate = 0.0;
  std::uint64_t seed = 1234;
};

/// Counters of the faults actually injected (a plain copyable snapshot).
struct FaultStats {
  std::uint64_t attempts = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t throttled = 0;
  std::uint64_t successes = 0;
  std::uint64_t dropped_clicks = 0;
  std::uint64_t banned_trajectories = 0;
  std::uint64_t stale_rewards = 0;
  std::uint64_t nan_rewards = 0;
};

/// Decorator exposing the unreliable view of an AttackEnvironment. Safe
/// for concurrent TryEvaluate calls (the base environment's Evaluate is
/// already const/thread-safe; fault state here is atomic or mutex-guarded).
class FaultyEnvironment {
 public:
  /// The base environment must outlive this decorator.
  FaultyEnvironment(const AttackEnvironment* base, const FaultProfile& profile);

  const AttackEnvironment& base() const { return *base_; }
  const FaultProfile& profile() const { return profile_; }

  /// One query attempt against the unreliable system. Returns
  /// kUnavailable (transient failure), kResourceExhausted (throttled;
  /// retriable after the cool-down), or the — possibly corrupted —
  /// RecNum reward. Deterministic in (profile.seed, query_id, attempt).
  StatusOr<double> TryEvaluate(const std::vector<Trajectory>& trajectories,
                               std::uint64_t query_id,
                               std::uint32_t attempt = 0) const;

  /// Convenience overload for sequential use: assigns the next internal
  /// query id (attempt 0). Not reproducible across interleavings when
  /// called from several threads — prefer explicit query ids there.
  StatusOr<double> TryEvaluate(const std::vector<Trajectory>& trajectories) const;

  /// Counters of faults injected so far.
  FaultStats stats() const;
  void ResetStats();

 private:
  const AttackEnvironment* base_;
  FaultProfile profile_;
  mutable std::atomic<std::uint64_t> next_query_id_{0};

  // Stale-reward cache (runtime-only; see FaultProfile::stale_reward_rate).
  mutable std::mutex stale_mutex_;
  mutable double last_reward_ = 0.0;
  mutable bool has_last_reward_ = false;

  mutable std::atomic<std::uint64_t> attempts_{0};
  mutable std::atomic<std::uint64_t> transient_failures_{0};
  mutable std::atomic<std::uint64_t> throttled_{0};
  mutable std::atomic<std::uint64_t> successes_{0};
  mutable std::atomic<std::uint64_t> dropped_clicks_{0};
  mutable std::atomic<std::uint64_t> banned_trajectories_{0};
  mutable std::atomic<std::uint64_t> stale_rewards_{0};
  mutable std::atomic<std::uint64_t> nan_rewards_{0};
};

}  // namespace poisonrec::env

#endif  // POISONREC_ENV_FAULT_H_
