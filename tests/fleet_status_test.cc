// Cross-process acceptance test for the fleet status surface: two
// `--shared` workers run one plan while the parent process queries
// CollectFleetStatus read-only from the side, like `poisonrec fleet
// --status` would.
//
//   1. Mid-run the status names both workers (live) and every campaign
//      with a coherent state/owner/token/step, and exits 0.
//   2. After SIGKILL of one worker — before its lease expires — the
//      status classifies it stale (dead pid under a non-shutdown
//      snapshot) and exits 2, while the survivor finishes the plan.
//
// POSIX-only by construction (fork/kill/waitpid); gated like
// fleet_shared_test.cc.
#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "orch/fleet.h"
#include "orch/journal.h"
#include "orch/spec.h"
#include "orch/status.h"

namespace poisonrec::orch {
namespace {

data::Dataset MakeLog() {
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 110;
  cfg.num_interactions = 1800;
  cfg.seed = 5;
  return data::GenerateSynthetic(cfg);
}

FleetPlan StatusPlan(std::size_t campaigns) {
  FleetPlan plan;
  plan.name = "status-fleet";
  for (std::size_t i = 0; i < campaigns; ++i) {
    CampaignSpec spec;
    spec.id = "shard" + std::to_string(i);
    spec.steps = 10;
    spec.samples_per_step = 4;
    spec.attackers = 8;
    spec.trajectory_length = 10;
    spec.num_target_items = 4;
    spec.embedding_dim = 8;
    spec.max_eval_users = 96;
    spec.seed = 21 + i * 17;
    plan.campaigns.push_back(std::move(spec));
  }
  return plan;
}

FleetOptions WorkerOptions(const std::string& dir,
                           const std::string& worker_id) {
  FleetOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  options.report_json_path = dir + "/report." + worker_id + ".json";
  options.report_csv_path = "";
  options.max_concurrent = 1;
  options.shared = true;
  options.worker_id = worker_id;
  // Generous ttl so the mid-run query never races a lease expiry; the
  // kill is detected through the pid probe, not heartbeat age.
  options.lease_ttl_seconds = 2.0;
  options.status_publish_seconds = 0.05;
  return options;
}

FleetStatusOptions QueryOptions(const std::string& dir) {
  FleetStatusOptions options;
  options.journal_path = dir + "/journal.jsonl";
  options.checkpoint_dir = dir + "/ckpts";
  return options;
}

const WorkerStatusRow* FindWorker(const FleetStatus& status,
                                  const std::string& id) {
  for (const WorkerStatusRow& row : status.workers) {
    if (row.worker_id == id) return &row;
  }
  return nullptr;
}

const CampaignStatusRow* FindCampaign(const FleetStatus& status,
                                      const std::string& id) {
  for (const CampaignStatusRow& row : status.campaigns) {
    if (row.id == id) return &row;
  }
  return nullptr;
}

bool HasReasonContaining(const FleetStatus& status,
                         const std::string& needle) {
  for (const std::string& reason : status.degraded_reasons) {
    if (reason.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(FleetStatusTest, TwoWorkerFleetIsQueryableMidRunAndAfterSigkill) {
  const auto base =
      std::filesystem::temp_directory_path() / "poisonrec_fleet_status";
  std::filesystem::remove_all(base);
  const std::string dir = base.string();
  std::filesystem::create_directories(dir);

  const data::Dataset log = MakeLog();
  const FleetPlan plan = StatusPlan(3);

  const pid_t worker_a = fork();
  ASSERT_GE(worker_a, 0) << "fork failed";
  if (worker_a == 0) {
    FleetOrchestrator worker(plan, &log, WorkerOptions(dir, "wA"));
    _exit(worker.Run().ExitCode());
  }
  const pid_t worker_b = fork();
  ASSERT_GE(worker_b, 0) << "fork failed";
  if (worker_b == 0) {
    FleetOrchestrator worker(plan, &log, WorkerOptions(dir, "wB"));
    _exit(worker.Run().ExitCode());
  }

  // -- 1. Mid-run: both workers live, every campaign named, exit 0 ----------
  const FleetStatusOptions query = QueryOptions(dir);
  FleetStatus mid;
  bool observed = false;
  for (int i = 0; i < 4000 && !observed; ++i) {
    mid = CollectFleetStatus(query);
    observed = mid.workers.size() == 2 && mid.workers_live == 2 &&
               mid.ExitCode() == 0 &&
               mid.campaigns.size() == plan.campaigns.size();
    if (observed) break;
    int probe = 0;
    ASSERT_NE(waitpid(worker_a, &probe, WNOHANG), worker_a)
        << "worker A exited before the mid-run query - grow the plan";
    ASSERT_NE(waitpid(worker_b, &probe, WNOHANG), worker_b)
        << "worker B exited before the mid-run query - grow the plan";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(observed) << "never observed 2 live workers + "
                        << plan.campaigns.size() << " campaigns; last: "
                        << FormatFleetStatusTable(mid);
  ASSERT_NE(FindWorker(mid, "wA"), nullptr);
  ASSERT_NE(FindWorker(mid, "wB"), nullptr);
  EXPECT_EQ(FindWorker(mid, "wA")->health, WorkerHealth::kLive);
  EXPECT_EQ(FindWorker(mid, "wB")->health, WorkerHealth::kLive);
  for (const CampaignSpec& spec : plan.campaigns) {
    const CampaignStatusRow* row = FindCampaign(mid, spec.id);
    ASSERT_NE(row, nullptr) << spec.id;
    EXPECT_LE(row->step, spec.steps) << spec.id;
    if (row->total > 0) {
      EXPECT_EQ(row->total, spec.steps) << spec.id;
    }
    if (row->running) {
      EXPECT_TRUE(row->owner == "wA" || row->owner == "wB")
          << spec.id << " owned by " << row->owner;
      EXPECT_GE(row->token, 1u) << spec.id;
    }
    if (row->lease_held) {
      EXPECT_FALSE(row->owner.empty()) << spec.id;
    }
    EXPECT_FALSE(row->stalled) << spec.id;
  }

  // -- 2. SIGKILL worker A before its lease expires -------------------------
  kill(worker_a, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(waitpid(worker_a, &wait_status, 0), worker_a);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "worker A finished before SIGKILL - grow the plan";

  const FleetStatus post = CollectFleetStatus(query);
  const WorkerStatusRow* dead = FindWorker(post, "wA");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->health, WorkerHealth::kStale)
      << FormatFleetStatusTable(post);
  EXPECT_FALSE(dead->shutdown);
  EXPECT_TRUE(post.degraded());
  EXPECT_EQ(post.ExitCode(), 2);
  EXPECT_TRUE(HasReasonContaining(post, "worker wA stale"))
      << FormatFleetStatusTable(post);

  // -- 3. The survivor (plus a recovery round if B gave up while A's
  //       lease was still unexpired) drives the plan to completion ----------
  ASSERT_EQ(waitpid(worker_b, &wait_status, 0), worker_b);
  for (int round = 0; round < 3; ++round) {
    auto replay = FleetJournal::Replay(
        FleetJournal::ListJournalFiles(dir + "/journal.jsonl"));
    if (replay.ok() && replay->campaigns.size() == plan.campaigns.size()) {
      bool all_done = true;
      for (const auto& [id, entry] : replay->campaigns) {
        all_done = all_done && entry.state == CampaignState::kDone;
      }
      if (all_done) break;
    }
    FleetOrchestrator recovery(plan, &log, WorkerOptions(dir, "wC"));
    recovery.Run();
  }

  const FleetStatus final_status = CollectFleetStatus(query);
  for (const CampaignSpec& spec : plan.campaigns) {
    const CampaignStatusRow* row = FindCampaign(final_status, spec.id);
    ASSERT_NE(row, nullptr) << spec.id;
    EXPECT_EQ(row->state, CampaignState::kDone)
        << spec.id << ": " << FormatFleetStatusTable(final_status);
    EXPECT_EQ(row->step, spec.steps) << spec.id;
  }
  // wA's tombstone keeps the fleet degraded even though the work is
  // done: a dead worker that never said goodbye is worth a page.
  EXPECT_EQ(final_status.ExitCode(), 2);
  EXPECT_TRUE(HasReasonContaining(final_status, "worker wA stale"));
  const WorkerStatusRow* survivor = FindWorker(final_status, "wB");
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->health, WorkerHealth::kExited);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace poisonrec::orch

#else
#include <gtest/gtest.h>
TEST(FleetStatusTest, SkippedOnNonPosixPlatforms) { GTEST_SKIP(); }
#endif  // __unix__ || __APPLE__
