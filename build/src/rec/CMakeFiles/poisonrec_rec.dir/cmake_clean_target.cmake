file(REMOVE_RECURSE
  "libpoisonrec_rec.a"
)
