file(REMOVE_RECURSE
  "libpoisonrec_util.a"
)
