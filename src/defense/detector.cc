#include "defense/detector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace poisonrec::defense {

namespace {

// Popularity rank in [0, 1] per item (1 = most popular).
std::vector<double> PopularityQuantile(const data::Dataset& log) {
  const std::vector<data::ItemId> order = log.ItemsByPopularity();
  std::vector<double> quantile(log.num_items(), 0.0);
  for (std::size_t r = 0; r < order.size(); ++r) {
    quantile[order[r]] =
        static_cast<double>(r + 1) / static_cast<double>(order.size());
  }
  return quantile;
}

}  // namespace

std::vector<double> ColdItemAffinityDetector::Score(
    const data::Dataset& log) const {
  const std::vector<double> quantile = PopularityQuantile(log);
  std::vector<double> scores(log.num_users(), 0.0);
  for (data::UserId u = 0; u < log.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = log.Sequence(u);
    if (seq.empty()) continue;
    double mean_quantile = 0.0;
    for (data::ItemId item : seq) mean_quantile += quantile[item];
    mean_quantile /= static_cast<double>(seq.size());
    // Low mean quantile = clicks on unpopular/cold items = suspicious.
    scores[u] = 1.0 - mean_quantile;
  }
  return scores;
}

std::vector<double> ClickEntropyDetector::Score(
    const data::Dataset& log) const {
  std::vector<double> scores(log.num_users(), 0.0);
  for (data::UserId u = 0; u < log.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = log.Sequence(u);
    if (seq.empty()) continue;
    std::unordered_map<data::ItemId, double> counts;
    for (data::ItemId item : seq) counts[item] += 1.0;
    double entropy = 0.0;
    for (const auto& [item, c] : counts) {
      const double p = c / static_cast<double>(seq.size());
      entropy -= p * std::log2(p);
    }
    // Normalize by the maximum achievable entropy for this length (all
    // clicks distinct); a fully repetitive session scores 1.
    const double max_entropy =
        std::log2(static_cast<double>(seq.size()));
    scores[u] = max_entropy <= 0.0 ? 1.0 : 1.0 - entropy / max_entropy;
  }
  return scores;
}

FleetSimilarityDetector::FleetSimilarityDetector(std::size_t min_length)
    : min_length_(min_length) {}

std::vector<double> FleetSimilarityDetector::Score(
    const data::Dataset& log) const {
  std::vector<double> scores(log.num_users(), 0.0);
  // Item sets per eligible user.
  std::vector<data::UserId> users;
  std::vector<std::unordered_set<data::ItemId>> sets;
  for (data::UserId u = 0; u < log.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = log.Sequence(u);
    if (seq.size() < min_length_) continue;
    users.push_back(u);
    sets.emplace_back(seq.begin(), seq.end());
  }
  // Max Jaccard similarity with any other user. Quadratic; logs at the
  // scales this library targets keep this tractable, and an inverted
  // index over items prunes most pairs.
  std::unordered_map<data::ItemId, std::vector<std::size_t>> by_item;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (data::ItemId item : sets[i]) by_item[item].push_back(i);
  }
  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::unordered_map<std::size_t, std::size_t> overlap;
    for (data::ItemId item : sets[i]) {
      for (std::size_t j : by_item[item]) {
        if (j != i) ++overlap[j];
      }
    }
    double best = 0.0;
    for (const auto& [j, inter] : overlap) {
      const double uni = static_cast<double>(sets[i].size() +
                                             sets[j].size() - inter);
      best = std::max(best, static_cast<double>(inter) / uni);
    }
    scores[users[i]] = best;
  }
  return scores;
}

EnsembleDetector::EnsembleDetector(
    std::vector<std::unique_ptr<Detector>> parts)
    : parts_(std::move(parts)) {
  POISONREC_CHECK(!parts_.empty());
}

std::vector<double> EnsembleDetector::Score(const data::Dataset& log) const {
  // Rank-average: robust to incomparable score scales.
  std::vector<double> combined(log.num_users(), 0.0);
  for (const auto& part : parts_) {
    const std::vector<double> scores = part->Score(log);
    std::vector<std::size_t> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&scores](std::size_t a, std::size_t b) {
                if (scores[a] != scores[b]) return scores[a] < scores[b];
                return a < b;
              });
    for (std::size_t r = 0; r < order.size(); ++r) {
      combined[order[r]] +=
          static_cast<double>(r) / static_cast<double>(order.size());
    }
  }
  for (double& s : combined) {
    s /= static_cast<double>(parts_.size());
  }
  return combined;
}

std::unique_ptr<Detector> MakeDefaultEnsemble() {
  std::vector<std::unique_ptr<Detector>> parts;
  parts.push_back(std::make_unique<ColdItemAffinityDetector>());
  parts.push_back(std::make_unique<ClickEntropyDetector>());
  parts.push_back(std::make_unique<FleetSimilarityDetector>());
  return std::make_unique<EnsembleDetector>(std::move(parts));
}

double DetectionAuc(const std::vector<double>& scores,
                    const std::vector<data::UserId>& fake_users) {
  // Degenerate inputs yield the chance value instead of dividing by zero
  // (or crashing): no fake users, every user fake, fake ids outside the
  // score vector, or an empty score vector all leave zero comparable
  // (fake, real) pairs. Constant scores are all ties and also land on
  // 0.5 through the ordinary path.
  std::unordered_set<data::UserId> fakes;
  for (data::UserId f : fake_users) {
    if (f < scores.size()) fakes.insert(f);
  }
  if (fakes.empty() || fakes.size() >= scores.size()) return 0.5;
  // AUC = P(score(fake) > score(real)) + 0.5 P(tie).
  double wins = 0.0;
  std::size_t pairs = 0;
  for (data::UserId f = 0; f < scores.size(); ++f) {
    if (fakes.count(f) == 0) continue;
    for (data::UserId r = 0; r < scores.size(); ++r) {
      if (fakes.count(r) > 0) continue;
      if (scores[f] > scores[r]) {
        wins += 1.0;
      } else if (scores[f] == scores[r]) {
        wins += 0.5;
      }
      ++pairs;
    }
  }
  return pairs == 0 ? 0.5 : wins / static_cast<double>(pairs);
}

data::Dataset RemoveSuspiciousUsers(const data::Dataset& log,
                                    const std::vector<double>& scores,
                                    double fraction) {
  POISONREC_CHECK_EQ(scores.size(), log.num_users());
  POISONREC_CHECK_GE(fraction, 0.0);
  POISONREC_CHECK_LE(fraction, 1.0);
  std::vector<data::UserId> order(log.num_users());
  for (data::UserId u = 0; u < order.size(); ++u) order[u] = u;
  const std::size_t n_remove = static_cast<std::size_t>(
      fraction * static_cast<double>(log.num_users()));
  // Only membership in the top-n_remove set matters (it feeds a hash
  // set), and the comparator is a total order (ties by user id), so
  // nth_element selects exactly the users the old full sort did.
  const auto mid = order.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(n_remove, order.size()));
  std::nth_element(order.begin(), mid, order.end(),
                   [&scores](data::UserId a, data::UserId b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  std::unordered_set<data::UserId> removed(order.begin(), mid);
  data::Dataset filtered(log.num_users(), log.num_items());
  for (data::UserId u = 0; u < log.num_users(); ++u) {
    if (removed.count(u) > 0) continue;
    filtered.AddSequence(u, log.Sequence(u));
  }
  return filtered;
}

}  // namespace poisonrec::defense
