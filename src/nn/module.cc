#include "nn/module.h"

#include <cmath>

namespace poisonrec::nn {

namespace {

// Glorot/Xavier uniform bound for a (fan_in x fan_out) weight.
float GlorotBound(std::size_t fan_in, std::size_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

}  // namespace

std::size_t Module::NumParameters() const {
  std::size_t total = 0;
  for (const Tensor& p : Parameters()) total += p.size();
  return total;
}

void Module::ZeroGrad() {
  for (Tensor p : Parameters()) p.ZeroGrad();
}

void Module::CopyParametersFrom(const Module& other) {
  std::vector<Tensor> mine = Parameters();
  std::vector<Tensor> theirs = other.Parameters();
  POISONREC_CHECK_EQ(mine.size(), theirs.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    mine[i].CopyDataFrom(theirs[i]);
  }
}

// -- Linear -----------------------------------------------------------------

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng* rng) {
  const float bound = GlorotBound(in_features, out_features);
  weight_ = Tensor::Rand(in_features, out_features, -bound, bound, rng,
                         /*requires_grad=*/true);
  bias_ = Tensor::Zeros(1, out_features, /*requires_grad=*/true);
}

Tensor Linear::Forward(const Tensor& x) const {
  return Add(MatMul(x, weight_), bias_);
}

std::vector<Tensor> Linear::Parameters() const { return {weight_, bias_}; }

// -- Embedding ----------------------------------------------------------------

Embedding::Embedding(std::size_t count, std::size_t dim, Rng* rng,
                     float stddev) {
  table_ = Tensor::Randn(count, dim, stddev, rng, /*requires_grad=*/true);
}

Tensor Embedding::Forward(const std::vector<std::size_t>& ids) const {
  return Rows(table_, ids);
}

std::vector<Tensor> Embedding::Parameters() const { return {table_}; }

// -- Mlp ----------------------------------------------------------------------

Mlp::Mlp(const std::vector<std::size_t>& sizes, Rng* rng) {
  POISONREC_CHECK_GE(sizes.size(), 2u);
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const Linear& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// -- LstmCell -------------------------------------------------------------

LstmCell::LstmCell(std::size_t input_size, std::size_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float bx = GlorotBound(input_size, 4 * hidden_size);
  const float bh = GlorotBound(hidden_size, 4 * hidden_size);
  w_x_ = Tensor::Rand(input_size, 4 * hidden_size, -bx, bx, rng,
                      /*requires_grad=*/true);
  w_h_ = Tensor::Rand(hidden_size, 4 * hidden_size, -bh, bh, rng,
                      /*requires_grad=*/true);
  bias_ = Tensor::Zeros(1, 4 * hidden_size, /*requires_grad=*/true);
  // Forget-gate bias = 1 (standard trick for gradient flow).
  for (std::size_t c = hidden_size; c < 2 * hidden_size; ++c) {
    bias_.set(0, c, 1.0f);
  }
}

LstmCell::State LstmCell::InitialState(std::size_t batch) const {
  return {Tensor::Zeros(batch, hidden_size_),
          Tensor::Zeros(batch, hidden_size_)};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  POISONREC_CHECK_EQ(x.cols(), input_size_);
  // Pre-activations stay composed (two GEMMs + bias feed the threaded
  // kernels and the weight gradients); the eight elementwise gate ops
  // that used to follow are fused into one pass over the (B x 4h) block.
  Tensor gates = Add(Add(MatMul(x, w_x_), MatMul(state.h, w_h_)), bias_);
  LstmGatesResult next = LstmGates(gates, state.c);
  return {next.h, next.c};
}

std::vector<Tensor> LstmCell::Parameters() const {
  return {w_x_, w_h_, bias_};
}

// -- GruCell --------------------------------------------------------------

GruCell::GruCell(std::size_t input_size, std::size_t hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float bx = GlorotBound(input_size, 3 * hidden_size);
  const float bh = GlorotBound(hidden_size, 3 * hidden_size);
  w_x_ = Tensor::Rand(input_size, 3 * hidden_size, -bx, bx, rng,
                      /*requires_grad=*/true);
  w_h_ = Tensor::Rand(hidden_size, 3 * hidden_size, -bh, bh, rng,
                      /*requires_grad=*/true);
  b_x_ = Tensor::Zeros(1, 3 * hidden_size, /*requires_grad=*/true);
  b_h_ = Tensor::Zeros(1, 3 * hidden_size, /*requires_grad=*/true);
}

Tensor GruCell::InitialState(std::size_t batch) const {
  return Tensor::Zeros(batch, hidden_size_);
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  POISONREC_CHECK_EQ(x.cols(), input_size_);
  Tensor gx = Add(MatMul(x, w_x_), b_x_);  // (B x 3h)
  Tensor gh = Add(MatMul(h, w_h_), b_h_);  // (B x 3h)
  Tensor z = Sigmoid(Add(Cols(gx, 0, hidden_size_),
                         Cols(gh, 0, hidden_size_)));
  Tensor r = Sigmoid(Add(Cols(gx, hidden_size_, hidden_size_),
                         Cols(gh, hidden_size_, hidden_size_)));
  Tensor n = Tanh(Add(Cols(gx, 2 * hidden_size_, hidden_size_),
                      Mul(r, Cols(gh, 2 * hidden_size_, hidden_size_))));
  // h' = (1 - z) * n + z * h
  Tensor one_minus_z = AddScalar(Scale(z, -1.0f), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

std::vector<Tensor> GruCell::Parameters() const {
  return {w_x_, w_h_, b_x_, b_h_};
}

}  // namespace poisonrec::nn
