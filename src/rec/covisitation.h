// CoVisitation: item-based CF over an item-to-item co-visitation graph
// (Yang et al., NDSS'17 — the system their injection attack targets).
// Consecutive items in a user's behavior sequence add a co-visitation edge
// in both directions; a user's score for item j aggregates the
// co-visitation strength between j and the user's recent history.
#ifndef POISONREC_REC_COVISITATION_H_
#define POISONREC_REC_COVISITATION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "rec/recommender.h"

namespace poisonrec::rec {

class CoVisitation : public Recommender {
 public:
  explicit CoVisitation(const FitConfig& config = FitConfig());

  std::string Name() const override { return "CoVisitation"; }
  void Fit(const data::Dataset& dataset) override;
  void Update(const data::Dataset& poison) override;
  std::vector<double> Score(
      data::UserId user,
      const std::vector<data::ItemId>& candidates) const override;
  std::unique_ptr<Recommender> Clone() const override;

  /// Co-visitation count between two items (0 when no edge).
  double CoVisits(data::ItemId a, data::ItemId b) const;

  /// Number of history items aggregated at scoring time.
  static constexpr std::size_t kHistoryWindow = 10;

 private:
  void Accumulate(const data::Dataset& dataset, bool record_history);

  // covisits_[i][j] = number of adjacent (i, j) visits (symmetric).
  std::vector<std::unordered_map<data::ItemId, double>> covisits_;
  std::vector<double> item_count_;               // visit counts, for damping
  std::vector<std::vector<data::ItemId>> history_;  // per real user
};

}  // namespace poisonrec::rec

#endif  // POISONREC_REC_COVISITATION_H_
