#include "attack/conslop.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/random.h"

namespace poisonrec::attack {

ConsLopAttack::ConsLopAttack(std::size_t top_k) : top_k_(top_k) {}

std::vector<ConsLopAttack::PlanEntry> ConsLopAttack::Solve(
    const env::AttackEnvironment& environment) const {
  const data::Dataset& log = environment.dataset();
  const std::size_t num_original = environment.num_original_items();
  const std::size_t k =
      top_k_ > 0 ? top_k_ : environment.config().top_k;

  // Co-visitation counts from the log (symmetric adjacent pairs).
  std::vector<std::unordered_map<data::ItemId, std::size_t>> covis(
      num_original + environment.target_items().size());
  for (data::UserId u = 0; u < log.num_users(); ++u) {
    const std::vector<data::ItemId>& seq = log.Sequence(u);
    for (std::size_t p = 0; p + 1 < seq.size(); ++p) {
      if (seq[p] == seq[p + 1]) continue;
      ++covis[seq[p]][seq[p + 1]];
      ++covis[seq[p + 1]][seq[p]];
    }
  }

  // θ_i: co-visits needed for the target to enter item i's top-k
  // co-visited list (k-th largest count; 0 when the list is not full).
  const std::vector<std::size_t>& popularity =
      environment.item_popularity();
  struct Option {
    data::ItemId item;
    std::size_t cost;   // θ_i + 1
    double gain;        // audience of i
  };
  std::vector<Option> options;
  options.reserve(num_original);
  for (data::ItemId i = 0; i < num_original; ++i) {
    std::vector<std::size_t> counts;
    counts.reserve(covis[i].size());
    for (const auto& [j, c] : covis[i]) counts.push_back(c);
    std::size_t theta = 0;
    if (counts.size() >= k) {
      std::nth_element(counts.begin(),
                       counts.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       counts.end(), std::greater<std::size_t>());
      theta = counts[k - 1];
    }
    options.push_back(
        {i, theta + 1, static_cast<double>(popularity[i])});
  }
  std::sort(options.begin(), options.end(),
            [](const Option& a, const Option& b) {
              const double ra = a.gain / static_cast<double>(a.cost);
              const double rb = b.gain / static_cast<double>(b.cost);
              if (ra != rb) return ra > rb;
              return a.item < b.item;
            });

  std::size_t budget = environment.num_attackers() *
                       environment.trajectory_length() / 2;
  std::vector<PlanEntry> plan;
  for (const Option& opt : options) {
    if (budget == 0) break;
    if (opt.cost > budget) continue;
    plan.push_back({opt.item, opt.cost});
    budget -= opt.cost;
  }
  // Leftover budget reinforces the best entry (more co-visits than the
  // threshold can only help).
  if (budget > 0 && !plan.empty()) {
    plan.front().covisit_count += budget;
  }
  return plan;
}

std::vector<env::Trajectory> ConsLopAttack::GenerateAttack(
    const env::AttackEnvironment& environment, std::uint64_t seed) {
  Rng rng(seed);
  // Single-item promotion: one target carries the whole attack.
  const data::ItemId target = environment.target_items().front();
  const std::vector<PlanEntry> plan = Solve(environment);

  // Flatten the plan into (target, item) click pairs.
  std::vector<data::ItemId> clicks;
  clicks.reserve(environment.num_attackers() *
                 environment.trajectory_length());
  for (const PlanEntry& entry : plan) {
    for (std::size_t c = 0; c < entry.covisit_count; ++c) {
      clicks.push_back(target);
      clicks.push_back(entry.item);
    }
  }
  // Pad with pure target clicks if the plan under-spends.
  const std::size_t total = environment.num_attackers() *
                            environment.trajectory_length();
  while (clicks.size() < total) clicks.push_back(target);
  clicks.resize(total);

  std::vector<env::Trajectory> out;
  out.reserve(environment.num_attackers());
  std::size_t cursor = 0;
  for (std::size_t n = 0; n < environment.num_attackers(); ++n) {
    env::Trajectory traj;
    traj.attacker_index = n;
    for (std::size_t t = 0; t < environment.trajectory_length(); ++t) {
      traj.items.push_back(clicks[cursor++]);
    }
    out.push_back(std::move(traj));
  }
  return out;
}

}  // namespace poisonrec::attack
