// t-SNE tests: affinity invariants and the cluster-preservation property.
#include "viz/tsne.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace poisonrec::viz {
namespace {

TEST(AffinityTest, RowsFormDistribution) {
  // 4 points on a line.
  std::vector<double> points = {0.0, 1.0, 2.0, 10.0};
  std::vector<double> sq(16, 0.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      sq[i * 4 + j] = (points[i] - points[j]) * (points[i] - points[j]);
    }
  }
  auto p = internal::ComputeAffinities(sq, 4, 2.0);
  double total = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(p[i * 4 + j], 0.0);
      EXPECT_NEAR(p[i * 4 + j], p[j * 4 + i], 1e-12);  // symmetric
      total += p[i * 4 + j];
    }
  }
  // Diagonal is ~0, total mass ~1.
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(AffinityTest, CloserPointsGetMoreMass) {
  std::vector<double> points = {0.0, 0.5, 8.0};
  std::vector<double> sq(9, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      sq[i * 3 + j] = (points[i] - points[j]) * (points[i] - points[j]);
    }
  }
  auto p = internal::ComputeAffinities(sq, 3, 2.0);
  EXPECT_GT(p[0 * 3 + 1], p[0 * 3 + 2]);
}

TEST(TsneTest, OutputShapeAndFiniteness) {
  Rng rng(1);
  const std::size_t n = 20;
  const std::size_t dim = 5;
  std::vector<double> points(n * dim);
  for (double& v : points) v = rng.Normal();
  TsneConfig cfg;
  cfg.iterations = 50;
  auto y = TsneEmbed(points, n, dim, cfg);
  ASSERT_EQ(y.size(), n * 2);
  for (double v : y) EXPECT_TRUE(std::isfinite(v));
}

TEST(TsneTest, EmbeddingIsCentered) {
  Rng rng(2);
  const std::size_t n = 15;
  std::vector<double> points(n * 3);
  for (double& v : points) v = rng.Normal();
  TsneConfig cfg;
  cfg.iterations = 30;
  auto y = TsneEmbed(points, n, 3, cfg);
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += y[i * 2];
    my += y[i * 2 + 1];
  }
  EXPECT_NEAR(mx / n, 0.0, 1e-6);
  EXPECT_NEAR(my / n, 0.0, 1e-6);
}

TEST(TsneTest, SeparatesTwoWellSeparatedClusters) {
  // Two Gaussian blobs far apart in 10-D must land in separable 2-D
  // groups: mean inter-cluster distance > mean intra-cluster distance.
  Rng rng(3);
  const std::size_t per_cluster = 15;
  const std::size_t n = 2 * per_cluster;
  const std::size_t dim = 10;
  std::vector<double> points(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const double center = i < per_cluster ? 0.0 : 25.0;
    for (std::size_t k = 0; k < dim; ++k) {
      points[i * dim + k] = center + rng.Normal(0.0, 0.5);
    }
  }
  TsneConfig cfg;
  cfg.iterations = 200;
  cfg.seed = 4;
  auto y = TsneEmbed(points, n, dim, cfg);

  auto dist = [&y](std::size_t a, std::size_t b) {
    const double dx = y[a * 2] - y[b * 2];
    const double dy = y[a * 2 + 1] - y[b * 2 + 1];
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0.0;
  double inter = 0.0;
  std::size_t intra_n = 0;
  std::size_t inter_n = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const bool same = (a < per_cluster) == (b < per_cluster);
      if (same) {
        intra += dist(a, b);
        ++intra_n;
      } else {
        inter += dist(a, b);
        ++inter_n;
      }
    }
  }
  intra /= static_cast<double>(intra_n);
  inter /= static_cast<double>(inter_n);
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(TsneTest, DeterministicInSeed) {
  Rng rng(5);
  std::vector<double> points(10 * 4);
  for (double& v : points) v = rng.Normal();
  TsneConfig cfg;
  cfg.iterations = 20;
  auto a = TsneEmbed(points, 10, 4, cfg);
  auto b = TsneEmbed(points, 10, 4, cfg);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace poisonrec::viz
