#include "util/stats.h"

namespace poisonrec {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

void NormalizeRewards(std::vector<double>* values) {
  if (values->empty()) return;
  double mean = Mean(*values);
  double sd = StdDev(*values);
  if (sd <= 1e-12) {
    for (double& v : *values) v = 0.0;
    return;
  }
  for (double& v : *values) v = (v - mean) / sd;
}

}  // namespace poisonrec
