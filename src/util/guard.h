// Training-stability guardrails: cheap finite-ness sweeps over float
// buffers, per-step guard verdicts describing what tripped (NaN/Inf in
// rewards, logits, loss, gradients, parameters, or optimizer state;
// gradient-norm explosion; entropy collapse; PPO approx-KL divergence),
// and a bounded incident ring-buffer that serializes to a structured
// JSONL incident log.
//
// The guards exist because black-box attack training is exactly the
// regime where degenerate updates are common: RecNum feedback is noisy
// and batches are tiny, so a single non-finite value silently corrupts
// the policy and every episode after it. The monitors are wired into
// core/ppo.cc (Eq. 7/8/9 of the paper); the self-healing rollback driver
// is core::PoisonRecAttacker::TrainGuarded. See docs/robustness.md.
#ifndef POISONREC_UTIL_GUARD_H_
#define POISONREC_UTIL_GUARD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "util/status.h"

namespace poisonrec {

/// What a guard sweep found wrong. Names are stable (they appear in the
/// JSONL incident log); extend at the end only.
enum class GuardEventKind : std::uint8_t {
  /// An observed episode reward was NaN/Inf (caught before the Eq. 8
  /// batch normalization could spread it into every advantage).
  kNonFiniteReward = 0,
  /// A recomputed decision log-probability (the Eq. 7/9 logits) was
  /// NaN/Inf.
  kNonFiniteLogit = 1,
  /// The clipped-surrogate loss value was NaN/Inf.
  kNonFiniteLoss = 2,
  /// A gradient buffer contained NaN/Inf after backward.
  kNonFiniteGradient = 3,
  /// A parameter tensor contained NaN/Inf after the Adam step.
  kNonFiniteParameter = 4,
  /// An Adam moment buffer contained NaN/Inf after the step.
  kNonFiniteOptimizerState = 5,
  /// Pre-clip global gradient norm exceeded the explosion threshold.
  kGradNormExplosion = 6,
  /// Mean sampled policy entropy fell below the collapse floor.
  kEntropyCollapse = 7,
  /// Mean approx-KL(old || new) exceeded the divergence threshold.
  kKlDivergence = 8,
  /// The attacker account pool drained below min_live_attackers (an
  /// adaptive defender banned the fleet faster than the reserve could
  /// replace it; campaign aborts with kResourceExhausted — see
  /// core/account_pool.h and env/defended.h). A resource incident, not a
  /// numerical one: TrainGuarded never rolls back on it.
  kAccountPoolExhausted = 9,
};

/// Stable snake_case name for the JSONL log ("non_finite_reward", ...).
const char* GuardEventKindName(GuardEventKind kind);

/// Thresholds and self-healing knobs of the guardrail subsystem. All
/// monitors are off unless `enabled`; individual thresholds of 0 disable
/// just that monitor.
struct GuardConfig {
  bool enabled = false;
  /// Sweep every policy parameter for NaN/Inf before sampling each step
  /// (catches corruption before it produces garbage trajectories).
  bool pre_step_param_sweep = true;
  /// Pre-clip gradient norm beyond this trips kGradNormExplosion
  /// (0 = disabled).
  double grad_norm_threshold = 100.0;
  /// Mean sampled entropy (-log p of the chosen decisions) below this
  /// trips kEntropyCollapse (0 = disabled).
  double entropy_floor = 1e-5;
  /// Mean approx-KL(old || new) beyond this trips kKlDivergence
  /// (0 = disabled).
  double approx_kl_threshold = 5.0;
  /// Consecutive rollbacks TrainGuarded tolerates before aborting the
  /// campaign with kFailedPrecondition.
  std::size_t max_rollbacks = 4;
  /// Multiplicative backoff applied on every rollback (floored below).
  double lr_backoff = 0.5;
  double clip_backoff = 0.5;
  double min_learning_rate = 1e-5;
  double min_clip_epsilon = 0.01;
  /// Bounded incident ring capacity (oldest incidents are evicted).
  std::size_t incident_capacity = 256;
  /// When non-empty, every incident is also appended to this JSONL file
  /// as it is recorded.
  std::string incident_log_path;
};

/// One tripped monitor: the offending value and the threshold it broke
/// (0 for pure finiteness sweeps), plus a short human-readable locator
/// ("parameter 3", "episode 7", ...).
struct GuardEvent {
  GuardEventKind kind = GuardEventKind::kNonFiniteReward;
  double value = 0.0;
  double threshold = 0.0;
  std::string detail;
};

/// Everything that tripped during one training step. Empty = clean step.
struct GuardVerdict {
  std::vector<GuardEvent> events;

  bool tripped() const { return !events.empty(); }
  void Add(GuardEventKind kind, double value, double threshold,
           std::string detail);
  /// "clean" or "kind(detail), kind(detail), ..." for log lines.
  std::string Summary() const;
};

/// Result of a finite-ness sweep over a buffer.
struct FiniteSweep {
  std::size_t checked = 0;
  std::size_t nan = 0;
  std::size_t inf = 0;
  /// Index of the first non-finite element (meaningful when !clean()).
  std::size_t first_bad = 0;

  bool clean() const { return nan == 0 && inf == 0; }
  std::size_t bad() const { return nan + inf; }
};

/// Counts NaN/Inf entries. The float overloads are the hot path (policy
/// parameters, gradients, Adam moments); the double overload covers
/// rewards and other driver-side scalars.
FiniteSweep SweepFinite(const float* data, std::size_t n);
FiniteSweep SweepFinite(const std::vector<float>& values);
FiniteSweep SweepFinite(const std::vector<double>& values);

/// One logged incident: the step it happened on plus the event.
struct GuardIncident {
  std::size_t step = 0;
  GuardEvent event;
};

/// Bounded ring of guard incidents. Not thread-safe: the training-loop
/// monitors all run on the driver thread. When a sink path is set, each
/// Record also appends one JSON line to that file immediately, so a
/// crash right after an incident still leaves it on disk.
class IncidentLog {
 public:
  explicit IncidentLog(std::size_t capacity = 256);

  void set_capacity(std::size_t capacity);
  /// Empty path disables the on-disk sink. The sink file is opened in
  /// append mode (via an owned obs::EventLog with per-line flush) on the
  /// first Record after this call.
  void set_sink_path(std::string path);
  /// Additionally mirrors every incident into the unified campaign event
  /// stream as a {"type":"guard",...} record. Not owned; nullptr
  /// detaches. Independent of the dedicated sink above.
  void set_event_log(obs::EventLog* event_log) { event_log_ = event_log; }

  void Record(std::size_t step, const GuardEvent& event);

  /// Incidents still in the ring (oldest first; at most `capacity`).
  const std::deque<GuardIncident>& incidents() const { return incidents_; }
  /// Incidents ever recorded, including evicted ones.
  std::size_t total_recorded() const { return total_recorded_; }
  void Clear();

  /// One JSON object per line:
  ///   {"step":12,"kind":"non_finite_reward","value":"nan",
  ///    "threshold":0,"detail":"episode 3"}
  /// Non-finite values are emitted as the strings "nan"/"inf"/"-inf"
  /// (JSON has no literals for them).
  std::string ToJsonl() const;
  /// Writes the current ring to `path` (truncates).
  Status WriteJsonl(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::deque<GuardIncident> incidents_;
  std::size_t total_recorded_ = 0;
  std::string sink_path_;
  obs::EventLog sink_;  // lazily opened at sink_path_ (append mode)
  bool sink_warned_ = false;
  obs::EventLog* event_log_ = nullptr;
};

/// Serializes one incident as a single JSON line (no trailing newline).
std::string IncidentToJson(const GuardIncident& incident);

/// Same incident as a unified-event-stream record: identical fields plus
/// a leading "type":"guard" discriminator.
std::string IncidentToEventJson(const GuardIncident& incident);

}  // namespace poisonrec

#endif  // POISONREC_UTIL_GUARD_H_
