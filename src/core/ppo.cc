#include "core/ppo.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/timer.h"

namespace poisonrec::core {

PoisonRecAttacker::PoisonRecAttacker(const env::AttackEnvironment* environment,
                                     const PoisonRecConfig& config)
    : env_(environment), config_(config), rng_(config.seed) {
  POISONREC_CHECK(env_ != nullptr);
  POISONREC_CHECK_GE(config_.samples_per_step, config_.batch_size);
  POISONREC_CHECK_GE(config_.batch_size, 2u)
      << "reward normalization (Eq. 8) needs at least 2 samples";

  // Attacker knowledge: item count + popularity (crawlable), target ids.
  std::vector<data::ItemId> originals;
  {
    const std::vector<std::size_t>& pop = env_->item_popularity();
    originals.reserve(env_->num_original_items());
    for (data::ItemId i = 0; i < env_->num_original_items(); ++i) {
      originals.push_back(i);
    }
    std::sort(originals.begin(), originals.end(),
              [&pop](data::ItemId a, data::ItemId b) {
                if (pop[a] != pop[b]) return pop[a] < pop[b];
                return a < b;
              });
  }
  policy_ = std::make_unique<Policy>(env_->num_attackers(),
                                     env_->num_total_items(), originals,
                                     env_->target_items(), config_.policy);
  optimizer_ = std::make_unique<nn::Adam>(policy_->Parameters(),
                                          config_.learning_rate);
}

Episode PoisonRecAttacker::SampleAndEvaluate() {
  Episode episode;
  episode.trajectories =
      policy_->SampleEpisode(env_->trajectory_length(), &rng_);
  episode.reward = env_->Evaluate(ToEnvTrajectories(episode.trajectories));
  return episode;
}

nn::Tensor PoisonRecAttacker::PpoLoss(
    const std::vector<const Episode*>& batch, double* loss_value) {
  // Eq. 8: normalize rewards within the batch.
  std::vector<double> advantages(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    advantages[i] = batch[i]->reward;
  }
  NormalizeRewards(&advantages);

  // Flatten trajectories; every decision inherits its episode's advantage.
  std::vector<const SampledTrajectory*> trajs;
  std::vector<double> traj_advantage;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const SampledTrajectory& t : batch[i]->trajectories) {
      trajs.push_back(&t);
      traj_advantage.push_back(advantages[i]);
    }
  }

  std::vector<DecisionBatch> decisions = policy_->RecomputeLogProbs(trajs);

  // Clipped surrogate (Eq. 7/9): obj = min(r*A, clip(r,1±ε)*A). The min
  // either selects the ratio term (gradient flows) or a clipped constant
  // (gradient zero); we encode that with a forward-computed mask.
  const float eps = config_.clip_epsilon;
  nn::Tensor total;  // scalar accumulator of sum(obj)
  std::size_t n_decisions = 0;
  double const_part = 0.0;  // sum of clipped (constant) objective terms
  for (const DecisionBatch& batch_k : decisions) {
    const std::size_t k = batch_k.new_log_probs.rows();
    n_decisions += k;
    std::vector<float> old_vals(k);
    std::vector<float> adv_mask(k);
    for (std::size_t i = 0; i < k; ++i) {
      old_vals[i] = static_cast<float>(batch_k.old_log_probs[i]);
      const double adv = traj_advantage[batch_k.traj_index[i]];
      const double r = std::exp(
          static_cast<double>(batch_k.new_log_probs.at(i, 0)) -
          batch_k.old_log_probs[i]);
      bool unclipped;
      if (adv >= 0.0) {
        unclipped = r <= 1.0 + eps;
      } else {
        unclipped = r >= 1.0 - eps;
      }
      if (unclipped) {
        adv_mask[i] = static_cast<float>(adv);
      } else {
        adv_mask[i] = 0.0f;
        const double clipped_r =
            std::clamp(r, 1.0 - static_cast<double>(eps),
                       1.0 + static_cast<double>(eps));
        const_part += clipped_r * adv;
      }
    }
    nn::Tensor old_t = nn::Tensor::FromData(k, 1, std::move(old_vals));
    nn::Tensor am_t = nn::Tensor::FromData(k, 1, std::move(adv_mask));
    nn::Tensor ratio = nn::Exp(nn::Sub(batch_k.new_log_probs, old_t));
    nn::Tensor obj = nn::Sum(nn::Mul(ratio, am_t));
    total = total.defined() ? nn::Add(total, obj) : obj;
  }
  POISONREC_CHECK_GT(n_decisions, 0u);
  // loss = -(1/D) * (sum_masked + const_part)
  nn::Tensor loss =
      nn::Scale(total, -1.0f / static_cast<float>(n_decisions));
  if (loss_value != nullptr) {
    *loss_value = loss.item() -
                  const_part / static_cast<double>(n_decisions);
  }
  return loss;
}

TrainStepStats PoisonRecAttacker::TrainStep() {
  Timer timer;
  TrainStepStats stats;
  stats.step = ++steps_taken_;

  // -- Sample M training examples -------------------------------------------
  // Sampling is sequential (it advances the shared RNG); the black-box
  // reward queries are independent and may run concurrently.
  std::vector<Episode> episodes(config_.samples_per_step);
  for (Episode& ep : episodes) {
    ep.trajectories =
        policy_->SampleEpisode(env_->trajectory_length(), &rng_);
  }
  ParallelFor(episodes.size(),
              config_.parallel_rewards ? config_.num_threads : 1,
              [this, &episodes](std::size_t m) {
                episodes[m].reward = env_->Evaluate(
                    ToEnvTrajectories(episodes[m].trajectories));
              });
  RunningStats reward_stats;
  double click_ratio_sum = 0.0;
  for (const Episode& ep : episodes) {
    reward_stats.AddTracked(ep.reward);
    click_ratio_sum +=
        TargetClickRatio(ep, env_->num_original_items());
    if (best_episode_.trajectories.empty() ||
        ep.reward > best_episode_.reward) {
      best_episode_ = ep;
    }
  }
  stats.mean_reward = reward_stats.mean();
  stats.max_reward = reward_stats.max();
  stats.min_reward = reward_stats.min();
  stats.best_reward_so_far = best_episode_.reward;
  stats.target_click_ratio =
      click_ratio_sum / static_cast<double>(config_.samples_per_step);

  // -- K epochs of PPO updates ----------------------------------------------
  double loss_sum = 0.0;
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    std::vector<const Episode*> batch;
    if (config_.batch_size >= episodes.size()) {
      for (const Episode& ep : episodes) batch.push_back(&ep);
    } else {
      std::vector<std::size_t> picks = rng_.SampleWithoutReplacement(
          episodes.size(), config_.batch_size);
      for (std::size_t p : picks) batch.push_back(&episodes[p]);
    }
    double loss_value = 0.0;
    nn::Tensor loss = PpoLoss(batch, &loss_value);
    optimizer_->ZeroGrad();
    loss.Backward();
    nn::ClipGradNorm(optimizer_->parameters(), 5.0f);
    optimizer_->Step();
    loss_sum += loss_value;
  }
  stats.loss = loss_sum / static_cast<double>(config_.update_epochs);
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

std::vector<TrainStepStats> PoisonRecAttacker::Train(std::size_t steps) {
  std::vector<TrainStepStats> all;
  all.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    all.push_back(TrainStep());
  }
  return all;
}

}  // namespace poisonrec::core
