// Shared scaffolding for the experiment harnesses. Every bench binary
// reproduces one table or figure of the paper at a configurable scale:
//
//   POISONREC_SCALE     dataset scale factor (default 0.1; 1.0 = paper)
//   POISONREC_STEPS     PoisonRec training steps per testbed (default 25)
//   POISONREC_SAMPLES   episodes per training step M=B (default 8)
//   POISONREC_DIM       embedding size |e| (default 16; paper 64)
//   POISONREC_RANKERS   comma list of rankers (default: all 8)
//   POISONREC_DATASETS  comma list of datasets (default varies per bench)
//   POISONREC_EVAL_USERS users sampled for RecNum (default 200; 0 = all)
//   POISONREC_OUT       directory for CSV outputs (default ".")
//
// Absolute RecNum values scale with the dataset; the *shape* of each
// result (who wins, convergence ordering, crossovers) is the
// reproduction target. See EXPERIMENTS.md.
#ifndef POISONREC_BENCH_COMMON_H_
#define POISONREC_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/poisonrec.h"

namespace poisonrec::bench {

/// Scaled-down defaults of the paper's experimental protocol.
struct BenchConfig {
  double scale = 0.1;
  std::size_t training_steps = 25;
  std::size_t samples_per_step = 8;
  std::size_t embedding_dim = 16;
  std::size_t num_attackers = 20;       // paper: 20
  std::size_t trajectory_length = 20;   // paper: 20
  std::size_t num_target_items = 8;     // paper: 8
  std::size_t candidate_originals = 92; // paper: 92
  std::size_t top_k = 10;               // paper: 10
  /// RecNum is measured over a fixed random sample of users so reward
  /// evaluation cost is independent of dataset size (0 = all users).
  std::size_t max_eval_users = 200;
  std::vector<std::string> rankers;
  std::vector<std::string> datasets;
  std::string out_dir = ".";
  std::uint64_t seed = 2020;
};

/// Reads the POISONREC_* environment overrides.
BenchConfig LoadBenchConfig();

/// Generates the synthetic stand-in for a paper dataset at the configured
/// scale.
data::Dataset MakeDataset(const BenchConfig& config,
                          data::DatasetPreset preset);

/// Builds the black-box system: synthetic log + pretrained ranker.
std::unique_ptr<env::AttackEnvironment> MakeEnvironment(
    const BenchConfig& config, data::DatasetPreset preset,
    const std::string& ranker_name);

/// PoisonRec configuration matching the paper's hyperparameters at bench
/// scale (M=B, K=3, alpha=2e-3, eps=0.1).
core::PoisonRecConfig MakePoisonRecConfig(const BenchConfig& config,
                                          core::ActionSpaceKind kind,
                                          std::uint64_t seed);

/// Fixed-width table formatting.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatCount(double value);

/// Writes rows to `<out_dir>/<name>` and logs the path.
void WriteCsvOutput(const BenchConfig& config, const std::string& name,
                    const std::vector<std::vector<std::string>>& rows);

/// Writes rows as a machine-readable JSON array of objects to
/// `<out_dir>/<name>`. rows[0] supplies the keys; cells that parse fully
/// as a finite number are emitted unquoted, everything else as a string.
void WriteJsonOutput(const BenchConfig& config, const std::string& name,
                     const std::vector<std::vector<std::string>>& rows);

}  // namespace poisonrec::bench

#endif  // POISONREC_BENCH_COMMON_H_
