// ParallelFor tests + the determinism property of parallel reward
// evaluation in the PPO trainer.
#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ppo.h"
#include "data/synthetic.h"
#include "rec/registry.h"

namespace poisonrec {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> visits(100);
  ParallelFor(100, 4, [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&total](std::size_t i) {
    total += static_cast<int>(i);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelForTest, ResultMatchesSequential) {
  std::vector<double> parallel_out(200);
  std::vector<double> sequential_out(200);
  auto work = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 1000; ++k) {
      acc += static_cast<double>((i * 31 + k) % 97);
    }
    return acc;
  };
  ParallelFor(200, 8, [&](std::size_t i) { parallel_out[i] = work(i); });
  for (std::size_t i = 0; i < 200; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, WorkerExceptionRethrowsOnCallingThread) {
  EXPECT_THROW(
      ParallelFor(64, 4,
                  [](std::size_t i) {
                    if (i == 17) throw std::runtime_error("worker boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, WorkerExceptionPreservesMessage) {
  try {
    ParallelFor(8, 3, [](std::size_t i) {
      if (i == 5) throw std::runtime_error("index five failed");
    });
    FAIL() << "ParallelFor should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "index five failed");
  }
}

TEST(ParallelForTest, SingleThreadedExceptionAlsoPropagates) {
  EXPECT_THROW(ParallelFor(4, 1,
                           [](std::size_t i) {
                             if (i == 2) throw std::runtime_error("seq boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, UsableAfterWorkerException) {
  // A throw must not wedge or leak threads: the next call still works.
  try {
    ParallelFor(32, 4, [](std::size_t) {
      throw std::runtime_error("every worker throws");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  ParallelFor(32, 4, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelRewards, TrainingIsIdenticalToSequential) {
  auto make_env = []() {
    data::SyntheticConfig cfg;
    cfg.num_users = 100;
    cfg.num_items = 80;
    cfg.num_interactions = 1000;
    cfg.seed = 3;
    env::EnvironmentConfig env_cfg;
    env_cfg.num_attackers = 6;
    env_cfg.trajectory_length = 6;
    env_cfg.num_target_items = 3;
    env_cfg.num_candidate_originals = 20;
    env_cfg.seed = 11;
    return std::make_unique<env::AttackEnvironment>(
        data::GenerateSynthetic(cfg),
        rec::MakeRecommender("ItemPop").value(), env_cfg);
  };
  auto env_seq = make_env();
  auto env_par = make_env();

  core::PoisonRecConfig cfg;
  cfg.samples_per_step = 6;
  cfg.batch_size = 6;
  cfg.update_epochs = 2;
  cfg.policy.embedding_dim = 8;
  cfg.seed = 5;

  core::PoisonRecAttacker sequential(env_seq.get(), cfg);
  cfg.parallel_rewards = true;
  cfg.num_threads = 4;
  core::PoisonRecAttacker parallel(env_par.get(), cfg);

  for (int step = 0; step < 3; ++step) {
    auto a = sequential.TrainStep();
    auto b = parallel.TrainStep();
    EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward) << "step " << step;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "step " << step;
  }
}

}  // namespace
}  // namespace poisonrec
