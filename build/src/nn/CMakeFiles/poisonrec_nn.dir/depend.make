# Empty dependencies file for poisonrec_nn.
# This may be replaced when dependencies are built.
