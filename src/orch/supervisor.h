// Per-campaign supervisor: wraps one PoisonRec attack campaign
// (core::PoisonRecAttacker::TrainGuarded) in a fault-tolerant lifecycle.
//
// The supervisor owns the campaign's CancelToken, heartbeat clock and
// soft-stop flag. It builds the environment stack (ranker ->
// AttackEnvironment -> FaultyEnvironment -> DefendedEnvironment) fresh
// for every attempt, resumes from the campaign's own v3 checkpoint when
// one exists, and classifies TrainGuarded's exit status:
//
//   OK                   -> done
//   kCancelled + fenced          -> lease lost to a sibling worker: stop
//                           WITHOUT journaling (any record would itself
//                           be a stale write); the new owner's journal
//                           is authoritative
//   kCancelled + fleet stop      -> checkpointed (graceful shutdown;
//                           resumable — `fleet --resume` reschedules it)
//   kCancelled + preempt request -> preempted (resumable: the scheduler
//                           re-queues it behind the higher-priority
//                           campaign; journals the `preempted` state)
//   kCancelled + watchdog abort  -> bounded restart from the checkpoint
//                           (decorrelated-jitter backoff), then
//                           quarantine once the restart budget is spent
//   kResourceExhausted   -> quarantine immediately (pool exhausted is
//   kFailedPrecondition     deterministic — a restart replays the same
//                           ban/rollback stream; the circuit breaker
//                           isolates the campaign instead of burning
//                           restarts)
//   abort with allow_restart=false (deadline) -> quarantine
//   anything else        -> restart if budget remains, else failed
//
// Every transition is journaled (orch/journal.h) before the supervisor
// moves on, and committed steps are journaled from the attacker's
// step-commit callback — strictly after the step's checkpoint is
// durable. In shared fleets (orch/lease.h) the supervisor holds a
// campaign lease: checkpoints are published to the token-suffixed path
// `<id>.t<token>.ckpt` (a zombie's stale-token saves can never clobber
// the new owner's file) and the lease is validated before every journal
// commit, so a fenced-out worker stops within one step boundary.
#ifndef POISONREC_ORCH_SUPERVISOR_H_
#define POISONREC_ORCH_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "orch/journal.h"
#include "orch/lease.h"
#include "orch/spec.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace poisonrec::orch {

/// Why a supervisor was asked to stop at the next step boundary.
enum class SoftStopKind : int {
  kNone = 0,
  /// Fleet-wide graceful shutdown (checkpointed, resumable).
  kShutdown = 1,
  /// Worker handed to a higher-priority campaign (preempted, re-queued).
  kPreempt = 2,
  /// Lease lost to a sibling worker (stop writing immediately).
  kFenced = 3,
};

struct SupervisorOptions {
  /// Directory holding one `<campaign id>.ckpt` per campaign (token-
  /// suffixed `<id>.t<token>.ckpt` when a lease is attached).
  std::string checkpoint_dir = "checkpoints";
  /// Journal for lifecycle records; nullptr journals nothing (tests).
  FleetJournal* journal = nullptr;
  /// Fleet-wide graceful-shutdown flag (soft stop at step boundaries);
  /// nullptr when the campaign runs standalone. Not owned. Mirrored
  /// into the supervisor's own soft-stop flag from the heartbeat hook.
  const std::atomic<bool>* fleet_stop = nullptr;
  /// Replayed journal state for `fleet --resume` (terminal campaigns are
  /// not re-run; unfinished ones resume from their checkpoint).
  std::optional<CampaignReplay> replay;
  /// Shared-fleet lease manager; nullptr outside `--shared`. Not owned.
  /// When set, `lease_token` must hold the token Acquire returned.
  LeaseManager* leases = nullptr;
  std::uint64_t lease_token = 0;
  /// Preemptions already charged against spec.max_preemptions (carried
  /// across re-queues by the scheduler).
  std::uint64_t preemptions = 0;
  /// Test seam: how the campaign's per-query retry backoffs sleep
  /// ({} = really sleep, interruptible by the supervisor's cancel token).
  SleepFn retry_sleep;
  /// Test seam: how restart backoffs sleep ({} = really sleep).
  SleepFn restart_sleep;
};

/// Final (or recovered) state of one supervised campaign.
struct CampaignOutcome {
  std::string id;
  CampaignState state = CampaignState::kFailed;
  std::uint64_t steps_completed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  double best_reward = 0.0;
  double wall_seconds = 0.0;
  std::string detail;
  /// Committed (checkpoint-durable) mean reward per step, including
  /// steps recovered from a replayed journal.
  std::map<std::uint64_t, double> step_rewards;
  /// True when the outcome was recovered from the journal without
  /// re-running (terminal state before this process started).
  bool recovered_from_journal = false;
  /// True when the campaign was interrupted by a fleet shutdown and is
  /// resumable from its checkpoint.
  bool interrupted = false;
  /// Times the campaign was preempted (spec.max_preemptions caps this).
  std::uint64_t preemptions = 0;
  /// Damaged (torn/corrupt/incompatible) checkpoints moved to
  /// `<checkpoint_dir>/corrupt/` during resume; each costs a fallback
  /// to the next-older candidate (or a from-scratch replay), never a
  /// silently-trusted load.
  std::uint64_t checkpoints_quarantined = 0;
  /// True when this worker lost the campaign lease mid-run: the outcome
  /// is NOT authoritative — the seizing sibling's journal is.
  bool fenced = false;
  /// Fencing token the outcome's journal records carried (0 = none).
  std::uint64_t lease_token = 0;
  /// Shared fleets only: a sibling worker owned (or finished) this
  /// campaign; the outcome was reconstructed from the merged journals,
  /// not from a local run. Set by the orchestrator.
  bool sibling_owned = false;
};

class CampaignSupervisor {
 public:
  /// `dataset` (the shared clean log) must outlive the supervisor.
  CampaignSupervisor(const CampaignSpec& spec, const data::Dataset* dataset,
                     SupervisorOptions options);

  /// Runs the campaign to a terminal or resumable state. Call once (the
  /// scheduler builds a fresh supervisor per re-queue).
  CampaignOutcome Run();

  // -- Watchdog interface (thread-safe; orch/fleet.h) -----------------------

  /// Hard-cancels the running attempt. allow_restart=true (stall) lets
  /// the restart budget apply; false (deadline exceeded) quarantines.
  void Abort(const std::string& reason, bool allow_restart);

  /// Asks the campaign to stop at its next step boundary (the in-flight
  /// step is checkpointed and journaled first). First request wins;
  /// returns false if a stop was already pending. kFenced additionally
  /// fires the cancel token — a fenced worker must not keep writing
  /// even mid-step.
  bool RequestSoftStop(SoftStopKind kind);

  /// True while Run is between its first and last journal record.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once a soft stop (any kind) is pending or the campaign was
  /// fenced — the watchdog skips such supervisors as preemption victims.
  bool stop_pending() const {
    return soft_stop_.load(std::memory_order_acquire);
  }

  /// Seconds since the attacker last signalled liveness (heartbeats fire
  /// at step entry and after each phase).
  double SecondsSinceHeartbeat() const;

  /// Seconds since Run started (spans restarts).
  double SecondsSinceStart() const;

  const CampaignSpec& spec() const { return spec_; }
  std::uint64_t lease_token() const { return options_.lease_token; }

  // -- Status-snapshot interface (thread-safe; the orch/fleet.h worker
  //    status publisher reads these while the campaign runs) ----------------

  /// Committed (checkpoint-durable) step count — seeded from the
  /// replayed journal, advanced by the step-commit callback strictly
  /// after each step's checkpoint and journal record land.
  std::uint64_t committed_steps() const {
    return committed_steps_.load(std::memory_order_acquire);
  }
  /// Mean reward of the most recently committed step (0 before any).
  double last_committed_reward() const {
    return last_reward_.load(std::memory_order_acquire);
  }
  double best_reward_so_far() const {
    return best_reward_live_.load(std::memory_order_acquire);
  }
  /// Committed steps per wall-clock second since Run started, counting
  /// only this run's commits (resumed steps are excluded). 0 until the
  /// first commit of this run — the status ETA stays "unknown" rather
  /// than extrapolating from another epoch's rate.
  double CommittedStepRate() const;

  /// Path checkpoints are published to: `<id>.ckpt`, or the token-
  /// suffixed `<id>.t<token>.ckpt` under a lease.
  std::string CheckpointPath() const;

 private:
  /// One attempt: build the stack, resume from checkpoint, TrainGuarded.
  Status RunAttempt(CampaignOutcome* outcome);
  void Journal(CampaignState state, std::uint64_t step, double reward,
               double best_reward, std::uint64_t restarts,
               const std::string& detail);
  std::string TakeAbortReason();
  /// Restart backoff honouring the fleet stop flag and soft stops.
  void SleepForRestart(double seconds);
  /// Resume candidates, newest first: ours, or under a lease every
  /// token-suffixed file at or below our token (the seized owner's
  /// frontier first, then older epochs). RunAttempt walks the list so
  /// a damaged frontier falls back to the previous epoch's checkpoint
  /// instead of costing the whole campaign.
  std::vector<std::string> FindResumeCheckpoints() const;
  /// Moves a damaged checkpoint into `<checkpoint_dir>/corrupt/` so it
  /// stops being a resume candidate but stays available for forensics
  /// (`poisonrec fsck` reports it). Falls back to removal when the
  /// move fails. Returns the quarantine path ("" when removed).
  std::string QuarantineCheckpoint(const std::string& path) const;
  bool FleetStopRaised() const {
    return options_.fleet_stop != nullptr &&
           options_.fleet_stop->load(std::memory_order_acquire);
  }

  CampaignSpec spec_;
  const data::Dataset* dataset_;
  SupervisorOptions options_;
  CancelToken cancel_;
  std::atomic<bool> running_{false};
  /// Per-campaign soft stop observed by the attacker between steps.
  std::atomic<bool> soft_stop_{false};
  std::atomic<int> soft_stop_kind_{static_cast<int>(SoftStopKind::kNone)};
  std::atomic<std::uint64_t> start_ticks_{0};
  std::atomic<std::uint64_t> heartbeat_ticks_{0};
  /// Live progress mirrors for the status-snapshot interface.
  std::atomic<std::uint64_t> committed_steps_{0};
  std::atomic<std::uint64_t> run_start_steps_{0};
  std::atomic<double> last_reward_{0.0};
  std::atomic<double> best_reward_live_{0.0};
  std::atomic<bool> abort_allow_restart_{true};
  mutable std::mutex mu_;
  std::string abort_reason_;
};

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_SUPERVISOR_H_
