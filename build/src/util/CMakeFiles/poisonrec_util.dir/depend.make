# Empty dependencies file for poisonrec_util.
# This may be replaced when dependencies are built.
