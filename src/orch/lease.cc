#include "orch/lease.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <utility>

#include "obs/crc32c.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "orch/json_reader.h"
#include "util/fsio.h"
#include "util/logging.h"

namespace poisonrec::orch {

namespace {

obs::Counter* LeaseCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

/// RAII exclusive flock on the sidecar lock file. Blocks until granted;
/// transitions are a read + a small durable write, so contention is
/// bounded by lease churn, not campaign runtime.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

double WallClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string DefaultWorkerId() {
  // The nonce is drawn once per process: pid alone is ambiguous across
  // reboots and pid wraparound, pid+nonce is not.
  static const std::string id = [] {
    std::random_device rd;
    const std::uint64_t nonce =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
    std::ostringstream out;
    out << "w" << static_cast<std::uint64_t>(::getpid()) << "-" << std::hex
        << (nonce & 0xffffffffull);
    return out.str();
  }();
  return id;
}

LeaseManager::LeaseManager(std::string dir, std::string owner_id,
                           double ttl_seconds)
    : dir_(std::move(dir)),
      owner_id_(std::move(owner_id)),
      ttl_seconds_(ttl_seconds) {}

double LeaseManager::Now() const {
  return now_ ? now_() : WallClockSeconds();
}

Status LeaseManager::Init() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create lease directory " + dir_ + ": " +
                           ec.message());
  }
  return Status::OK();
}

std::string LeaseManager::LeasePath(const std::string& campaign_id) const {
  return (std::filesystem::path(dir_) / (campaign_id + ".lease")).string();
}

std::string LeaseManager::LockPath(const std::string& campaign_id) const {
  return (std::filesystem::path(dir_) / (campaign_id + ".lock")).string();
}

Status LeaseManager::WriteLease(const LeaseInfo& info) const {
  obs::JsonObjectBuilder b;
  b.Str("type", "lease")
      .Str("campaign_id", info.campaign_id)
      .Str("owner", info.owner)
      .Int("pid", info.pid)
      .Int("token", info.token)
      .Num("renewed_unix", info.renewed_unix)
      .Num("ttl_seconds", info.ttl_seconds);
  // tmp suffix embeds the owner id so two workers inside the same
  // transition window (impossible under the flock, but cheap insurance)
  // never share a tmp file. The CRC32C line checksum lets Read reject
  // a rotted lease even when it still parses as JSON.
  return WriteFileDurable(
      LeasePath(info.campaign_id),
      obs::WithLineChecksum(std::move(b).Finish()) + "\n",
      ".tmp-" + owner_id_);
}

StatusOr<LeaseInfo> LeaseManager::Read(const std::string& campaign_id) const {
  const std::string path = LeasePath(campaign_id);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no lease file at " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string line = std::move(buffer).str();
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  // Checksum before structure: a flipped bit inside a token digit or
  // the owner string still parses as valid JSON, and trusting it would
  // break the fencing contract. Legacy files without the crc member
  // pass through.
  if (obs::VerifyLineChecksum(line) == obs::LineChecksum::kMismatch) {
    return Status::DataLoss("lease checksum mismatch for " + path);
  }
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed->is_object()) {
    return Status::DataLoss("unparseable lease file " + path);
  }
  LeaseInfo info;
  info.campaign_id = campaign_id;
  if (const JsonValue* v = parsed->Find("owner");
      v != nullptr && v->is_string()) {
    info.owner = v->string_value;
  }
  if (const JsonValue* v = parsed->Find("pid");
      v != nullptr && v->is_number()) {
    info.pid = static_cast<std::uint64_t>(v->number_value);
  }
  if (const JsonValue* v = parsed->Find("token");
      v != nullptr && v->is_number()) {
    info.token = static_cast<std::uint64_t>(v->number_value);
  }
  if (const JsonValue* v = parsed->Find("renewed_unix");
      v != nullptr && v->is_number()) {
    info.renewed_unix = v->number_value;
  }
  if (const JsonValue* v = parsed->Find("ttl_seconds");
      v != nullptr && v->is_number()) {
    info.ttl_seconds = v->number_value;
  }
  return info;
}

StatusOr<LeaseInfo> LeaseManager::Acquire(const std::string& campaign_id) {
  FileLock lock(LockPath(campaign_id));
  if (!lock.held()) {
    return Status::IoError("cannot lock lease transition for " + campaign_id);
  }
  LeaseInfo next;
  next.campaign_id = campaign_id;
  next.owner = owner_id_;
  next.pid = static_cast<std::uint64_t>(::getpid());
  next.renewed_unix = Now();
  next.ttl_seconds = ttl_seconds_;

  StatusOr<LeaseInfo> current = Read(campaign_id);
  if (current.ok()) {
    if (current->owner == owner_id_) {
      // Idempotent re-acquire: already ours, keep the token.
      next.token = current->token;
    } else if (current->owner.empty()) {
      // Released cleanly; a new acquisition is a new fencing epoch.
      next.token = current->token + 1;
    } else {
      const double age = Now() - current->renewed_unix;
      const double ttl =
          current->ttl_seconds > 0.0 ? current->ttl_seconds : ttl_seconds_;
      if (age <= ttl) {
        return Status::Unavailable(
            "campaign " + campaign_id + " leased by " + current->owner +
            " (age " + std::to_string(age) + "s <= ttl " +
            std::to_string(ttl) + "s)");
      }
      // Expired heartbeat: seize with an incremented token. The stale
      // owner's writes are fenced out by the token from here on.
      next.token = current->token + 1;
      LeaseCounter("poisonrec_fleet_lease_takeovers_total")->Increment();
      POISONREC_LOG(Warning)
          << "lease takeover: campaign " << campaign_id << " seized from "
          << current->owner << " (stale " << age << "s > ttl " << ttl
          << "s), fencing token " << next.token;
    }
  } else if (current.status().code() == StatusCode::kNotFound) {
    next.token = 1;
  } else {
    return current.status();
  }

  POISONREC_RETURN_NOT_OK(WriteLease(next));
  LeaseCounter("poisonrec_fleet_lease_acquired_total")->Increment();
  return next;
}

bool LeaseManager::Seizable(const LeaseInfo& info) const {
  if (info.owner.empty() || info.owner == owner_id_) return true;
  const double ttl =
      info.ttl_seconds > 0.0 ? info.ttl_seconds : ttl_seconds_;
  return Now() - info.renewed_unix > ttl;
}

Status LeaseManager::Renew(const std::string& campaign_id,
                           std::uint64_t token) {
  FileLock lock(LockPath(campaign_id));
  if (!lock.held()) {
    return Status::IoError("cannot lock lease transition for " + campaign_id);
  }
  POISONREC_ASSIGN_OR_RETURN(LeaseInfo current, Read(campaign_id));
  if (current.owner != owner_id_ || current.token != token) {
    LeaseCounter("poisonrec_fleet_lease_fenced_total")->Increment();
    return Status::FailedPrecondition(
        "fenced out of campaign " + campaign_id + ": lease now owner=\"" +
        current.owner + "\" token=" + std::to_string(current.token) +
        ", ours was " + std::to_string(token));
  }
  current.renewed_unix = Now();
  current.ttl_seconds = ttl_seconds_;
  POISONREC_RETURN_NOT_OK(WriteLease(current));
  LeaseCounter("poisonrec_fleet_lease_renewals_total")->Increment();
  return Status::OK();
}

Status LeaseManager::Validate(const std::string& campaign_id,
                              std::uint64_t token) const {
  POISONREC_ASSIGN_OR_RETURN(LeaseInfo current, Read(campaign_id));
  if (current.owner != owner_id_ || current.token != token) {
    LeaseCounter("poisonrec_fleet_lease_fenced_total")->Increment();
    return Status::FailedPrecondition(
        "fenced out of campaign " + campaign_id + ": lease now owner=\"" +
        current.owner + "\" token=" + std::to_string(current.token) +
        ", ours was " + std::to_string(token));
  }
  return Status::OK();
}

Status LeaseManager::Release(const std::string& campaign_id,
                             std::uint64_t token) {
  FileLock lock(LockPath(campaign_id));
  if (!lock.held()) {
    return Status::IoError("cannot lock lease transition for " + campaign_id);
  }
  POISONREC_ASSIGN_OR_RETURN(LeaseInfo current, Read(campaign_id));
  if (current.owner != owner_id_ || current.token != token) {
    return Status::FailedPrecondition(
        "cannot release campaign " + campaign_id +
        ": lease is not ours (owner=\"" + current.owner +
        "\" token=" + std::to_string(current.token) + ")");
  }
  current.owner.clear();
  current.pid = 0;
  current.renewed_unix = Now();
  POISONREC_RETURN_NOT_OK(WriteLease(current));
  return Status::OK();
}

}  // namespace poisonrec::orch
