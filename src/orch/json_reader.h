// Minimal JSON reader for the orchestrator's inputs: fleet plan files
// (orch/spec.h) and fleet journal replay (orch/journal.h).
//
// The project's JSON *writer* lives in obs/json.h, which is foundation
// level and cannot depend on util/status. The reader needs StatusOr for
// error reporting, so it lives here in orch instead. It accepts the
// strict JSON subset our own writers emit plus standard plan-file input:
// objects, arrays, strings with escapes, numbers, booleans, null.
// Duplicate object keys are rejected (a plan with two "steps" keys is a
// typo, not a choice), and nesting depth is bounded.
#ifndef POISONREC_ORCH_JSON_READER_H_
#define POISONREC_ORCH_JSON_READER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace poisonrec::orch {

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup (objects only). nullptr when absent.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document. Trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace poisonrec::orch

#endif  // POISONREC_ORCH_JSON_READER_H_
