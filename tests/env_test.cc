// Attack-environment tests: id-space expansion, RecNum semantics,
// candidate generation, poisoning effects, retrain modes.
#include "env/environment.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rec/candidates.h"
#include "rec/itempop.h"
#include "rec/registry.h"

namespace poisonrec::env {
namespace {

data::Dataset SmallLog(std::uint64_t seed = 21) {
  data::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 30;
  cfg.num_interactions = 400;
  cfg.seed = seed;
  return data::GenerateSynthetic(cfg);
}

EnvironmentConfig SmallConfig() {
  EnvironmentConfig cfg;
  cfg.num_attackers = 4;
  cfg.trajectory_length = 6;
  cfg.num_target_items = 3;
  cfg.num_candidate_originals = 10;
  cfg.top_k = 5;
  cfg.seed = 17;
  return cfg;
}

TEST(CandidateGeneratorTest, SizeAndContents) {
  rec::RandomCandidateGenerator gen(100, {100, 101}, 10, 3);
  auto cands = gen.Candidates(5);
  EXPECT_EQ(cands.size(), 12u);
  // Targets always included, at the end.
  EXPECT_EQ(cands[10], 100u);
  EXPECT_EQ(cands[11], 101u);
  // Originals are in range and distinct.
  std::unordered_set<data::ItemId> seen;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_LT(cands[i], 100u);
    EXPECT_TRUE(seen.insert(cands[i]).second);
  }
}

TEST(CandidateGeneratorTest, DeterministicPerUser) {
  rec::RandomCandidateGenerator gen(100, {100}, 10, 3);
  EXPECT_EQ(gen.Candidates(7), gen.Candidates(7));
  EXPECT_NE(gen.Candidates(7), gen.Candidates(8));
}

TEST(CandidateGeneratorTest, CapsAtCatalogSize) {
  rec::RandomCandidateGenerator gen(5, {5}, 92, 3);
  auto cands = gen.Candidates(0);
  EXPECT_EQ(cands.size(), 6u);  // all 5 originals + target
}

TEST(PersonalizedCandidatesTest, SizeAndDeterminism) {
  auto log = SmallLog();
  rec::PersonalizedCandidateGenerator gen(log, log.num_items(), {30, 31},
                                          10);
  auto a = gen.Candidates(3);
  EXPECT_EQ(a.size(), 12u);
  EXPECT_EQ(a[10], 30u);
  EXPECT_EQ(a[11], 31u);
  EXPECT_EQ(gen.Candidates(3), a);
}

TEST(PersonalizedCandidatesTest, PrefersCoOccurringItems) {
  data::Dataset log(3, 6);
  log.AddSequence(0, {0, 1, 0, 1});  // user 0: 0 <-> 1 strongly linked
  log.AddSequence(1, {2, 3});
  log.AddSequence(2, {4, 5, 4, 5, 4, 5});
  rec::PersonalizedCandidateGenerator gen(log, 6, {}, 2);
  auto cands = gen.Candidates(0);
  ASSERT_EQ(cands.size(), 2u);
  // Item 1 co-occurs with user 0's history item 0 (and vice versa).
  EXPECT_TRUE(cands[0] == 0u || cands[0] == 1u);
  EXPECT_TRUE(cands[1] == 0u || cands[1] == 1u);
}

TEST(PersonalizedCandidatesTest, BackfillsThinHistories) {
  data::Dataset log(2, 5);
  log.AddSequence(0, {4});  // single click: no co-occurrence at all
  log.AddSequence(1, {0, 0, 0, 1, 1, 2});
  rec::PersonalizedCandidateGenerator gen(log, 5, {}, 3);
  auto cands = gen.Candidates(0);
  EXPECT_EQ(cands.size(), 3u);  // popularity backfill fills the quota
}

TEST(EnvironmentTest, PersonalizedCandidateModeWorks) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  EnvironmentConfig cfg = SmallConfig();
  cfg.personalized_candidates = true;
  AttackEnvironment env(SmallLog(), std::move(ranker), cfg);
  EXPECT_EQ(env.BaselineRecNum(), 0.0);
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, std::vector<data::ItemId>(6, 30)});
  }
  EXPECT_GT(env.Evaluate(attack), 0.0);
}

TEST(EnvironmentTest, ExpandsIdSpaces) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  EXPECT_EQ(env.num_original_items(), 30u);
  EXPECT_EQ(env.num_total_items(), 33u);
  ASSERT_EQ(env.target_items().size(), 3u);
  EXPECT_EQ(env.target_items()[0], 30u);
  EXPECT_EQ(env.target_items()[2], 32u);
  EXPECT_EQ(env.AttackerUserId(0), 40u);
  EXPECT_EQ(env.AttackerUserId(3), 43u);
  EXPECT_EQ(env.dataset().num_users(), 44u);
}

TEST(EnvironmentTest, TargetsStartCold) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  for (data::ItemId t : env.target_items()) {
    EXPECT_EQ(env.item_popularity()[t], 0u);
  }
}

TEST(EnvironmentTest, BaselineRecNumIsZeroForColdTargetsOnItemPop) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  EXPECT_EQ(env.BaselineRecNum(), 0.0);
}

TEST(EnvironmentTest, EvaluateIsRepeatable) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, {30, 31, 30, 31, 30, 31}});
  }
  EXPECT_EQ(env.Evaluate(attack), env.Evaluate(attack));
}

TEST(EnvironmentTest, TargetOnlyClicksBeatNoAttackOnItemPop) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, std::vector<data::ItemId>(6, 30)});
  }
  EXPECT_GT(env.Evaluate(attack), env.BaselineRecNum());
}

TEST(EnvironmentTest, RecNumBoundedByUsersTimesMin) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  EnvironmentConfig cfg = SmallConfig();
  auto log = SmallLog();
  AttackEnvironment env(log, std::move(ranker), cfg);
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, {30, 31, 32, 30, 31, 32}});
  }
  const double rec_num = env.Evaluate(attack);
  const double bound = static_cast<double>(log.num_users()) *
                       std::min<std::size_t>(cfg.top_k, 3);
  EXPECT_LE(rec_num, bound);
  EXPECT_GE(rec_num, 0.0);
}

TEST(EnvironmentTest, EvaluateDoesNotMutatePretrainedSystem) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  const double before = env.BaselineRecNum();
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, std::vector<data::ItemId>(6, 30)});
  }
  env.Evaluate(attack);
  EXPECT_EQ(env.BaselineRecNum(), before);
}

TEST(EnvironmentTest, MoreClicksMoreExposureOnItemPop) {
  // ItemPop RecNum is monotone in the number of target clicks.
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  double prev = env.BaselineRecNum();
  for (std::size_t attackers = 1; attackers <= 4; ++attackers) {
    std::vector<Trajectory> attack;
    for (std::size_t n = 0; n < attackers; ++n) {
      attack.push_back({n, std::vector<data::ItemId>(6, 30)});
    }
    const double now = env.Evaluate(attack);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(EnvironmentTest, FullRetrainModeAlsoPromotes) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  EnvironmentConfig cfg = SmallConfig();
  cfg.full_retrain = true;
  AttackEnvironment env(SmallLog(), std::move(ranker), cfg);
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, std::vector<data::ItemId>(6, 30)});
  }
  EXPECT_GT(env.Evaluate(attack), env.BaselineRecNum());
}

TEST(EnvironmentTest, MaxEvalUsersScalesDownRecNum) {
  EnvironmentConfig cfg = SmallConfig();
  cfg.max_eval_users = 10;
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), cfg);
  std::vector<Trajectory> attack;
  for (std::size_t n = 0; n < 4; ++n) {
    attack.push_back({n, {30, 31, 32, 30, 31, 32}});
  }
  EXPECT_LE(env.Evaluate(attack), 10.0 * 3.0);
}

TEST(EnvironmentTest, RecNumForExternallyPoisonedRanker) {
  auto ranker = rec::MakeRecommender("ItemPop").value();
  AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
  auto poisoned = env.pretrained_ranker().Clone();
  data::Dataset poison(44, 33);
  for (int c = 0; c < 50; ++c) poison.Add(40, 30);
  poisoned->Update(poison);
  EXPECT_GT(env.RecNum(*poisoned), env.BaselineRecNum());
}

TEST(EnvironmentTest, WorksAcrossAllRankers) {
  for (const std::string& name : rec::AllRecommenderNames()) {
    rec::FitConfig fit;
    fit.embedding_dim = 8;
    fit.epochs = 2;
    fit.update_epochs = 2;
    auto ranker = rec::MakeRecommender(name, fit).value();
    AttackEnvironment env(SmallLog(), std::move(ranker), SmallConfig());
    std::vector<Trajectory> attack;
    for (std::size_t n = 0; n < 4; ++n) {
      attack.push_back({n, {30, 0, 31, 1, 32, 2}});
    }
    const double rec_num = env.Evaluate(attack);
    EXPECT_GE(rec_num, 0.0) << name;
  }
}

}  // namespace
}  // namespace poisonrec::env
