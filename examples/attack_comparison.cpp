// Compares all 7 attack methods on one testbed (GRU4Rec on a synthetic
// Steam-like log) — a single cell group of the paper's Table III. GRU4Rec
// is order-sensitive, which is where the adaptive sequential attack has
// the largest edge over the order-agnostic baselines.
//
// Build: cmake --build build && ./build/examples/attack_comparison
#include <cstdio>
#include <memory>
#include <vector>

#include "attack/appgrad.h"
#include "attack/conslop.h"
#include "attack/heuristics.h"
#include "attack/poisonrec_attack.h"
#include "core/poisonrec.h"

using namespace poisonrec;

int main() {
  data::SyntheticConfig data_config =
      data::PresetConfig(data::DatasetPreset::kSteam, /*scale=*/0.06, 5);
  data::Dataset log = data::GenerateSynthetic(data_config);

  rec::FitConfig fit;
  fit.embedding_dim = 16;
  env::EnvironmentConfig env_config;
  env_config.num_attackers = 16;
  env_config.trajectory_length = 16;
  env_config.num_target_items = 8;
  env_config.num_candidate_originals = 60;
  env_config.top_k = 10;
  env_config.max_eval_users = 150;
  env_config.seed = 3;
  env::AttackEnvironment system(
      log, rec::MakeRecommender("GRU4Rec", fit).value(), env_config);
  std::printf("testbed: GRU4Rec on synthetic Steam (%zu users, %zu items)\n",
              log.num_users(), log.num_items());
  std::printf("baseline RecNum: %.0f\n\n", system.BaselineRecNum());

  core::PoisonRecConfig pr;
  pr.samples_per_step = 6;
  pr.batch_size = 6;
  pr.policy.embedding_dim = 16;
  attack::AppGradConfig ag;
  ag.iterations = 20;

  std::vector<std::unique_ptr<attack::AttackMethod>> methods;
  methods.push_back(std::make_unique<attack::RandomAttack>());
  methods.push_back(std::make_unique<attack::PopularAttack>());
  methods.push_back(std::make_unique<attack::MiddleAttack>());
  methods.push_back(std::make_unique<attack::PowerItemAttack>());
  methods.push_back(std::make_unique<attack::ConsLopAttack>());
  methods.push_back(std::make_unique<attack::AppGradAttack>(ag));
  methods.push_back(
      std::make_unique<attack::PoisonRecAttack>(pr, /*training_steps=*/10));

  std::printf("%-12s %10s\n", "Method", "RecNum");
  std::printf("-----------------------\n");
  for (const auto& method : methods) {
    const double rec_num =
        system.Evaluate(method->GenerateAttack(system, /*seed=*/17));
    std::printf("%-12s %10.0f\n", method->Name().c_str(), rec_num);
  }
  return 0;
}
