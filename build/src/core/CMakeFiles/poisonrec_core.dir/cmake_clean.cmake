file(REMOVE_RECURSE
  "CMakeFiles/poisonrec_core.dir/action_tree.cc.o"
  "CMakeFiles/poisonrec_core.dir/action_tree.cc.o.d"
  "CMakeFiles/poisonrec_core.dir/policy.cc.o"
  "CMakeFiles/poisonrec_core.dir/policy.cc.o.d"
  "CMakeFiles/poisonrec_core.dir/ppo.cc.o"
  "CMakeFiles/poisonrec_core.dir/ppo.cc.o.d"
  "CMakeFiles/poisonrec_core.dir/trajectory.cc.o"
  "CMakeFiles/poisonrec_core.dir/trajectory.cc.o.d"
  "libpoisonrec_core.a"
  "libpoisonrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisonrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
