// Recorded-graph reuse for the PPO update (the "re-taping" killer): the
// K update epochs of a TrainStep build byte-for-byte identical autograd
// graphs — same ops, same shapes, same leaf set — differing only in the
// current parameter values and the host-recomputed clip masks. A
// GraphTape records every attached node the first time the graph is
// built; subsequent epochs call ReplayForward() to recompute the same
// nodes in creation order (a valid topological order by construction)
// instead of re-running op dispatch, shape checks, and node allocation.
//
// RecordedBackward freezes the backward schedule the same way: it runs
// the exact DFS Tensor::Backward() would run, once, and stores the
// closure invocation order. Replaying that stored order accumulates
// gradients into shared parents in the same sequence every epoch, which
// is what keeps reuse bit-identical to fresh-tape backward — two valid
// topological orders are NOT interchangeable under float accumulation.
#ifndef POISONREC_NN_GRAPH_H_
#define POISONREC_NN_GRAPH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace poisonrec::nn {

class GraphTape {
 public:
  GraphTape() = default;
  GraphTape(const GraphTape&) = delete;
  GraphTape& operator=(const GraphTape&) = delete;

  /// Recomputes every recorded node's data, in creation order, from its
  /// parents' current data. Leaves (never recorded) keep whatever data
  /// they hold — overwrite a leaf's data() before replaying to feed new
  /// inputs through the same graph.
  void ReplayForward();

  /// Zeroes the grad buffers of all recorded nodes (parameters and
  /// other leaves are the caller's responsibility, e.g. via the
  /// optimizer's ZeroGrad).
  void ZeroGrads();

  std::size_t size() const { return nodes_.size(); }
  void Clear() { nodes_.clear(); }

  /// The tape recording on this thread (nullptr when none). tensor.cc's
  /// Attach registers every tracked op output with it.
  static GraphTape* Current();

  /// RAII recording scope: ops created inside append to `tape`.
  class RecordScope {
   public:
    explicit RecordScope(GraphTape* tape);
    ~RecordScope();
    RecordScope(const RecordScope&) = delete;
    RecordScope& operator=(const RecordScope&) = delete;

   private:
    GraphTape* previous_;
  };

  /// Internal (tensor.cc): appends a node whose forward_fn is set.
  void Register(std::shared_ptr<internal::TensorImpl> node);

 private:
  std::vector<std::shared_ptr<internal::TensorImpl>> nodes_;
};

/// Captured backward schedule for one scalar loss.
class RecordedBackward {
 public:
  /// Runs Tensor::Backward()'s DFS over `loss`'s graph and stores the
  /// resulting closure order (without executing any closure). Call once
  /// after the graph is first built.
  void Capture(const Tensor& loss);

  /// Seeds d(loss)/d(loss) += 1 and invokes the captured closures in the
  /// stored order — bit-identical to loss.Backward() on this graph. The
  /// caller zeroes grads first (optimizer + GraphTape::ZeroGrads).
  void Run(const Tensor& loss) const;

  bool captured() const { return !order_.empty(); }
  void Clear();

 private:
  // Keeps the graph alive independent of the caller's handles; raw
  // pointers in order_ stay valid as long as root_ does.
  std::shared_ptr<internal::TensorImpl> root_;
  std::vector<internal::TensorImpl*> order_;  // forward topo; run reversed
};

}  // namespace poisonrec::nn

#endif  // POISONREC_NN_GRAPH_H_
