// Append-only structured event stream: one JSONL file unifying what the
// campaign previously scattered across stdout and ad-hoc sinks — guard
// incidents, defender BanEvents, fault/retry outcomes, checkpoint
// save/load, and per-step TrainStepStats records.
//
// Contract:
//   * One event per line; every line is a complete JSON object with at
//     least a "type" key (docs/observability.md lists the schemas).
//   * Append(line) is atomic with respect to concurrent Append calls
//     from ANY process: the file is opened with O_APPEND and the full
//     line plus '\n' goes out in a single ::write(). POSIX guarantees
//     the kernel performs the seek-to-end and the write as one atomic
//     step for O_APPEND regular files, so two `poisonrec fleet --shared`
//     workers appending to the same journal can never interleave
//     mid-line — a guarantee buffered stdio append ("ab" + fwrite)
//     cannot make once a line crosses the FILE* buffer boundary.
//   * Crash-durable by default: with FlushPolicy::kEveryLine each line
//     is a direct write(2), so everything up to the last completed
//     Append survives kill -9 (page cache; machine-crash durability is
//     the checkpoint layer's job, util/fsio). kOnClose batches lines in
//     a user-space buffer for throughput and writes on Close — only
//     safe for single-writer streams.
//
// The producer side builds lines with obs::JsonObjectBuilder; EventLog
// itself does not validate JSON.
#ifndef POISONREC_OBS_EVENT_LOG_H_
#define POISONREC_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace poisonrec::obs {

class EventLog {
 public:
  enum class FlushPolicy { kEveryLine, kOnClose };

  EventLog() = default;
  ~EventLog() { Close(); }
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for writing (truncating by default; pass
  /// truncate=false to append, as the guard incident sink and shared
  /// fleet journals do). False if the file cannot be opened; the log
  /// stays closed. checksum=true splices a trailing CRC32C member into
  /// every JSON-object line (obs/crc32c.h framing) so readers can tell
  /// rotted records from torn ones — the fleet journal and the campaign
  /// event stream turn this on; the default stays byte-transparent.
  bool Open(const std::string& path, bool truncate = true,
            FlushPolicy flush = FlushPolicy::kEveryLine,
            bool checksum = false);

  /// Writes `line` plus a trailing '\n' as one atomic append. `line`
  /// must be a complete JSON object without the newline. Returns false
  /// (and drops the event) if the log is closed or the write fails.
  bool Append(std::string_view line);

  /// Fault-injection seam for the O_APPEND write path, consulted once
  /// per Append with the log's path and the mutable record (checksummed
  /// line plus '\n'). The hook may mutate the record (bit flips,
  /// truncation — a torn append) or return false to fail the append
  /// outright (ENOSPC/EIO). Process-wide; installed by util/fsio's
  /// FaultyFs when a chaos schedule is armed, nullptr otherwise. A
  /// plain function pointer so obs/ keeps its no-dependency contract.
  using AppendFaultHook = bool (*)(const std::string& path,
                                   std::string* record);
  static void SetAppendFaultHook(AppendFaultHook hook);

  /// Flushes and closes. Safe to call repeatedly.
  void Close();

  bool is_open() const;
  std::uint64_t lines_written() const;
  const std::string& path() const { return path_; }

 private:
  /// Writes buffer_ to fd_ (retrying EINTR) and clears it. Caller holds
  /// mu_. Returns false on a write error (the log is closed so later
  /// appends fail fast instead of silently losing suffixes).
  bool FlushBufferLocked();

  mutable std::mutex mu_;
  int fd_ = -1;
  FlushPolicy flush_ = FlushPolicy::kEveryLine;
  bool checksum_ = false;
  /// kOnClose batching buffer (unused under kEveryLine).
  std::string buffer_;
  std::string path_;
  std::uint64_t lines_written_ = 0;
};

}  // namespace poisonrec::obs

#endif  // POISONREC_OBS_EVENT_LOG_H_
