// Loss function tests: closed-form values, stability, gradient checks.
#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/tensor.h"
#include "util/random.h"

namespace poisonrec::nn {
namespace {

TEST(BceTest, MatchesClosedForm) {
  // BCE(logit=0, t) = log 2 regardless of t.
  Tensor logits = Tensor::FromData(2, 1, {0.0f, 0.0f});
  Tensor targets = Tensor::FromData(2, 1, {1.0f, 0.0f});
  Tensor loss = BceWithLogits(logits, targets);
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(BceTest, ConfidentCorrectIsSmall) {
  Tensor logits = Tensor::FromData(2, 1, {8.0f, -8.0f});
  Tensor targets = Tensor::FromData(2, 1, {1.0f, 0.0f});
  EXPECT_LT(BceWithLogits(logits, targets).item(), 1e-3f);
}

TEST(BceTest, StableAtExtremeLogits) {
  Tensor logits = Tensor::FromData(2, 1, {60.0f, -60.0f});
  Tensor targets = Tensor::FromData(2, 1, {0.0f, 1.0f});
  const float v = BceWithLogits(logits, targets).item();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 60.0f, 1e-3f);
}

TEST(BceTest, GradientCheck) {
  Rng rng(1);
  Tensor targets = Tensor::FromData(4, 1, {1, 0, 1, 0});
  Tensor logits = Tensor::Randn(4, 1, 1.0f, &rng, true);
  Tensor loss = BceWithLogits(logits, targets);
  loss.Backward();
  std::vector<float> numeric = NumericalGradient(
      [&targets](const Tensor& t) {
        NoGradGuard guard;
        return BceWithLogits(t, targets).item();
      },
      logits, 1e-2f);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_NEAR(logits.grad()[i], numeric[i], 1e-2f);
  }
}

TEST(MseTest, Values) {
  Tensor pred = Tensor::FromData(1, 2, {1.0f, 3.0f});
  Tensor target = Tensor::FromData(1, 2, {0.0f, 0.0f});
  EXPECT_NEAR(MseLoss(pred, target).item(), (1.0f + 9.0f) / 2.0f, 1e-5f);
}

TEST(MaskedMseTest, IgnoresUnmasked) {
  Tensor pred = Tensor::FromData(1, 3, {1.0f, 100.0f, 2.0f});
  Tensor target = Tensor::FromData(1, 3, {0.0f, 0.0f, 0.0f});
  Tensor mask = Tensor::FromData(1, 3, {1.0f, 0.0f, 1.0f});
  // (1 + 4) / 2 masked entries.
  EXPECT_NEAR(MaskedMseLoss(pred, target, mask).item(), 2.5f, 1e-5f);
}

TEST(BprTest, PositiveAboveNegativeGivesSmallLoss) {
  Tensor pos = Tensor::FromData(2, 1, {5.0f, 6.0f});
  Tensor neg = Tensor::FromData(2, 1, {-5.0f, -4.0f});
  EXPECT_LT(BprLoss(pos, neg).item(), 1e-3f);
}

TEST(BprTest, EqualScoresGiveLog2) {
  Tensor pos = Tensor::FromData(1, 1, {2.0f});
  Tensor neg = Tensor::FromData(1, 1, {2.0f});
  EXPECT_NEAR(BprLoss(pos, neg).item(), std::log(2.0f), 1e-5f);
}

TEST(BprTest, GradientPushesPosUpNegDown) {
  Tensor pos = Tensor::FromData(1, 1, {0.0f}, true);
  Tensor neg = Tensor::FromData(1, 1, {0.0f}, true);
  Tensor loss = BprLoss(pos, neg);
  loss.Backward();
  EXPECT_LT(pos.grad()[0], 0.0f);  // descending on loss raises pos
  EXPECT_GT(neg.grad()[0], 0.0f);
}

TEST(SoftmaxCeTest, UniformLogitsGiveLogN) {
  Tensor logits = Tensor::Zeros(2, 4);
  Tensor loss = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCeTest, CorrectConfidentIsSmall) {
  Tensor logits = Tensor::FromData(1, 3, {10.0f, 0.0f, 0.0f});
  EXPECT_LT(SoftmaxCrossEntropy(logits, {0}).item(), 1e-3f);
}

TEST(SoftmaxCeTest, GradientCheck) {
  Rng rng(2);
  Tensor logits = Tensor::Randn(3, 5, 1.0f, &rng, true);
  std::vector<std::size_t> targets = {1, 4, 0};
  Tensor loss = SoftmaxCrossEntropy(logits, targets);
  loss.Backward();
  std::vector<float> numeric = NumericalGradient(
      [&targets](const Tensor& t) {
        NoGradGuard guard;
        return SoftmaxCrossEntropy(t, targets).item();
      },
      logits, 1e-2f);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_NEAR(logits.grad()[i], numeric[i], 1e-2f);
  }
}

}  // namespace
}  // namespace poisonrec::nn
